//! The standard (tensor) 2-D Haar synopsis with top-B thresholding.
//!
//! The 2-D transform applies the orthonormal 1-D transform to every row and
//! then to every column; the basis is the tensor product
//! `h_{cx}(x)·h_{cy}(y)`, so a rectangle sum of one basis function is the
//! *product* of two O(1) 1-D range sums and a `B`-coefficient synopsis
//! answers any rectangle in O(B). By Parseval, keeping the `B` largest
//! coefficients is point-wise (cell-wise) optimal — the 2-D counterpart of
//! the point-top-B baseline, and the natural comparator for the tile
//! histograms of [`crate::hist2d`].

use crate::grid::{Grid2D, RectQuery};
use crate::sse2d::RectEstimator;
use synoptic_wavelet::haar::{forward, next_pow2, BasisFn};

/// A sparse 2-D Haar synopsis.
#[derive(Debug, Clone, PartialEq)]
pub struct Wavelet2D {
    nx: usize,
    ny: usize,
    /// Padded power-of-two extents.
    px: usize,
    py: usize,
    /// `(cx, cy, value)` retained coefficients.
    coeffs: Vec<(u32, u32, f64)>,
}

impl Wavelet2D {
    /// Builds the synopsis keeping `b` coefficients (zero-padding to powers
    /// of two, O(px·py·log) transform).
    pub fn build(g: &Grid2D, b: usize) -> Self {
        let (nx, ny) = (g.nx(), g.ny());
        let (px, py) = (next_pow2(nx), next_pow2(ny));
        // Row-major padded matrix, rows indexed by x.
        let mut m = vec![0.0f64; px * py];
        for x in 0..nx {
            for y in 0..ny {
                m[x * py + y] = g.get(x, y) as f64;
            }
        }
        // Transform rows (y direction)…
        let mut rowbuf = vec![0.0f64; py];
        for x in 0..px {
            rowbuf.copy_from_slice(&m[x * py..(x + 1) * py]);
            forward(&mut rowbuf);
            m[x * py..(x + 1) * py].copy_from_slice(&rowbuf);
        }
        // …then columns (x direction).
        let mut colbuf = vec![0.0f64; px];
        for y in 0..py {
            for x in 0..px {
                colbuf[x] = m[x * py + y];
            }
            forward(&mut colbuf);
            for x in 0..px {
                m[x * py + y] = colbuf[x];
            }
        }
        // Top-B by |value| (deterministic tie-break on indices).
        let mut order: Vec<usize> = (0..m.len()).collect();
        order.sort_by(|&a, &bb| m[bb].abs().total_cmp(&m[a].abs()).then(a.cmp(&bb)));
        let mut coeffs: Vec<(u32, u32, f64)> = order
            .into_iter()
            .take(b)
            .filter(|&i| m[i] != 0.0)
            .map(|i| ((i / py) as u32, (i % py) as u32, m[i]))
            .collect();
        coeffs.sort_unstable_by_key(|&(cx, cy, _)| (cx, cy));
        Self {
            nx,
            ny,
            px,
            py,
            coeffs,
        }
    }

    /// Retained `(cx, cy, value)` coefficients.
    pub fn coeffs(&self) -> &[(u32, u32, f64)] {
        &self.coeffs
    }

    /// Cell-wise reconstruction at `(x, y)` in O(B).
    pub fn eval(&self, x: usize, y: usize) -> f64 {
        self.coeffs
            .iter()
            .map(|&(cx, cy, v)| {
                v * BasisFn::for_index(cx as usize, self.px).eval(x)
                    * BasisFn::for_index(cy as usize, self.py).eval(y)
            })
            .sum()
    }
}

impl RectEstimator for Wavelet2D {
    fn nx(&self) -> usize {
        self.nx
    }
    fn ny(&self) -> usize {
        self.ny
    }
    fn estimate(&self, q: RectQuery) -> f64 {
        self.coeffs
            .iter()
            .map(|&(cx, cy, v)| {
                v * BasisFn::for_index(cx as usize, self.px).range_sum(q.x0, q.x1)
                    * BasisFn::for_index(cy as usize, self.py).range_sum(q.y0, q.y1)
            })
            .sum()
    }
    fn storage_words(&self) -> usize {
        // (cx, cy) pack into one index word + one value word.
        2 * self.coeffs.len()
    }
    fn method_name(&self) -> &str {
        "WAVELET-2D"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::PrefixSums2D;
    use crate::sse2d::sse2d_brute;

    fn grid() -> Grid2D {
        let mut g = Grid2D::zeros(4, 4).unwrap();
        for x in 0..4 {
            for y in 0..4 {
                *g.get_mut(x, y) = ((x * 5 + y * 3) % 11) as i64;
            }
        }
        g
    }

    #[test]
    fn full_budget_reconstructs_exactly() {
        let g = grid();
        let ps = PrefixSums2D::from_grid(&g);
        let w = Wavelet2D::build(&g, 16);
        for x in 0..4 {
            for y in 0..4 {
                assert!(
                    (w.eval(x, y) - g.get(x, y) as f64).abs() < 1e-9,
                    "cell ({x},{y})"
                );
            }
        }
        assert!(sse2d_brute(&w, &ps) < 1e-6);
    }

    #[test]
    fn rectangle_sums_match_cellwise_reconstruction() {
        let g = grid();
        let w = Wavelet2D::build(&g, 5);
        for q in RectQuery::all(4, 4) {
            let direct: f64 = (q.x0..=q.x1)
                .flat_map(|x| (q.y0..=q.y1).map(move |y| (x, y)))
                .map(|(x, y)| w.eval(x, y))
                .sum();
            assert!(
                (w.estimate(q) - direct).abs() < 1e-9,
                "{q:?}: {} vs {direct}",
                w.estimate(q)
            );
        }
    }

    #[test]
    fn parseval_l2_decreases_with_budget() {
        let g = grid();
        let l2 = |w: &Wavelet2D| -> f64 {
            (0..4)
                .flat_map(|x| (0..4).map(move |y| (x, y)))
                .map(|(x, y)| {
                    let d = w.eval(x, y) - g.get(x, y) as f64;
                    d * d
                })
                .sum()
        };
        let mut prev = f64::INFINITY;
        for b in [1usize, 2, 4, 8, 16] {
            let w = Wavelet2D::build(&g, b);
            let e = l2(&w);
            assert!(e <= prev + 1e-9, "b={b}");
            prev = e;
        }
    }

    #[test]
    fn constant_grid_needs_one_coefficient() {
        let g = Grid2D::new(4, 8, vec![6; 32]).unwrap();
        let ps = PrefixSums2D::from_grid(&g);
        let w = Wavelet2D::build(&g, 1);
        assert_eq!(w.coeffs().len(), 1);
        assert_eq!(w.coeffs()[0].0, 0);
        assert_eq!(w.coeffs()[0].1, 0);
        assert!(sse2d_brute(&w, &ps) < 1e-6);
    }

    #[test]
    fn non_pow2_grids_are_padded() {
        let g = Grid2D::new(3, 5, (0..15).collect()).unwrap();
        let ps = PrefixSums2D::from_grid(&g);
        let w = Wavelet2D::build(&g, 8 * 4); // full padded budget
        assert!(sse2d_brute(&w, &ps) < 1e-6);
        assert_eq!((w.nx(), w.ny()), (3, 5));
    }
}
