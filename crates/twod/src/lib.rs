//! # synoptic-twod
//!
//! Two-dimensional range-sum synopses — the "straightforward extension … to
//! higher dimensions" the paper flags as possible but defers (§1,
//! footnote 2). This crate builds the 2-D substrate and the natural
//! counterparts of the 1-D methods:
//!
//! * [`grid`] — the joint attribute-value distribution `A[x][y]`, exact 2-D
//!   prefix sums with inclusion–exclusion, and rectangle queries.
//! * [`hist2d`] — tile histograms: a regular `g×g` grid partition and a
//!   greedy recursive-split (MHIST-style) partition, both storing per-tile
//!   averages.
//! * [`wavelet2d`] — the standard (tensor) 2-D Haar transform with top-B
//!   coefficient thresholding: point-wise optimal by Parseval, answering
//!   rectangle sums in O(B) via products of 1-D basis range sums.
//! * [`sse2d`] — exact SSE over **all** rectangles (the 2-D analog of the
//!   paper's objective), by brute force over the `≈ n_x²·n_y²/4` rectangles.
//!
//! The 1-D paper's *optimal* bucketing DP does not carry over — 2-D
//! partitioning into arbitrary tiles is NP-hard territory (hence MHIST-style
//! greedy heuristics here), which is presumably why the paper calls for
//! "more extensive investigation".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod hist2d;
pub mod sse2d;
pub mod wavelet2d;

pub use grid::{Grid2D, PrefixSums2D, RectQuery};
pub use hist2d::{GreedyTileHistogram, GridHistogram};
pub use sse2d::{sse2d_brute, RectEstimator};
pub use wavelet2d::Wavelet2D;
