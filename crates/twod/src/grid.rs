//! The joint attribute-value distribution and its 2-D prefix sums.

use synoptic_core::{Result, SynopticError};

/// An inclusive rectangle query `[x0, x1] × [y0, y1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RectQuery {
    /// Left column (inclusive).
    pub x0: usize,
    /// Right column (inclusive).
    pub x1: usize,
    /// Bottom row (inclusive).
    pub y0: usize,
    /// Top row (inclusive).
    pub y1: usize,
}

impl RectQuery {
    /// Creates a rectangle, validating the corner ordering.
    pub fn new(x0: usize, x1: usize, y0: usize, y1: usize) -> Result<Self> {
        if x0 > x1 {
            return Err(SynopticError::InvalidRange { lo: x0, hi: x1 });
        }
        if y0 > y1 {
            return Err(SynopticError::InvalidRange { lo: y0, hi: y1 });
        }
        Ok(Self { x0, x1, y0, y1 })
    }

    /// Number of cells covered.
    pub fn area(&self) -> usize {
        (self.x1 - self.x0 + 1) * (self.y1 - self.y0 + 1)
    }

    /// Iterator over every rectangle on an `nx × ny` grid —
    /// `nx(nx+1)/2 · ny(ny+1)/2` of them.
    pub fn all(nx: usize, ny: usize) -> impl Iterator<Item = RectQuery> {
        (0..nx).flat_map(move |x0| {
            (x0..nx).flat_map(move |x1| {
                (0..ny).flat_map(move |y0| (y0..ny).map(move |y1| RectQuery { x0, x1, y0, y1 }))
            })
        })
    }

    /// Total rectangle count on an `nx × ny` grid.
    pub fn count_all(nx: usize, ny: usize) -> u64 {
        let rx = nx as u64 * (nx as u64 + 1) / 2;
        let ry = ny as u64 * (ny as u64 + 1) / 2;
        rx * ry
    }
}

/// A dense `nx × ny` grid of integer frequencies (row-major: `a[x][y]` at
/// `x·ny + y`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid2D {
    nx: usize,
    ny: usize,
    values: Vec<i64>,
}

impl Grid2D {
    /// Wraps a row-major frequency grid.
    pub fn new(nx: usize, ny: usize, values: Vec<i64>) -> Result<Self> {
        if nx == 0 || ny == 0 {
            return Err(SynopticError::EmptyInput);
        }
        if values.len() != nx * ny {
            return Err(SynopticError::InvalidParameter(format!(
                "expected {} values for a {nx}×{ny} grid, got {}",
                nx * ny,
                values.len()
            )));
        }
        Ok(Self { nx, ny, values })
    }

    /// An all-zero grid.
    pub fn zeros(nx: usize, ny: usize) -> Result<Self> {
        Self::new(nx, ny, vec![0; nx * ny])
    }

    /// Grid width (x extent).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height (y extent).
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Frequency at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> i64 {
        self.values[x * self.ny + y]
    }

    /// Mutable access to `(x, y)`.
    pub fn get_mut(&mut self, x: usize, y: usize) -> &mut i64 {
        &mut self.values[x * self.ny + y]
    }

    /// Raw row-major values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Total mass.
    pub fn total(&self) -> i128 {
        self.values.iter().map(|&v| v as i128).sum()
    }

    /// Exact 2-D prefix sums.
    pub fn prefix_sums(&self) -> PrefixSums2D {
        PrefixSums2D::from_grid(self)
    }
}

/// Exact 2-D prefix sums `P[x][y] = Σ_{i<x, j<y} A[i][j]` with
/// `(nx+1)(ny+1)` entries, answering any rectangle by inclusion–exclusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixSums2D {
    nx: usize,
    ny: usize,
    /// `(nx+1) × (ny+1)` row-major table.
    p: Vec<i128>,
}

impl PrefixSums2D {
    /// Builds from a grid in O(nx·ny).
    pub fn from_grid(g: &Grid2D) -> Self {
        let (nx, ny) = (g.nx, g.ny);
        let w = ny + 1;
        let mut p = vec![0i128; (nx + 1) * w];
        for x in 0..nx {
            let mut row_acc = 0i128;
            for y in 0..ny {
                row_acc += g.get(x, y) as i128;
                p[(x + 1) * w + (y + 1)] = p[x * w + (y + 1)] + row_acc;
            }
        }
        Self { nx, ny, p }
    }

    /// Grid width.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// `P[x][y]` (corner-exclusive prefix).
    #[inline]
    pub fn p(&self, x: usize, y: usize) -> i128 {
        self.p[x * (self.ny + 1) + y]
    }

    /// Exact rectangle sum by inclusion–exclusion.
    pub fn answer(&self, q: RectQuery) -> i128 {
        debug_assert!(q.x1 < self.nx && q.y1 < self.ny);
        self.p(q.x1 + 1, q.y1 + 1) - self.p(q.x0, q.y1 + 1) - self.p(q.x1 + 1, q.y0)
            + self.p(q.x0, q.y0)
    }

    /// Total mass.
    pub fn total(&self) -> i128 {
        self.p(self.nx, self.ny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid2D {
        // 3×4 grid, values 1..=12 row-major.
        Grid2D::new(3, 4, (1..=12).collect()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Grid2D::new(0, 3, vec![]).is_err());
        assert!(Grid2D::new(2, 2, vec![1, 2, 3]).is_err());
        assert!(Grid2D::zeros(2, 2).is_ok());
    }

    #[test]
    fn accessors() {
        let g = grid();
        assert_eq!((g.nx(), g.ny()), (3, 4));
        assert_eq!(g.get(0, 0), 1);
        assert_eq!(g.get(2, 3), 12);
        assert_eq!(g.total(), 78);
        let mut g = g;
        *g.get_mut(1, 1) += 5;
        assert_eq!(g.get(1, 1), 11);
    }

    #[test]
    fn prefix_sums_answer_every_rectangle() {
        let g = grid();
        let ps = g.prefix_sums();
        assert_eq!(ps.total(), 78);
        for q in RectQuery::all(3, 4) {
            let mut brute = 0i128;
            for x in q.x0..=q.x1 {
                for y in q.y0..=q.y1 {
                    brute += g.get(x, y) as i128;
                }
            }
            assert_eq!(ps.answer(q), brute, "{q:?}");
        }
    }

    #[test]
    fn rect_query_enumeration_and_count() {
        let all: Vec<_> = RectQuery::all(3, 2).collect();
        assert_eq!(all.len() as u64, RectQuery::count_all(3, 2));
        assert_eq!(RectQuery::count_all(3, 2), 6 * 3);
        for q in &all {
            assert!(q.x0 <= q.x1 && q.y0 <= q.y1);
        }
        assert_eq!(RectQuery::new(0, 1, 0, 1).unwrap().area(), 4);
        assert!(RectQuery::new(2, 1, 0, 0).is_err());
        assert!(RectQuery::new(0, 0, 3, 1).is_err());
    }
}
