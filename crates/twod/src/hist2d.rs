//! Tile histograms over the 2-D grid.
//!
//! Two constructions:
//!
//! * [`GridHistogram`] — a regular `gx × gy` partition with per-tile
//!   averages, the 2-D equi-width baseline.
//! * [`GreedyTileHistogram`] — MHIST-style recursive splitting: repeatedly
//!   take the tile with the largest internal variance contribution and cut
//!   it along the better axis at the best position. Optimal 2-D tiling is
//!   NP-hard (which is why the paper's exact 1-D DP does not carry over);
//!   greedy splitting is the standard practical answer.
//!
//! Both answer a rectangle by summing, over each overlapping tile,
//! `overlap_area · avg(tile)` — the 2-D analog of the paper's eq. (1)
//! (whole-tile pieces are exact).

use crate::grid::{Grid2D, PrefixSums2D, RectQuery};
use crate::sse2d::RectEstimator;
use synoptic_core::{Result, SynopticError};

/// One tile: an inclusive cell rectangle plus its stored average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tile {
    /// Covered cells.
    pub rect: RectQuery,
    /// Stored average frequency.
    pub avg: f64,
}

fn tile_answer(tiles: &[Tile], q: RectQuery) -> f64 {
    let mut acc = 0.0;
    for t in tiles {
        let x0 = q.x0.max(t.rect.x0);
        let x1 = q.x1.min(t.rect.x1);
        let y0 = q.y0.max(t.rect.y0);
        let y1 = q.y1.min(t.rect.y1);
        if x0 <= x1 && y0 <= y1 {
            let overlap = ((x1 - x0 + 1) * (y1 - y0 + 1)) as f64;
            acc += overlap * t.avg;
        }
    }
    acc
}

/// A regular `gx × gy` tile histogram with per-tile averages.
///
/// Storage: `2` words per tile (boundary bookkeeping amortized, average), in
/// line with the 1-D accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct GridHistogram {
    nx: usize,
    ny: usize,
    tiles: Vec<Tile>,
}

impl GridHistogram {
    /// Builds the regular partition (tiles sized as evenly as possible).
    pub fn build(ps: &PrefixSums2D, gx: usize, gy: usize) -> Result<Self> {
        let (nx, ny) = (ps.nx(), ps.ny());
        if gx == 0 || gy == 0 || gx > nx || gy > ny {
            return Err(SynopticError::InvalidBucketCount {
                buckets: gx * gy,
                n: nx * ny,
            });
        }
        let cuts = |n: usize, g: usize| -> Vec<(usize, usize)> {
            let base = n / g;
            let extra = n % g;
            let mut out = Vec::with_capacity(g);
            let mut pos = 0;
            for i in 0..g {
                let w = base + usize::from(i < extra);
                out.push((pos, pos + w - 1));
                pos += w;
            }
            out
        };
        let mut tiles = Vec::with_capacity(gx * gy);
        for &(x0, x1) in &cuts(nx, gx) {
            for &(y0, y1) in &cuts(ny, gy) {
                let rect = RectQuery { x0, x1, y0, y1 };
                let avg = ps.answer(rect) as f64 / rect.area() as f64;
                tiles.push(Tile { rect, avg });
            }
        }
        Ok(Self { nx, ny, tiles })
    }

    /// The tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }
}

impl RectEstimator for GridHistogram {
    fn nx(&self) -> usize {
        self.nx
    }
    fn ny(&self) -> usize {
        self.ny
    }
    fn estimate(&self, q: RectQuery) -> f64 {
        tile_answer(&self.tiles, q)
    }
    fn storage_words(&self) -> usize {
        2 * self.tiles.len()
    }
    fn method_name(&self) -> &str {
        "GRID-2D"
    }
}

/// MHIST-style greedy recursive-split tile histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyTileHistogram {
    nx: usize,
    ny: usize,
    tiles: Vec<Tile>,
}

/// Sum of squared deviations of the cells inside `rect` from their mean —
/// the classic V-optimal-style tile cost (a cheap, well-behaved proxy for
/// the rectangle-SSE contribution).
fn cell_variance(ps: &PrefixSums2D, sq: &SqOracle, rect: RectQuery) -> f64 {
    let area = rect.area() as f64;
    let s = ps.answer(rect) as f64;
    let s2 = sq.answer(rect) as f64;
    (s2 - s * s / area).max(0.0)
}

/// Prefix sums of squared cell values (for O(1) tile variances).
struct SqOracle {
    ps: PrefixSums2D,
}

impl SqOracle {
    fn new(g: &Grid2D) -> Self {
        let sq_vals: Vec<i64> = g
            .values()
            .iter()
            .map(|&v| v.checked_mul(v).expect("cell value² overflows i64"))
            .collect();
        let sq = Grid2D::new(g.nx(), g.ny(), sq_vals).expect("same shape");
        Self {
            ps: sq.prefix_sums(),
        }
    }
    fn answer(&self, q: RectQuery) -> i128 {
        self.ps.answer(q)
    }
}

impl GreedyTileHistogram {
    /// Builds with at most `tiles` tiles by greedy splitting.
    pub fn build(g: &Grid2D, ps: &PrefixSums2D, tiles: usize) -> Result<Self> {
        let (nx, ny) = (ps.nx(), ps.ny());
        if tiles == 0 || tiles > nx * ny {
            return Err(SynopticError::InvalidBucketCount {
                buckets: tiles,
                n: nx * ny,
            });
        }
        let sq = SqOracle::new(g);
        let full = RectQuery {
            x0: 0,
            x1: nx - 1,
            y0: 0,
            y1: ny - 1,
        };
        let mut rects = vec![full];
        while rects.len() < tiles {
            // Pick the tile with the largest variance.
            let (worst_idx, worst_var) = rects
                .iter()
                .enumerate()
                .map(|(i, &r)| (i, cell_variance(ps, &sq, r)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            if worst_var <= 0.0 {
                break; // everything constant: splitting gains nothing
            }
            let r = rects[worst_idx];
            // Best split of r along either axis: minimize the sum of child
            // variances.
            let mut best: Option<(f64, RectQuery, RectQuery)> = None;
            for cut in r.x0..r.x1 {
                let a = RectQuery { x1: cut, ..r };
                let b = RectQuery { x0: cut + 1, ..r };
                let c = cell_variance(ps, &sq, a) + cell_variance(ps, &sq, b);
                if best.as_ref().map(|&(bc, _, _)| c < bc).unwrap_or(true) {
                    best = Some((c, a, b));
                }
            }
            for cut in r.y0..r.y1 {
                let a = RectQuery { y1: cut, ..r };
                let b = RectQuery { y0: cut + 1, ..r };
                let c = cell_variance(ps, &sq, a) + cell_variance(ps, &sq, b);
                if best.as_ref().map(|&(bc, _, _)| c < bc).unwrap_or(true) {
                    best = Some((c, a, b));
                }
            }
            match best {
                Some((_, a, b)) => {
                    rects[worst_idx] = a;
                    rects.push(b);
                }
                None => break, // 1×1 tile cannot be split
            }
        }
        let tiles_out = rects
            .into_iter()
            .map(|rect| Tile {
                rect,
                avg: ps.answer(rect) as f64 / rect.area() as f64,
            })
            .collect();
        Ok(Self {
            nx,
            ny,
            tiles: tiles_out,
        })
    }

    /// The tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }
}

impl RectEstimator for GreedyTileHistogram {
    fn nx(&self) -> usize {
        self.nx
    }
    fn ny(&self) -> usize {
        self.ny
    }
    fn estimate(&self, q: RectQuery) -> f64 {
        tile_answer(&self.tiles, q)
    }
    fn storage_words(&self) -> usize {
        // Tile corners are not reconstructible from a global grid, so the
        // honest accounting is 4 corner words + 1 average per tile… we use
        // the conventional 5 words/tile for the irregular partition.
        5 * self.tiles.len()
    }
    fn method_name(&self) -> &str {
        "MHIST-2D"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sse2d::sse2d_brute;

    fn bumpy_grid() -> Grid2D {
        // Two rectangular plateaus on a 6×6 grid.
        let mut g = Grid2D::zeros(6, 6).unwrap();
        for x in 0..3 {
            for y in 0..3 {
                *g.get_mut(x, y) = 50;
            }
        }
        for x in 3..6 {
            for y in 3..6 {
                *g.get_mut(x, y) = 20;
            }
        }
        g
    }

    #[test]
    fn grid_histogram_whole_domain_is_exact() {
        let g = bumpy_grid();
        let ps = g.prefix_sums();
        let h = GridHistogram::build(&ps, 2, 3).unwrap();
        assert_eq!(h.tiles().len(), 6);
        let full = RectQuery::new(0, 5, 0, 5).unwrap();
        assert!((h.estimate(full) - ps.total() as f64).abs() < 1e-9);
        assert_eq!(h.storage_words(), 12);
        assert_eq!(h.method_name(), "GRID-2D");
    }

    #[test]
    fn aligned_grid_histogram_is_exact_on_plateaus() {
        let g = bumpy_grid();
        let ps = g.prefix_sums();
        // 2×2 tiles align exactly with the two plateaus' quadrants.
        let h = GridHistogram::build(&ps, 2, 2).unwrap();
        assert!(sse2d_brute(&h, &ps) < 1e-9);
    }

    #[test]
    fn greedy_recovers_plateau_structure() {
        let g = bumpy_grid();
        let ps = g.prefix_sums();
        let h = GreedyTileHistogram::build(&g, &ps, 4).unwrap();
        // 4 tiles suffice to isolate the quadrants ⇒ zero SSE.
        let sse = sse2d_brute(&h, &ps);
        assert!(sse < 1e-9, "sse = {sse}, tiles: {:?}", h.tiles());
    }

    #[test]
    fn greedy_stops_early_on_constant_grids() {
        let g = Grid2D::new(4, 4, vec![7; 16]).unwrap();
        let ps = g.prefix_sums();
        let h = GreedyTileHistogram::build(&g, &ps, 10).unwrap();
        assert_eq!(h.tiles().len(), 1, "no reason to split a constant grid");
        assert!(sse2d_brute(&h, &ps) < 1e-9);
    }

    #[test]
    fn more_tiles_never_hurt_greedy() {
        let mut g = Grid2D::zeros(8, 8).unwrap();
        for x in 0..8 {
            for y in 0..8 {
                *g.get_mut(x, y) = ((x * 13 + y * 7) % 23) as i64;
            }
        }
        let ps = g.prefix_sums();
        let mut prev = f64::INFINITY;
        for t in [1usize, 2, 4, 8, 16] {
            let h = GreedyTileHistogram::build(&g, &ps, t).unwrap();
            let sse = sse2d_brute(&h, &ps);
            assert!(sse <= prev * 1.35 + 1e-9, "t={t}: {sse} vs {prev}");
            prev = sse;
        }
    }

    #[test]
    fn validation() {
        let g = Grid2D::zeros(3, 3).unwrap();
        let ps = g.prefix_sums();
        assert!(GridHistogram::build(&ps, 0, 1).is_err());
        assert!(GridHistogram::build(&ps, 4, 1).is_err());
        assert!(GreedyTileHistogram::build(&g, &ps, 0).is_err());
        assert!(GreedyTileHistogram::build(&g, &ps, 10).is_err());
    }
}
