//! The 2-D quality objective: SSE over all rectangles.

use crate::grid::{PrefixSums2D, RectQuery};

/// A synopsis answering rectangle-sum queries.
pub trait RectEstimator {
    /// Grid width the synopsis was built for.
    fn nx(&self) -> usize;
    /// Grid height.
    fn ny(&self) -> usize;
    /// Estimated rectangle sum.
    fn estimate(&self, q: RectQuery) -> f64;
    /// Storage footprint in words.
    fn storage_words(&self) -> usize;
    /// Short method name.
    fn method_name(&self) -> &str;
}

impl<T: RectEstimator + ?Sized> RectEstimator for &T {
    fn nx(&self) -> usize {
        (**self).nx()
    }
    fn ny(&self) -> usize {
        (**self).ny()
    }
    fn estimate(&self, q: RectQuery) -> f64 {
        (**self).estimate(q)
    }
    fn storage_words(&self) -> usize {
        (**self).storage_words()
    }
    fn method_name(&self) -> &str {
        (**self).method_name()
    }
}

/// Exact SSE over every rectangle:
/// `Σ_{all rects} (s(rect) − ŝ(rect))²` — `≈ nx²·ny²/4` queries, fine for
/// the grid sizes this crate targets (≤ 64×64).
pub fn sse2d_brute<E: RectEstimator>(est: &E, ps: &PrefixSums2D) -> f64 {
    assert_eq!(est.nx(), ps.nx());
    assert_eq!(est.ny(), ps.ny());
    let mut sse = 0.0;
    for q in RectQuery::all(ps.nx(), ps.ny()) {
        let d = ps.answer(q) as f64 - est.estimate(q);
        sse += d * d;
    }
    sse
}

/// SSE over a fixed rectangle workload.
pub fn sse2d_workload<E: RectEstimator>(est: &E, ps: &PrefixSums2D, queries: &[RectQuery]) -> f64 {
    let mut sse = 0.0;
    for &q in queries {
        let d = ps.answer(q) as f64 - est.estimate(q);
        sse += d * d;
    }
    sse
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2D;

    struct Zero {
        nx: usize,
        ny: usize,
    }
    impl RectEstimator for Zero {
        fn nx(&self) -> usize {
            self.nx
        }
        fn ny(&self) -> usize {
            self.ny
        }
        fn estimate(&self, _q: RectQuery) -> f64 {
            0.0
        }
        fn storage_words(&self) -> usize {
            0
        }
        fn method_name(&self) -> &str {
            "ZERO"
        }
    }

    #[test]
    fn zero_estimator_sse_is_sum_of_squared_answers() {
        let g = Grid2D::new(2, 2, vec![1, 2, 3, 4]).unwrap();
        let ps = g.prefix_sums();
        let z = Zero { nx: 2, ny: 2 };
        let want: f64 = RectQuery::all(2, 2)
            .map(|q| (ps.answer(q) as f64).powi(2))
            .sum();
        assert_eq!(sse2d_brute(&z, &ps), want);
        // Workload restriction.
        let some = vec![RectQuery::new(0, 1, 0, 1).unwrap()];
        assert_eq!(sse2d_workload(&z, &ps, &some), 100.0);
        // Blanket &T impl delegates.
        let r: &dyn RectEstimator = &z;
        assert_eq!((&r).method_name(), "ZERO");
        assert_eq!((&r).storage_words(), 0);
    }
}
