//! Randomized tests for the 2-D substrate and synopses, driven by the
//! in-repo seeded [`Rng`] so they run fully offline.

use synoptic_core::rng::Rng;
use synoptic_twod::{
    sse2d_brute, GreedyTileHistogram, Grid2D, GridHistogram, PrefixSums2D, RectEstimator,
    RectQuery, Wavelet2D,
};

const CASES: u64 = 48;

/// A random grid with dimensions in 1..7 and cell values in 0..100.
fn rand_grid(rng: &mut Rng) -> Grid2D {
    let nx = rng.usize_in(1, 7);
    let ny = rng.usize_in(1, 7);
    let v: Vec<i64> = (0..nx * ny).map(|_| rng.i64_in(0, 99)).collect();
    Grid2D::new(nx, ny, v).expect("dimensions match")
}

#[test]
fn prefix_sums_answer_all_rectangles_exactly() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x41_000 + case);
        let g = rand_grid(&mut rng);
        let ps = PrefixSums2D::from_grid(&g);
        for q in RectQuery::all(g.nx(), g.ny()) {
            let mut brute = 0i128;
            for x in q.x0..=q.x1 {
                for y in q.y0..=q.y1 {
                    brute += g.get(x, y) as i128;
                }
            }
            assert_eq!(ps.answer(q), brute, "case {case}: {q:?}");
        }
    }
}

#[test]
fn full_resolution_synopses_are_exact() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x42_000 + case);
        let g = rand_grid(&mut rng);
        let ps = g.prefix_sums();
        let (nx, ny) = (g.nx(), g.ny());
        // Grid histogram with one tile per cell.
        let h = GridHistogram::build(&ps, nx, ny).unwrap();
        assert!(sse2d_brute(&h, &ps) < 1e-6, "case {case}");
        // Greedy with one tile per cell can always reach zero.
        let gt = GreedyTileHistogram::build(&g, &ps, nx * ny).unwrap();
        assert!(sse2d_brute(&gt, &ps) < 1e-6, "case {case}");
        // Wavelet with full padded budget.
        let w = Wavelet2D::build(&g, nx.next_power_of_two() * ny.next_power_of_two());
        assert!(sse2d_brute(&w, &ps) < 1e-5, "case {case}");
    }
}

#[test]
fn whole_domain_query_is_exact_for_tile_histograms() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x43_000 + case);
        let g = rand_grid(&mut rng);
        let ps = g.prefix_sums();
        let full = RectQuery {
            x0: 0,
            x1: g.nx() - 1,
            y0: 0,
            y1: g.ny() - 1,
        };
        let h = GridHistogram::build(&ps, 1.max(g.nx() / 2), 1.max(g.ny() / 2)).unwrap();
        assert!(
            (h.estimate(full) - ps.total() as f64).abs() < 1e-6,
            "case {case}"
        );
        let gt = GreedyTileHistogram::build(&g, &ps, 3.min(g.nx() * g.ny())).unwrap();
        assert!(
            (gt.estimate(full) - ps.total() as f64).abs() < 1e-6,
            "case {case}"
        );
    }
}

#[test]
fn greedy_tiles_partition_the_domain() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x44_000 + case);
        let g = rand_grid(&mut rng);
        let ps = g.prefix_sums();
        let t = 5.min(g.nx() * g.ny());
        let h = GreedyTileHistogram::build(&g, &ps, t).unwrap();
        // Every cell covered exactly once.
        let mut cover = vec![0u8; g.nx() * g.ny()];
        for tile in h.tiles() {
            for x in tile.rect.x0..=tile.rect.x1 {
                for y in tile.rect.y0..=tile.rect.y1 {
                    cover[x * g.ny() + y] += 1;
                }
            }
        }
        assert!(
            cover.iter().all(|&c| c == 1),
            "case {case}: cover: {cover:?}"
        );
    }
}

#[test]
fn wavelet_estimates_are_finite_and_storage_bounded() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x45_000 + case);
        let g = rand_grid(&mut rng);
        for b in [1usize, 3, 6] {
            let w = Wavelet2D::build(&g, b);
            assert!(w.storage_words() <= 2 * b, "case {case}: budget {b}");
            for q in RectQuery::all(g.nx(), g.ny()) {
                assert!(w.estimate(q).is_finite(), "case {case}: {q:?}");
            }
        }
    }
}
