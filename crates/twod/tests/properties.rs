//! Property-based tests for the 2-D substrate and synopses.

use proptest::prelude::*;
use synoptic_twod::{
    sse2d_brute, GreedyTileHistogram, Grid2D, GridHistogram, PrefixSums2D, RectEstimator,
    RectQuery, Wavelet2D,
};

fn arb_grid() -> impl Strategy<Value = Grid2D> {
    (1usize..7, 1usize..7)
        .prop_flat_map(|(nx, ny)| {
            prop::collection::vec(0i64..100, nx * ny).prop_map(move |v| {
                Grid2D::new(nx, ny, v).expect("dimensions match")
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prefix_sums_answer_all_rectangles_exactly(g in arb_grid()) {
        let ps = PrefixSums2D::from_grid(&g);
        for q in RectQuery::all(g.nx(), g.ny()) {
            let mut brute = 0i128;
            for x in q.x0..=q.x1 {
                for y in q.y0..=q.y1 {
                    brute += g.get(x, y) as i128;
                }
            }
            prop_assert_eq!(ps.answer(q), brute);
        }
    }

    #[test]
    fn full_resolution_synopses_are_exact(g in arb_grid()) {
        let ps = g.prefix_sums();
        let (nx, ny) = (g.nx(), g.ny());
        // Grid histogram with one tile per cell.
        let h = GridHistogram::build(&ps, nx, ny).unwrap();
        prop_assert!(sse2d_brute(&h, &ps) < 1e-6);
        // Greedy with one tile per cell can always reach zero.
        let gt = GreedyTileHistogram::build(&g, &ps, nx * ny).unwrap();
        prop_assert!(sse2d_brute(&gt, &ps) < 1e-6);
        // Wavelet with full padded budget.
        let w = Wavelet2D::build(&g, nx.next_power_of_two() * ny.next_power_of_two());
        prop_assert!(sse2d_brute(&w, &ps) < 1e-5);
    }

    #[test]
    fn whole_domain_query_is_exact_for_tile_histograms(g in arb_grid()) {
        let ps = g.prefix_sums();
        let full = RectQuery { x0: 0, x1: g.nx() - 1, y0: 0, y1: g.ny() - 1 };
        let h = GridHistogram::build(&ps, 1.max(g.nx() / 2), 1.max(g.ny() / 2)).unwrap();
        prop_assert!((h.estimate(full) - ps.total() as f64).abs() < 1e-6);
        let gt = GreedyTileHistogram::build(&g, &ps, 3.min(g.nx() * g.ny())).unwrap();
        prop_assert!((gt.estimate(full) - ps.total() as f64).abs() < 1e-6);
    }

    #[test]
    fn greedy_tiles_partition_the_domain(g in arb_grid()) {
        let ps = g.prefix_sums();
        let t = 5.min(g.nx() * g.ny());
        let h = GreedyTileHistogram::build(&g, &ps, t).unwrap();
        // Every cell covered exactly once.
        let mut cover = vec![0u8; g.nx() * g.ny()];
        for tile in h.tiles() {
            for x in tile.rect.x0..=tile.rect.x1 {
                for y in tile.rect.y0..=tile.rect.y1 {
                    cover[x * g.ny() + y] += 1;
                }
            }
        }
        prop_assert!(cover.iter().all(|&c| c == 1), "cover: {:?}", cover);
    }

    #[test]
    fn wavelet_estimates_are_finite_and_storage_bounded(g in arb_grid()) {
        for b in [1usize, 3, 6] {
            let w = Wavelet2D::build(&g, b);
            prop_assert!(w.storage_words() <= 2 * b);
            for q in RectQuery::all(g.nx(), g.ny()) {
                prop_assert!(w.estimate(q).is_finite());
            }
        }
    }
}
