//! Deterministic retry / backoff / circuit-breaker sweep for
//! [`ResilientClient`]: every breaker transition (closed → open →
//! half-open → closed, and half-open failure → re-open), retry-budget
//! exhaustion surfacing the *last structural* error, the exact jittered
//! backoff schedule, and auto-reconnect after poisoning — all over
//! `MemTransport` pairs with a `ManualClock` and a recording sleeper.
//! No wall time, no real sockets, no flakes.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use synoptic_core::{Budget, PrefixSums, RangeEstimator, RangeQuery, SynopticError};
use synoptic_repl::{ManualClock, MemTransport};
use synoptic_serve::{
    BreakerState, Client, Connector, ResilientClient, RetryPolicy, ServeConfig, Server, Sleeper,
};
use synoptic_stream::{ColumnBuild, ColumnHandle, MaintainedPool, RebuildConfig, RebuildPolicy};

struct Exact {
    ps: PrefixSums,
}

impl RangeEstimator for Exact {
    fn n(&self) -> usize {
        self.ps.n()
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        self.ps.answer(q) as f64
    }
    fn storage_words(&self) -> usize {
        self.ps.n()
    }
    fn method_name(&self) -> &str {
        "EXACT"
    }
}

fn exact_column(pool: &MaintainedPool, name: &str, values: &[i64]) -> ColumnHandle {
    pool.add_column(
        name,
        values,
        ColumnBuild::Custom(Box::new(|v: &[i64], _ps: &PrefixSums, _b: &Budget| {
            Ok(Box::new(Exact {
                ps: PrefixSums::from_values(v),
            }) as Box<dyn RangeEstimator>)
        })),
        RebuildConfig::new(RebuildPolicy::Manual),
    )
    .unwrap()
}

/// A connector to a healthy server: each dial opens a fresh mem pair
/// served by the production connection loop, and counts itself.
fn healthy_connector(server: &Server, dials: &Arc<AtomicU32>) -> Connector {
    let server = server.clone();
    let dials = Arc::clone(dials);
    Box::new(move || {
        dials.fetch_add(1, Ordering::SeqCst);
        let (client_end, mut server_end) = MemTransport::pair();
        let s = server.clone();
        std::thread::spawn(move || s.handle_transport(&mut server_end));
        Ok(Client::from_transport(
            Box::new(client_end),
            Duration::from_secs(10),
        ))
    })
}

/// A connector whose first `fail` dials are refused at the dial itself
/// (connection refused), then healthy.
fn flaky_connector(server: &Server, fail: u32, dials: &Arc<AtomicU32>) -> Connector {
    let healthy = healthy_connector(server, dials);
    let dials = Arc::clone(dials);
    Box::new(move || {
        if dials.load(Ordering::SeqCst) < fail {
            dials.fetch_add(1, Ordering::SeqCst);
            return Err(SynopticError::Io {
                path: "test dial".to_string(),
                detail: "connection refused".to_string(),
            });
        }
        healthy()
    })
}

/// A connector to a server end that closes immediately: every call on
/// the resulting client fails as a transport error (peer closed).
fn dead_connector(dials: &Arc<AtomicU32>) -> Connector {
    let dials = Arc::clone(dials);
    Box::new(move || {
        dials.fetch_add(1, Ordering::SeqCst);
        let (client_end, server_end) = MemTransport::pair();
        drop(server_end);
        Ok(Client::from_transport(
            Box::new(client_end),
            Duration::from_secs(10),
        ))
    })
}

/// A sleeper that records every backoff instead of waiting.
fn recording_sleeper(log: &Arc<Mutex<Vec<Duration>>>) -> Sleeper {
    let log = Arc::clone(log);
    Box::new(move |d| log.lock().unwrap().push(d))
}

fn serving(values: &[i64]) -> (MaintainedPool, Server) {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", values);
    let server = Server::new(ServeConfig::default());
    server.register(col);
    (pool, server)
}

#[test]
fn breaker_walks_closed_open_half_open_closed() {
    let (_pool, server) = serving(&[1, 2, 3, 4]);
    let dials = Arc::new(AtomicU32::new(0));
    let sleeps = Arc::new(Mutex::new(Vec::new()));
    let clock = ManualClock::new();
    let rc = ResilientClient::with_clock(
        // Two failed dials trip the threshold; later dials are healthy.
        flaky_connector(&server, 2, &dials),
        RetryPolicy {
            max_attempts: 1, // one attempt per call: transitions are visible per call
            breaker_threshold: 2,
            breaker_cooldown_ms: 1_000,
            ..RetryPolicy::default()
        },
        Arc::new(clock.clone()),
        recording_sleeper(&sleeps),
    );
    assert_eq!(rc.breaker_state(), BreakerState::Closed);

    // Two transport failures: closed → open.
    assert!(rc.ping().is_err());
    assert_eq!(
        rc.breaker_state(),
        BreakerState::Closed,
        "one failure is not a pattern"
    );
    assert!(rc.ping().is_err());
    assert_eq!(rc.breaker_state(), BreakerState::Open);

    // Open: fail fast, without touching the connector.
    let before = dials.load(Ordering::SeqCst);
    let err = rc.ping().unwrap_err();
    assert!(
        matches!(&err, SynopticError::ServerOverloaded { what, observed: 2, limit: 2 } if what == "circuit breaker"),
        "got {err:?}"
    );
    assert_eq!(dials.load(Ordering::SeqCst), before, "open = no network");
    assert_eq!(rc.breaker_state(), BreakerState::Open);

    // Cooldown elapses → the next call is the half-open probe; it
    // succeeds (the connector is healthy now) and closes the breaker.
    clock.advance(1_000);
    rc.ping()
        .expect("the half-open probe should reach the healthy server");
    assert_eq!(rc.breaker_state(), BreakerState::Closed);
    // And service is fully restored.
    let answer = rc
        .estimate_batch("c", vec![RangeQuery::new(0, 3).unwrap()])
        .unwrap();
    assert_eq!(answer.values, vec![10.0]);
    assert!(
        sleeps.lock().unwrap().is_empty(),
        "max_attempts 1 never backs off"
    );
}

#[test]
fn a_failed_half_open_probe_reopens_the_breaker() {
    let dials = Arc::new(AtomicU32::new(0));
    let clock = ManualClock::new();
    let sleeps = Arc::new(Mutex::new(Vec::new()));
    let rc = ResilientClient::with_clock(
        dead_connector(&dials), // every connection dies on first use
        RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 2,
            breaker_cooldown_ms: 500,
            ..RetryPolicy::default()
        },
        Arc::new(clock.clone()),
        recording_sleeper(&sleeps),
    );
    assert!(rc.ping().is_err());
    assert!(rc.ping().is_err());
    assert_eq!(rc.breaker_state(), BreakerState::Open);

    clock.advance(500);
    // The probe goes to the network (a dial happens) and fails → re-open.
    let before = dials.load(Ordering::SeqCst);
    assert!(rc.ping().is_err());
    assert_eq!(
        dials.load(Ordering::SeqCst),
        before + 1,
        "half-open probes the network"
    );
    assert_eq!(
        rc.breaker_state(),
        BreakerState::Open,
        "a failed probe re-opens"
    );

    // And the re-opened breaker fails fast again until the next cooldown.
    let before = dials.load(Ordering::SeqCst);
    assert!(rc.ping().is_err());
    assert_eq!(
        dials.load(Ordering::SeqCst),
        before,
        "re-opened = no network again"
    );
}

#[test]
fn retry_exhaustion_surfaces_the_last_structural_error() {
    // A server refusing everything (queue depth 0) answers every attempt
    // with a structural refusal; the wire also stays healthy. After the
    // retry budget, the caller must see the refusal — the reason — not a
    // generic exhaustion error.
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1, 2, 3, 4]);
    let server = Server::new(ServeConfig {
        max_queue_depth: 0,
        ..ServeConfig::default()
    });
    server.register(col);
    let dials = Arc::new(AtomicU32::new(0));
    let sleeps = Arc::new(Mutex::new(Vec::new()));
    let clock = ManualClock::new();
    let rc = ResilientClient::with_clock(
        healthy_connector(&server, &dials),
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 100,
            max_backoff_ms: 10_000,
            jitter_seed: 42,
            ..RetryPolicy::default()
        },
        Arc::new(clock.clone()),
        recording_sleeper(&sleeps),
    );
    let err = rc
        .estimate_batch("c", vec![RangeQuery::new(0, 3).unwrap()])
        .unwrap_err();
    assert!(
        matches!(&err, SynopticError::ServerOverloaded { what, .. } if what == "queue depth"),
        "exhaustion must surface the last structural error, got {err:?}"
    );
    // Refusals are structural: the connection stayed healthy, one dial.
    assert_eq!(dials.load(Ordering::SeqCst), 1);
    assert_eq!(
        rc.breaker_state(),
        BreakerState::Closed,
        "refusals never trip the breaker"
    );

    // The backoff schedule: 2 retries → 2 sleeps, exponential with
    // equal-jitter (each in [base<<k / 2, base<<k]) and — because the
    // jitter Rng is seeded — exactly reproducible.
    let recorded: Vec<Duration> = sleeps.lock().unwrap().clone();
    assert_eq!(recorded.len(), 2, "attempts 2 and 3 each back off first");
    for (k, d) in recorded.iter().enumerate() {
        let full = 100u64 << k;
        let ms = d.as_millis() as u64;
        assert!(
            ms >= full / 2 && ms <= full,
            "backoff {k} = {ms}ms outside [{}, {full}]ms",
            full / 2
        );
    }
    let sleeps2 = Arc::new(Mutex::new(Vec::new()));
    let dials2 = Arc::new(AtomicU32::new(0));
    let rc2 = ResilientClient::with_clock(
        healthy_connector(&server, &dials2),
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 100,
            max_backoff_ms: 10_000,
            jitter_seed: 42,
            ..RetryPolicy::default()
        },
        Arc::new(ManualClock::new()),
        recording_sleeper(&sleeps2),
    );
    let _ = rc2.estimate_batch("c", vec![RangeQuery::new(0, 3).unwrap()]);
    assert_eq!(
        *sleeps2.lock().unwrap(),
        recorded,
        "same seed, same schedule: the jitter is deterministic"
    );
    drop(pool);
}

#[test]
fn non_retryable_structural_errors_return_immediately() {
    let (_pool, server) = serving(&[1, 2, 3, 4]);
    let dials = Arc::new(AtomicU32::new(0));
    let sleeps = Arc::new(Mutex::new(Vec::new()));
    let rc = ResilientClient::with_clock(
        healthy_connector(&server, &dials),
        RetryPolicy::default(),
        Arc::new(ManualClock::new()),
        recording_sleeper(&sleeps),
    );
    // An unknown column is a fact, not a transient: no retries, no
    // backoff, error straight through.
    let err = rc
        .estimate_batch("nope", vec![RangeQuery::point(0)])
        .unwrap_err();
    assert!(
        matches!(err, SynopticError::InvalidParameter(_)),
        "got {err:?}"
    );
    assert_eq!(dials.load(Ordering::SeqCst), 1);
    assert!(sleeps.lock().unwrap().is_empty());
}

#[test]
fn transport_failures_reconnect_and_the_retry_succeeds() {
    // First dial lands on a server end that is immediately dropped →
    // the call poisons the connection. The wrapper must dial a fresh
    // connection and answer from the healthy server on retry.
    let (_pool, server) = serving(&[5, 5, 5, 5]);
    let dials = Arc::new(AtomicU32::new(0));
    let sleeps = Arc::new(Mutex::new(Vec::new()));
    let healthy = healthy_connector(&server, &dials);
    let first = AtomicU32::new(0);
    let connector: Connector = Box::new(move || {
        if first.fetch_add(1, Ordering::SeqCst) == 0 {
            let (client_end, server_end) = MemTransport::pair();
            drop(server_end);
            return Ok(Client::from_transport(
                Box::new(client_end),
                Duration::from_secs(10),
            ));
        }
        healthy()
    });
    let rc = ResilientClient::with_clock(
        connector,
        RetryPolicy::default(),
        Arc::new(ManualClock::new()),
        recording_sleeper(&sleeps),
    );
    let answer = rc
        .estimate_batch("c", vec![RangeQuery::new(0, 3).unwrap()])
        .expect("the retry must land on the fresh connection");
    assert_eq!(answer.values, vec![20.0]);
    assert_eq!(
        dials.load(Ordering::SeqCst),
        1,
        "one healthy dial after the dead one"
    );
    assert_eq!(
        sleeps.lock().unwrap().len(),
        1,
        "one backoff between the attempts"
    );
    assert_eq!(rc.breaker_state(), BreakerState::Closed);
}

#[test]
fn updates_are_never_retried_but_do_reconnect_across_calls() {
    // An update whose response is lost may have been applied; replaying
    // it would double-count. The wrapper surfaces the transport error
    // without retrying — and the NEXT call dials fresh.
    let (_pool, server) = serving(&[0, 0, 0, 0]);
    let dials = Arc::new(AtomicU32::new(0));
    let sleeps = Arc::new(Mutex::new(Vec::new()));
    let healthy = healthy_connector(&server, &dials);
    let first = AtomicU32::new(0);
    let connector: Connector = Box::new(move || {
        if first.fetch_add(1, Ordering::SeqCst) == 0 {
            let (client_end, server_end) = MemTransport::pair();
            drop(server_end);
            return Ok(Client::from_transport(
                Box::new(client_end),
                Duration::from_secs(10),
            ));
        }
        healthy()
    });
    let rc = ResilientClient::with_clock(
        connector,
        RetryPolicy::default(),
        Arc::new(ManualClock::new()),
        recording_sleeper(&sleeps),
    );
    let err = rc.update("c", vec![(0, 7)]).unwrap_err();
    assert!(matches!(err, SynopticError::Io { .. }), "got {err:?}");
    assert!(
        sleeps.lock().unwrap().is_empty(),
        "updates never back off and retry"
    );
    // The next update dials a fresh connection and lands exactly once.
    let (applied, _) = rc.update("c", vec![(0, 7)]).unwrap();
    assert_eq!(applied, 1);
    assert_eq!(dials.load(Ordering::SeqCst), 1);
}
