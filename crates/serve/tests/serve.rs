//! Integration tests for the serving tier: batch pinning, cache
//! invalidation, admission control, and fault injection against the
//! server's frame reader.

use std::sync::Arc;
use std::time::Duration;

use synoptic_api::wire::{
    decode_response, encode_request, encode_response, QueryBatch, Request, Response,
};
use synoptic_api::{exit_code, Queryable, EXIT_CORRUPT, EXIT_REFUSED};
use synoptic_core::{Budget, PrefixSums, RangeEstimator, RangeQuery, SynopticError};
use synoptic_repl::{
    FaultyTransport, ManualClock, MemTransport, Received, Transport, TransportFault,
};
use synoptic_serve::{Client, ServeConfig, Server};
use synoptic_stream::{ColumnBuild, ColumnHandle, MaintainedPool, RebuildConfig, RebuildPolicy};

/// An exact estimator: answers are the true range sums of the snapshot it
/// was built from. Any mixing of two snapshots in one batch is therefore
/// arithmetically visible.
struct Exact {
    ps: PrefixSums,
}

impl RangeEstimator for Exact {
    fn n(&self) -> usize {
        self.ps.n()
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        self.ps.answer(q) as f64
    }
    fn storage_words(&self) -> usize {
        self.ps.n()
    }
    fn method_name(&self) -> &str {
        "EXACT"
    }
}

fn exact_build() -> ColumnBuild {
    ColumnBuild::Custom(Box::new(|v: &[i64], _ps: &PrefixSums, _b: &Budget| {
        Ok(Box::new(Exact {
            ps: PrefixSums::from_values(v),
        }) as Box<dyn RangeEstimator>)
    }))
}

fn exact_column(pool: &MaintainedPool, name: &str, values: &[i64]) -> ColumnHandle {
    pool.add_column(
        name,
        values,
        exact_build(),
        RebuildConfig::new(RebuildPolicy::Manual),
    )
    .unwrap()
}

/// Spawns a connection thread serving one end of a mem pair; returns the
/// client end.
fn mem_session(server: &Server) -> MemTransport {
    let (client_end, mut server_end) = MemTransport::pair();
    let server = server.clone();
    std::thread::spawn(move || server.handle_transport(&mut server_end));
    client_end
}

fn call(t: &mut dyn Transport, req: &Request) -> Response {
    t.send(&encode_request(req)).unwrap();
    recv_response(t)
}

fn recv_response(t: &mut dyn Transport) -> Response {
    match t.recv(Some(Duration::from_secs(10))).unwrap() {
        Received::Frame(f) => decode_response(&f).unwrap(),
        other => panic!("expected a response frame, got {other:?}"),
    }
}

fn batch(column: &str, ranges: Vec<RangeQuery>) -> Request {
    Request::EstimateBatch(QueryBatch::new(column, ranges))
}

// ---------------------------------------------------------------------------
// End-to-end over real TCP

#[test]
fn tcp_round_trip_ping_estimates_updates_and_stats() {
    let pool = MaintainedPool::new(1);
    let values = vec![2i64; 64];
    let col = exact_column(&pool, "price", &values);
    let server = Server::new(ServeConfig::default());
    server.register(col.clone());

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let accept = {
        let server = server.clone();
        std::thread::spawn(move || server.serve(listener).unwrap())
    };

    let client = Client::connect(&addr).unwrap();
    client.ping().unwrap();

    let answer = client
        .estimate_batch(
            "price",
            vec![RangeQuery::new(0, 63).unwrap(), RangeQuery::point(5)],
        )
        .unwrap();
    assert_eq!(answer.values, vec![128.0, 2.0]);
    assert_eq!(answer.cached, vec![false, false]);
    assert_eq!(answer.generation, 0, "nothing has rebuilt yet");

    let (applied, _scheduled) = client.update("price", vec![(5, 10), (6, -1)]).unwrap();
    assert_eq!(applied, 2);

    // The envelope view: one range through the unified Queryable surface.
    let env = client.query("price", RangeQuery::point(5)).unwrap();
    assert_eq!(env.generation, 0);
    assert_eq!(env.lag, 2, "two updates applied, none rebuilt yet");

    let stats = client.stats("price").unwrap();
    assert_eq!(stats.column, "price");
    assert_eq!(stats.n, 64);
    assert_eq!(stats.updates, 2);
    assert_eq!(stats.updates_since_rebuild, 2);
    assert!(stats.connections >= 1);

    // Structural errors cross the wire: an out-of-bounds update refuses
    // with the exact variant, nothing partially applied.
    let err = client.update("price", vec![(0, 1), (64, 1)]).unwrap_err();
    assert!(matches!(
        err,
        SynopticError::IndexOutOfBounds { index: 64, n: 64 }
    ));
    assert_eq!(client.stats("price").unwrap().updates, 2);

    let err = client.query("ghost", RangeQuery::point(0)).unwrap_err();
    assert!(matches!(err, SynopticError::InvalidParameter(_)));

    server.shutdown();
    accept.join().unwrap();
    drop(pool);
}

// ---------------------------------------------------------------------------
// Batch pinning

/// Every batch is answered from ONE snapshot pin: with an exact
/// estimator and racing updates+rebuilds, the full-range answer must
/// equal the sum of the two halves, and asking the same range twice in
/// one batch must return the identical value — both impossible if the
/// batch straddled a hot swap. The cache is disabled so every value is
/// computed from the pinned snapshot itself.
#[test]
fn a_batch_is_answered_from_one_snapshot_pin() {
    let n = 256usize;
    let pool = MaintainedPool::new(2);
    let col = exact_column(&pool, "c", &vec![1i64; n]);
    let server = Server::new(ServeConfig {
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    server.register(col.clone());

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let racer = {
        let col = col.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                col.update(i % n, 1).unwrap();
                let _ = col.request_rebuild();
                i += 1;
            }
        })
    };

    let mut t = mem_session(&server);
    let full = RangeQuery::new(0, n - 1).unwrap();
    let left = RangeQuery::new(0, n / 2 - 1).unwrap();
    let right = RangeQuery::new(n / 2, n - 1).unwrap();
    let mut generations = Vec::new();
    for _ in 0..60 {
        let Response::Estimates(ans) = call(&mut t, &batch("c", vec![full, left, right, full]))
        else {
            panic!("expected estimates");
        };
        assert_eq!(
            ans.values[0],
            ans.values[1] + ans.values[2],
            "halves must sum to the whole within one pinned batch (generation {})",
            ans.generation
        );
        assert_eq!(
            ans.values[0], ans.values[3],
            "the same range twice in one batch must answer identically"
        );
        generations.push(ans.generation);
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    racer.join().unwrap();
    col.quiesce();
    assert!(
        generations.last().copied().unwrap() > 0,
        "rebuilds raced the batches (generations observed: {:?}…)",
        &generations[..4.min(generations.len())]
    );
    drop(pool);
}

// ---------------------------------------------------------------------------
// Cache invalidation across a hot swap

#[test]
fn cache_is_invalidated_by_a_hot_swap_so_stale_hits_are_impossible() {
    let n = 32usize;
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &vec![1i64; n]);
    let server = Server::new(ServeConfig::default());
    server.register(col.clone());
    let mut t = mem_session(&server);
    let q = RangeQuery::new(0, n - 1).unwrap();

    // First ask computes and caches; second ask hits.
    let Response::Estimates(first) = call(&mut t, &batch("c", vec![q])) else {
        panic!()
    };
    assert_eq!(first.values, vec![n as f64]);
    assert_eq!(first.cached, vec![false]);
    let Response::Estimates(second) = call(&mut t, &batch("c", vec![q])) else {
        panic!()
    };
    assert_eq!(second.cached, vec![true]);
    assert_eq!(second.values, vec![n as f64]);
    assert_eq!(second.generation, first.generation);

    // Mutate and hot-swap: the generation bumps, and the cached answer
    // for the old generation MUST NOT survive — the fresh answer reflects
    // the new data exactly.
    col.update(0, 100).unwrap();
    assert!(col.request_rebuild().unwrap());
    col.quiesce();
    let Response::Estimates(after) = call(&mut t, &batch("c", vec![q])) else {
        panic!()
    };
    assert!(after.generation > first.generation, "the swap published");
    assert_eq!(
        after.cached,
        vec![false],
        "a stale-generation cache hit must be impossible"
    );
    assert_eq!(after.values, vec![(n + 100) as f64]);

    let Response::Stats(stats) = call(
        &mut t,
        &Request::Stats {
            column: "c".to_string(),
        },
    ) else {
        panic!()
    };
    assert!(stats.cache_hits >= 1);
    assert!(stats.cache_invalidations >= 1);
    drop(pool);
}

// ---------------------------------------------------------------------------
// Client connection poisoning: a timeout must never desynchronize pairing

/// `SQP1` pairs requests to responses by position only, so a client that
/// times out MUST poison its connection: otherwise the server's late
/// response is still in flight, and the next call would read it as its
/// own answer — silently serving the wrong batch's values.
#[test]
fn a_timed_out_call_poisons_the_connection_so_a_late_response_is_never_misread() {
    let (client_end, mut server_end) = MemTransport::pair();
    let client = Client::from_transport(Box::new(client_end), Duration::from_millis(50));
    let (late_tx, late_rx) = std::sync::mpsc::channel::<()>();
    let responder = std::thread::spawn(move || {
        let Ok(Received::Frame(_)) = server_end.recv(Some(Duration::from_secs(10))) else {
            panic!("expected the first request");
        };
        // Answer only after being told the client has already timed out:
        // this Pong is exactly the stale in-flight response an unpoisoned
        // client would misread as the answer to its NEXT request.
        late_rx.recv().unwrap();
        let _ = server_end.send(&encode_response(&Response::Pong));
    });

    assert!(!client.is_poisoned());
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, SynopticError::DeadlineExceeded { .. }),
        "got {err:?}"
    );
    assert!(client.is_poisoned(), "a timeout must poison the connection");

    late_tx.send(()).unwrap();
    responder.join().unwrap();

    // The next call must fail loudly instead of pairing with the stale
    // response (which would have returned Ok here).
    let err = client.ping().unwrap_err();
    assert!(
        matches!(&err, SynopticError::Io { detail, .. } if detail.contains("poisoned")),
        "a poisoned client must refuse further calls, got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Column replacement: long-lived connections must notice

/// `Server::register` may replace a column under the same name. An open
/// connection's cached snapshot reader belongs to the OLD column; if it
/// kept being used, the connection would pin the replaced hot-swap cell
/// forever and seed the NEW column's cache with the old values (both
/// cells start at generation 0, so the generation key cannot tell them
/// apart).
#[test]
fn re_registering_a_column_refreshes_connection_readers_and_caches() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1i64; 8]); // sum 8
    let server = Server::new(ServeConfig::default());
    server.register(col);
    let mut t = mem_session(&server);
    let q = RangeQuery::new(0, 7).unwrap();
    let Response::Estimates(old) = call(&mut t, &batch("c", vec![q])) else {
        panic!()
    };
    assert_eq!(old.values, vec![8.0]);
    // Ask again so the answer sits in the old column's cache.
    let Response::Estimates(old2) = call(&mut t, &batch("c", vec![q])) else {
        panic!()
    };
    assert_eq!(old2.cached, vec![true]);

    // Replace the column under the same name: same generation (0), same
    // name, different data — the aliasing worst case.
    let pool2 = MaintainedPool::new(1);
    let col2 = exact_column(&pool2, "c", &[5i64; 8]); // sum 40
    server.register(col2);

    // The SAME connection answers from the replacement, freshly computed.
    let Response::Estimates(fresh) = call(&mut t, &batch("c", vec![q])) else {
        panic!()
    };
    assert_eq!(
        fresh.values,
        vec![40.0],
        "an open connection must serve the replacement column"
    );
    assert_eq!(
        fresh.cached,
        vec![false],
        "the replacement starts with an empty cache"
    );

    // A brand-new connection agrees — the old column's values never
    // crossed into the new column's cache.
    let mut t2 = mem_session(&server);
    let Response::Estimates(fresh2) = call(&mut t2, &batch("c", vec![q])) else {
        panic!()
    };
    assert_eq!(fresh2.values, vec![40.0]);
    drop(pool);
    drop(pool2);
}

// ---------------------------------------------------------------------------
// Update batches: bounds refuse atomically, non-bounds failures are partial

/// Past the atomic bounds pre-check, update application is sequential:
/// a non-bounds mid-batch failure (here: the pool shut down, so the
/// delta that fires the rebuild policy cannot schedule) leaves earlier
/// deltas applied. The documented contract (docs/SERVING.md) is that the
/// error is loud and the partial application is real — not rolled back,
/// not hidden.
#[test]
fn non_bounds_mid_batch_update_failures_are_loud_and_partial() {
    let pool = MaintainedPool::new(1);
    let col = pool
        .add_column(
            "c",
            &[0i64; 8],
            exact_build(),
            RebuildConfig::new(RebuildPolicy::EveryKUpdates(1)),
        )
        .unwrap();
    let server = Server::new(ServeConfig::default());
    server.register(col.clone());
    let mut t = mem_session(&server);
    // Kill the maintenance workers: the first delta applies, then fails
    // to schedule the rebuild its policy fires.
    pool.shutdown();
    let Response::Error(err) = call(
        &mut t,
        &Request::Update {
            column: "c".to_string(),
            deltas: vec![(0, 1), (1, 1)],
        },
    ) else {
        panic!("an update against a shut-down pool must fail loudly");
    };
    assert!(
        matches!(err, SynopticError::WorkerUnavailable { .. }),
        "got {err:?}"
    );
    // The failing delta landed before the scheduling failure; the one
    // after it never ran. Partial — and visible, never silent.
    assert_eq!(col.exact(RangeQuery::point(0)), 1);
    assert_eq!(col.exact(RangeQuery::point(1)), 0);
}

// ---------------------------------------------------------------------------
// Admission control: every bound refuses with provenance and exit code 10

#[test]
fn tenant_token_bucket_refuses_with_exit_code_10_and_refills_on_the_clock() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1, 2, 3, 4]);
    let clock = ManualClock::new();
    let server = Server::new(ServeConfig {
        tenant_burst: Some(2),
        tenant_refill_ms: 100,
        clock: Arc::new(clock.clone()),
        ..ServeConfig::default()
    });
    server.register(col);
    let mut t = mem_session(&server);
    let q = RangeQuery::new(0, 3).unwrap();
    // Un-headered requests all meter against the shared "" tenant.
    for _ in 0..2 {
        assert!(matches!(
            call(&mut t, &batch("c", vec![q])),
            Response::Estimates(_)
        ));
    }
    let Response::Error(err) = call(&mut t, &batch("c", vec![q])) else {
        panic!("third estimate must be refused: the bucket is dry");
    };
    assert!(
        matches!(
            &err,
            SynopticError::ServerOverloaded { what, observed: 3, limit: 2 }
                if what.contains("token bucket")
        ),
        "got {err:?}"
    );
    assert_eq!(exit_code(&err), EXIT_REFUSED);
    // The bucket is per TENANT, not per connection: a fresh connection
    // sees the same dry bucket (this is the fix over PR 9's
    // per-connection quota, which a multi-connection tenant outran), and
    // the overdraft streak keeps escalating in `observed`.
    let mut t2 = mem_session(&server);
    let Response::Error(err2) = call(&mut t2, &batch("c", vec![q])) else {
        panic!("a fresh connection must not refresh the tenant bucket");
    };
    assert!(
        matches!(
            &err2,
            SynopticError::ServerOverloaded {
                observed: 4,
                limit: 2,
                ..
            }
        ),
        "got {err2:?}"
    );
    // Pings are liveness, not served work: they never spend a token.
    assert_eq!(call(&mut t2, &Request::Ping), Response::Pong);
    // Tokens refill from the clock; service resumes without reconnecting.
    clock.advance(100);
    assert!(matches!(
        call(&mut t2, &batch("c", vec![q])),
        Response::Estimates(_)
    ));
    drop(pool);
}

#[test]
fn rebuild_lag_bound_refuses_estimates_until_a_rebuild_lands() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &vec![1i64; 16]);
    let server = Server::new(ServeConfig {
        max_rebuild_lag: Some(2),
        ..ServeConfig::default()
    });
    server.register(col.clone());
    let mut t = mem_session(&server);
    let q = RangeQuery::new(0, 15).unwrap();

    for _ in 0..3 {
        col.update(0, 1).unwrap();
    }
    let Response::Error(err) = call(&mut t, &batch("c", vec![q])) else {
        panic!("estimate at lag 3 > bound 2 must refuse");
    };
    assert!(matches!(
        &err,
        SynopticError::ServerOverloaded { what, observed: 3, limit: 2 } if what == "rebuild lag"
    ));
    assert_eq!(exit_code(&err), EXIT_REFUSED);
    // Updates are NOT refused on lag — backpressure applies to reads.
    let Response::Updated { applied: 1, .. } = call(
        &mut t,
        &Request::Update {
            column: "c".to_string(),
            deltas: vec![(0, 1)],
        },
    ) else {
        panic!("updates pass the lag bound");
    };
    // A rebuild clears the lag and estimates flow again.
    col.request_rebuild().unwrap();
    col.quiesce();
    assert!(matches!(
        call(&mut t, &batch("c", vec![q])),
        Response::Estimates(_)
    ));
    drop(pool);
}

#[test]
fn zero_queue_depth_refuses_every_request() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1, 2]);
    let server = Server::new(ServeConfig {
        max_queue_depth: 0,
        ..ServeConfig::default()
    });
    server.register(col);
    let mut t = mem_session(&server);
    let Response::Error(err) = call(&mut t, &Request::Ping) else {
        panic!("queue depth 0 admits nothing");
    };
    assert!(matches!(
        &err,
        SynopticError::ServerOverloaded { what, .. } if what == "queue depth"
    ));
    assert_eq!(exit_code(&err), EXIT_REFUSED);
    drop(pool);
}

#[test]
fn connection_cap_refuses_at_accept() {
    let server = Server::new(ServeConfig {
        max_connections: 0,
        ..ServeConfig::default()
    });
    let mut t = mem_session(&server);
    let Response::Error(err) = recv_response(&mut t) else {
        panic!("over-cap connections are refused before any request");
    };
    assert!(matches!(
        &err,
        SynopticError::ServerOverloaded { what, .. } if what == "connection quota"
    ));
    assert_eq!(exit_code(&err), EXIT_REFUSED);
}

// ---------------------------------------------------------------------------
// Fault injection against the server's frame reader

#[test]
fn torn_frames_are_refused_loudly_and_the_connection_survives() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1, 2, 3]);
    let server = Server::new(ServeConfig::default());
    server.register(col);

    let (mut client_end, server_inner) = MemTransport::pair();
    {
        let server = server.clone();
        std::thread::spawn(move || {
            let mut faulty = FaultyTransport::with_recv_faults(
                server_inner,
                vec![],
                vec![TransportFault::Torn { keep: 5 }],
            );
            server.handle_transport(&mut faulty);
        });
    }
    // Frame 1 arrives torn: the server answers with the decode error
    // (corrupt frame, exit-code-4 class) instead of acting on garbage.
    let Response::Error(err) = call(&mut client_end, &Request::Ping) else {
        panic!("a torn frame must be refused");
    };
    assert!(matches!(
        &err,
        SynopticError::CorruptSynopsis { context, .. } if context == "query frame"
    ));
    assert_eq!(exit_code(&err), EXIT_CORRUPT);
    // The link survives corruption: the next clean frame is served.
    assert_eq!(call(&mut client_end, &Request::Ping), Response::Pong);
    drop(pool);
}

#[test]
fn duplicated_and_reordered_frames_each_get_exactly_one_valid_response() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1, 2, 3]);
    let server = Server::new(ServeConfig::default());
    server.register(col);

    let (mut client_end, server_inner) = MemTransport::pair();
    {
        let server = server.clone();
        std::thread::spawn(move || {
            let mut faulty = FaultyTransport::with_recv_faults(
                server_inner,
                vec![],
                vec![
                    TransportFault::Duplicate,
                    TransportFault::Reorder,
                    TransportFault::Clean,
                ],
            );
            server.handle_transport(&mut faulty);
        });
    }
    // Duplicate: the ping is delivered twice, so two pongs come back —
    // the server answers every frame it receives, exactly once each.
    client_end.send(&encode_request(&Request::Ping)).unwrap();
    assert_eq!(recv_response(&mut client_end), Response::Pong);
    assert_eq!(recv_response(&mut client_end), Response::Pong);
    // Reorder: a stats request and a ping swap on the wire; both still
    // get exactly one well-formed response of the right kind (order on
    // the wire is the transport's business, not correctness's).
    client_end
        .send(&encode_request(&Request::Stats {
            column: "c".to_string(),
        }))
        .unwrap();
    client_end.send(&encode_request(&Request::Ping)).unwrap();
    let got = [
        recv_response(&mut client_end),
        recv_response(&mut client_end),
    ];
    assert!(got.iter().filter(|r| matches!(r, Response::Pong)).count() == 1);
    assert!(
        got.iter()
            .filter(|r| matches!(r, Response::Stats(_)))
            .count()
            == 1
    );
    drop(pool);
}

// ---------------------------------------------------------------------------
// Oversized batches are rejected, not served partially

#[test]
fn batches_over_the_configured_maximum_are_rejected() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &vec![1i64; 8]);
    let server = Server::new(ServeConfig {
        max_batch: 2,
        ..ServeConfig::default()
    });
    server.register(col);
    let mut t = mem_session(&server);
    let qs = vec![
        RangeQuery::point(0),
        RangeQuery::point(1),
        RangeQuery::point(2),
    ];
    let Response::Error(err) = call(&mut t, &batch("c", qs)) else {
        panic!("a 3-range batch against max_batch=2 must be rejected");
    };
    assert!(matches!(err, SynopticError::InvalidParameter(_)));
    drop(pool);
}
