//! Overload-proofing integration tests: deadline sheds, per-tenant
//! admission, the graceful-degradation ladder, wire back-compat with
//! pre-header clients, and the overload-storm proof.

use std::sync::Arc;
use std::time::Duration;

use synoptic_api::wire::{
    decode_response, encode_request, encode_request_with, DegradeRung, QueryBatch, Request,
    RequestHeader, Response,
};
use synoptic_api::{exit_code, EXIT_DEADLINE, EXIT_REFUSED};
use synoptic_core::{AnswerSource, Budget, PrefixSums, RangeEstimator, RangeQuery, SynopticError};
use synoptic_repl::{
    FaultyTransport, ManualClock, MemTransport, Received, Transport, TransportFault,
};
use synoptic_serve::{ServeConfig, Server};
use synoptic_stream::{ColumnBuild, ColumnHandle, MaintainedPool, RebuildConfig, RebuildPolicy};

/// An exact estimator (true range sums), so degraded answers are
/// arithmetically distinguishable from fresh ones.
struct Exact {
    ps: PrefixSums,
}

impl RangeEstimator for Exact {
    fn n(&self) -> usize {
        self.ps.n()
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        self.ps.answer(q) as f64
    }
    fn storage_words(&self) -> usize {
        self.ps.n()
    }
    fn method_name(&self) -> &str {
        "EXACT"
    }
}

fn exact_column(pool: &MaintainedPool, name: &str, values: &[i64]) -> ColumnHandle {
    pool.add_column(
        name,
        values,
        ColumnBuild::Custom(Box::new(|v: &[i64], _ps: &PrefixSums, _b: &Budget| {
            Ok(Box::new(Exact {
                ps: PrefixSums::from_values(v),
            }) as Box<dyn RangeEstimator>)
        })),
        RebuildConfig::new(RebuildPolicy::Manual),
    )
    .unwrap()
}

fn mem_session(server: &Server) -> MemTransport {
    let (client_end, mut server_end) = MemTransport::pair();
    let server = server.clone();
    std::thread::spawn(move || server.handle_transport(&mut server_end));
    client_end
}

fn recv_response(t: &mut dyn Transport) -> Response {
    match t.recv(Some(Duration::from_secs(10))).unwrap() {
        Received::Frame(f) => decode_response(&f).unwrap(),
        other => panic!("expected a response frame, got {other:?}"),
    }
}

fn call_with(t: &mut dyn Transport, header: &RequestHeader, req: &Request) -> Response {
    t.send(&encode_request_with(header, req)).unwrap();
    recv_response(t)
}

fn call(t: &mut dyn Transport, req: &Request) -> Response {
    call_with(t, &RequestHeader::default(), req)
}

fn batch(column: &str, ranges: Vec<RangeQuery>) -> Request {
    Request::EstimateBatch(QueryBatch::new(column, ranges))
}

fn header(deadline_ms: Option<u64>, tenant: &str, degrade_ok: bool) -> RequestHeader {
    RequestHeader {
        deadline_ms,
        tenant: (!tenant.is_empty()).then(|| tenant.to_string()),
        degrade_ok,
    }
}

// ---------------------------------------------------------------------------
// Deadline propagation

#[test]
fn expired_deadlines_are_shed_before_execution_with_elapsed_provenance() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1, 2, 3, 4]);
    let server = Server::new(ServeConfig::default());
    server.register(col);
    let mut t = mem_session(&server);
    let q = RangeQuery::new(0, 3).unwrap();
    // deadline_ms = 0: expired on arrival, shed before any execution.
    let Response::Error(err) = call_with(&mut t, &header(Some(0), "", false), &batch("c", vec![q]))
    else {
        panic!("an already-expired request must be shed");
    };
    assert!(
        matches!(err, SynopticError::DeadlineExceeded { elapsed_ms: 0 }),
        "got {err:?}"
    );
    assert_eq!(exit_code(&err), EXIT_DEADLINE);
    // A generous deadline answers normally — and the connection survived
    // the shed (a shed is a response, not a disconnect).
    let resp = call_with(
        &mut t,
        &header(Some(60_000), "", false),
        &batch("c", vec![q]),
    );
    let Response::Estimates(answer) = resp else {
        panic!("a live deadline must be answered, got {resp:?}");
    };
    assert_eq!(answer.values, vec![10.0]);
    assert_eq!(answer.rung, None);
    // The shed is counted in the stats surface (headered stats → the
    // extended frame carries the overload meters).
    let Response::Stats(stats) = call_with(
        &mut t,
        &header(None, "mon", false),
        &Request::Stats {
            column: "c".to_string(),
        },
    ) else {
        panic!("stats must answer");
    };
    assert_eq!(stats.deadline_sheds, 1);
    drop(pool);
}

#[test]
fn legacy_stats_frames_zero_the_overload_meters_extended_frames_carry_them() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1, 2, 3, 4]);
    let server = Server::new(ServeConfig::default());
    server.register(col);
    let mut t = mem_session(&server);
    let q = RangeQuery::new(0, 3).unwrap();
    // Shed one expired request and answer one estimate, so the meters
    // are non-zero server-side.
    let _ = call_with(&mut t, &header(Some(0), "", false), &batch("c", vec![q]));
    let Response::Estimates(_) = call(&mut t, &batch("c", vec![q])) else {
        panic!("estimate must answer");
    };
    let stats_req = Request::Stats {
        column: "c".to_string(),
    };
    // Un-headered request → legacy dialect: extended fields zeroed.
    let Response::Stats(legacy) = call(&mut t, &stats_req) else {
        panic!("stats must answer");
    };
    assert_eq!(legacy.deadline_sheds, 0, "legacy frames have no meters");
    assert_eq!(legacy.estimate_p99_us, 0);
    // Headered request → extended dialect: meters populated.
    let Response::Stats(ext) = call_with(&mut t, &header(None, "mon", false), &stats_req) else {
        panic!("stats must answer");
    };
    assert_eq!(ext.deadline_sheds, 1);
    assert!(
        ext.estimate_p99_us > 0,
        "one estimate was answered, its latency must be on the meter"
    );
    assert_eq!(legacy.updates, ext.updates, "shared fields agree");
    drop(pool);
}

// ---------------------------------------------------------------------------
// Admission ordering (satellites 2 and 3)

#[test]
fn admission_sheds_never_consume_tenant_tokens() {
    // Regression: in the PR-9 shape, a refused request still burned the
    // quota of the client being refused — shed traffic double-paid.
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1, 2, 3, 4]);
    let clock = ManualClock::new();
    let server = Server::new(ServeConfig {
        max_queue_depth: 0, // every request is queue-shed
        tenant_burst: Some(5),
        tenant_refill_ms: 1_000,
        clock: Arc::new(clock.clone()),
        ..ServeConfig::default()
    });
    server.register(col);
    let mut t = mem_session(&server);
    let q = RangeQuery::new(0, 3).unwrap();
    for _ in 0..10 {
        let Response::Error(err) = call(&mut t, &batch("c", vec![q])) else {
            panic!("queue depth 0 must shed every estimate");
        };
        assert!(
            matches!(&err, SynopticError::ServerOverloaded { what, .. } if what == "queue depth"),
            "got {err:?}"
        );
    }
    // Expired-deadline sheds don't reach the bucket either.
    for _ in 0..10 {
        let Response::Error(err) =
            call_with(&mut t, &header(Some(0), "a", false), &batch("c", vec![q]))
        else {
            panic!("an expired request must be shed");
        };
        assert!(matches!(err, SynopticError::DeadlineExceeded { .. }));
    }
    // No token was ever taken: the bucket table has never even seen a
    // tenant (a take — admitted or refused — would have created one).
    let Response::Stats(stats) = call_with(
        &mut t,
        &header(None, "mon", false),
        &Request::Stats {
            column: "c".to_string(),
        },
    ) else {
        panic!("stats must answer even at queue depth 0");
    };
    assert_eq!(stats.tenants, 0, "sheds must not touch the token buckets");
    assert_eq!(stats.refused, 10);
    assert_eq!(stats.deadline_sheds, 10);
    drop(pool);
}

#[test]
fn stats_requests_bypass_queue_depth_lag_and_token_admission() {
    // Monitoring must keep working precisely when the server is
    // refusing everything else.
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1, 2, 3, 4]);
    let server = Server::new(ServeConfig {
        max_queue_depth: 0,
        max_rebuild_lag: Some(0),
        tenant_burst: Some(0), // every token take refuses
        ..ServeConfig::default()
    });
    server.register(col.clone());
    col.update(0, 1).unwrap(); // lag 1 > bound 0
    let mut t = mem_session(&server);
    let q = RangeQuery::new(0, 3).unwrap();
    // Everything else is refused…
    assert!(matches!(
        call(&mut t, &batch("c", vec![q])),
        Response::Error(SynopticError::ServerOverloaded { .. })
    ));
    assert!(matches!(
        call(&mut t, &Request::Ping),
        Response::Error(SynopticError::ServerOverloaded { .. })
    ));
    // …but stats answer, repeatedly, with the refusals on the meter.
    for round in 1..=3u64 {
        let Response::Stats(stats) = call(
            &mut t,
            &Request::Stats {
                column: "c".to_string(),
            },
        ) else {
            panic!("stats must bypass admission");
        };
        assert_eq!(stats.refused, 2, "round {round}: both refusals counted");
    }
    drop(pool);
}

// ---------------------------------------------------------------------------
// The degradation ladder

#[test]
fn queue_pressure_with_degrade_ok_descends_to_naive_then_cache_hit() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &[1, 2, 3, 4]);
    let server = Server::new(ServeConfig {
        max_queue_depth: 0, // permanent queue pressure
        ..ServeConfig::default()
    });
    server.register(col);
    let mut t = mem_session(&server);
    let full = RangeQuery::new(0, 3).unwrap();
    let half = RangeQuery::new(0, 1).unwrap();
    let h = header(None, "a", true);

    // Without degrade_ok: refused (the PR-9 behavior, unchanged).
    let Response::Error(err) = call(&mut t, &batch("c", vec![full])) else {
        panic!("no degrade_ok means a refusal");
    };
    assert_eq!(exit_code(&err), EXIT_REFUSED);

    // Cold cache, degrade_ok: the naive rung — total mass spread
    // uniformly, loudly stamped.
    let Response::Estimates(naive) = call_with(&mut t, &h, &batch("c", vec![half, full])) else {
        panic!("degrade_ok must be answered");
    };
    assert_eq!(naive.rung, Some(DegradeRung::Naive));
    assert_eq!(naive.source, AnswerSource::FallbackNaive);
    assert_eq!(
        naive.values,
        vec![5.0, 10.0],
        "total 10 spread uniformly: half the rows get half the mass"
    );
    assert_eq!(naive.cached, vec![false, false]);

    // The naive rung cached the full-range total; a full-range batch now
    // takes the cheaper cache-hit rung with the TRUE value.
    let Response::Estimates(hit) = call_with(&mut t, &h, &batch("c", vec![full])) else {
        panic!("degrade_ok must be answered");
    };
    assert_eq!(hit.rung, Some(DegradeRung::CacheHit));
    assert_eq!(hit.source, AnswerSource::Primary, "cache hits are fresh");
    assert_eq!(hit.values, vec![10.0]);
    assert_eq!(hit.cached, vec![true]);
    drop(pool);
}

#[test]
fn lag_pressure_with_degrade_ok_serves_last_good_with_stamped_staleness() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &vec![1i64; 8]);
    let server = Server::new(ServeConfig {
        max_rebuild_lag: Some(2),
        ..ServeConfig::default()
    });
    server.register(col.clone());
    let mut t = mem_session(&server);
    let q = RangeQuery::new(0, 7).unwrap();
    for _ in 0..3 {
        col.update(0, 1).unwrap(); // lag 3 > bound 2, no rebuild (Manual)
    }
    // Without degrade_ok: the lag bound refuses (PR-9 behavior).
    let Response::Error(err) = call(&mut t, &batch("c", vec![q])) else {
        panic!("lag over bound must refuse");
    };
    assert!(
        matches!(&err, SynopticError::ServerOverloaded { what, observed: 3, limit: 2 } if what == "rebuild lag")
    );
    // With degrade_ok: the last-good rung — the serving synopsis at its
    // actual staleness, stamped as a generation fallback.
    let h = header(None, "a", true);
    let Response::Estimates(last_good) = call_with(&mut t, &h, &batch("c", vec![q])) else {
        panic!("degrade_ok must be answered");
    };
    assert_eq!(last_good.rung, Some(DegradeRung::LastGood));
    assert_eq!(
        last_good.source,
        AnswerSource::FallbackGeneration { generation: 0 }
    );
    assert_eq!(last_good.lag, 3, "staleness is loud, never silent");
    assert_eq!(
        last_good.values,
        vec![8.0],
        "the pinned snapshot pre-dates the updates"
    );
    // Its compute warmed the cache: the same batch now takes the
    // cache-hit rung.
    let Response::Estimates(hit) = call_with(&mut t, &h, &batch("c", vec![q])) else {
        panic!("degrade_ok must be answered");
    };
    assert_eq!(hit.rung, Some(DegradeRung::CacheHit));
    assert_eq!(hit.cached, vec![true]);
    drop(pool);
}

// ---------------------------------------------------------------------------
// Wire back-compat: a pre-header client against the new server

#[test]
fn pr9_request_frames_round_trip_against_the_new_server() {
    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }
    // Captured from the PR-9 codec (see wire.rs's golden-frame test):
    // Ping, EstimateBatch("price",[(2,9),(4,4)]), Stats("price").
    let golden_ping = unhex("53515031015533c617");
    let golden_batch = unhex(
        "53515031030500707269636502000000020000000000000009000000000000000400000000000000040000000000000040e7a4a5",
    );
    let golden_stats = unhex("535150310705007072696365d4ed495d");

    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "price", &vec![1i64; 16]);
    let server = Server::new(ServeConfig::default());
    server.register(col);
    let mut t = mem_session(&server);

    let mut legacy_call = |frame: &[u8]| -> (u8, Response) {
        t.send(frame).unwrap();
        match t.recv(Some(Duration::from_secs(10))).unwrap() {
            Received::Frame(f) => (f[4], decode_response(&f).unwrap()),
            other => panic!("expected a frame, got {other:?}"),
        }
    };

    // The old client's exact bytes are understood…
    let (ty, resp) = legacy_call(&golden_ping);
    assert_eq!(resp, Response::Pong);
    assert!(ty <= 9, "a legacy request must get a legacy frame type");

    let (ty, resp) = legacy_call(&golden_batch);
    let Response::Estimates(answer) = resp else {
        panic!("expected estimates, got {resp:?}");
    };
    assert_eq!(answer.values, vec![8.0, 1.0]);
    assert_eq!(answer.rung, None);
    assert!(ty <= 9, "…and answered in frame types it can decode");

    let (ty, resp) = legacy_call(&golden_stats);
    let Response::Stats(stats) = resp else {
        panic!("expected stats, got {resp:?}");
    };
    assert_eq!(stats.column, "price");
    assert_eq!(stats.n, 16);
    assert!(ty <= 9, "legacy stats stay in the legacy frame");

    // And the new client sending no header emits those same bytes: the
    // upgrade is invisible until a header is actually used.
    assert_eq!(encode_request(&Request::Ping), golden_ping);
    assert_eq!(
        encode_request_with(&RequestHeader::default(), &Request::Ping),
        golden_ping
    );
    drop(pool);
}

// ---------------------------------------------------------------------------
// The overload storm: the tentpole proof

#[test]
fn overload_storm_sheds_fairly_degrades_loudly_and_never_wedges_updates() {
    let pool = MaintainedPool::new(1);
    let col = exact_column(&pool, "c", &vec![1i64; 16]);
    let clock = ManualClock::new();
    let server = Server::new(ServeConfig {
        tenant_burst: Some(4),
        tenant_refill_ms: 10,
        max_rebuild_lag: Some(4),
        clock: Arc::new(clock.clone()),
        ..ServeConfig::default()
    });
    server.register(col);

    // Four reader tenants at identical offered load. Two opt into
    // degradation; two don't. One of each pair runs over a faulted
    // transport (delayed frames for a degrader, dropped request frames
    // for a refuser), because storms arrive on bad networks.
    let degrade = [true, true, false, false];
    let mut sessions: Vec<MemTransport> = Vec::new();
    for (i, _) in degrade.iter().enumerate() {
        let (client_end, server_end) = MemTransport::pair();
        let server = server.clone();
        let faults = match i {
            1 => vec![
                TransportFault::Delay { frames: 2 },
                TransportFault::Clean,
                TransportFault::Clean,
                TransportFault::Delay { frames: 1 },
            ],
            3 => vec![
                TransportFault::Clean,
                TransportFault::Clean,
                TransportFault::Clean,
                TransportFault::Drop,
            ],
            _ => vec![],
        };
        std::thread::spawn(move || {
            let mut t = FaultyTransport::with_recv_faults(server_end, vec![], faults);
            server.handle_transport(&mut t);
        });
        sessions.push(client_end);
    }
    let mut writer = mem_session(&server);

    let q = RangeQuery::new(0, 15).unwrap();
    const ROUNDS: usize = 20;
    // Capacity per tenant over the storm: 4 burst + 1 refill per round
    // (10 ticks at refill_ms=10) = 24 admissions. Offered: 2 per round =
    // 40 — a sustained 2x overload.
    let mut answered = [0u64; 4];
    let mut degraded = [0u64; 4];
    let mut refused = [0u64; 4];
    let mut lost = [0u64; 4];
    let mut updates_applied = 0u64;

    for round in 0..ROUNDS {
        for (i, t) in sessions.iter_mut().enumerate() {
            let h = header(Some(60_000), &format!("tenant-{i}"), degrade[i]);
            for _ in 0..2 {
                t.send(&encode_request_with(&h, &batch("c", vec![q])))
                    .unwrap();
                // A dropped request frame never reaches the server; the
                // short timeout stands in for the client giving up.
                match t.recv(Some(Duration::from_secs(5))) {
                    Ok(Received::Frame(f)) => match decode_response(&f).unwrap() {
                        Response::Estimates(answer) => {
                            answered[i] += 1;
                            // ZERO SILENT STALENESS: any answer not
                            // computed fresh within the lag bound must
                            // carry its rung and a non-primary source
                            // (or be a stamped cache hit).
                            match answer.rung {
                                None => {
                                    assert!(
                                        answer.lag <= 4,
                                        "un-stamped answer at lag {} breaches the bound",
                                        answer.lag
                                    );
                                    assert_eq!(answer.source, AnswerSource::Primary);
                                }
                                Some(DegradeRung::CacheHit) => {
                                    degraded[i] += 1;
                                    assert!(answer.cached.iter().all(|&c| c));
                                }
                                Some(DegradeRung::LastGood) => {
                                    degraded[i] += 1;
                                    assert_eq!(
                                        answer.source,
                                        AnswerSource::FallbackGeneration {
                                            generation: answer.generation
                                        }
                                    );
                                    assert!(answer.lag > 4, "LastGood implies real staleness");
                                }
                                Some(DegradeRung::Naive) => {
                                    degraded[i] += 1;
                                    assert_eq!(answer.source, AnswerSource::FallbackNaive);
                                }
                            }
                        }
                        Response::Error(SynopticError::ServerOverloaded { .. }) => {
                            refused[i] += 1;
                        }
                        other => panic!("unexpected response in storm: {other:?}"),
                    },
                    Ok(Received::TimedOut) => lost[i] += 1,
                    other => panic!("storm connection died: {other:?}"),
                }
            }
        }
        // THE STORM NEVER WEDGES UPDATES: one write lands every round,
        // from its own tenant bucket, no matter how hard readers storm.
        let wh = header(Some(60_000), "writer", false);
        let resp = call_with(
            &mut writer,
            &wh,
            &Request::Update {
                column: "c".to_string(),
                deltas: vec![(round as u64 % 16, 1)],
            },
        );
        let Response::Updated { applied, .. } = resp else {
            panic!("round {round}: update wedged by the storm: {resp:?}");
        };
        updates_applied += applied;
        clock.advance(10);
    }

    assert_eq!(updates_applied, ROUNDS as u64, "every update landed");
    for i in 0..4 {
        assert_eq!(
            answered[i] + refused[i] + lost[i],
            2 * ROUNDS as u64,
            "tenant {i}: every offered request is accounted for"
        );
    }
    // After round ~5 the lag bound (4) is breached and never recovers
    // (Manual rebuilds): degraders MUST have taken the ladder.
    assert!(degraded[0] > 0 && degraded[1] > 0, "{degraded:?}");
    assert_eq!(
        degraded[2] + degraded[3],
        0,
        "no degrade_ok, no degraded answers"
    );
    // PER-TENANT FAIRNESS OF SHED TRAFFIC: tenants offering identical
    // load are shed within 2x of each other, transport faults included.
    // (Like compares with like: degraders pay tokens for degraded
    // answers, refusers are lag-refused for free, so the two classes
    // shed at different — but internally fair — rates.)
    let fair = |a: u64, b: u64| {
        let (lo, hi) = (a.min(b).max(1), a.max(b));
        assert!(
            hi <= 2 * lo,
            "shed counts {a} vs {b} breach the 2x fairness bound"
        );
    };
    fair(refused[0], refused[1]);
    fair(refused[2] + lost[2], refused[3] + lost[3]);
    fair(answered[0], answered[1]);

    // The meters saw the storm: tenants tracked, degradations counted,
    // latency percentiles alive.
    let Response::Stats(stats) = call_with(
        &mut writer,
        &header(None, "writer", false),
        &Request::Stats {
            column: "c".to_string(),
        },
    ) else {
        panic!("stats must answer after the storm");
    };
    assert_eq!(stats.tenants, 5, "4 reader tenants + the writer");
    assert_eq!(stats.degraded, degraded.iter().sum::<u64>());
    assert!(stats.refused >= refused.iter().sum::<u64>());
    assert!(stats.update_p99_us > 0, "update latencies were recorded");
    assert_eq!(stats.updates, ROUNDS as u64);
    drop(pool);
}
