//! The serving tier: batched query execution over pinned snapshots, with
//! admission control, deadline propagation, and graceful degradation.
//!
//! A [`Server`] owns a set of maintained columns
//! ([`ColumnHandle`]s from a `MaintainedPool`) and answers the four-verb
//! protocol of `synoptic-api` over any [`Transport`] — a real TCP
//! listener in production ([`Server::serve`]), an in-memory pair or a
//! fault-injecting wrapper in tests ([`Server::handle_transport`]).
//!
//! ## Batching: one pin per batch
//!
//! Every [`Request::EstimateBatch`] is answered against a **single
//! snapshot pin**: the connection's [`HotSwapReader`] is pinned once
//! ([`HotSwapReader::pinned`]), and every range in the batch reads the
//! same `Arc` snapshot at the same generation. A rebuild landing mid-batch
//! cannot split the batch across snapshots — the response's
//! batch-wide `generation` is the proof, and the answers are mutually
//! consistent (e.g. a full-range sum equals the sum of its halves).
//!
//! ## Deadline propagation
//!
//! A headered request carrying `deadline_ms` is executed under a
//! per-request [`Budget`] with that remaining time as its wall-clock
//! deadline. Work that is **already expired on arrival** is shed before
//! execution with [`SynopticError::DeadlineExceeded`] and elapsed
//! provenance — the cheapest request is the one never run — and the
//! estimate loop checkpoints the budget per range, so a deadline firing
//! mid-batch aborts with the same structured error instead of burning
//! the remaining ranges. Update batches only check the deadline on
//! arrival: aborting half-applied deltas would trade a latency bound for
//! a consistency surprise.
//!
//! ## Admission control
//!
//! Four bounds, each refusing with
//! [`SynopticError::ServerOverloaded`] (exit code 10) carrying the
//! observed value and the configured limit:
//!
//! * **queue depth** — requests in flight across all connections;
//! * **rebuild lag** — a column whose `updates_since_rebuild` exceeds
//!   the bound refuses estimates (mirroring the replication tier's
//!   `ReplicationLagExceeded`: better loud refusal than a silently
//!   stale answer);
//! * **tenant token bucket** — each tenant (the request header's
//!   `tenant`; un-headered clients share `""`) spends one token per
//!   served estimate or update from a [`TenantBuckets`] bucket, refilled
//!   on the configured clock. The refusal names the tenant;
//! * **connection cap** — concurrent connections, refused at accept.
//!
//! Ordering is part of the contract: a request shed for queue depth,
//! rebuild lag, or an expired deadline **never consumes a token** —
//! admission refusals must not double-penalize the client being shed —
//! and `Stats` requests bypass queue-depth/lag/token admission entirely,
//! because monitoring has to keep working precisely when the server is
//! refusing everything else.
//!
//! ## The degradation ladder
//!
//! When queue depth or rebuild lag would refuse an estimate and the
//! request set `degrade_ok`, the server descends an anytime ladder
//! (mirroring the build-side `build_anytime` fallback chain) instead of
//! refusing, and stamps the rung into the answer
//! ([`DegradeRung`]) so degradation is **never silent**:
//!
//! 1. **cache-hit** — every range answered from the generation-keyed
//!    cache at the pinned generation: zero compute, values as fresh as a
//!    normal answer.
//! 2. **last-good** — lag shed only: computed from the pinned (serving)
//!    synopsis at whatever lag it has, stamped
//!    `AnswerSource::FallbackGeneration` with the lag field saying how
//!    stale.
//! 3. **naive** — queue shed only: the column's total mass (one cached
//!    full-range estimate) spread uniformly over each range, stamped
//!    `AnswerSource::FallbackNaive`. Full per-range compute under queue
//!    pressure is exactly what must be avoided, so the ladder skips the
//!    last-good rung there.
//!
//! A degraded answer still consumes a tenant token — it is served work.
//!
//! Refusals are responses, not disconnects: the client keeps its
//! connection and may back off and retry.
//!
//! [`Budget`]: synoptic_core::Budget
//! [`DegradeRung`]: synoptic_api::wire::DegradeRung

use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use synoptic_api::wire::{
    decode_request_with, encode_response, encode_response_extended, BatchAnswer, DegradeRung,
    QueryBatch, Request, RequestHeader, Response, ServerStats,
};
use synoptic_core::{
    AnswerSource, Budget, HotSwapReader, RangeEstimator, RangeQuery, SynopticError,
};
use synoptic_repl::{Clock, Received, TcpTransport, Transport, WallClock};
use synoptic_stream::ColumnHandle;

use crate::admission::TenantBuckets;
use crate::cache::AnswerCache;
use crate::histo::LatencyHistogram;

/// Serving-tier bounds and tunables. The CLI validates user input before
/// constructing one; the defaults suit tests and small deployments.
#[derive(Clone)]
pub struct ServeConfig {
    /// Most ranges accepted in one [`Request::EstimateBatch`].
    pub max_batch: usize,
    /// Most requests in flight across all connections before refusal.
    pub max_queue_depth: u64,
    /// Refuse estimates for a column whose updates-since-rebuild exceed
    /// this (`None` = never refuse on lag).
    pub max_rebuild_lag: Option<u64>,
    /// Token-bucket capacity per tenant (`None` = unmetered). Each
    /// served estimate or update spends one token.
    pub tenant_burst: Option<u64>,
    /// Clock ticks (milliseconds on the default clock) for a tenant
    /// bucket to earn one token back; `0` = rate-unlimited.
    pub tenant_refill_ms: u64,
    /// Hot-range answer cache capacity per column (entries; 0 disables).
    pub cache_capacity: usize,
    /// Most concurrent connections before refusal-at-accept.
    pub max_connections: u64,
    /// How often an idle connection loop wakes to check for shutdown.
    pub poll_interval: Duration,
    /// The clock token-bucket refill runs on — [`WallClock`] in
    /// production, a `ManualClock` in tests so refill is deterministic.
    pub clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("max_batch", &self.max_batch)
            .field("max_queue_depth", &self.max_queue_depth)
            .field("max_rebuild_lag", &self.max_rebuild_lag)
            .field("tenant_burst", &self.tenant_burst)
            .field("tenant_refill_ms", &self.tenant_refill_ms)
            .field("cache_capacity", &self.cache_capacity)
            .field("max_connections", &self.max_connections)
            .field("poll_interval", &self.poll_interval)
            .finish_non_exhaustive()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 4096,
            max_queue_depth: 256,
            max_rebuild_lag: None,
            tenant_burst: None,
            tenant_refill_ms: 100,
            cache_capacity: 4096,
            max_connections: 256,
            poll_interval: Duration::from_millis(50),
            clock: Arc::new(WallClock::new()),
        }
    }
}

/// One served column: its pool handle plus its shared answer cache.
struct ColumnState {
    handle: ColumnHandle,
    cache: AnswerCache,
}

/// A per-connection cached snapshot reader, pinned to the *identity* of
/// the [`ColumnState`] it was created from. [`Server::register`] may
/// replace a column under the same name (fresh handle, fresh cache);
/// comparing the stored `Arc` by pointer on every batch notices the
/// replacement and re-fetches the reader, so a long-lived connection can
/// never keep answering from the replaced column's hot-swap cell — or
/// worse, store its values into the new column's cache.
struct CachedReader {
    column: Arc<ColumnState>,
    reader: HotSwapReader<dyn RangeEstimator>,
}

struct Inner {
    config: ServeConfig,
    columns: Mutex<HashMap<String, Arc<ColumnState>>>,
    tenants: TenantBuckets,
    /// Requests being processed right now, across all connections.
    inflight: AtomicU64,
    /// Requests refused by admission control since start.
    refused: AtomicU64,
    /// Requests shed pre-execution on an already-expired deadline.
    deadline_sheds: AtomicU64,
    /// Estimates answered by the degradation ladder instead of refused.
    degraded: AtomicU64,
    /// Connections accepted since start.
    connections: AtomicU64,
    /// Connections currently open.
    active: AtomicU64,
    /// Service latency of answered estimate batches (µs, log2 buckets).
    lat_estimate: LatencyHistogram,
    /// Service latency of answered update batches (µs, log2 buckets).
    lat_update: LatencyHistogram,
    shutdown: AtomicBool,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Decrements a gauge on drop, so early returns cannot leak a slot.
struct GaugeGuard<'a>(&'a AtomicU64);

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Why admission would shed an estimate — and therefore which ladder
/// rung set a `degrade_ok` batch descends to.
enum ShedReason {
    QueueDepth { observed: u64, limit: u64 },
    RebuildLag { observed: u64, limit: u64 },
}

/// The batched serving front-end (see the module docs). Cheap to clone;
/// clones share the column set, caches, and admission meters.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// A server with no columns yet; register them with
    /// [`Server::register`].
    pub fn new(config: ServeConfig) -> Self {
        let tenants = TenantBuckets::new(
            config.tenant_burst,
            config.tenant_refill_ms,
            Arc::clone(&config.clock),
        );
        Self {
            inner: Arc::new(Inner {
                config,
                columns: Mutex::new(HashMap::new()),
                tenants,
                inflight: AtomicU64::new(0),
                refused: AtomicU64::new(0),
                deadline_sheds: AtomicU64::new(0),
                degraded: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                active: AtomicU64::new(0),
                lat_estimate: LatencyHistogram::new(),
                lat_update: LatencyHistogram::new(),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Serves `handle` under its column name. Re-registering a name
    /// replaces the column (and starts a fresh cache); open connections
    /// notice the replacement on their next batch (see [`CachedReader`])
    /// and answer from it.
    pub fn register(&self, handle: ColumnHandle) {
        let capacity = self.inner.config.cache_capacity;
        lock(&self.inner.columns).insert(
            handle.name().to_string(),
            Arc::new(ColumnState {
                handle,
                cache: AnswerCache::new(capacity),
            }),
        );
    }

    /// Asks the accept loop and every connection loop to wind down.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    fn column(&self, name: &str) -> Option<Arc<ColumnState>> {
        lock(&self.inner.columns).get(name).cloned()
    }

    fn refuse(&self, what: &str, observed: u64, limit: u64) -> Response {
        self.inner.refused.fetch_add(1, Ordering::Relaxed);
        Response::Error(SynopticError::ServerOverloaded {
            what: what.to_string(),
            observed,
            limit,
        })
    }

    /// Spends one token from the request's tenant bucket, refusing with
    /// the tenant named when the bucket is dry. Called only once the
    /// server has committed to serving (normally or degraded) — sheds
    /// and refusals upstream never reach it.
    fn take_token(&self, header: &RequestHeader) -> Result<(), Box<Response>> {
        let tenant = header.tenant_or_default();
        match self.inner.tenants.try_take(tenant) {
            Ok(()) => Ok(()),
            Err((observed, limit)) => Err(Box::new(self.refuse(
                &format!("tenant {tenant:?} token bucket"),
                observed,
                limit,
            ))),
        }
    }

    /// Accept loop: serves connections until [`Server::shutdown`] (or the
    /// process exits). Each connection runs [`Server::handle_transport`]
    /// on its own thread.
    pub fn serve(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let server = self.clone();
                    workers.push(std::thread::spawn(move || {
                        let mut transport = TcpTransport::from_stream(stream);
                        server.handle_transport(&mut transport);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.inner.config.poll_interval);
                }
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Serves one connection over any [`Transport`] until the peer closes
    /// (or shutdown). Exposed so tests drive the exact production code
    /// path through `MemTransport` pairs and `FaultyTransport` wrappers.
    ///
    /// A frame that fails validation (torn, bit-flipped, truncated) is
    /// answered with the decode error and the connection keeps serving —
    /// corruption refuses the *frame*, never the link.
    pub fn handle_transport(&self, transport: &mut dyn Transport) {
        self.inner.connections.fetch_add(1, Ordering::SeqCst);
        let active = self.inner.active.fetch_add(1, Ordering::SeqCst) + 1;
        let _active_guard = GaugeGuard(&self.inner.active);
        if active > self.inner.config.max_connections {
            let refusal = self.refuse(
                "connection quota",
                active,
                self.inner.config.max_connections,
            );
            let _ = transport.send(&encode_response(&refusal));
            transport.close();
            return;
        }
        // Per-connection snapshot readers: one atomic generation check per
        // batch in the steady state, no shared lock traffic on the answer
        // path. Each entry remembers which ColumnState it belongs to, so
        // a column replaced via `register` is noticed (see CachedReader).
        let mut readers: HashMap<String, CachedReader> = HashMap::new();
        loop {
            match transport.recv(Some(self.inner.config.poll_interval)) {
                Ok(Received::Frame(bytes)) => {
                    let (headered, response) = self.respond(&bytes, &mut readers);
                    // Responses speak the dialect of their request: only
                    // headered (PR-10+) clients receive extended frames.
                    let encoded = if headered {
                        encode_response_extended(&response)
                    } else {
                        encode_response(&response)
                    };
                    if transport.send(&encoded).is_err() {
                        return;
                    }
                }
                Ok(Received::TimedOut) => {
                    if self.inner.shutdown.load(Ordering::SeqCst) {
                        transport.close();
                        return;
                    }
                }
                Ok(Received::Closed) | Err(_) => return,
            }
        }
    }

    /// Decodes and executes one request frame, producing exactly one
    /// response plus whether the request carried a header (which selects
    /// the response dialect). Never panics on wire input: malformed bytes
    /// become the decode error, refusals become
    /// [`SynopticError::ServerOverloaded`].
    fn respond(
        &self,
        bytes: &[u8],
        readers: &mut HashMap<String, CachedReader>,
    ) -> (bool, Response) {
        let (header, request) = match decode_request_with(bytes) {
            Ok(r) => r,
            Err(e) => return (false, Response::Error(e)),
        };
        let headered = !header.is_empty();
        let started = Instant::now();
        // Deadline propagation: the header's remaining time becomes this
        // request's budget; already-expired work is shed before any
        // admission check or execution touches it.
        let budget = match header.deadline_ms {
            Some(0) => {
                self.inner.deadline_sheds.fetch_add(1, Ordering::Relaxed);
                return (
                    headered,
                    Response::Error(SynopticError::DeadlineExceeded { elapsed_ms: 0 }),
                );
            }
            Some(ms) => {
                let budget = Budget::unlimited().with_deadline(Duration::from_millis(ms));
                if let Err(e) = budget.check() {
                    self.inner.deadline_sheds.fetch_add(1, Ordering::Relaxed);
                    return (headered, Response::Error(e));
                }
                budget
            }
            None => Budget::unlimited(),
        };
        let inflight = self.inner.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        let _inflight_guard = GaugeGuard(&self.inner.inflight);
        let over_queue = inflight > self.inner.config.max_queue_depth;
        let response = match request {
            // Stats bypass queue-depth/lag/token admission: monitoring
            // must keep working precisely when everything else is being
            // refused.
            Request::Stats { column } => self.stats_for(&column),
            Request::Ping => {
                if over_queue {
                    self.refuse("queue depth", inflight, self.inner.config.max_queue_depth)
                } else {
                    Response::Pong
                }
            }
            Request::EstimateBatch(batch) => {
                let resp = self.estimate_batch(&header, &budget, &batch, readers, inflight);
                if matches!(resp, Response::Estimates(_)) {
                    self.inner
                        .lat_estimate
                        .record(started.elapsed().as_micros() as u64);
                }
                resp
            }
            Request::Update { column, deltas } => {
                if over_queue {
                    self.refuse("queue depth", inflight, self.inner.config.max_queue_depth)
                } else if let Err(refusal) = self.take_token(&header) {
                    *refusal
                } else {
                    let resp = self.apply_updates(&column, &deltas);
                    if matches!(resp, Response::Updated { .. }) {
                        self.inner
                            .lat_update
                            .record(started.elapsed().as_micros() as u64);
                    }
                    resp
                }
            }
        };
        (headered, response)
    }

    fn estimate_batch(
        &self,
        header: &RequestHeader,
        budget: &Budget,
        batch: &QueryBatch,
        readers: &mut HashMap<String, CachedReader>,
        inflight: u64,
    ) -> Response {
        let name = &batch.column;
        let Some(col) = self.column(name) else {
            return Response::Error(unknown_column(name));
        };
        if batch.ranges.len() > self.inner.config.max_batch {
            return Response::Error(SynopticError::InvalidParameter(format!(
                "batch of {} ranges exceeds the configured maximum {}",
                batch.ranges.len(),
                self.inner.config.max_batch
            )));
        }
        let stats = col.handle.stats();
        let lag = stats.updates_since_rebuild;
        // Which admission bound would shed this estimate, if any. Queue
        // depth outranks lag: it is the cheaper observation and the one
        // that caps work the soonest.
        let shed = if inflight > self.inner.config.max_queue_depth {
            Some(ShedReason::QueueDepth {
                observed: inflight,
                limit: self.inner.config.max_queue_depth,
            })
        } else {
            self.inner.config.max_rebuild_lag.and_then(|max_lag| {
                (lag > max_lag).then_some(ShedReason::RebuildLag {
                    observed: lag,
                    limit: max_lag,
                })
            })
        };
        if let Some(reason) = &shed {
            if !header.degrade_ok {
                // A shed request never consumes a tenant token — the
                // refusal IS the whole service it gets.
                let (what, observed, limit) = match reason {
                    ShedReason::QueueDepth { observed, limit } => {
                        ("queue depth", *observed, *limit)
                    }
                    ShedReason::RebuildLag { observed, limit } => {
                        ("rebuild lag", *observed, *limit)
                    }
                };
                return self.refuse(what, observed, limit);
            }
        }
        // Past here the server is committed to serving (normally or
        // degraded): this is where the tenant pays.
        if let Err(refusal) = self.take_token(header) {
            return *refusal;
        }
        // The batch's one snapshot pin: every range below reads this Arc
        // at this generation, no matter what hot-swaps mid-batch. The
        // cached reader is only valid for the ColumnState it was created
        // from — re-registration replaces that Arc, so a stale entry is
        // re-fetched rather than pinning the replaced column forever.
        let entry = readers
            .entry(name.to_string())
            .and_modify(|cached| {
                if !Arc::ptr_eq(&cached.column, &col) {
                    *cached = CachedReader {
                        column: Arc::clone(&col),
                        reader: col.handle.reader(),
                    };
                }
            })
            .or_insert_with(|| CachedReader {
                column: Arc::clone(&col),
                reader: col.handle.reader(),
            });
        let (generation, snapshot) = entry.reader.pinned();
        let snapshot = Arc::clone(snapshot);
        let n = snapshot.n();
        for q in &batch.ranges {
            if q.hi >= n {
                return Response::Error(SynopticError::IndexOutOfBounds { index: q.hi, n });
            }
        }
        if let Some(reason) = shed {
            return self.degraded_batch(&col, &snapshot, generation, lag, reason, batch);
        }
        let mut values = Vec::with_capacity(batch.ranges.len());
        let mut cached = Vec::with_capacity(batch.ranges.len());
        for q in &batch.ranges {
            // The per-range deadline checkpoint: a deadline firing
            // mid-batch aborts loudly with elapsed provenance instead of
            // finishing late.
            if let Err(e) = budget.charge(1) {
                return Response::Error(e);
            }
            match col.cache.lookup(generation, q.lo, q.hi) {
                Some(v) => {
                    values.push(v);
                    cached.push(true);
                }
                None => {
                    let v = snapshot.estimate(*q);
                    col.cache.store(generation, q.lo, q.hi, v);
                    values.push(v);
                    cached.push(false);
                }
            }
        }
        Response::Estimates(BatchAnswer {
            generation,
            source: AnswerSource::Primary,
            lag,
            outcome: col.handle.last_outcome(),
            segment_outcomes: col.handle.segment_outcomes(),
            values,
            cached,
            rung: None,
        })
    }

    /// The serving-side anytime ladder (module docs §degradation): the
    /// request opted in with `degrade_ok`, admission would have shed it,
    /// so answer as cheaply as honesty allows — and stamp the rung.
    fn degraded_batch(
        &self,
        col: &ColumnState,
        snapshot: &Arc<dyn RangeEstimator>,
        generation: u64,
        lag: u64,
        reason: ShedReason,
        batch: &QueryBatch,
    ) -> Response {
        self.inner.degraded.fetch_add(1, Ordering::Relaxed);
        let outcome = col.handle.last_outcome();
        let segment_outcomes = col.handle.segment_outcomes();
        // Rung 1 — cache-hit: if every range is in the generation-keyed
        // cache, the answer costs nothing and is as fresh as a normal
        // one. All-or-nothing: a partial probe descends.
        let hits: Vec<f64> = batch
            .ranges
            .iter()
            .map_while(|q| col.cache.lookup(generation, q.lo, q.hi))
            .collect();
        if hits.len() == batch.ranges.len() {
            return Response::Estimates(BatchAnswer {
                generation,
                source: AnswerSource::Primary,
                lag,
                outcome,
                segment_outcomes,
                cached: vec![true; hits.len()],
                values: hits,
                rung: Some(DegradeRung::CacheHit),
            });
        }
        match reason {
            // Rung 2 — last-good: the lag bound shed us, but the pinned
            // snapshot still answers; serve it at whatever lag it has,
            // stamped as a generation fallback so the staleness is loud.
            ShedReason::RebuildLag { .. } => {
                let mut values = Vec::with_capacity(batch.ranges.len());
                let mut cached = Vec::with_capacity(batch.ranges.len());
                for q in &batch.ranges {
                    match col.cache.lookup(generation, q.lo, q.hi) {
                        Some(v) => {
                            values.push(v);
                            cached.push(true);
                        }
                        None => {
                            let v = snapshot.estimate(*q);
                            col.cache.store(generation, q.lo, q.hi, v);
                            values.push(v);
                            cached.push(false);
                        }
                    }
                }
                Response::Estimates(BatchAnswer {
                    generation,
                    source: AnswerSource::FallbackGeneration { generation },
                    lag,
                    outcome,
                    segment_outcomes,
                    values,
                    cached,
                    rung: Some(DegradeRung::LastGood),
                })
            }
            // Rung 3 — naive: under queue pressure even per-range synopsis
            // walks are work worth shedding. One (cached) full-range
            // estimate gives the column's total mass; spread it uniformly.
            ShedReason::QueueDepth { .. } => {
                let n = snapshot.n();
                let full = RangeQuery::new(0, n - 1).expect("n >= 1 for a served column");
                let total = match col.cache.lookup(generation, full.lo, full.hi) {
                    Some(v) => v,
                    None => {
                        let v = snapshot.estimate(full);
                        col.cache.store(generation, full.lo, full.hi, v);
                        v
                    }
                };
                let values: Vec<f64> = batch
                    .ranges
                    .iter()
                    .map(|q| total * ((q.hi - q.lo + 1) as f64) / (n as f64))
                    .collect();
                Response::Estimates(BatchAnswer {
                    generation,
                    source: AnswerSource::FallbackNaive,
                    lag,
                    outcome,
                    segment_outcomes,
                    cached: vec![false; values.len()],
                    values,
                    rung: Some(DegradeRung::Naive),
                })
            }
        }
    }

    fn apply_updates(&self, name: &str, deltas: &[(u64, i64)]) -> Response {
        let Some(col) = self.column(name) else {
            return Response::Error(unknown_column(name));
        };
        // Bounds are pre-validated so the common client mistake — a bad
        // index anywhere in the batch — is refused atomically, before any
        // delta touches state (the pool handle only bounds-checks
        // journaled columns itself).
        let n = col.handle.estimator().n();
        for &(i, _) in deltas {
            if i as usize >= n {
                return Response::Error(SynopticError::IndexOutOfBounds {
                    index: i as usize,
                    n,
                });
            }
        }
        // Past the bounds check, application is sequential and NOT
        // atomic: a delta can still fail for non-bounds reasons (a WAL
        // append error, the pool shut down mid-batch), leaving every
        // earlier delta applied. The error names how far the batch got
        // (on variants that carry free text) and docs/SERVING.md states
        // the partial-application contract, so the client never mistakes
        // such an error for "nothing happened".
        let mut scheduled = 0u64;
        for (at, &(i, delta)) in deltas.iter().enumerate() {
            match col.handle.update(i as usize, delta) {
                Ok(true) => scheduled += 1,
                Ok(false) => {}
                Err(e) => return Response::Error(annotate_partial(e, at, deltas.len())),
            }
        }
        Response::Updated {
            applied: deltas.len() as u64,
            scheduled,
        }
    }

    fn stats_for(&self, name: &str) -> Response {
        let Some(col) = self.column(name) else {
            return Response::Error(unknown_column(name));
        };
        let stats = col.handle.stats();
        Response::Stats(ServerStats {
            column: name.to_string(),
            n: col.handle.estimator().n() as u64,
            generation: col.handle.serving_generation(),
            updates: stats.updates,
            rebuilds: stats.rebuilds,
            failed_rebuilds: stats.failed_rebuilds,
            updates_since_rebuild: stats.updates_since_rebuild,
            cache_hits: col.cache.hits(),
            cache_misses: col.cache.misses(),
            cache_invalidations: col.cache.invalidations(),
            refused: self.inner.refused.load(Ordering::Relaxed),
            connections: self.inner.connections.load(Ordering::SeqCst),
            deadline_sheds: self.inner.deadline_sheds.load(Ordering::Relaxed),
            degraded: self.inner.degraded.load(Ordering::Relaxed),
            tenants: self.inner.tenants.tenants(),
            estimate_p50_us: self.inner.lat_estimate.p50_us(),
            estimate_p99_us: self.inner.lat_estimate.p99_us(),
            update_p50_us: self.inner.lat_update.p50_us(),
            update_p99_us: self.inner.lat_update.p99_us(),
        })
    }
}

fn unknown_column(name: &str) -> SynopticError {
    SynopticError::InvalidParameter(format!("unknown column {name:?}"))
}

/// Notes mid-batch progress on error variants that carry free text, so a
/// client receiving a non-bounds failure learns how far its update batch
/// got. Deltas *before* `failed_at` are applied for certain; the failing
/// delta itself may or may not be, depending on where in ingestion the
/// error arose. Structured variants pass through unchanged and rely on
/// the documented contract (docs/SERVING.md §2: updates past the bounds
/// check are not atomic).
fn annotate_partial(e: SynopticError, failed_at: usize, total: usize) -> SynopticError {
    let note =
        format!("update batch failed at delta {failed_at} of {total}; earlier deltas are applied");
    match e {
        SynopticError::Io { path, detail } => SynopticError::Io {
            path,
            detail: format!("{detail} ({note})"),
        },
        SynopticError::CorruptJournal { context, detail } => SynopticError::CorruptJournal {
            context,
            detail: format!("{detail} ({note})"),
        },
        SynopticError::InvalidParameter(msg) => {
            SynopticError::InvalidParameter(format!("{msg} ({note})"))
        }
        other => other,
    }
}

/// Compile-time proof the server crosses thread boundaries (one thread
/// per connection).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
};
