//! The serving tier: batched query execution over pinned snapshots, with
//! admission control.
//!
//! A [`Server`] owns a set of maintained columns
//! ([`ColumnHandle`]s from a `MaintainedPool`) and answers the four-verb
//! protocol of `synoptic-api` over any [`Transport`] — a real TCP
//! listener in production ([`Server::serve`]), an in-memory pair or a
//! fault-injecting wrapper in tests ([`Server::handle_transport`]).
//!
//! ## Batching: one pin per batch
//!
//! Every [`Request::EstimateBatch`] is answered against a **single
//! snapshot pin**: the connection's [`HotSwapReader`] is pinned once
//! ([`HotSwapReader::pinned`]), and every range in the batch reads the
//! same `Arc` snapshot at the same generation. A rebuild landing mid-batch
//! cannot split the batch across snapshots — the response's
//! batch-wide `generation` is the proof, and the answers are mutually
//! consistent (e.g. a full-range sum equals the sum of its halves).
//!
//! ## Admission control
//!
//! Three bounds, each refusing with
//! [`SynopticError::ServerOverloaded`] (exit code 10) carrying the
//! observed value and the configured limit:
//!
//! * **queue depth** — requests in flight across all connections;
//! * **rebuild lag** — a column whose `updates_since_rebuild` exceeds
//!   the bound refuses estimates (mirroring the replication tier's
//!   `ReplicationLagExceeded`: better loud refusal than a silently
//!   stale answer);
//! * **connection quota** — requests served on one connection, and the
//!   concurrent-connection cap at accept time.
//!
//! Refusals are responses, not disconnects: the client keeps its
//! connection and may back off and retry.

use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use synoptic_api::wire::{
    decode_request, encode_response, BatchAnswer, Request, Response, ServerStats,
};
use synoptic_core::{AnswerSource, HotSwapReader, RangeEstimator, SynopticError};
use synoptic_repl::{Received, TcpTransport, Transport};
use synoptic_stream::ColumnHandle;

use crate::cache::AnswerCache;

/// Serving-tier bounds and tunables. The CLI validates user input before
/// constructing one; the defaults suit tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most ranges accepted in one [`Request::EstimateBatch`].
    pub max_batch: usize,
    /// Most requests in flight across all connections before refusal.
    pub max_queue_depth: u64,
    /// Refuse estimates for a column whose updates-since-rebuild exceed
    /// this (`None` = never refuse on lag).
    pub max_rebuild_lag: Option<u64>,
    /// Most requests served per connection (`None` = unmetered).
    pub ops_quota: Option<u64>,
    /// Hot-range answer cache capacity per column (entries; 0 disables).
    pub cache_capacity: usize,
    /// Most concurrent connections before refusal-at-accept.
    pub max_connections: u64,
    /// How often an idle connection loop wakes to check for shutdown.
    pub poll_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 4096,
            max_queue_depth: 256,
            max_rebuild_lag: None,
            ops_quota: None,
            cache_capacity: 4096,
            max_connections: 256,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// One served column: its pool handle plus its shared answer cache.
struct ColumnState {
    handle: ColumnHandle,
    cache: AnswerCache,
}

/// A per-connection cached snapshot reader, pinned to the *identity* of
/// the [`ColumnState`] it was created from. [`Server::register`] may
/// replace a column under the same name (fresh handle, fresh cache);
/// comparing the stored `Arc` by pointer on every batch notices the
/// replacement and re-fetches the reader, so a long-lived connection can
/// never keep answering from the replaced column's hot-swap cell — or
/// worse, store its values into the new column's cache.
struct CachedReader {
    column: Arc<ColumnState>,
    reader: HotSwapReader<dyn RangeEstimator>,
}

struct Inner {
    config: ServeConfig,
    columns: Mutex<HashMap<String, Arc<ColumnState>>>,
    /// Requests being processed right now, across all connections.
    inflight: AtomicU64,
    /// Requests refused by admission control since start.
    refused: AtomicU64,
    /// Connections accepted since start.
    connections: AtomicU64,
    /// Connections currently open.
    active: AtomicU64,
    shutdown: AtomicBool,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Decrements a gauge on drop, so early returns cannot leak a slot.
struct GaugeGuard<'a>(&'a AtomicU64);

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The batched serving front-end (see the module docs). Cheap to clone;
/// clones share the column set, caches, and admission meters.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// A server with no columns yet; register them with
    /// [`Server::register`].
    pub fn new(config: ServeConfig) -> Self {
        Self {
            inner: Arc::new(Inner {
                config,
                columns: Mutex::new(HashMap::new()),
                inflight: AtomicU64::new(0),
                refused: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                active: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Serves `handle` under its column name. Re-registering a name
    /// replaces the column (and starts a fresh cache); open connections
    /// notice the replacement on their next batch (see [`CachedReader`])
    /// and answer from it.
    pub fn register(&self, handle: ColumnHandle) {
        let capacity = self.inner.config.cache_capacity;
        lock(&self.inner.columns).insert(
            handle.name().to_string(),
            Arc::new(ColumnState {
                handle,
                cache: AnswerCache::new(capacity),
            }),
        );
    }

    /// Asks the accept loop and every connection loop to wind down.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    fn column(&self, name: &str) -> Option<Arc<ColumnState>> {
        lock(&self.inner.columns).get(name).cloned()
    }

    fn refuse(&self, what: &str, observed: u64, limit: u64) -> Response {
        self.inner.refused.fetch_add(1, Ordering::Relaxed);
        Response::Error(SynopticError::ServerOverloaded {
            what: what.to_string(),
            observed,
            limit,
        })
    }

    /// Accept loop: serves connections until [`Server::shutdown`] (or the
    /// process exits). Each connection runs [`Server::handle_transport`]
    /// on its own thread.
    pub fn serve(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let server = self.clone();
                    workers.push(std::thread::spawn(move || {
                        let mut transport = TcpTransport::from_stream(stream);
                        server.handle_transport(&mut transport);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.inner.config.poll_interval);
                }
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Serves one connection over any [`Transport`] until the peer closes
    /// (or shutdown). Exposed so tests drive the exact production code
    /// path through `MemTransport` pairs and `FaultyTransport` wrappers.
    ///
    /// A frame that fails validation (torn, bit-flipped, truncated) is
    /// answered with the decode error and the connection keeps serving —
    /// corruption refuses the *frame*, never the link.
    pub fn handle_transport(&self, transport: &mut dyn Transport) {
        self.inner.connections.fetch_add(1, Ordering::SeqCst);
        let active = self.inner.active.fetch_add(1, Ordering::SeqCst) + 1;
        let _active_guard = GaugeGuard(&self.inner.active);
        if active > self.inner.config.max_connections {
            let refusal = self.refuse(
                "connection quota",
                active,
                self.inner.config.max_connections,
            );
            let _ = transport.send(&encode_response(&refusal));
            transport.close();
            return;
        }
        // Per-connection snapshot readers: one atomic generation check per
        // batch in the steady state, no shared lock traffic on the answer
        // path. Each entry remembers which ColumnState it belongs to, so
        // a column replaced via `register` is noticed (see CachedReader).
        let mut readers: HashMap<String, CachedReader> = HashMap::new();
        let mut ops: u64 = 0;
        loop {
            match transport.recv(Some(self.inner.config.poll_interval)) {
                Ok(Received::Frame(bytes)) => {
                    let response = self.respond(&bytes, &mut readers, &mut ops);
                    if transport.send(&encode_response(&response)).is_err() {
                        return;
                    }
                }
                Ok(Received::TimedOut) => {
                    if self.inner.shutdown.load(Ordering::SeqCst) {
                        transport.close();
                        return;
                    }
                }
                Ok(Received::Closed) | Err(_) => return,
            }
        }
    }

    /// Decodes and executes one request frame, producing exactly one
    /// response. Never panics on wire input: malformed bytes become the
    /// decode error, refusals become [`SynopticError::ServerOverloaded`].
    fn respond(
        &self,
        bytes: &[u8],
        readers: &mut HashMap<String, CachedReader>,
        ops: &mut u64,
    ) -> Response {
        let request = match decode_request(bytes) {
            Ok(r) => r,
            Err(e) => return Response::Error(e),
        };
        *ops += 1;
        if let Some(quota) = self.inner.config.ops_quota {
            if *ops > quota {
                return self.refuse("connection quota", *ops, quota);
            }
        }
        let inflight = self.inner.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        let _inflight_guard = GaugeGuard(&self.inner.inflight);
        if inflight > self.inner.config.max_queue_depth {
            return self.refuse("queue depth", inflight, self.inner.config.max_queue_depth);
        }
        match request {
            Request::Ping => Response::Pong,
            Request::EstimateBatch(batch) => self.estimate_batch(&batch.column, &batch, readers),
            Request::Update { column, deltas } => self.apply_updates(&column, &deltas),
            Request::Stats { column } => self.stats_for(&column),
        }
    }

    fn estimate_batch(
        &self,
        name: &str,
        batch: &synoptic_api::wire::QueryBatch,
        readers: &mut HashMap<String, CachedReader>,
    ) -> Response {
        let Some(col) = self.column(name) else {
            return Response::Error(unknown_column(name));
        };
        if batch.ranges.len() > self.inner.config.max_batch {
            return Response::Error(SynopticError::InvalidParameter(format!(
                "batch of {} ranges exceeds the configured maximum {}",
                batch.ranges.len(),
                self.inner.config.max_batch
            )));
        }
        let stats = col.handle.stats();
        if let Some(max_lag) = self.inner.config.max_rebuild_lag {
            if stats.updates_since_rebuild > max_lag {
                return self.refuse("rebuild lag", stats.updates_since_rebuild, max_lag);
            }
        }
        // The batch's one snapshot pin: every range below reads this Arc
        // at this generation, no matter what hot-swaps mid-batch. The
        // cached reader is only valid for the ColumnState it was created
        // from — re-registration replaces that Arc, so a stale entry is
        // re-fetched rather than pinning the replaced column forever.
        let entry = readers
            .entry(name.to_string())
            .and_modify(|cached| {
                if !Arc::ptr_eq(&cached.column, &col) {
                    *cached = CachedReader {
                        column: Arc::clone(&col),
                        reader: col.handle.reader(),
                    };
                }
            })
            .or_insert_with(|| CachedReader {
                column: Arc::clone(&col),
                reader: col.handle.reader(),
            });
        let (generation, snapshot) = entry.reader.pinned();
        let snapshot = Arc::clone(snapshot);
        let n = snapshot.n();
        let mut values = Vec::with_capacity(batch.ranges.len());
        let mut cached = Vec::with_capacity(batch.ranges.len());
        for q in &batch.ranges {
            if q.hi >= n {
                return Response::Error(SynopticError::IndexOutOfBounds { index: q.hi, n });
            }
            match col.cache.lookup(generation, q.lo, q.hi) {
                Some(v) => {
                    values.push(v);
                    cached.push(true);
                }
                None => {
                    let v = snapshot.estimate(*q);
                    col.cache.store(generation, q.lo, q.hi, v);
                    values.push(v);
                    cached.push(false);
                }
            }
        }
        Response::Estimates(BatchAnswer {
            generation,
            source: AnswerSource::Primary,
            lag: stats.updates_since_rebuild,
            outcome: col.handle.last_outcome(),
            segment_outcomes: col.handle.segment_outcomes(),
            values,
            cached,
        })
    }

    fn apply_updates(&self, name: &str, deltas: &[(u64, i64)]) -> Response {
        let Some(col) = self.column(name) else {
            return Response::Error(unknown_column(name));
        };
        // Bounds are pre-validated so the common client mistake — a bad
        // index anywhere in the batch — is refused atomically, before any
        // delta touches state (the pool handle only bounds-checks
        // journaled columns itself).
        let n = col.handle.estimator().n();
        for &(i, _) in deltas {
            if i as usize >= n {
                return Response::Error(SynopticError::IndexOutOfBounds {
                    index: i as usize,
                    n,
                });
            }
        }
        // Past the bounds check, application is sequential and NOT
        // atomic: a delta can still fail for non-bounds reasons (a WAL
        // append error, the pool shut down mid-batch), leaving every
        // earlier delta applied. The error names how far the batch got
        // (on variants that carry free text) and docs/SERVING.md states
        // the partial-application contract, so the client never mistakes
        // such an error for "nothing happened".
        let mut scheduled = 0u64;
        for (at, &(i, delta)) in deltas.iter().enumerate() {
            match col.handle.update(i as usize, delta) {
                Ok(true) => scheduled += 1,
                Ok(false) => {}
                Err(e) => return Response::Error(annotate_partial(e, at, deltas.len())),
            }
        }
        Response::Updated {
            applied: deltas.len() as u64,
            scheduled,
        }
    }

    fn stats_for(&self, name: &str) -> Response {
        let Some(col) = self.column(name) else {
            return Response::Error(unknown_column(name));
        };
        let stats = col.handle.stats();
        Response::Stats(ServerStats {
            column: name.to_string(),
            n: col.handle.estimator().n() as u64,
            generation: col.handle.serving_generation(),
            updates: stats.updates,
            rebuilds: stats.rebuilds,
            failed_rebuilds: stats.failed_rebuilds,
            updates_since_rebuild: stats.updates_since_rebuild,
            cache_hits: col.cache.hits(),
            cache_misses: col.cache.misses(),
            cache_invalidations: col.cache.invalidations(),
            refused: self.inner.refused.load(Ordering::Relaxed),
            connections: self.inner.connections.load(Ordering::SeqCst),
        })
    }
}

fn unknown_column(name: &str) -> SynopticError {
    SynopticError::InvalidParameter(format!("unknown column {name:?}"))
}

/// Notes mid-batch progress on error variants that carry free text, so a
/// client receiving a non-bounds failure learns how far its update batch
/// got. Deltas *before* `failed_at` are applied for certain; the failing
/// delta itself may or may not be, depending on where in ingestion the
/// error arose. Structured variants pass through unchanged and rely on
/// the documented contract (docs/SERVING.md §2: updates past the bounds
/// check are not atomic).
fn annotate_partial(e: SynopticError, failed_at: usize, total: usize) -> SynopticError {
    let note =
        format!("update batch failed at delta {failed_at} of {total}; earlier deltas are applied");
    match e {
        SynopticError::Io { path, detail } => SynopticError::Io {
            path,
            detail: format!("{detail} ({note})"),
        },
        SynopticError::CorruptJournal { context, detail } => SynopticError::CorruptJournal {
            context,
            detail: format!("{detail} ({note})"),
        },
        SynopticError::InvalidParameter(msg) => {
            SynopticError::InvalidParameter(format!("{msg} ({note})"))
        }
        other => other,
    }
}

/// Compile-time proof the server crosses thread boundaries (one thread
/// per connection).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
};
