//! A self-healing client wrapper: retries, backoff, reconnect, and a
//! circuit breaker over the plain [`Client`].
//!
//! The plain client is deliberately unforgiving — any event that could
//! desynchronize request/response pairing poisons the connection and
//! every later call fails. That is the right *primitive*, but callers
//! under real networks want the obvious recovery policy applied for
//! them. [`ResilientClient`] wraps a connection factory and:
//!
//! * **reconnects** — a poisoned or lost connection is dropped and the
//!   next attempt dials a fresh one;
//! * **retries idempotent calls** — estimates, pings, and stats are
//!   retried up to the policy's attempt budget with **jittered
//!   exponential backoff** (deterministic: the jitter comes from a
//!   seeded [`Rng`], the waits go through an injectable sleeper, and the
//!   breaker clock is injectable too, so tests sweep every transition
//!   without wall time). Updates are **never retried** — an update whose
//!   response was lost may have been applied, and replaying it would
//!   double-count; the caller gets the error and decides;
//! * **breaks the circuit** — after `breaker_threshold` *consecutive
//!   transport* failures the breaker opens and calls fail fast (a local
//!   [`SynopticError::ServerOverloaded`] naming the breaker, exit code
//!   10) without touching the network. After `breaker_cooldown_ms` on
//!   the injected clock it half-opens: the next call is the probe, and
//!   its outcome closes or re-opens the breaker.
//!
//! **Transport vs structural** is the load-bearing distinction, and the
//! plain client already encodes it: an error that poisoned the
//! connection (send failure, timeout, peer close, torn frame) is a
//! *transport* failure — it counts toward the breaker and forces a
//! reconnect. An error that arrived as a well-formed response frame
//! (a refusal, an unknown column, a server-side deadline shed) is
//! *structural* — the connection is fine, the breaker resets, and only
//! [`SynopticError::ServerOverloaded`] is worth retrying (the server
//! said "not now", and backoff is exactly the polite response). When the
//! retry budget runs out, the caller sees the **last structural** error
//! if any attempt produced one — "the server refused me" explains the
//! outcome better than "the wire also hiccuped once".
//!
//! [`Rng`]: synoptic_core::Rng

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use synoptic_api::wire::{BatchAnswer, RequestHeader, ServerStats};
use synoptic_core::{RangeQuery, Result, Rng, SynopticError};
use synoptic_repl::{Clock, WallClock};

use crate::client::Client;

/// Dials a fresh connection; called on first use and after any
/// transport failure.
pub type Connector = Box<dyn Fn() -> Result<Client> + Send + Sync>;

/// Performs a backoff wait. Production sleeps the thread; tests inject a
/// recorder and assert the exact schedule.
pub type Sleeper = Box<dyn Fn(Duration) + Send + Sync>;

/// Retry, backoff, and circuit-breaker tuning for a
/// [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per idempotent call (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Consecutive transport failures that open the breaker.
    pub breaker_threshold: u32,
    /// Clock ticks (ms) the breaker stays open before half-opening.
    pub breaker_cooldown_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            breaker_threshold: 3,
            breaker_cooldown_ms: 1_000,
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

/// Where the circuit breaker is in its closed → open → half-open cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls go to the network.
    Closed,
    /// Tripped: calls fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next call is the probe that decides.
    HalfOpen,
}

struct State {
    client: Option<Client>,
    /// Consecutive transport failures since the last healthy exchange.
    transport_failures: u32,
    breaker: BreakerState,
    /// Clock tick the breaker (re-)opened at.
    opened_at: u64,
}

/// The self-healing wrapper (see the module docs). Methods take `&self`;
/// state sits behind a mutex so one instance can be shared.
pub struct ResilientClient {
    connector: Connector,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    sleep: Sleeper,
    rng: Mutex<Rng>,
    state: Mutex<State>,
}

impl ResilientClient {
    /// Wraps `connector` with the default wall clock and a real
    /// thread-sleep for backoff.
    pub fn new(connector: Connector, policy: RetryPolicy) -> Self {
        Self::with_clock(
            connector,
            policy,
            Arc::new(WallClock::new()),
            Box::new(std::thread::sleep),
        )
    }

    /// Full dependency injection — how tests make every retry, backoff,
    /// and breaker transition deterministic.
    pub fn with_clock(
        connector: Connector,
        policy: RetryPolicy,
        clock: Arc<dyn Clock>,
        sleep: Sleeper,
    ) -> Self {
        let rng = Mutex::new(Rng::new(policy.jitter_seed));
        Self {
            connector,
            policy,
            clock,
            sleep,
            rng,
            state: Mutex::new(State {
                client: None,
                transport_failures: 0,
                breaker: BreakerState::Closed,
                opened_at: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The breaker's current position (open transitions to half-open
    /// lazily, on the next gated call — this accessor reports the stored
    /// state without advancing it).
    pub fn breaker_state(&self) -> BreakerState {
        self.lock().breaker
    }

    /// Fail-fast gate: `Err` while the breaker is open and the cooldown
    /// has not elapsed; flips open → half-open when it has.
    fn gate(&self) -> Result<()> {
        let mut state = self.lock();
        if state.breaker == BreakerState::Open {
            let now = self.clock.now();
            if now.saturating_sub(state.opened_at) >= self.policy.breaker_cooldown_ms {
                state.breaker = BreakerState::HalfOpen;
            } else {
                return Err(SynopticError::ServerOverloaded {
                    what: "circuit breaker".to_string(),
                    observed: state.transport_failures as u64,
                    limit: self.policy.breaker_threshold as u64,
                });
            }
        }
        Ok(())
    }

    /// The current connection, dialing a fresh one if the last was
    /// dropped. A failed dial is itself a transport failure.
    fn ensure_client(&self) -> Result<()> {
        let mut state = self.lock();
        if state.client.is_none() {
            match (self.connector)() {
                Ok(c) => state.client = Some(c),
                Err(e) => {
                    drop(state);
                    self.on_transport_failure();
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Any full request/response exchange — success *or* a structural
    /// error frame — proves the transport healthy: the failure streak
    /// resets and a probing breaker closes.
    fn on_exchange(&self) {
        let mut state = self.lock();
        state.transport_failures = 0;
        state.breaker = BreakerState::Closed;
    }

    /// A transport failure drops the connection (it is poisoned or
    /// gone), advances the streak, and trips or re-opens the breaker.
    fn on_transport_failure(&self) {
        let mut state = self.lock();
        state.client = None;
        state.transport_failures = state.transport_failures.saturating_add(1);
        let reopen_probe = state.breaker == BreakerState::HalfOpen;
        if reopen_probe || state.transport_failures >= self.policy.breaker_threshold {
            state.breaker = BreakerState::Open;
            state.opened_at = self.clock.now();
        }
    }

    /// The jittered exponential backoff before retry `attempt` (1-based
    /// over the retries): `base << (attempt-1)` capped at the ceiling,
    /// then equal-jittered to `[half, full]` so synchronized clients
    /// de-synchronize. Deterministic per seed.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(32))
            .min(self.policy.max_backoff_ms)
            .max(1);
        let half = exp / 2;
        let jittered = half
            + self
                .rng
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .bounded_u64(exp - half + 1);
        Duration::from_millis(jittered)
    }

    /// Runs one idempotent call under the full policy: breaker gate,
    /// reconnect, classify, retry with backoff. See the module docs for
    /// which errors retry and which surface immediately.
    fn call_idempotent<T>(&self, f: impl Fn(&Client) -> Result<T>) -> Result<T> {
        let mut last_structural: Option<SynopticError> = None;
        let mut last_transport: Option<SynopticError> = None;
        for attempt in 0..self.policy.max_attempts {
            if let Err(gate_err) = self.gate() {
                // The breaker opened (possibly mid-loop): fail fast — no
                // backoff, no network — but prefer the structural answer
                // an earlier attempt got; it explains *why* things went
                // wrong, not just that the breaker noticed.
                return Err(last_structural.unwrap_or(gate_err));
            }
            if attempt > 0 {
                (self.sleep)(self.backoff(attempt - 1));
            }
            if let Err(e) = self.ensure_client() {
                last_transport = Some(e);
                continue;
            }
            // Call outside the state lock; the client serializes
            // internally.
            let result = {
                let state = self.lock();
                let client = state.client.as_ref().expect("ensured above");
                f(client)
            };
            match result {
                Ok(v) => {
                    self.on_exchange();
                    return Ok(v);
                }
                Err(e) => {
                    let poisoned = self
                        .lock()
                        .client
                        .as_ref()
                        .map(|c| c.is_poisoned())
                        .unwrap_or(true);
                    if poisoned {
                        self.on_transport_failure();
                        last_transport = Some(e);
                    } else {
                        self.on_exchange();
                        match e {
                            // "Not now" — backoff and retry is the
                            // designed response.
                            SynopticError::ServerOverloaded { .. } => {
                                last_structural = Some(e);
                            }
                            // Any other structural error is a fact about
                            // the request; retrying cannot change it.
                            other => return Err(other),
                        }
                    }
                }
            }
        }
        Err(last_structural
            .or(last_transport)
            .expect("max_attempts >= 1 guarantees at least one recorded error"))
    }

    /// Retrying [`Client::ping_with`].
    pub fn ping_with(&self, header: &RequestHeader) -> Result<()> {
        self.call_idempotent(|c| c.ping_with(header))
    }

    /// Retrying [`Client::ping`].
    pub fn ping(&self) -> Result<()> {
        self.ping_with(&RequestHeader::default())
    }

    /// Retrying [`Client::estimate_batch_with`] — estimates are
    /// idempotent, so lost responses are safe to re-ask.
    pub fn estimate_batch_with(
        &self,
        header: &RequestHeader,
        column: &str,
        ranges: Vec<RangeQuery>,
    ) -> Result<BatchAnswer> {
        self.call_idempotent(|c| c.estimate_batch_with(header, column, ranges.clone()))
    }

    /// Retrying [`Client::estimate_batch`].
    pub fn estimate_batch(&self, column: &str, ranges: Vec<RangeQuery>) -> Result<BatchAnswer> {
        self.estimate_batch_with(&RequestHeader::default(), column, ranges)
    }

    /// Retrying [`Client::stats_with`].
    pub fn stats_with(&self, header: &RequestHeader, column: &str) -> Result<ServerStats> {
        self.call_idempotent(|c| c.stats_with(header, column))
    }

    /// Retrying [`Client::stats`].
    pub fn stats(&self, column: &str) -> Result<ServerStats> {
        self.stats_with(&RequestHeader::default(), column)
    }

    /// [`Client::update_with`] behind the breaker gate and
    /// auto-reconnect, but with **no retry**: an update whose response
    /// was lost may have been applied, and replaying it would
    /// double-count. The transport outcome still feeds the breaker.
    pub fn update_with(
        &self,
        header: &RequestHeader,
        column: &str,
        deltas: Vec<(u64, i64)>,
    ) -> Result<(u64, u64)> {
        self.gate()?;
        self.ensure_client()?;
        let result = {
            let state = self.lock();
            let client = state.client.as_ref().expect("ensured above");
            client.update_with(header, column, deltas)
        };
        match result {
            Ok(v) => {
                self.on_exchange();
                Ok(v)
            }
            Err(e) => {
                let poisoned = self
                    .lock()
                    .client
                    .as_ref()
                    .map(|c| c.is_poisoned())
                    .unwrap_or(true);
                if poisoned {
                    self.on_transport_failure();
                } else {
                    self.on_exchange();
                }
                Err(e)
            }
        }
    }

    /// Non-retrying [`Client::update`] with reconnect and breaker gating.
    pub fn update(&self, column: &str, deltas: Vec<(u64, i64)>) -> Result<(u64, u64)> {
        self.update_with(&RequestHeader::default(), column, deltas)
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ResilientClient>();
};
