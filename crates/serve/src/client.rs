//! The network client: the same [`Queryable`] surface as every
//! in-process answerer, over a TCP connection to a `synoptic serve`
//! process.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use synoptic_api::wire::{
    decode_response, encode_request, BatchAnswer, Request, Response, ServerStats,
};
use synoptic_api::{AnswerEnvelope, Queryable};
use synoptic_core::{RangeQuery, Result, SynopticError};
use synoptic_repl::{Received, TcpTransport, Transport};

/// A blocking call/response client. Methods take `&self` (the transport
/// sits behind a mutex), so one client can be shared across threads —
/// calls serialize on the connection.
///
/// Server-side errors come back structurally: a refusal under admission
/// control surfaces as [`SynopticError::ServerOverloaded`] with the same
/// fields (and exit code) it had on the server.
pub struct Client {
    transport: Mutex<TcpTransport>,
    timeout: Duration,
}

impl Client {
    /// Connects with a 30-second response timeout.
    pub fn connect(addr: &str) -> Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connects with an explicit per-call response timeout.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<Self> {
        Ok(Self {
            transport: Mutex::new(TcpTransport::connect(addr)?),
            timeout,
        })
    }

    fn lock(&self) -> MutexGuard<'_, TcpTransport> {
        self.transport
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// One request, one response, in order on this connection.
    fn call(&self, request: &Request) -> Result<Response> {
        let mut t = self.lock();
        t.send(&encode_request(request))?;
        match t.recv(Some(self.timeout))? {
            Received::Frame(frame) => match decode_response(&frame)? {
                Response::Error(e) => Err(e),
                other => Ok(other),
            },
            Received::TimedOut => Err(SynopticError::DeadlineExceeded {
                elapsed_ms: self.timeout.as_millis() as u64,
            }),
            Received::Closed => Err(SynopticError::Io {
                path: "serve client".to_string(),
                detail: "server closed the connection mid-call".to_string(),
            }),
        }
    }

    fn mismatch(got: &Response) -> SynopticError {
        SynopticError::CorruptSynopsis {
            context: "query frame".to_string(),
            detail: format!("response kind does not match the request: {got:?}"),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::mismatch(&other)),
        }
    }

    /// Answers every range against one server-side snapshot pin; the
    /// returned [`BatchAnswer`] carries the shared generation, source,
    /// lag, and build provenance plus per-range values and cache flags.
    pub fn estimate_batch(&self, column: &str, ranges: Vec<RangeQuery>) -> Result<BatchAnswer> {
        let request = Request::EstimateBatch(synoptic_api::wire::QueryBatch::new(column, ranges));
        match self.call(&request)? {
            Response::Estimates(b) => Ok(b),
            other => Err(Self::mismatch(&other)),
        }
    }

    /// Applies `A[index] += delta` point updates in order; returns
    /// `(applied, rebuilds scheduled)`.
    pub fn update(&self, column: &str, deltas: Vec<(u64, i64)>) -> Result<(u64, u64)> {
        let request = Request::Update {
            column: column.to_string(),
            deltas,
        };
        match self.call(&request)? {
            Response::Updated { applied, scheduled } => Ok((applied, scheduled)),
            other => Err(Self::mismatch(&other)),
        }
    }

    /// Maintenance, cache, and admission meters for one column.
    pub fn stats(&self, column: &str) -> Result<ServerStats> {
        let request = Request::Stats {
            column: column.to_string(),
        };
        match self.call(&request)? {
            Response::Stats(s) => Ok(s),
            other => Err(Self::mismatch(&other)),
        }
    }
}

/// A remote column is as queryable as a local one: a batch of one, with
/// the envelope's provenance taken from the batch-wide fields.
impl Queryable for Client {
    fn query(&self, column: &str, q: RangeQuery) -> Result<AnswerEnvelope> {
        let answer = self.estimate_batch(column, vec![q])?;
        answer
            .envelopes()
            .into_iter()
            .next()
            .ok_or_else(|| SynopticError::CorruptSynopsis {
                context: "query frame".to_string(),
                detail: "empty answer for a one-range batch".to_string(),
            })
    }
}
