//! The network client: the same [`Queryable`] surface as every
//! in-process answerer, over a TCP connection to a `synoptic serve`
//! process.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use synoptic_api::wire::{
    decode_response, encode_request_with, BatchAnswer, Request, RequestHeader, Response,
    ServerStats,
};
use synoptic_api::{AnswerEnvelope, Queryable};
use synoptic_core::{RangeQuery, Result, SynopticError};
use synoptic_repl::{Received, TcpTransport, Transport};

/// One connection plus its health. `SQP1` has no request IDs — pairing
/// is purely positional — so any event that can leave a response in
/// flight (a timeout, a torn transport) permanently **poisons** the
/// connection: the alternative would be reading that stale response as
/// the answer to the *next* request, silently serving the wrong values.
struct Conn {
    transport: Box<dyn Transport>,
    /// Set the moment request/response pairing can no longer be trusted;
    /// every later call fails loudly instead of desynchronizing.
    poisoned: bool,
}

/// A blocking call/response client. Methods take `&self` (the transport
/// sits behind a mutex), so one client can be shared across threads —
/// calls serialize on the connection.
///
/// Server-side errors come back structurally: a refusal under admission
/// control surfaces as [`SynopticError::ServerOverloaded`] with the same
/// fields (and exit code) it had on the server.
///
/// A call that times out ([`SynopticError::DeadlineExceeded`]) or loses
/// the transport closes and poisons the connection: the protocol pairs
/// requests to responses by position only, so after a timeout the
/// server's (late) response is still in flight and the connection can
/// never be trusted again. Subsequent calls fail with an `Io` error
/// naming the poisoning — reconnect to resume.
pub struct Client {
    conn: Mutex<Conn>,
    timeout: Duration,
}

impl Client {
    /// Connects with a 30-second response timeout.
    pub fn connect(addr: &str) -> Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connects with an explicit per-call response timeout.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<Self> {
        Ok(Self::from_transport(
            Box::new(TcpTransport::connect(addr)?),
            timeout,
        ))
    }

    /// A client over an already-connected transport — how tests drive the
    /// exact production client through `MemTransport` pairs and
    /// `FaultyTransport` wrappers.
    pub fn from_transport(transport: Box<dyn Transport>, timeout: Duration) -> Self {
        Self {
            conn: Mutex::new(Conn {
                transport,
                poisoned: false,
            }),
            timeout,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Conn> {
        self.conn.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether an earlier timeout or transport failure has poisoned the
    /// connection (every later call fails until the caller reconnects).
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned
    }

    /// Marks the connection unusable and closes it, so a desynchronized
    /// response stream can never be read as an answer.
    fn poison(conn: &mut Conn) {
        conn.poisoned = true;
        conn.transport.close();
    }

    /// One request, one response, in order on this connection. An empty
    /// header encodes to the exact pre-header frame bytes, so a client
    /// that never sets one is wire-identical to a PR-9 client.
    fn call(&self, header: &RequestHeader, request: &Request) -> Result<Response> {
        let mut conn = self.lock();
        if conn.poisoned {
            return Err(SynopticError::Io {
                path: "serve client".to_string(),
                detail: "connection poisoned by an earlier timeout or transport \
                         failure; reconnect to resume"
                    .to_string(),
            });
        }
        if let Err(e) = conn.transport.send(&encode_request_with(header, request)) {
            // A failed send may have written a partial frame: pairing is
            // no longer trustworthy.
            Self::poison(&mut conn);
            return Err(e);
        }
        // A per-call deadline bounds the local wait too: there is no
        // point waiting longer than the server was given to answer.
        let timeout = match header.deadline_ms {
            Some(ms) => self.timeout.min(Duration::from_millis(ms.max(1))),
            None => self.timeout,
        };
        match conn.transport.recv(Some(timeout)) {
            // A whole frame arrived, so pairing is intact even when its
            // contents fail validation — the connection stays usable.
            Ok(Received::Frame(frame)) => match decode_response(&frame)? {
                Response::Error(e) => Err(e),
                other => Ok(other),
            },
            // The response is still in flight; if we kept the connection,
            // the next call would read it as its own answer (SQP1 has no
            // request IDs). Poison instead: wrong answers are worse than
            // a dead connection.
            Ok(Received::TimedOut) => {
                Self::poison(&mut conn);
                Err(SynopticError::DeadlineExceeded {
                    elapsed_ms: timeout.as_millis() as u64,
                })
            }
            Ok(Received::Closed) => {
                Self::poison(&mut conn);
                Err(SynopticError::Io {
                    path: "serve client".to_string(),
                    detail: "server closed the connection mid-call".to_string(),
                })
            }
            Err(e) => {
                Self::poison(&mut conn);
                Err(e)
            }
        }
    }

    fn mismatch(got: &Response) -> SynopticError {
        SynopticError::CorruptSynopsis {
            context: "query frame".to_string(),
            detail: format!("response kind does not match the request: {got:?}"),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<()> {
        self.ping_with(&RequestHeader::default())
    }

    /// [`Client::ping`] with an explicit request header (deadline,
    /// tenant).
    pub fn ping_with(&self, header: &RequestHeader) -> Result<()> {
        match self.call(header, &Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::mismatch(&other)),
        }
    }

    /// Answers every range against one server-side snapshot pin; the
    /// returned [`BatchAnswer`] carries the shared generation, source,
    /// lag, and build provenance plus per-range values and cache flags.
    pub fn estimate_batch(&self, column: &str, ranges: Vec<RangeQuery>) -> Result<BatchAnswer> {
        self.estimate_batch_with(&RequestHeader::default(), column, ranges)
    }

    /// [`Client::estimate_batch`] with an explicit request header:
    /// `deadline_ms` bounds both the server-side work and the local
    /// wait, `tenant` names the admission bucket, and `degrade_ok` lets
    /// an overloaded server answer from the degradation ladder — the
    /// returned answer's `rung` field says which rung, so degradation is
    /// never silent.
    pub fn estimate_batch_with(
        &self,
        header: &RequestHeader,
        column: &str,
        ranges: Vec<RangeQuery>,
    ) -> Result<BatchAnswer> {
        let request = Request::EstimateBatch(synoptic_api::wire::QueryBatch::new(column, ranges));
        match self.call(header, &request)? {
            Response::Estimates(b) => Ok(b),
            other => Err(Self::mismatch(&other)),
        }
    }

    /// Applies `A[index] += delta` point updates in order; returns
    /// `(applied, rebuilds scheduled)`.
    pub fn update(&self, column: &str, deltas: Vec<(u64, i64)>) -> Result<(u64, u64)> {
        self.update_with(&RequestHeader::default(), column, deltas)
    }

    /// [`Client::update`] with an explicit request header. `degrade_ok`
    /// has no meaning for updates (there is no degraded write); the
    /// deadline and tenant apply as for estimates.
    pub fn update_with(
        &self,
        header: &RequestHeader,
        column: &str,
        deltas: Vec<(u64, i64)>,
    ) -> Result<(u64, u64)> {
        let request = Request::Update {
            column: column.to_string(),
            deltas,
        };
        match self.call(header, &request)? {
            Response::Updated { applied, scheduled } => Ok((applied, scheduled)),
            other => Err(Self::mismatch(&other)),
        }
    }

    /// Maintenance, cache, and admission meters for one column.
    pub fn stats(&self, column: &str) -> Result<ServerStats> {
        self.stats_with(&RequestHeader::default(), column)
    }

    /// [`Client::stats`] with an explicit request header. A headered
    /// stats request receives the extended frame, so the overload meters
    /// (deadline sheds, degraded answers, tenants, latency percentiles)
    /// come back populated instead of zeroed.
    pub fn stats_with(&self, header: &RequestHeader, column: &str) -> Result<ServerStats> {
        let request = Request::Stats {
            column: column.to_string(),
        };
        match self.call(header, &request)? {
            Response::Stats(s) => Ok(s),
            other => Err(Self::mismatch(&other)),
        }
    }
}

/// A remote column is as queryable as a local one: a batch of one, with
/// the envelope's provenance taken from the batch-wide fields.
impl Queryable for Client {
    fn query(&self, column: &str, q: RangeQuery) -> Result<AnswerEnvelope> {
        let answer = self.estimate_batch(column, vec![q])?;
        answer
            .envelopes()
            .into_iter()
            .next()
            .ok_or_else(|| SynopticError::CorruptSynopsis {
                context: "query frame".to_string(),
                detail: "empty answer for a one-range batch".to_string(),
            })
    }
}
