//! The hot-range answer cache: `(column, generation, range) → value`.
//!
//! One cache per served column, shared by every connection. The key
//! *includes the serving generation*: the cache holds answers for exactly
//! one generation at a time, and the first touch at a **newer**
//! generation after a hot swap observes the mismatch, drops every entry,
//! and re-keys forward. A stale-generation hit is therefore impossible
//! by construction — there is never an entry whose generation differs
//! from the cache's current one, and the current one is compared against
//! the *pinned* generation of the batch being answered on every call.
//!
//! Re-keying is **forward only**. A batch still pinned at an *older*
//! generation (its connection pinned before a swap landed) simply misses
//! on lookup and is ignored on store: letting it re-key the cache
//! backwards would clear every newer-generation entry and ping-pong the
//! cache between generations whenever old-pin traffic overlaps post-swap
//! traffic, without making any answer more correct.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

struct CacheState {
    /// The serving generation every stored answer was computed at.
    generation: u64,
    entries: HashMap<(usize, usize), f64>,
}

/// A bounded, generation-keyed answer cache (see the module docs).
pub struct AnswerCache {
    state: Mutex<CacheState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl AnswerCache {
    /// An empty cache holding at most `capacity` answers (0 disables it:
    /// every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(CacheState {
                generation: 0,
                entries: HashMap::new(),
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Re-keys the cache *forward* to `generation` when it is newer than
    /// the current one, dropping every entry computed before it. Older
    /// generations never re-key (see the module docs).
    fn sync_forward(st: &mut CacheState, generation: u64, invalidations: &AtomicU64) {
        if generation > st.generation {
            if !st.entries.is_empty() {
                invalidations.fetch_add(1, Ordering::Relaxed);
            }
            st.entries.clear();
            st.generation = generation;
        }
    }

    /// The cached answer for `(lo, hi)` computed at exactly `generation`,
    /// if present. A newer generation invalidates the whole cache before
    /// the lookup; an older one misses without disturbing the current
    /// entries. Either way a hit is always same-generation.
    pub fn lookup(&self, generation: u64, lo: usize, hi: usize) -> Option<f64> {
        let mut st = self.lock();
        Self::sync_forward(&mut st, generation, &self.invalidations);
        let found = if st.generation == generation {
            st.entries.get(&(lo, hi)).copied()
        } else {
            None
        };
        drop(st);
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an answer computed at `generation`. A newer generation
    /// re-keys the cache forward first. Ignored when the cache is full
    /// (simple admission: hot ranges that repeat will have been stored
    /// while there was room) or when `generation` is older than the
    /// cache's current one (a batch pinned before a swap must not clear
    /// the post-swap entries).
    pub fn store(&self, generation: u64, lo: usize, hi: usize, value: f64) {
        if self.capacity == 0 {
            return;
        }
        let mut st = self.lock();
        Self::sync_forward(&mut st, generation, &self.invalidations);
        if st.generation == generation && st.entries.len() < self.capacity {
            st.entries.insert((lo, hi), value);
        }
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Whole-cache invalidations (forward generation moves observed with
    /// entries present) since creation.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_require_the_exact_generation() {
        let cache = AnswerCache::new(16);
        assert_eq!(cache.lookup(1, 0, 5), None);
        cache.store(1, 0, 5, 42.0);
        assert_eq!(cache.lookup(1, 0, 5), Some(42.0));
        // A generation bump drops the entry: no stale hit, one
        // invalidation counted.
        assert_eq!(cache.lookup(2, 0, 5), None);
        assert_eq!(cache.invalidations(), 1);
        // And the old generation cannot resurrect it either — the cache
        // re-keyed forward to 2, so a lookup at 1 misses (without
        // disturbing the generation-2 entries).
        cache.store(2, 0, 5, 43.0);
        assert_eq!(cache.lookup(1, 0, 5), None);
        assert_eq!(cache.lookup(2, 0, 5), Some(43.0));
    }

    /// A batch still pinned at an older generation must neither clear the
    /// newer entries (store) nor re-key the cache backwards (lookup):
    /// old-pin traffic overlapping post-swap traffic just misses, with no
    /// ping-pong invalidation.
    #[test]
    fn old_generation_traffic_cannot_rekey_the_cache_backwards() {
        let cache = AnswerCache::new(16);
        cache.store(5, 0, 1, 1.0);
        cache.store(3, 0, 2, 9.0); // old pin: ignored
        assert_eq!(cache.lookup(3, 0, 2), None); // old pin: plain miss
        assert_eq!(
            cache.lookup(5, 0, 1),
            Some(1.0),
            "newer entries survive old-pin traffic"
        );
        assert_eq!(
            cache.invalidations(),
            0,
            "old-pin traffic must not count as invalidation churn"
        );
    }

    #[test]
    fn capacity_bounds_the_entry_count() {
        let cache = AnswerCache::new(2);
        cache.store(1, 0, 0, 1.0);
        cache.store(1, 1, 1, 2.0);
        cache.store(1, 2, 2, 3.0); // over capacity: dropped
        assert_eq!(cache.lookup(1, 0, 0), Some(1.0));
        assert_eq!(cache.lookup(1, 1, 1), Some(2.0));
        assert_eq!(cache.lookup(1, 2, 2), None);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = AnswerCache::new(0);
        cache.store(1, 0, 0, 1.0);
        assert_eq!(cache.lookup(1, 0, 0), None);
    }
}
