//! The hot-range answer cache: `(column, generation, range) → value`.
//!
//! One cache per served column, shared by every connection. The key
//! *includes the serving generation*: the cache holds answers for exactly
//! one generation at a time, and the first lookup after a hot swap
//! observes the mismatch, drops every entry, and re-keys to the new
//! generation. A stale-generation hit is therefore impossible by
//! construction — there is never an entry whose generation differs from
//! the cache's current one, and the current one is compared against the
//! *pinned* generation of the batch being answered on every call.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

struct CacheState {
    /// The serving generation every stored answer was computed at.
    generation: u64,
    entries: HashMap<(usize, usize), f64>,
}

/// A bounded, generation-keyed answer cache (see the module docs).
pub struct AnswerCache {
    state: Mutex<CacheState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl AnswerCache {
    /// An empty cache holding at most `capacity` answers (0 disables it:
    /// every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(CacheState {
                generation: 0,
                entries: HashMap::new(),
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Re-keys the cache to `generation`, dropping every entry computed
    /// at a different one.
    fn sync_generation(st: &mut CacheState, generation: u64, invalidations: &AtomicU64) {
        if st.generation != generation {
            if !st.entries.is_empty() {
                invalidations.fetch_add(1, Ordering::Relaxed);
            }
            st.entries.clear();
            st.generation = generation;
        }
    }

    /// The cached answer for `(lo, hi)` computed at exactly `generation`,
    /// if present. A generation mismatch invalidates the whole cache
    /// before the lookup, so a hit is always same-generation.
    pub fn lookup(&self, generation: u64, lo: usize, hi: usize) -> Option<f64> {
        let mut st = self.lock();
        Self::sync_generation(&mut st, generation, &self.invalidations);
        let found = st.entries.get(&(lo, hi)).copied();
        drop(st);
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an answer computed at `generation`. Ignored when the cache
    /// is full (simple admission: hot ranges that repeat will have been
    /// stored while there was room) or when `generation` is no longer the
    /// cache's current one.
    pub fn store(&self, generation: u64, lo: usize, hi: usize, value: f64) {
        if self.capacity == 0 {
            return;
        }
        let mut st = self.lock();
        Self::sync_generation(&mut st, generation, &self.invalidations);
        if st.entries.len() < self.capacity {
            st.entries.insert((lo, hi), value);
        }
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Whole-cache invalidations (generation moves observed with entries
    /// present) since creation.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_require_the_exact_generation() {
        let cache = AnswerCache::new(16);
        assert_eq!(cache.lookup(1, 0, 5), None);
        cache.store(1, 0, 5, 42.0);
        assert_eq!(cache.lookup(1, 0, 5), Some(42.0));
        // A generation bump drops the entry: no stale hit, one
        // invalidation counted.
        assert_eq!(cache.lookup(2, 0, 5), None);
        assert_eq!(cache.invalidations(), 1);
        // And the old generation cannot resurrect it either — the cache
        // re-keyed to 2, so a lookup at 1 clears again and misses.
        cache.store(2, 0, 5, 43.0);
        assert_eq!(cache.lookup(1, 0, 5), None);
    }

    #[test]
    fn capacity_bounds_the_entry_count() {
        let cache = AnswerCache::new(2);
        cache.store(1, 0, 0, 1.0);
        cache.store(1, 1, 1, 2.0);
        cache.store(1, 2, 2, 3.0); // over capacity: dropped
        assert_eq!(cache.lookup(1, 0, 0), Some(1.0));
        assert_eq!(cache.lookup(1, 1, 1), Some(2.0));
        assert_eq!(cache.lookup(1, 2, 2), None);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = AnswerCache::new(0);
        cache.store(1, 0, 0, 1.0);
        assert_eq!(cache.lookup(1, 0, 0), None);
    }
}
