//! Lock-free log2-bucketed latency histograms for the stats surface.
//!
//! One histogram per request kind. Recording is a single relaxed
//! `fetch_add` on an `AtomicU64` bucket — no lock, no allocation — so
//! the answer path pays a few nanoseconds per request. Bucket `i` holds
//! samples in `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs 0),
//! which keeps the array at 64 entries while covering every expressible
//! latency with ≤2× relative error — plenty for p50/p99 meters whose
//! job is spotting order-of-magnitude shifts under load.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: one per possible `u64` bit position.
const BUCKETS: usize = 64;

/// A concurrent log2 histogram of microsecond latencies.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_for(us: u64) -> usize {
        // ilog2, with 0 folded into bucket 0.
        (63 - us.max(1).leading_zeros()) as usize
    }

    /// Records one sample of `us` microseconds.
    pub fn record(&self, us: u64) {
        self.buckets[Self::bucket_for(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (exclusive, in µs) of the bucket containing the
    /// `q`-quantile sample, or 0 when empty. `q` is in `[0, 1]`; the
    /// value is conservative (an over-estimate by at most 2×), which is
    /// the right direction for a latency meter.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // The rank of the quantile sample, 1-based, clamped into range.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i + 1 >= BUCKETS {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
            }
        }
        unreachable!("rank is clamped to the total count")
    }

    /// Median latency upper bound in µs.
    pub fn p50_us(&self) -> u64 {
        self.quantile_upper_us(0.50)
    }

    /// 99th-percentile latency upper bound in µs.
    pub fn p99_us(&self) -> u64 {
        self.quantile_upper_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_folded_into_bucket_zero() {
        assert_eq!(LatencyHistogram::bucket_for(0), 0);
        assert_eq!(LatencyHistogram::bucket_for(1), 0);
        assert_eq!(LatencyHistogram::bucket_for(2), 1);
        assert_eq!(LatencyHistogram::bucket_for(3), 1);
        assert_eq!(LatencyHistogram::bucket_for(4), 2);
        assert_eq!(LatencyHistogram::bucket_for(1023), 9);
        assert_eq!(LatencyHistogram::bucket_for(1024), 10);
        assert_eq!(LatencyHistogram::bucket_for(u64::MAX), 63);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50_us(), 0, "empty histogram reports 0");
        // 98 fast samples (bucket 0: <2µs), 1 at ~1ms, 1 at ~16ms.
        for _ in 0..98 {
            h.record(1);
        }
        h.record(1000); // bucket 9 → upper bound 1024
        h.record(16_000); // bucket 13 → upper bound 16384
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50_us(), 2, "the median sample sits in bucket 0");
        assert_eq!(h.p99_us(), 1024, "rank 99 of 100 is the ~1ms sample");
        assert_eq!(h.quantile_upper_us(1.0), 16_384, "the max is the tail");
    }

    #[test]
    fn recording_is_safe_across_threads() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn top_bucket_reports_saturated_upper_bound() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.p50_us(), u64::MAX);
    }
}
