//! Per-tenant token-bucket admission.
//!
//! PR 9 metered *connections* (a per-connection ops quota), which is the
//! wrong unit under multiplexing: one tenant opening many connections
//! outruns everyone else, and a shed request still burned the quota of
//! the client being shed. This layer meters *tenants*: every request
//! names its tenant (the [`RequestHeader`] `tenant` field; un-headered
//! clients share the default `""` tenant) and spends one token from that
//! tenant's bucket **only when the server commits to serving it** —
//! refusals for queue depth, rebuild lag, or an expired deadline never
//! consume a token.
//!
//! Buckets refill deterministically from an injected [`Clock`] (wall
//! milliseconds in production, a `ManualClock` in tests): a bucket holds
//! at most `burst` tokens and earns one back every `refill_ms` ticks.
//! A refusal reports `observed = burst + refusals in the current
//! depletion streak` against `limit = burst`, so a client can read how
//! far over its budget it is straight out of the error.
//!
//! [`RequestHeader`]: synoptic_api::wire::RequestHeader
//! [`Clock`]: synoptic_repl::Clock

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use synoptic_repl::Clock;

struct Bucket {
    tokens: u64,
    /// Clock tick the bucket last earned a token at (refills accrue from
    /// here, so fractional progress toward the next token is never lost).
    last_refill: u64,
    /// Consecutive refusals since the last admit — the overdraft the
    /// refusal's `observed` field reports on top of `burst`.
    debt: u64,
}

/// The per-tenant token-bucket table (see the module docs).
pub struct TenantBuckets {
    /// Bucket capacity; `None` disables metering entirely.
    burst: Option<u64>,
    /// Clock ticks (milliseconds in production) to earn one token back.
    /// `0` means refill-to-full on every check — rate-unlimited, with
    /// `burst` only bounding a single instant's overdraft accounting.
    refill_ms: u64,
    clock: Arc<dyn Clock>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantBuckets {
    /// A bucket table over `clock`. `burst: None` admits everything.
    pub fn new(burst: Option<u64>, refill_ms: u64, clock: Arc<dyn Clock>) -> Self {
        Self {
            burst,
            refill_ms,
            clock,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Bucket>> {
        self.buckets.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Spends one token from `tenant`'s bucket. `Err((observed, limit))`
    /// means the bucket is dry: the caller refuses the request with
    /// those provenance fields and MUST NOT have done the work yet.
    pub fn try_take(&self, tenant: &str) -> Result<(), (u64, u64)> {
        let Some(burst) = self.burst else {
            return Ok(());
        };
        let now = self.clock.now();
        let mut buckets = self.lock();
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: burst,
            last_refill: now,
            debt: 0,
        });
        match now
            .saturating_sub(bucket.last_refill)
            .checked_div(self.refill_ms)
        {
            // A zero refill interval means instant refill: always full.
            None => bucket.tokens = burst,
            Some(earned) if earned > 0 => {
                bucket.tokens = bucket.tokens.saturating_add(earned).min(burst);
                // Advance by whole intervals only, so fractional refill
                // progress carries over to the next call.
                bucket.last_refill += earned * self.refill_ms;
            }
            Some(_) => {}
        }
        if bucket.tokens > 0 {
            bucket.tokens -= 1;
            bucket.debt = 0;
            Ok(())
        } else {
            bucket.debt = bucket.debt.saturating_add(1);
            Err((burst.saturating_add(bucket.debt), burst))
        }
    }

    /// Distinct tenants seen so far (0 when metering is disabled —
    /// nothing is tracked).
    pub fn tenants(&self) -> u64 {
        self.lock().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_repl::ManualClock;

    fn table(burst: u64, refill_ms: u64) -> (TenantBuckets, ManualClock) {
        let clock = ManualClock::new();
        let t = TenantBuckets::new(Some(burst), refill_ms, Arc::new(clock.clone()));
        (t, clock)
    }

    #[test]
    fn burst_admits_then_refuses_with_escalating_overdraft() {
        let (t, _clock) = table(2, 1000);
        assert!(t.try_take("a").is_ok());
        assert!(t.try_take("a").is_ok());
        assert_eq!(t.try_take("a"), Err((3, 2)));
        assert_eq!(t.try_take("a"), Err((4, 2)), "overdraft escalates");
        // A different tenant has its own bucket — fairness by key.
        assert!(t.try_take("b").is_ok());
        assert_eq!(t.tenants(), 2);
    }

    #[test]
    fn tokens_refill_from_the_clock_and_cap_at_burst() {
        let (t, clock) = table(2, 100);
        assert!(t.try_take("a").is_ok());
        assert!(t.try_take("a").is_ok());
        assert!(t.try_take("a").is_err());
        clock.advance(99);
        assert!(t.try_take("a").is_err(), "one tick short of a token");
        clock.advance(1);
        assert!(t.try_take("a").is_ok(), "exactly one token earned");
        assert!(t.try_take("a").is_err());
        // A long idle period refills to burst, never beyond.
        clock.advance(100_000);
        assert!(t.try_take("a").is_ok());
        assert!(t.try_take("a").is_ok());
        assert!(t.try_take("a").is_err(), "capacity is still `burst`");
    }

    #[test]
    fn refill_progress_is_not_lost_across_partial_windows() {
        let (t, clock) = table(1, 100);
        assert!(t.try_take("a").is_ok());
        clock.advance(60);
        assert!(t.try_take("a").is_err());
        clock.advance(60);
        // 120 ticks total since last refill: the token landed at 100.
        assert!(t.try_take("a").is_ok());
    }

    #[test]
    fn admit_resets_the_overdraft_streak() {
        let (t, clock) = table(1, 100);
        assert!(t.try_take("a").is_ok());
        assert_eq!(t.try_take("a"), Err((2, 1)));
        assert_eq!(t.try_take("a"), Err((3, 1)));
        clock.advance(100);
        assert!(t.try_take("a").is_ok());
        assert_eq!(t.try_take("a"), Err((2, 1)), "streak restarts after admit");
    }

    #[test]
    fn disabled_metering_admits_everything() {
        let clock = ManualClock::new();
        let t = TenantBuckets::new(None, 100, Arc::new(clock));
        for _ in 0..10_000 {
            assert!(t.try_take("a").is_ok());
        }
        assert_eq!(t.tenants(), 0);
    }

    #[test]
    fn zero_refill_interval_means_rate_unlimited() {
        let (t, _clock) = table(1, 0);
        for _ in 0..100 {
            assert!(t.try_take("a").is_ok());
        }
    }
}
