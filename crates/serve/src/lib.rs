//! `synoptic-serve`: the batched network serving tier.
//!
//! A std-only TCP front-end over the maintained-column pool, speaking
//! the checksummed `SQP1` query protocol of `synoptic-api` (the same
//! framing discipline as the replication tier's `SRP1`):
//!
//! * [`Server`] — answers [`QueryBatch`](synoptic_api::wire::QueryBatch)
//!   requests against a **single snapshot pin per batch**, with a
//!   hot-range answer cache keyed on `(column, generation, range)` that
//!   a hot-swap generation bump invalidates wholesale, and admission
//!   control that refuses loudly ([`SynopticError::ServerOverloaded`],
//!   exit code 10) when queue depth, rebuild lag, or a connection quota
//!   exceeds its bound.
//! * [`Client`] — the same [`Queryable`](synoptic_api::Queryable)
//!   surface as every in-process answerer, over TCP; server-side errors
//!   arrive structurally with their exit codes intact.
//! * [`AnswerCache`] — the generation-keyed cache, separately testable.
//!
//! See `docs/SERVING.md` for the protocol frame table, the batching and
//! cache-invalidation contracts, and the backpressure semantics.
//!
//! [`SynopticError::ServerOverloaded`]: synoptic_core::SynopticError::ServerOverloaded

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod server;

pub use cache::AnswerCache;
pub use client::Client;
pub use server::{ServeConfig, Server};
