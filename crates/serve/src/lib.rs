//! `synoptic-serve`: the batched network serving tier.
//!
//! A std-only TCP front-end over the maintained-column pool, speaking
//! the checksummed `SQP1` query protocol of `synoptic-api` (the same
//! framing discipline as the replication tier's `SRP1`):
//!
//! * [`Server`] — answers [`QueryBatch`](synoptic_api::wire::QueryBatch)
//!   requests against a **single snapshot pin per batch**, with a
//!   hot-range answer cache keyed on `(column, generation, range)` that
//!   a hot-swap generation bump invalidates wholesale, and admission
//!   control that refuses loudly ([`SynopticError::ServerOverloaded`],
//!   exit code 10) when queue depth, rebuild lag, or a connection quota
//!   exceeds its bound.
//! * [`Client`] — the same [`Queryable`](synoptic_api::Queryable)
//!   surface as every in-process answerer, over TCP; server-side errors
//!   arrive structurally with their exit codes intact.
//! * [`ResilientClient`] — the self-healing wrapper: auto-reconnect
//!   after poisoning, jittered-exponential-backoff retries for
//!   idempotent calls, and a circuit breaker — all deterministic under
//!   injected clocks and sleepers.
//! * [`AnswerCache`] — the generation-keyed cache, separately testable.
//! * [`TenantBuckets`] — per-tenant token-bucket admission, refilled
//!   from an injected clock.
//! * [`LatencyHistogram`] — lock-free log2-bucketed latency meters
//!   behind the stats surface's p50/p99 fields.
//!
//! PR 10 adds overload-proofing end to end: requests may carry an
//! optional header (`deadline_ms`, `tenant`, `degrade_ok`) that old
//! clients simply never send — the un-headered wire format is
//! byte-identical to PR 9 in both directions. The server sheds
//! already-expired work before running it, meters admission per tenant
//! instead of per connection, and — when the request opts in — answers
//! would-be refusals from a graceful-degradation ladder (cache-hit →
//! last-good synopsis → naive uniform estimate), stamping the rung into
//! the answer so degradation is never silent.
//!
//! See `docs/SERVING.md` for the protocol frame table, the batching and
//! cache-invalidation contracts, and the backpressure semantics, and
//! `docs/ROBUSTNESS.md` §8 for the overload model.
//!
//! [`SynopticError::ServerOverloaded`]: synoptic_core::SynopticError::ServerOverloaded

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod histo;
pub mod resilient;
pub mod server;

pub use admission::TenantBuckets;
pub use cache::AnswerCache;
pub use client::Client;
pub use histo::LatencyHistogram;
pub use resilient::{BreakerState, Connector, ResilientClient, RetryPolicy, Sleeper};
pub use server::{ServeConfig, Server};
