//! Flag parsing and column-file I/O for the CLI.
//!
//! ## Flag grammar
//!
//! * `--key value` — a valued flag. Giving the same `--key` twice is an
//!   error (silently taking the last value hid typos).
//! * `--key` followed by another flag (or nothing) — a bare switch.
//! * Negative numbers are valid values: a token beginning with `-` (or even
//!   `--` followed by a digit, e.g. `--5`) is treated as a *value*, not a
//!   flag, so `--lo -5` parses as expected.
//! * Anything else positional is rejected.

use std::collections::HashMap;

/// Parsed `--flag value` pairs plus bare switches.
#[derive(Debug)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

/// A token is a flag iff it is `--` followed by a non-digit: `--budget` is a
/// flag, `-5` and `--5` are (negative-number) values.
fn is_flag(tok: &str) -> bool {
    tok.strip_prefix("--")
        .and_then(|rest| rest.chars().next())
        .is_some_and(|c| !c.is_ascii_digit())
}

impl Flags {
    /// Parses `--key value` pairs; a `--key` followed by another `--key` (or
    /// nothing) is a switch. Duplicate keys are rejected.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut switches: Vec<String> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if !is_flag(a) {
                return Err(format!("unexpected positional argument '{a}'"));
            }
            let key = &a[2..];
            let dup = |k: &str| format!("duplicate flag --{k}");
            match args.get(i + 1) {
                Some(v) if !is_flag(v) => {
                    if values.insert(key.to_string(), v.clone()).is_some()
                        || switches.iter().any(|s| s == key)
                    {
                        return Err(dup(key));
                    }
                    i += 2;
                }
                _ => {
                    if switches.iter().any(|s| s == key) || values.contains_key(key) {
                        return Err(dup(key));
                    }
                    switches.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(Self { values, switches })
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag.
    #[allow(dead_code)] // part of the flag API; exercised in tests
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A parsed optional flag with default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// A parsed optional flag: `Ok(None)` when absent, `Err` when present
    /// but unparseable (a silent default would mask the typo).
    pub fn parsed_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.values.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// A parsed required flag.
    pub fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self.required(key)?;
        v.parse()
            .map_err(|_| format!("invalid value '{v}' for --{key}"))
    }

    /// Whether a bare switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

/// Reads a column file: one integer per line; blank lines and `#` comments
/// ignored. Errors carry the file path, line number, and byte offset of the
/// offending line so large machine-generated files can be fixed by seeking.
pub fn read_column(path: &str) -> Result<Vec<i64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let mut out = Vec::new();
    let mut offset = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line_start = offset;
        offset += line.len() + 1; // '\n'
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let v: i64 = trimmed.parse().map_err(|_| {
            format!(
                "{path}:{} (byte offset {line_start}): not an integer: '{trimmed}'",
                lineno + 1
            )
        })?;
        out.push(v);
    }
    if out.is_empty() {
        return Err(format!("'{path}' contains no values"));
    }
    Ok(out)
}

/// Writes a column file.
pub fn write_column(path: &str, values: &[i64]) -> Result<(), String> {
    let body: String = values.iter().map(|v| format!("{v}\n")).collect();
    std::fs::write(path, body).map_err(|e| format!("cannot write '{path}': {e}"))
}

/// Parses `lo..hi` (inclusive).
pub fn parse_range(s: &str) -> Result<(usize, usize), String> {
    let (lo, hi) = s
        .split_once("..")
        .ok_or_else(|| format!("range must look like lo..hi, got '{s}'"))?;
    let lo: usize = lo.parse().map_err(|_| format!("bad range start '{lo}'"))?;
    let hi: usize = hi.parse().map_err(|_| format!("bad range end '{hi}'"))?;
    if lo > hi {
        return Err(format!("range start {lo} exceeds end {hi}"));
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(parts: &[&str]) -> Flags {
        let v: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Flags::parse(&v).unwrap()
    }

    fn parse_err(parts: &[&str]) -> String {
        let v: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Flags::parse(&v).unwrap_err()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let f = flags(&["--input", "x.txt", "--verbose", "--budget", "32"]);
        assert_eq!(f.required("input").unwrap(), "x.txt");
        assert_eq!(f.parsed_or::<usize>("budget", 8).unwrap(), 32);
        assert!(f.switch("verbose"));
        assert!(!f.switch("quiet"));
        assert!(f.required("missing").is_err());
        assert!(f.parsed_or::<usize>("input", 1).is_err());
        assert_eq!(f.parsed_opt::<usize>("budget").unwrap(), Some(32));
        assert_eq!(f.parsed_opt::<usize>("missing").unwrap(), None);
        assert!(f.parsed_opt::<usize>("input").is_err());
    }

    #[test]
    fn rejects_positional_args() {
        let v = vec!["stray".to_string()];
        assert!(Flags::parse(&v).is_err());
    }

    #[test]
    fn rejects_duplicate_flags() {
        let e = parse_err(&["--n", "5", "--n", "6"]);
        assert!(e.contains("duplicate flag --n"), "{e}");
        let e = parse_err(&["--verbose", "--verbose"]);
        assert!(e.contains("duplicate flag --verbose"), "{e}");
        // Mixed valued + switch duplicates are also rejected.
        let e = parse_err(&["--n", "5", "--n"]);
        assert!(e.contains("duplicate flag --n"), "{e}");
        let e = parse_err(&["--n", "--n", "5"]);
        assert!(e.contains("duplicate flag --n"), "{e}");
    }

    #[test]
    fn negative_values_are_values_not_flags() {
        let f = flags(&["--lo", "-5", "--hi", "--7"]);
        assert_eq!(f.parsed::<i64>("lo").unwrap(), -5);
        // '--7' begins with a digit after '--', so it is a value too.
        assert_eq!(f.required("hi").unwrap(), "--7");
        assert!(!f.switch("lo"));
    }

    #[test]
    fn range_parsing() {
        assert_eq!(parse_range("3..9").unwrap(), (3, 9));
        assert_eq!(parse_range("0..0").unwrap(), (0, 0));
        assert!(parse_range("9..3").is_err());
        assert!(parse_range("abc").is_err());
        assert!(parse_range("1..x").is_err());
    }

    #[test]
    fn column_file_roundtrip() {
        let p = std::env::temp_dir().join("synoptic_cli_io_test.txt");
        let p = p.to_str().unwrap();
        write_column(p, &[3, -1, 42]).unwrap();
        assert_eq!(read_column(p).unwrap(), vec![3, -1, 42]);
        std::fs::write(p, "# comment\n5\n\n7\n").unwrap();
        assert_eq!(read_column(p).unwrap(), vec![5, 7]);
        std::fs::write(p, "5\nnope\n").unwrap();
        assert!(read_column(p).is_err());
        std::fs::write(p, "# only comments\n").unwrap();
        assert!(read_column(p).is_err());
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn column_file_errors_carry_path_line_and_byte_offset() {
        let p = std::env::temp_dir().join("synoptic_cli_io_offsets.txt");
        let path = p.to_str().unwrap();
        // "10\n" (3 bytes) + "# c\n" (4 bytes) → bad line starts at byte 7.
        std::fs::write(path, "10\n# c\nbad\n").unwrap();
        let e = read_column(path).unwrap_err();
        assert!(e.contains(path), "{e}");
        assert!(e.contains(":3"), "{e}");
        assert!(e.contains("byte offset 7"), "{e}");
        let _ = std::fs::remove_file(&p);
        let e = read_column("/nonexistent/col.txt").unwrap_err();
        assert!(e.contains("/nonexistent/col.txt"), "{e}");
    }
}
