//! Flag parsing and column-file I/O for the CLI.

use std::collections::HashMap;

/// Parsed `--flag value` pairs plus bare switches.
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `--key value` pairs; a `--key` followed by another `--key` (or
    /// nothing) is a switch.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{a}'"));
            };
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    switches.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(Self { values, switches })
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag.
    #[allow(dead_code)] // part of the flag API; exercised in tests
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A parsed optional flag with default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// A parsed required flag.
    pub fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self.required(key)?;
        v.parse()
            .map_err(|_| format!("invalid value '{v}' for --{key}"))
    }

    /// Whether a bare switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

/// Reads a column file: one integer per line; blank lines and `#` comments
/// ignored.
pub fn read_column(path: &str) -> Result<Vec<i64>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let v: i64 = trimmed
            .parse()
            .map_err(|_| format!("{path}:{}: not an integer: '{trimmed}'", lineno + 1))?;
        out.push(v);
    }
    if out.is_empty() {
        return Err(format!("'{path}' contains no values"));
    }
    Ok(out)
}

/// Writes a column file.
pub fn write_column(path: &str, values: &[i64]) -> Result<(), String> {
    let body: String = values
        .iter()
        .map(|v| format!("{v}\n"))
        .collect();
    std::fs::write(path, body).map_err(|e| format!("cannot write '{path}': {e}"))
}

/// Parses `lo..hi` (inclusive).
pub fn parse_range(s: &str) -> Result<(usize, usize), String> {
    let (lo, hi) = s
        .split_once("..")
        .ok_or_else(|| format!("range must look like lo..hi, got '{s}'"))?;
    let lo: usize = lo.parse().map_err(|_| format!("bad range start '{lo}'"))?;
    let hi: usize = hi.parse().map_err(|_| format!("bad range end '{hi}'"))?;
    if lo > hi {
        return Err(format!("range start {lo} exceeds end {hi}"));
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(parts: &[&str]) -> Flags {
        let v: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Flags::parse(&v).unwrap()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let f = flags(&["--input", "x.txt", "--verbose", "--budget", "32"]);
        assert_eq!(f.required("input").unwrap(), "x.txt");
        assert_eq!(f.parsed_or::<usize>("budget", 8).unwrap(), 32);
        assert!(f.switch("verbose"));
        assert!(!f.switch("quiet"));
        assert!(f.required("missing").is_err());
        assert!(f.parsed_or::<usize>("input", 1).is_err());
    }

    #[test]
    fn rejects_positional_args() {
        let v = vec!["stray".to_string()];
        assert!(Flags::parse(&v).is_err());
    }

    #[test]
    fn range_parsing() {
        assert_eq!(parse_range("3..9").unwrap(), (3, 9));
        assert_eq!(parse_range("0..0").unwrap(), (0, 0));
        assert!(parse_range("9..3").is_err());
        assert!(parse_range("abc").is_err());
        assert!(parse_range("1..x").is_err());
    }

    #[test]
    fn column_file_roundtrip() {
        let p = std::env::temp_dir().join("synoptic_cli_io_test.txt");
        let p = p.to_str().unwrap();
        write_column(p, &[3, -1, 42]).unwrap();
        assert_eq!(read_column(p).unwrap(), vec![3, -1, 42]);
        std::fs::write(p, "# comment\n5\n\n7\n").unwrap();
        assert_eq!(read_column(p).unwrap(), vec![5, 7]);
        std::fs::write(p, "5\nnope\n").unwrap();
        assert!(read_column(p).is_err());
        std::fs::write(p, "# only comments\n").unwrap();
        assert!(read_column(p).is_err());
        let _ = std::fs::remove_file(p);
    }
}
