//! The CLI subcommands.

use synoptic_catalog::{Catalog, ColumnEntry, PersistentSynopsis};
use synoptic_core::{PrefixSums, RangeEstimator, RangeQuery, RoundingMode};
use synoptic_data::zipf::{paper_dataset, ZipfConfig};
use synoptic_eval::methods::{exact_sse, MethodSpec};
use synoptic_hist::opta::{build_opt_a, OptAConfig};
use synoptic_hist::reopt::reoptimize;
use synoptic_hist::sap0::build_sap0;
use synoptic_hist::sap1::build_sap1;
use synoptic_wavelet::RangeOptimalWavelet;

use crate::io::{parse_range, read_column, write_column, Flags};

/// Top-level usage text.
pub const USAGE: &str = "\
synoptic — range-sum synopses from the PODS 2001 paper

USAGE:
  synoptic generate --n N [--alpha A] [--mass M] [--seed S] [--permuted] --out FILE
  synoptic build    --input FILE --method METHOD --budget WORDS \\
                    --catalog FILE --column NAME
  synoptic estimate --catalog FILE --column NAME --range LO..HI
  synoptic evaluate --input FILE [--budget WORDS]
  synoptic report   --catalog FILE

METHODS: naive | opt-a | opt-a-reopt | sap0 | sap1 | wavelet-range
FILES:   one integer frequency per line ('#' comments allowed)";

/// `generate`: emit a synthetic Zipf column per the paper's recipe.
pub fn generate(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let cfg = ZipfConfig {
        n: f.parsed("n")?,
        alpha: f.parsed_or("alpha", 1.8)?,
        total_mass: f.parsed_or("mass", 10_000.0)?,
        permute: f.switch("permuted"),
        seed: f.parsed_or("seed", 2001)?,
        ..ZipfConfig::default()
    };
    let out = f.required("out")?;
    let data = paper_dataset(&cfg);
    write_column(out, data.values())?;
    println!(
        "wrote {} values (total mass {}) to {out}",
        data.n(),
        data.total()
    );
    Ok(())
}

fn build_synopsis(
    method: &str,
    ps: &PrefixSums,
    budget: usize,
) -> Result<PersistentSynopsis, String> {
    let err = |e: synoptic_core::SynopticError| e.to_string();
    Ok(match method {
        "naive" => PersistentSynopsis::from_naive(ps),
        "opt-a" => {
            let b = (budget / 2).clamp(1, ps.n());
            let r = build_opt_a(ps, &OptAConfig::exact(b, RoundingMode::None)).map_err(err)?;
            let vh = synoptic_core::ValueHistogram::with_averages(
                r.histogram.bucketing().clone(),
                ps,
                "OPT-A",
            )
            .map_err(err)?;
            PersistentSynopsis::from_value_histogram(&vh)
        }
        "opt-a-reopt" => {
            let b = (budget / 2).clamp(1, ps.n());
            let base = build_opt_a(ps, &OptAConfig::exact(b, RoundingMode::None)).map_err(err)?;
            let re = reoptimize(base.histogram.bucketing(), ps, "OPT-A").map_err(err)?;
            PersistentSynopsis::from_value_histogram(&re.histogram)
        }
        "sap0" => {
            let b = (budget / 3).clamp(1, ps.n());
            PersistentSynopsis::from_sap0(&build_sap0(ps, b).map_err(err)?)
        }
        "sap1" => {
            let b = (budget / 5).clamp(1, ps.n());
            PersistentSynopsis::from_sap1(&build_sap1(ps, b).map_err(err)?)
        }
        "wavelet-range" => {
            let b = (budget / 2).max(1);
            PersistentSynopsis::from_wavelet_range(&RangeOptimalWavelet::build(ps, b))
        }
        other => {
            return Err(format!(
                "unknown method '{other}' (naive|opt-a|opt-a-reopt|sap0|sap1|wavelet-range)"
            ));
        }
    })
}

/// `build`: construct a synopsis and store it in the catalog.
pub fn build(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let input = f.required("input")?;
    let method = f.required("method")?;
    let budget: usize = f.parsed_or("budget", 32)?;
    let catalog_path = f.required("catalog")?;
    let column = f.required("column")?;

    let values = read_column(input)?;
    let ps = PrefixSums::from_values(&values);
    let synopsis = build_synopsis(method, &ps, budget)?;

    let mut catalog = if std::path::Path::new(catalog_path).exists() {
        Catalog::load(catalog_path).map_err(|e| e.to_string())?
    } else {
        Catalog::new()
    };
    let words = synopsis.storage_words();
    catalog.insert(
        column,
        ColumnEntry {
            n: values.len(),
            total_rows: ps.total() as i64,
            synopsis,
        },
    );
    catalog.save(catalog_path).map_err(|e| e.to_string())?;
    println!(
        "built {method} for column '{column}' ({words} words) → {catalog_path}"
    );
    Ok(())
}

/// `estimate`: answer one range query from a stored synopsis.
pub fn estimate(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let catalog = Catalog::load(f.required("catalog")?).map_err(|e| e.to_string())?;
    let column = f.required("column")?;
    let (lo, hi) = parse_range(f.required("range")?)?;
    let q = RangeQuery::new(lo, hi).map_err(|e| e.to_string())?;
    let answer = catalog.estimate(column, q).map_err(|e| e.to_string())?;
    println!("{answer:.2}");
    Ok(())
}

/// `evaluate`: compare methods on a column file at one budget.
pub fn evaluate(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let values = read_column(f.required("input")?)?;
    let ps = PrefixSums::from_values(&values);
    let budget: usize = f.parsed_or("budget", 32)?;
    println!(
        "n = {}, rows = {}, budget = {budget} words; SSE over all {} ranges",
        values.len(),
        ps.total(),
        RangeQuery::count_all(values.len())
    );
    println!("{:<14} {:>8} {:>14} {:>12}", "method", "words", "sse", "rmse");
    for m in [
        MethodSpec::Naive,
        MethodSpec::EquiDepth,
        MethodSpec::PointOpt,
        MethodSpec::Sap0,
        MethodSpec::Sap1,
        MethodSpec::OptA,
        MethodSpec::OptAReopt,
        MethodSpec::WaveletRange,
    ] {
        match m.build_at_budget(&values, &ps, budget) {
            Ok(est) => {
                let sse = exact_sse(est.as_ref(), &ps);
                let rmse =
                    (sse / RangeQuery::count_all(values.len()) as f64).sqrt();
                println!(
                    "{:<14} {:>8} {:>14.4e} {:>12.2}",
                    m.name(),
                    est.storage_words(),
                    sse,
                    rmse
                );
            }
            Err(e) => println!("{:<14} {:>8} {e}", m.name(), "-"),
        }
    }
    Ok(())
}

/// `report`: summarize a catalog file.
pub fn report(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let catalog = Catalog::load(f.required("catalog")?).map_err(|e| e.to_string())?;
    print!("{}", catalog.summary());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_str()
            .unwrap()
            .to_string()
    }

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn full_cli_pipeline() {
        let col = tmp("synoptic_cli_col.txt");
        let cat = tmp("synoptic_cli_cat.json");
        let _ = std::fs::remove_file(&cat);

        generate(&s(&["--n", "32", "--out", &col])).unwrap();
        build(&s(&[
            "--input", &col, "--method", "sap0", "--budget", "18", "--catalog", &cat,
            "--column", "price",
        ]))
        .unwrap();
        build(&s(&[
            "--input", &col, "--method", "opt-a", "--budget", "16", "--catalog", &cat,
            "--column", "qty",
        ]))
        .unwrap();
        estimate(&s(&["--catalog", &cat, "--column", "price", "--range", "0..31"])).unwrap();
        report(&s(&["--catalog", &cat])).unwrap();
        evaluate(&s(&["--input", &col, "--budget", "16"])).unwrap();

        // The catalog answers the whole-domain query near the true total.
        let values = read_column(&col).unwrap();
        let total: i64 = values.iter().sum();
        let loaded = Catalog::load(&cat).unwrap();
        let e = loaded
            .estimate("qty", RangeQuery { lo: 0, hi: 31 })
            .unwrap();
        assert!((e - total as f64).abs() < 1.0, "estimate {e} vs total {total}");

        let _ = std::fs::remove_file(&col);
        let _ = std::fs::remove_file(&cat);
    }

    #[test]
    fn build_rejects_unknown_method() {
        let col = tmp("synoptic_cli_col2.txt");
        write_column(&col, &[1, 2, 3, 4]).unwrap();
        let err = build(&s(&[
            "--input", &col, "--method", "magic", "--catalog", "/dev/null", "--column", "x",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown method"));
        let _ = std::fs::remove_file(&col);
    }

    #[test]
    fn estimate_errors_cleanly_on_missing_catalog() {
        let err = estimate(&s(&[
            "--catalog", "/nonexistent/cat.json", "--column", "x", "--range", "0..1",
        ]))
        .unwrap_err();
        assert!(err.contains("read"), "{err}");
    }

    #[test]
    fn every_cli_method_builds() {
        let col = tmp("synoptic_cli_col3.txt");
        let cat = tmp("synoptic_cli_cat3.json");
        let _ = std::fs::remove_file(&cat);
        generate(&s(&["--n", "24", "--out", &col])).unwrap();
        for m in ["naive", "opt-a", "opt-a-reopt", "sap0", "sap1", "wavelet-range"] {
            build(&s(&[
                "--input", &col, "--method", m, "--budget", "20", "--catalog", &cat,
                "--column", m,
            ]))
            .unwrap();
        }
        let loaded = Catalog::load(&cat).unwrap();
        assert_eq!(loaded.len(), 6);
        let _ = std::fs::remove_file(&col);
        let _ = std::fs::remove_file(&cat);
    }
}
