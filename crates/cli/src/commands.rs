//! The CLI subcommands.

use std::time::{Duration, Instant};

use synoptic_catalog::{Catalog, ColumnEntry, DurableCatalog, FsStorage, PersistentSynopsis};
use synoptic_core::{
    Budget, BuildAttempt, BuildOutcome, CancelToken, PrefixSums, RangeEstimator, RangeQuery,
    RoundingMode, SynopticError,
};
use synoptic_data::zipf::{paper_dataset, ZipfConfig};
use synoptic_eval::methods::{exact_sse, MethodSpec};
use synoptic_hist::opta::{build_opt_a_with_budget, OptAConfig};
use synoptic_hist::reopt::reoptimize_with_budget;
use synoptic_hist::sap0::build_sap0_with_budget;
use synoptic_hist::sap1::build_sap1_with_budget;
use synoptic_wavelet::RangeOptimalWavelet;

use crate::io::{parse_range, read_column, write_column, Flags};

// The exit-code contract lives in `synoptic_api::exit` — one table shared
// by the CLI, the serving tier's wire errors, and `docs/ROBUSTNESS.md`
// (whose §7.2 table the api crate's tests parse). `CliError::from` maps
// every `SynopticError` through `synoptic_api::exit_code`; the constants
// imported here are the ones the command layer assigns directly.
pub use synoptic_api::{EXIT_CORRUPT, EXIT_DEADLINE, EXIT_FAILURE, EXIT_USAGE};

/// A CLI failure carrying the process exit code it maps to. The code
/// contract is part of the CLI's public interface (see `USAGE` and
/// `crates/cli/tests/store_cli.rs`).
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message, printed to stderr by `main`.
    pub msg: String,
    /// Process exit code (one of the `EXIT_*` constants).
    pub code: u8,
}

impl CliError {
    /// A usage error (exit 2).
    pub fn usage(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            code: EXIT_USAGE,
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        Self {
            msg,
            code: EXIT_FAILURE,
        }
    }
}

impl From<SynopticError> for CliError {
    fn from(e: SynopticError) -> Self {
        Self {
            msg: e.to_string(),
            code: synoptic_api::exit_code(&e),
        }
    }
}

/// Maps flag/usage-layer `Result<_, String>` values to exit-2 errors.
trait UsageExt<T> {
    fn usage(self) -> Result<T, CliError>;
}

impl<T> UsageExt<T> for Result<T, String> {
    fn usage(self) -> Result<T, CliError> {
        self.map_err(CliError::usage)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
synoptic — range-sum synopses from the PODS 2001 paper

USAGE:
  synoptic generate --n N [--alpha A] [--mass M] [--seed S] [--permuted] --out FILE
  synoptic build    --input FILE --method METHOD --budget WORDS \\
                    --catalog DIR --column NAME \\
                    [--deadline-ms MS] [--max-cells N] [--anytime] \\
                    [--cancel-after-checks K]
  synoptic estimate --catalog DIR --column NAME --range LO..HI
  synoptic evaluate --input FILE [--budget WORDS] [--deadline-ms MS] [--max-cells N]
  synoptic maintain --input FILE --method METHOD [--budget WORDS] \\
                    [--updates U] [--every-k K | --drift F] [--workers W] \\
                    [--segments N] \\
                    [--upgrade-in-background] [--upgrade-factor X] \\
                    [--deadline-ms MS] [--max-cells N] [--seed S] \\
                    [--wal-dir DIR --catalog DIR [--fsync every|N|rotate]
                     [--segment-bytes B] [--discard-journal]
                     [--replicate-to HOST:PORT]]
  synoptic serve    --input FILE --method METHOD [--budget WORDS] \\
                    --listen HOST:PORT [--port-file FILE] [--column NAME] \\
                    [--workers W] [--every-k K | --drift F] \\
                    [--max-batch N] [--max-queue-depth N] \\
                    [--max-rebuild-lag N] [--tenant-burst N] \\
                    [--tenant-refill-ms MS] \\
                    [--cache-capacity N] [--max-conns N] \\
                    [--deadline-ms MS] [--max-cells N]
  synoptic ship     --wal-dir DIR --to HOST:PORT [--column NAME] \\
                    [--seed --catalog DIR [--node N] [--term T]]
  synoptic follow   --catalog DIR --wal-dir DIR --listen HOST:PORT \\
                    [--max-lag N] [--sessions K] [--port-file FILE] \\
                    [--auto-promote [--node N] [--lease-ttl-ms MS]]
  synoptic reseed   --catalog DIR --wal-dir DIR --listen HOST:PORT \\
                    [--max-lag N] [--port-file FILE]
  synoptic recover  --catalog DIR --wal-dir DIR [--commit]
  synoptic report   --catalog DIR
  synoptic fsck     --catalog DIR
  synoptic repair   --catalog DIR [--prune]

METHODS: naive | opt-a | opt-a-reopt | sap0 | sap1 | wavelet-range
         (maintain: naive | equi-depth | point-opt | a0 | sap0 | sap1 | opt-a)
FILES:   one integer frequency per line ('#' comments allowed)
CATALOG: a store directory of checksummed synopsis files with generational
         manifests (see docs/PERSISTENCE.md); corrupt files are quarantined,
         never deleted, and estimates degrade gracefully with a warning.
MAINTAIN: simulates a live column on the background worker pool: U updates
         ingest while rebuilds run off-thread (--workers threads, --every-k /
         --drift policy); --upgrade-in-background re-runs the requested
         method at --upgrade-factor x budget after a degraded rebuild and
         hot-swaps the result (see docs/ROBUSTNESS.md). --segments N splits
         the domain into N equi-width segments with per-segment synopses
         (budget divided once by the catalog's knapsack DP): updates dirty
         only the touched segment, rebuilds re-run the ladder on dirty
         slices alone, and the report lists per-segment provenance
         (see docs/SEGMENTS.md).
SERVE:   binds a TCP listener and answers the checksummed SQP1 query
         protocol (see docs/SERVING.md): batched range estimates answered
         against a single snapshot pin, point updates, and per-column
         stats. A generation-keyed answer cache (--cache-capacity entries;
         0 disables) is invalidated wholesale by every hot-swap. Admission
         control refuses loudly (exit 10) when in-flight requests exceed
         --max-queue-depth, a column's unrebuilt updates exceed
         --max-rebuild-lag, a tenant's token bucket (--tenant-burst
         tokens, one back every --tenant-refill-ms) runs dry, or
         concurrent connections exceed --max-conns. Requests may carry a
         deadline, a tenant name, and a degrade-ok flag; expired work is
         shed before execution and degrade-ok estimates are answered
         from a stamped fallback ladder instead of refused. --port-file
         publishes the bound port (for --listen HOST:0).
DURABILITY: with --wal-dir every acknowledged update is appended to a
         checksummed write-ahead journal before it touches memory, and each
         successful rebuild commits an exact snapshot + WAL mark to
         --catalog, truncating the journal. --fsync picks the sync cadence:
         'every' record (default), every N records, or on segment rotation.
         `recover` replays journal records past the committed mark onto the
         snapshot (fsck + abandoned-generation pruning run first) and with
         --commit saves the result as a new generation and checkpoints the
         journals (see docs/PERSISTENCE.md). maintain refuses to start over
         a journal holding unreplayed acknowledged records from an earlier
         run unless --discard-journal explicitly drops them.
REPLICATION: `follow` binds a listener, accepts --sessions leader
         connections (default 1), verifies every shipped segment (frame
         CRC, record CRCs, consecutive-LSN anchoring at its applied mark),
         journals it locally, and applies it to a live read-only replica;
         a segment that does not validate is refused with the reason, never
         applied in part. `ship` streams a journal's sealed segments to a
         follower and retries until the follower's cumulative ack covers
         the journal; `maintain --replicate-to` does the same continuously,
         shipping on every segment seal while retention holds keep
         checkpoint truncation from deleting unacknowledged segments.
         Replica reads staler than --max-lag records are refused with the
         observed lag (exit 8). Promotion is `recover` on the follower's
         own catalog + journal (see docs/REPLICATION.md). `maintain
         --replicate-to` also fans in every other column journal found
         under --wal-dir over the same link before the live loop starts.
FAILOVER: with --auto-promote, `follow` serves under a heartbeat lease:
         a leader silent past --lease-ttl-ms (default 3000) expires the
         lease and the replica promotes itself in place — crash recovery
         over its own files plus a durable claim of the next election
         term — and serves its first read immediately. Every shipped
         frame carries the sender's term; a deposed leader's writes are
         refused with both terms and its shipper exits fenced (exit 9).
         `ship --seed` streams the committed snapshot + journal tail of
         --catalog so the fenced ex-leader can run `reseed` (fresh
         directories) and rejoin as a follower of the new leader
         (see docs/REPLICATION.md and docs/ROBUSTNESS.md).
REPAIR:  quarantines corrupt/stray files and re-points CURRENT at the
         newest valid generation; with --prune it also deletes abandoned
         never-committed generation files (fsck lists them; repair without
         --prune never deletes anything).
BUDGETS: --deadline-ms / --max-cells bound the build (wall clock / DP cells).
         By default an exhausted budget aborts with a distinct exit code;
         with --anytime the build falls down a cheaper-method ladder and the
         committed synopsis reports its provenance (see docs/ROBUSTNESS.md).
         --cancel-after-checks K trips cooperative cancellation at the K-th
         budget checkpoint (deterministic; for scripting and tests).

EXIT CODES:
  0 success    1 failure    2 usage error    4 corrupt synopsis/store
  5 deadline or cell budget exceeded         6 build cancelled
  7 unrecoverable write-ahead journal (recover)
  8 replication divergence or stale replica read refused
  9 fenced: this node's election term was superseded by a newer leader
  10 refused by the serving tier's admission control (back off and retry)";

/// Opens the store at `dir`, creating it only when `create` is set —
/// read-only commands must not invent an empty store at a mistyped path.
fn open_store(dir: &str, create: bool) -> Result<DurableCatalog<FsStorage>, CliError> {
    if !create && !std::path::Path::new(dir).is_dir() {
        return Err(CliError::usage(format!(
            "catalog store '{dir}' does not exist"
        )));
    }
    Ok(DurableCatalog::open(dir, FsStorage::new())?)
}

/// `generate`: emit a synthetic Zipf column per the paper's recipe.
pub fn generate(args: &[String]) -> Result<(), CliError> {
    let f = Flags::parse(args).usage()?;
    let cfg = ZipfConfig {
        n: f.parsed("n").usage()?,
        alpha: f.parsed_or("alpha", 1.8).usage()?,
        total_mass: f.parsed_or("mass", 10_000.0).usage()?,
        permute: f.switch("permuted"),
        seed: f.parsed_or("seed", 2001).usage()?,
        ..ZipfConfig::default()
    };
    let out = f.required("out").usage()?;
    let data = paper_dataset(&cfg);
    write_column(out, data.values())?;
    println!(
        "wrote {} values (total mass {}) to {out}",
        data.n(),
        data.total()
    );
    Ok(())
}

/// Execution-control knobs parsed from `--deadline-ms` / `--max-cells` /
/// `--cancel-after-checks`. Fresh [`Budget`]s are minted per build attempt
/// (ladder rungs each get the full allowance); the cancel token is shared,
/// so cancellation cuts through every rung.
struct BudgetFlags {
    deadline: Option<Duration>,
    max_cells: Option<u64>,
    cancel: Option<CancelToken>,
}

impl BudgetFlags {
    fn parse(f: &Flags) -> Result<Self, CliError> {
        let deadline = f
            .parsed_opt::<u64>("deadline-ms")
            .usage()?
            .map(Duration::from_millis);
        let max_cells = f.parsed_opt::<u64>("max-cells").usage()?;
        let cancel = f
            .parsed_opt::<u64>("cancel-after-checks")
            .usage()?
            .map(|k| {
                let t = CancelToken::new();
                t.cancel_after_checks(k);
                t
            });
        Ok(Self {
            deadline,
            max_cells,
            cancel,
        })
    }

    fn is_constrained(&self) -> bool {
        self.deadline.is_some() || self.max_cells.is_some() || self.cancel.is_some()
    }

    /// A fresh budget for one attempt. When `enforce` is false only the
    /// cancel token applies — the terminal ladder rung must not fail on
    /// resources, or a tiny deadline could leave the store with nothing.
    fn budget(&self, enforce: bool) -> Budget {
        let mut b = Budget::unlimited();
        if enforce {
            if let Some(d) = self.deadline {
                b = b.with_deadline(d);
            }
            if let Some(c) = self.max_cells {
                b = b.with_max_cells(c);
            }
        }
        if let Some(t) = &self.cancel {
            b = b.with_cancel_token(t.clone());
        }
        b
    }
}

fn build_synopsis(
    method: &str,
    ps: &PrefixSums,
    budget: usize,
    exec: &Budget,
) -> Result<PersistentSynopsis, CliError> {
    Ok(match method {
        "naive" => {
            exec.check()?;
            PersistentSynopsis::from_naive(ps)
        }
        "opt-a" => {
            let b = (budget / 2).clamp(1, ps.n());
            let r = build_opt_a_with_budget(ps, &OptAConfig::exact(b, RoundingMode::None), exec)?;
            let vh = synoptic_core::ValueHistogram::with_averages(
                r.histogram.bucketing().clone(),
                ps,
                "OPT-A",
            )?;
            PersistentSynopsis::from_value_histogram(&vh)
        }
        "opt-a-reopt" => {
            let b = (budget / 2).clamp(1, ps.n());
            let base =
                build_opt_a_with_budget(ps, &OptAConfig::exact(b, RoundingMode::None), exec)?;
            let re = reoptimize_with_budget(base.histogram.bucketing(), ps, "OPT-A", exec)?;
            PersistentSynopsis::from_value_histogram(&re.histogram)
        }
        "sap0" => {
            let b = (budget / 3).clamp(1, ps.n());
            PersistentSynopsis::from_sap0(&build_sap0_with_budget(ps, b, exec)?)
        }
        "sap1" => {
            let b = (budget / 5).clamp(1, ps.n());
            PersistentSynopsis::from_sap1(&build_sap1_with_budget(ps, b, exec)?)
        }
        "wavelet-range" => {
            let b = (budget / 2).max(1);
            PersistentSynopsis::from_wavelet_range(&RangeOptimalWavelet::build_with_budget(
                ps, b, exec,
            )?)
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown method '{other}' (naive|opt-a|opt-a-reopt|sap0|sap1|wavelet-range)"
            )));
        }
    })
}

/// The CLI-side fallback ladder over *persistable* methods, mirroring the
/// library ladder in `synoptic_hist::fallback_ladder`. The terminal `naive`
/// rung runs without resource constraints so a synopsis always lands.
fn persistable_ladder(method: &str) -> Option<Vec<(&'static str, bool)>> {
    Some(match method {
        "naive" => vec![("naive", false)],
        "opt-a" => vec![("opt-a", true), ("sap0", true), ("naive", false)],
        "opt-a-reopt" => vec![("opt-a-reopt", true), ("sap0", true), ("naive", false)],
        "sap0" => vec![("sap0", true), ("naive", false)],
        "sap1" => vec![("sap1", true), ("sap0", true), ("naive", false)],
        "wavelet-range" => vec![("wavelet-range", true), ("naive", false)],
        _ => return None,
    })
}

/// Builds `method` under the budget flags. Without `--anytime` any budget
/// exhaustion aborts (distinct exit code); with it the build descends
/// [`persistable_ladder`] and the returned [`BuildOutcome`] says what
/// actually got committed. Cancellation always aborts.
fn build_with_flags(
    method: &str,
    ps: &PrefixSums,
    budget: usize,
    exec: &BudgetFlags,
    anytime: bool,
) -> Result<(PersistentSynopsis, BuildOutcome), CliError> {
    let started = Instant::now();
    if !anytime {
        let b = exec.budget(true);
        let syn = build_synopsis(method, ps, budget, &b)?;
        let outcome =
            BuildOutcome::direct(method, started.elapsed().as_millis() as u64, b.cells_used());
        return Ok((syn, outcome));
    }
    let Some(ladder) = persistable_ladder(method) else {
        // Surface the canonical unknown-method usage error.
        return Err(build_synopsis(method, ps, budget, &Budget::unlimited())
            .map(|_| ())
            .expect_err("unknown method must error"));
    };
    let mut attempts = Vec::new();
    let mut total_cells = 0u64;
    let last = ladder.len() - 1;
    for (tier, &(rung, enforce)) in ladder.iter().enumerate() {
        let b = exec.budget(enforce);
        let attempt_started = Instant::now();
        match build_synopsis(rung, ps, budget, &b) {
            Ok(syn) => {
                total_cells += b.cells_used();
                let outcome = BuildOutcome {
                    requested: method.to_string(),
                    used: rung.to_string(),
                    tier,
                    attempts,
                    elapsed_ms: started.elapsed().as_millis() as u64,
                    cells: total_cells,
                };
                return Ok((syn, outcome));
            }
            Err(e) if e.code == EXIT_DEADLINE && tier < last => {
                total_cells += b.cells_used();
                attempts.push(BuildAttempt {
                    method: rung.to_string(),
                    error: e.msg,
                    elapsed_ms: attempt_started.elapsed().as_millis() as u64,
                    cells: b.cells_used(),
                });
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("the terminal ladder rung cannot fail on resources")
}

/// `build`: construct a synopsis and commit it to the store as a new
/// generation (the previous generation stays on disk for fallback).
pub fn build(args: &[String]) -> Result<(), CliError> {
    let f = Flags::parse(args).usage()?;
    let input = f.required("input").usage()?;
    let method = f.required("method").usage()?;
    let budget: usize = f.parsed_or("budget", 32).usage()?;
    let store_dir = f.required("catalog").usage()?;
    let column = f.required("column").usage()?;
    let exec = BudgetFlags::parse(&f)?;
    let anytime = f.switch("anytime");

    let values = read_column(input)?;
    let ps = PrefixSums::from_values(&values);
    let (synopsis, outcome) = build_with_flags(method, &ps, budget, &exec, anytime)?;
    if outcome.is_degraded() {
        eprintln!("warning: degraded build for column '{column}' ({outcome})");
    }

    let store = open_store(store_dir, true)?;
    // Start from the committed generation when one exists; a damaged store
    // refuses here — run `fsck`/`repair` first rather than overwriting
    // evidence.
    let mut catalog = match store.effective_manifest() {
        Ok(_) => store.load()?,
        Err(_) => Catalog::new(),
    };
    let words = synopsis.storage_words();
    catalog.insert(
        column,
        ColumnEntry {
            n: values.len(),
            total_rows: ps.total() as i64,
            synopsis,
        },
    );
    let generation = store.save(&catalog)?;
    println!(
        "built {method} for column '{column}' ({words} words) → {store_dir} generation {generation}"
    );
    if exec.is_constrained() || anytime {
        println!("provenance: {outcome}");
    }
    Ok(())
}

/// `estimate`: answer one range query through the degraded-mode-aware
/// fallback chain. A non-primary answer prints a warning on stderr so
/// degradation is never silent. Goes through the unified
/// [`Queryable`](synoptic_api::Queryable) surface — the same trait the
/// serving tier, pool columns, and replication followers answer on — so
/// the CLI consumes exactly the envelope a remote client would.
pub fn estimate(args: &[String]) -> Result<(), CliError> {
    use synoptic_api::Queryable;

    let f = Flags::parse(args).usage()?;
    let store = open_store(f.required("catalog").usage()?, false)?;
    let column = f.required("column").usage()?;
    let (lo, hi) = parse_range(f.required("range").usage()?).usage()?;
    let q = RangeQuery::new(lo, hi)?;
    let answer = store.query(column, q)?;
    if answer.is_degraded() {
        eprintln!(
            "warning: degraded answer for column '{column}' (source: {})",
            answer.source
        );
    }
    println!("{:.2}", answer.value);
    Ok(())
}

/// `serve`: bind a TCP listener and answer the checksummed SQP1 batched
/// query protocol over a maintained pool column — batched estimates
/// against a single snapshot pin, point updates feeding the rebuild
/// policy, per-column stats, and loud admission-control refusals
/// (exit 10). Runs until killed (or the listener fails); scripts read
/// the bound port from `--port-file`. See `docs/SERVING.md`.
pub fn serve(args: &[String]) -> Result<(), CliError> {
    use std::net::{TcpListener, ToSocketAddrs};
    use synoptic_serve::{ServeConfig, Server};
    use synoptic_stream::{ColumnBuild, MaintainedPool, RebuildConfig, RebuildPolicy};

    let f = Flags::parse(args).usage()?;
    let values = read_column(f.required("input").usage()?)?;
    let method_name = f.required("method").usage()?;
    let method = maintained_method(method_name)?;
    let budget: usize = f.parsed_or("budget", 32).usage()?;
    let column = f.optional("column").unwrap_or("cli").to_string();
    let listen = f.required("listen").usage()?;
    // Validate the address (including the port range) up front so a typo
    // is a usage error, not a runtime bind failure.
    if listen
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
        .is_none()
    {
        return Err(CliError::usage(format!(
            "invalid --listen address '{listen}' (expected HOST:PORT)"
        )));
    }
    let workers: usize = f.parsed_or("workers", 2).usage()?;
    if workers == 0 {
        return Err(CliError::usage("--workers must be at least 1"));
    }

    // Rebuild policy: the same --every-k / --drift pair as `maintain`,
    // mutually exclusive and bounds-checked here (exit 2, not a runtime
    // refusal later).
    let every_k: Option<u64> = f.parsed_opt("every-k").usage()?;
    let drift: Option<f64> = f.parsed_opt("drift").usage()?;
    if every_k.is_some() && drift.is_some() {
        return Err(CliError::usage(
            "--every-k and --drift are mutually exclusive",
        ));
    }
    if every_k == Some(0) {
        return Err(CliError::usage("--every-k must be at least 1"));
    }
    if drift.is_some_and(|fr| fr <= 0.0 || fr.is_nan()) {
        return Err(CliError::usage("--drift must be a positive fraction"));
    }
    let policy = match drift {
        Some(fr) => RebuildPolicy::DriftFraction(fr),
        None => RebuildPolicy::EveryKUpdates(every_k.unwrap_or(64)),
    };
    let exec = BudgetFlags::parse(&f)?;
    let mut rebuild = RebuildConfig::new(policy);
    if let Some(d) = exec.deadline {
        rebuild = rebuild.with_deadline(d);
    }
    if let Some(c) = exec.max_cells {
        rebuild = rebuild.with_max_cells(c);
    }

    // Serving-tier bounds, each validated before the listener binds.
    let defaults = ServeConfig::default();
    let max_batch: usize = f.parsed_or("max-batch", defaults.max_batch).usage()?;
    if max_batch == 0 {
        return Err(CliError::usage("--max-batch must be at least 1"));
    }
    let max_queue_depth: u64 = f
        .parsed_or("max-queue-depth", defaults.max_queue_depth)
        .usage()?;
    if max_queue_depth == 0 {
        return Err(CliError::usage("--max-queue-depth must be at least 1"));
    }
    let tenant_burst: Option<u64> = f.parsed_opt("tenant-burst").usage()?;
    if tenant_burst == Some(0) {
        return Err(CliError::usage("--tenant-burst must be at least 1"));
    }
    let tenant_refill_ms: u64 = f
        .parsed_or("tenant-refill-ms", defaults.tenant_refill_ms)
        .usage()?;
    let cache_capacity: usize = f
        .parsed_or("cache-capacity", defaults.cache_capacity)
        .usage()?;
    let max_connections: u64 = f.parsed_or("max-conns", defaults.max_connections).usage()?;
    if max_connections == 0 {
        return Err(CliError::usage("--max-conns must be at least 1"));
    }
    let config = ServeConfig {
        max_batch,
        max_queue_depth,
        max_rebuild_lag: f.parsed_opt("max-rebuild-lag").usage()?,
        tenant_burst,
        tenant_refill_ms,
        cache_capacity,
        max_connections,
        ..defaults
    };

    let n = values.len();
    let pool = MaintainedPool::new(workers);
    let col = pool.add_column(
        &column,
        &values,
        ColumnBuild::Anytime {
            method,
            budget_words: budget,
        },
        rebuild,
    )?;
    if let Some(outcome) = col.last_outcome() {
        println!("initial build: {outcome}");
    }

    let listener =
        TcpListener::bind(listen).map_err(|e| CliError::from(format!("bind {listen}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::from(format!("local_addr: {e}")))?;
    // Port 0 binds an ephemeral port; the port file tells scripts (and
    // tests) where the server actually listens.
    if let Some(path) = f.optional("port-file") {
        std::fs::write(path, local.port().to_string())
            .map_err(|e| CliError::from(format!("write {path}: {e}")))?;
    }

    let server = Server::new(config);
    server.register(col);
    println!("serving column '{column}' ({method_name}, {budget} words, n = {n}) on {local}");
    server
        .serve(listener)
        .map_err(|e| CliError::from(format!("serve: {e}")))?;
    drop(pool);
    Ok(())
}

/// `evaluate`: compare methods on a column file at one budget. With
/// `--deadline-ms`/`--max-cells` every method builds through the anytime
/// ladder and the table gains a provenance column, so a slow method shows
/// *what it degraded to* rather than silently misreporting its error.
pub fn evaluate(args: &[String]) -> Result<(), CliError> {
    let f = Flags::parse(args).usage()?;
    let values = read_column(f.required("input").usage()?)?;
    let ps = PrefixSums::from_values(&values);
    let budget: usize = f.parsed_or("budget", 32).usage()?;
    let exec = BudgetFlags::parse(&f)?;
    let mut params = synoptic_hist::AnytimeParams::unconstrained();
    if let Some(d) = exec.deadline {
        params = params.with_deadline(d);
    }
    if let Some(c) = exec.max_cells {
        params = params.with_max_cells(c);
    }
    if let Some(t) = &exec.cancel {
        params = params.with_cancel_token(t.clone());
    }
    let constrained = exec.is_constrained();
    println!(
        "n = {}, rows = {}, budget = {budget} words; SSE over all {} ranges",
        values.len(),
        ps.total(),
        RangeQuery::count_all(values.len())
    );
    if constrained {
        println!(
            "{:<14} {:>8} {:>14} {:>12}  provenance",
            "method", "words", "sse", "rmse"
        );
    } else {
        println!(
            "{:<14} {:>8} {:>14} {:>12}",
            "method", "words", "sse", "rmse"
        );
    }
    for m in [
        MethodSpec::Naive,
        MethodSpec::EquiDepth,
        MethodSpec::PointOpt,
        MethodSpec::Sap0,
        MethodSpec::Sap1,
        MethodSpec::OptA,
        MethodSpec::OptAReopt,
        MethodSpec::WaveletRange,
    ] {
        match m.build_tracked(&values, &ps, budget, &params) {
            Ok((est, outcome)) => {
                let sse = exact_sse(est.as_ref(), &ps);
                let rmse = (sse / RangeQuery::count_all(values.len()) as f64).sqrt();
                if constrained {
                    println!(
                        "{:<14} {:>8} {:>14.4e} {:>12.2}  {outcome}",
                        m.name(),
                        est.storage_words(),
                        sse,
                        rmse
                    );
                } else {
                    println!(
                        "{:<14} {:>8} {:>14.4e} {:>12.2}",
                        m.name(),
                        est.storage_words(),
                        sse,
                        rmse
                    );
                }
            }
            Err(e @ SynopticError::Cancelled) => return Err(e.into()),
            Err(e) => println!("{:<14} {:>8} {e}", m.name(), "-"),
        }
    }
    Ok(())
}

/// Maps a CLI method spelling to the anytime-ladder histogram family used
/// by `maintain` (the pool rebuilds through `build_anytime`, so only
/// histogram methods — not wavelets — are maintainable this way).
fn maintained_method(name: &str) -> Result<synoptic_hist::HistogramMethod, CliError> {
    use synoptic_hist::HistogramMethod as M;
    Ok(match name {
        "naive" => M::Naive,
        "equi-depth" => M::EquiDepth,
        "point-opt" => M::PointOpt,
        "a0" => M::A0,
        "sap0" => M::Sap0,
        "sap1" => M::Sap1,
        "opt-a" => M::OptA,
        other => {
            return Err(CliError::usage(format!(
                "unknown maintainable method '{other}' \
                 (naive|equi-depth|point-opt|a0|sap0|sap1|opt-a)"
            )));
        }
    })
}

/// Parses the `--fsync` cadence: `every` (per record, the default), a
/// number `N` (every N records), or `rotate` (on segment rotation only).
fn parse_fsync(s: &str) -> Result<synoptic_catalog::wal::FsyncCadence, CliError> {
    use synoptic_catalog::wal::FsyncCadence;
    Ok(match s {
        "every" => FsyncCadence::EveryRecord,
        "rotate" => FsyncCadence::OnRotate,
        n => match n.parse::<u64>() {
            Ok(k) if k > 0 => FsyncCadence::EveryN(k),
            _ => {
                return Err(CliError::usage(format!(
                    "invalid --fsync '{s}' (every | N | rotate)"
                )));
            }
        },
    })
}

/// `maintain`: simulate a live column on the sharded background worker
/// pool — ingest a pseudo-random update stream, let the rebuild policy
/// fire, and report what the maintenance layer did. With budget flags the
/// rebuilds degrade down the anytime ladder; with
/// `--upgrade-in-background` the pool then quietly re-runs the requested
/// method at a larger budget and hot-swaps the better synopsis in. With
/// `--wal-dir` (plus `--catalog`) ingest becomes crash-safe: updates are
/// journaled before they are acknowledged and rebuild snapshots commit
/// durably with their WAL mark (see `recover`).
pub fn maintain(args: &[String]) -> Result<(), CliError> {
    use synoptic_stream::{ColumnBuild, MaintainedPool, RebuildConfig, RebuildPolicy};

    let f = Flags::parse(args).usage()?;
    let values = read_column(f.required("input").usage()?)?;
    let method_name = f.required("method").usage()?;
    let method = maintained_method(method_name)?;
    let budget: usize = f.parsed_or("budget", 32).usage()?;
    let updates: u64 = f.parsed_or("updates", 256).usage()?;
    let workers: usize = f.parsed_or("workers", 2).usage()?;
    let every_k: u64 = f.parsed_or("every-k", (updates / 8).max(1)).usage()?;
    let drift: Option<f64> = f.parsed_opt("drift").usage()?;
    let seed: u64 = f.parsed_or("seed", 2001).usage()?;
    let exec = BudgetFlags::parse(&f)?;

    let policy = match drift {
        Some(fr) => RebuildPolicy::DriftFraction(fr),
        None => RebuildPolicy::EveryKUpdates(every_k),
    };
    let mut config = RebuildConfig::new(policy);
    if let Some(d) = exec.deadline {
        config = config.with_deadline(d);
    }
    if let Some(c) = exec.max_cells {
        config = config.with_max_cells(c);
    }
    if let Some(t) = &exec.cancel {
        config = config.with_cancel_token(t.clone());
    }
    if f.switch("upgrade-in-background") {
        let factor: u32 = f.parsed_or("upgrade-factor", 4).usage()?;
        config = config.with_background_upgrade(factor);
    }

    let segments: Option<usize> = f.parsed_opt("segments").usage()?;
    let n = values.len();
    let pool = MaintainedPool::new(workers);
    let build = ColumnBuild::Anytime {
        method,
        budget_words: budget,
    };
    let wal_dir = f.optional("wal-dir").map(str::to_string);
    let col = match &wal_dir {
        None => match segments {
            None => pool.add_column("cli", &values, build, config)?,
            Some(segs) => {
                pool.add_column_segmented("cli", &values, method, budget, segs, config)?
            }
        },
        Some(wal_dir) => {
            use std::sync::Arc;
            use synoptic_catalog::wal::scan_column_journal;
            use synoptic_stream::{DurabilityConfig, DurablePersistFn, SharedStorage};

            let Some(catalog_dir) = f.optional("catalog") else {
                return Err(CliError::usage(
                    "--wal-dir requires --catalog (the journal replays onto \
                     committed snapshots; see `synoptic recover`)",
                ));
            };
            let mut durability = DurabilityConfig::journaled(wal_dir);
            if let Some(s) = f.optional("fsync") {
                durability = durability.with_fsync(parse_fsync(s)?);
            }
            if let Some(bytes) = f.parsed_opt("segment-bytes").usage()? {
                durability = durability.with_segment_bytes(bytes);
            }
            // Commit the input as the initial generation. The WAL mark is
            // set past any pre-existing journal so stale records from an
            // earlier run never replay onto this fresh snapshot — which
            // would silently discard acknowledged records a crashed earlier
            // run left unreplayed, so that needs explicit consent.
            let store = DurableCatalog::open(catalog_dir, FsStorage::new())?;
            let mut catalog = match store.effective_manifest() {
                Ok(_) => store.load()?,
                Err(_) => Catalog::new(),
            };
            let scan =
                scan_column_journal(&FsStorage::new(), std::path::Path::new(wal_dir), "cli")?;
            if scan.max_lsn > catalog.wal_mark("cli") && !f.switch("discard-journal") {
                return Err(CliError::usage(format!(
                    "journal in {wal_dir} holds acknowledged record(s) past the \
                     committed mark {} (up to lsn {}) from an earlier run; replay \
                     them first with `synoptic recover --catalog {catalog_dir} \
                     --wal-dir {wal_dir} --commit`, or pass --discard-journal to \
                     drop them",
                    catalog.wal_mark("cli"),
                    scan.max_lsn
                )));
            }
            let total: i64 = values.iter().sum();
            catalog.insert(
                "cli",
                ColumnEntry {
                    n,
                    total_rows: total,
                    synopsis: PersistentSynopsis::from_frequencies(&values),
                },
            );
            catalog.set_wal_mark("cli", scan.max_lsn);
            let generation = store.save(&catalog)?;

            // Each successful rebuild commits the exact snapshot + WAL mark
            // as a new generation; the pool then truncates the journal up
            // to that mark.
            let persist_store = DurableCatalog::open(catalog_dir, FsStorage::new())?;
            let hook: DurablePersistFn = Box::new(move |snap| {
                let mut cat = persist_store.load()?;
                let total: i64 = snap.values.iter().sum();
                cat.insert(
                    "cli",
                    ColumnEntry {
                        n: snap.values.len(),
                        total_rows: total,
                        synopsis: PersistentSynopsis::from_frequencies(snap.values),
                    },
                );
                cat.set_wal_mark("cli", snap.wal_mark);
                persist_store.save(&cat)
            });
            let storage: SharedStorage = Arc::new(FsStorage::new());
            match segments {
                None => pool.add_column_durable(
                    "cli",
                    &values,
                    build,
                    config,
                    storage,
                    &durability,
                    generation,
                    Some(hook),
                )?,
                Some(segs) => pool.add_column_segmented_durable(
                    "cli",
                    &values,
                    method,
                    budget,
                    segs,
                    config,
                    storage,
                    &durability,
                    generation,
                    Some(hook),
                )?,
            }
        }
    };
    if let Some(outcome) = col.last_outcome() {
        println!("initial build: {outcome}");
    }

    // Continuous replication: a shipping thread streams every sealed
    // segment to the follower, while a retention hold keeps checkpoint
    // truncation from deleting anything the follower has not acked.
    let replication = match f.optional("replicate-to") {
        None => None,
        Some(addr) => {
            let Some(wal_dir) = &wal_dir else {
                return Err(CliError::usage(
                    "--replicate-to requires --wal-dir (only journaled segments ship)",
                ));
            };
            // Stamp every shipped frame with this node's election term so
            // a replica that granted a newer term fences us loudly
            // (exit 9) instead of accepting a deposed leader's writes.
            let catalog_dir = f.required("catalog").usage()?;
            let (term, _) =
                synoptic_repl::TermLedger::open(catalog_dir, FsStorage::new())?.current()?;
            Some(start_replication(&col, addr, wal_dir, term)?)
        }
    };

    // A deterministic xorshift update stream: positions over the domain,
    // deltas in ±[1, 8].
    let mut state = seed | 1;
    let mut scheduled = 0u64;
    for _ in 0..updates {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let i = (state % n as u64) as usize;
        let delta = ((state >> 32) % 8 + 1) as i64 * if state & 1 == 0 { 1 } else { -1 };
        if col.update(i, delta)? {
            scheduled += 1;
        }
    }
    col.quiesce();

    let stats = col.stats();
    let full = RangeQuery { lo: 0, hi: n - 1 };
    let exact = col.exact(full);
    let est = col.estimate(full);
    println!(
        "ingested {} updates on {} worker(s): {} rebuilds scheduled, \
         {} completed, {} failed, {} upgrades ({} failed), {} coalesced",
        stats.updates,
        pool.workers(),
        scheduled,
        stats.rebuilds,
        stats.failed_rebuilds,
        stats.upgrades,
        stats.failed_upgrades,
        stats.coalesced
    );
    if let Some(segs) = col.segments() {
        println!(
            "segments: {segs} — {} rebuilt, {} reused across {} rebuild(s)",
            stats.segments_rebuilt, stats.segments_reused, stats.rebuilds
        );
        if let (Some(outcomes), Some(budgets)) = (col.segment_outcomes(), col.segment_budgets()) {
            for (s, (outcome, words)) in outcomes.iter().zip(&budgets).enumerate() {
                println!("  segment {s}: {words} words — {outcome}");
            }
        }
    }
    if let Some(wal_dir) = &wal_dir {
        println!(
            "journal: wal mark {} in {wal_dir} (replay with `synoptic recover`)",
            col.wal_mark()
        );
    }
    if let Some(outcome) = col.last_outcome() {
        println!(
            "serving: {} (generation {}) — {outcome}",
            col.estimator().method_name(),
            col.serving_generation()
        );
    }
    if let Some(err) = col.last_error() {
        eprintln!("warning: last maintenance error: {err}");
    }
    if let Some(link) = replication {
        let (acked, rounds) = link.finish(&col)?;
        println!(
            "replication: follower acked lsn {acked} (of mark {}) over {rounds} ship round(s)",
            col.wal_mark()
        );
    }
    println!("full-range estimate {est:.2} vs exact {exact} after the stream");
    pool.shutdown();
    Ok(())
}

/// Name under which `maintain --replicate-to` registers its follower's
/// retention hold.
const REPLICA_HOLD: &str = "replica";

/// A live leader→follower shipping link: a seal hook feeding a channel,
/// drained by a thread that ships and advances the retention hold.
struct ReplicationLink {
    tx: std::sync::mpsc::Sender<u64>,
    thread: std::thread::JoinHandle<Result<(u64, u64), SynopticError>>,
}

/// Connects to the follower, registers the retention hold, and installs
/// the seal hook that triggers a ship round on every segment rotation.
/// Fails fast (before any ingest) when the follower is unreachable.
fn start_replication(
    col: &synoptic_stream::ColumnHandle,
    addr: &str,
    wal_dir: &str,
    term: u64,
) -> Result<ReplicationLink, CliError> {
    use synoptic_catalog::wal::{list_journal_columns, scan_column_journal};
    use synoptic_repl::{Shipper, TcpTransport};

    let journal = col.journal().expect("--replicate-to requires a journal");
    let mut transport = TcpTransport::connect(addr)?;
    journal.set_retention_hold(REPLICA_HOLD, 0);

    // Multi-column fan-in: journals other columns left under the same
    // --wal-dir (earlier runs, other processes) ship over this same link
    // before the live loop starts, so one follower session converges on
    // every column the directory holds — not just the maintained one.
    let wal_path = std::path::Path::new(wal_dir);
    let mut fanned_in = 0usize;
    for column in list_journal_columns(&FsStorage::new(), wal_path)? {
        if column == "cli" {
            continue;
        }
        let scan = scan_column_journal(&FsStorage::new(), wal_path, &column)?;
        let side = Shipper::new(FsStorage::new(), wal_dir, &column).with_term(term);
        let report = side.ship(&mut transport, scan.max_lsn)?;
        println!(
            "replication: fanned in column {column} (follower acked lsn {} of {})",
            report.acked_lsn, report.target_lsn
        );
        fanned_in += 1;
    }
    if fanned_in > 0 {
        println!("replication: {fanned_in} side column(s) fanned in over the link");
    }
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    let hook_tx = tx.clone();
    // The hook runs under the journal lock: enqueue only, ship elsewhere.
    journal.set_seal_hook(Some(Box::new(move |_path, last_lsn| {
        let _ = hook_tx.send(last_lsn);
    })));
    let handle = col.clone();
    let shipper = Shipper::new(FsStorage::new(), wal_dir, "cli").with_term(term);
    let thread = std::thread::spawn(move || -> Result<(u64, u64), SynopticError> {
        let mut acked = 0u64;
        let mut rounds = 0u64;
        while let Ok(mark) = rx.recv() {
            // Coalesce a burst of seals into one ship round.
            let mut mark = mark;
            while let Ok(later) = rx.try_recv() {
                mark = mark.max(later);
            }
            let report = shipper.ship(&mut transport, mark)?;
            acked = acked.max(report.acked_lsn);
            rounds += 1;
            // Checkpoints may now truncate everything the follower holds.
            if let Some(journal) = handle.journal() {
                journal.set_retention_hold(REPLICA_HOLD, acked);
            }
        }
        Ok((acked, rounds))
    });
    Ok(ReplicationLink { tx, thread })
}

impl ReplicationLink {
    /// Seals the journal's active tail, ships it as the final round, and
    /// joins the shipping thread. A divergence surfaces here with its
    /// dedicated exit code.
    fn finish(self, col: &synoptic_stream::ColumnHandle) -> Result<(u64, u64), CliError> {
        if let Some(journal) = col.journal() {
            journal.set_seal_hook(None);
            journal.seal()?;
            let _ = self.tx.send(journal.pending_mark());
        }
        drop(self.tx);
        match self.thread.join() {
            Ok(result) => Ok(result?),
            Err(_) => Err(CliError::from("replication thread panicked".to_string())),
        }
    }
}

/// `ship`: stream a journal's segments to a listening follower and block
/// until the follower's cumulative ack covers the journal's last record.
/// With `--seed` it instead streams the full leader state — committed
/// snapshots, the granted election term, and every column's journal
/// tail — to a `reseed` receiver, so a fenced ex-leader can rejoin.
pub fn ship(args: &[String]) -> Result<(), CliError> {
    use synoptic_catalog::wal::scan_column_journal;
    use synoptic_repl::{Seeder, Shipper, TcpTransport, TermLedger, Transport};

    let f = Flags::parse(args).usage()?;
    let wal_dir = f.required("wal-dir").usage()?;
    let to = f.required("to").usage()?;
    let column = f.optional("column").unwrap_or("cli");
    if !std::path::Path::new(wal_dir).is_dir() {
        return Err(CliError::usage(format!(
            "journal directory '{wal_dir}' does not exist"
        )));
    }
    if f.switch("seed") {
        let Some(catalog_dir) = f.optional("catalog") else {
            return Err(CliError::usage(
                "--seed requires --catalog (it streams the committed snapshots)",
            ));
        };
        let ledger = TermLedger::open(catalog_dir, FsStorage::new())?;
        let (recorded_term, vote) = ledger.current()?;
        let term = f.parsed_opt("term").usage()?.unwrap_or(recorded_term);
        if term == 0 {
            return Err(CliError::usage(format!(
                "catalog '{catalog_dir}' records no election term; promote \
                 first (`follow --auto-promote`) or pass --term explicitly"
            )));
        }
        let node: u64 = match f.parsed_opt("node").usage()? {
            Some(n) => n,
            None => vote.unwrap_or(1),
        };
        let mut transport = TcpTransport::connect(to)?;
        let seeder = Seeder::new(FsStorage::new(), catalog_dir, wal_dir, term, node);
        let report = seeder.seed(&mut transport)?;
        transport.close();
        println!(
            "seeded {} snapshot(s) and {} journal segment(s) to {to} on \
             term {} (node {node})",
            report.snapshots, report.segments, report.term
        );
        return Ok(());
    }
    let scan = scan_column_journal(&FsStorage::new(), std::path::Path::new(wal_dir), column)?;
    let mut transport = TcpTransport::connect(to)?;
    let shipper = Shipper::new(FsStorage::new(), wal_dir, column);
    let report = shipper.ship(&mut transport, scan.max_lsn)?;
    println!(
        "shipped {} segment(s) of column {column} to {to}: follower acked \
         lsn {} of {} in {} pass(es)",
        report.shipped, report.acked_lsn, report.target_lsn, report.passes
    );
    for refusal in &report.refusals {
        eprintln!("follower refused: {refusal}");
    }
    Ok(())
}

/// `follow`: run a read-only replica. Bootstraps via full crash recovery
/// over its own catalog + journal, then accepts `--sessions` leader
/// connections, verifying and applying shipped segments. Reads staler
/// than `--max-lag` are refused with the observed lag (exit 8).
pub fn follow(args: &[String]) -> Result<(), CliError> {
    use std::net::TcpListener;
    use std::sync::Arc;
    use synoptic_repl::{TcpTransport, WallClock};
    use synoptic_stream::{promote, FollowConfig, Follower, ServeOutcome, SharedStorage};

    let f = Flags::parse(args).usage()?;
    let catalog_dir = f.required("catalog").usage()?;
    let wal_dir = f.required("wal-dir").usage()?;
    let listen = f.required("listen").usage()?;
    let max_lag: Option<u64> = f.parsed_opt("max-lag").usage()?;
    let sessions: u64 = f.parsed_or("sessions", 1).usage()?;
    let auto_promote = f.switch("auto-promote");
    let node: u64 = f.parsed_or("node", 1).usage()?;
    let lease_ttl_ms: u64 = f.parsed_or("lease-ttl-ms", 3000).usage()?;
    if !std::path::Path::new(catalog_dir).is_dir() {
        return Err(CliError::usage(format!(
            "catalog store '{catalog_dir}' does not exist"
        )));
    }
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let config = FollowConfig {
        max_lag,
        ..FollowConfig::default()
    };
    let (mut follower, report) = Follower::open(storage, catalog_dir, wal_dir, config)?;
    print!("{}", report.render());

    let listener =
        TcpListener::bind(listen).map_err(|e| CliError::from(format!("bind {listen}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::from(format!("local_addr: {e}")))?;
    // Port 0 binds an ephemeral port; the port file tells scripts (and
    // tests) where the replica actually listens.
    if let Some(path) = f.optional("port-file") {
        std::fs::write(path, local.port().to_string())
            .map_err(|e| CliError::from(format!("write {path}: {e}")))?;
    }
    println!("replica listening on {local} for {sessions} session(s)");
    for session in 1..=sessions {
        let (stream, peer) = listener
            .accept()
            .map_err(|e| CliError::from(format!("accept: {e}")))?;
        let mut transport = TcpTransport::from_stream(stream);
        if !auto_promote {
            follower.serve(&mut transport)?;
            println!("session {session} from {peer}: stream complete");
            continue;
        }
        // Automated failover: serve under a heartbeat lease. A leader
        // that closes cleanly ends the session as usual; a leader that
        // goes silent past the TTL expires the lease and this replica
        // promotes itself in place.
        let clock = WallClock::new();
        match follower.serve_with_lease(
            &mut transport,
            &clock,
            lease_ttl_ms,
            Duration::from_millis(50),
        )? {
            ServeOutcome::LeaderClosed => {
                println!("session {session} from {peer}: stream complete");
            }
            ServeOutcome::LeaseExpired => {
                println!(
                    "session {session} from {peer}: lease expired after \
                     {lease_ttl_ms} ms of leader silence — promoting"
                );
                let storage: SharedStorage = Arc::new(FsStorage::new());
                let (term, report) = promote(storage, catalog_dir, wal_dir, node)?;
                print!("{}", report.render());
                println!("promoted node {node} to leader for term {term}");
                // The promoted replica serves its first read immediately,
                // straight off the recovered state (lag 0 by definition).
                let storage: SharedStorage = Arc::new(FsStorage::new());
                let (promoted, _) =
                    Follower::open(storage, catalog_dir, wal_dir, FollowConfig::default())?;
                for column in promoted.columns() {
                    if let Some(values) = promoted.values(&column) {
                        if !values.is_empty() {
                            let q = RangeQuery::new(0, values.len() - 1)?;
                            let est = promoted.estimate(&column, q)?;
                            println!(
                                "promoted column {column}: first served read \
                                 (full-range sum) {est:.0}"
                            );
                        }
                    }
                }
                return Ok(());
            }
        }
    }
    for column in follower.columns() {
        let applied = follower.applied_lsn(&column).unwrap_or(0);
        let lag = follower.lag(&column).unwrap_or(0);
        println!("replica column {column}: applied lsn {applied}, lag {lag}");
        if let Some(values) = follower.values(&column) {
            if !values.is_empty() {
                let q = RangeQuery::new(0, values.len() - 1)?;
                // The lag-bounded read: refuses (exit 8) when too stale.
                let est = follower.estimate(&column, q)?;
                println!("replica column {column}: full-range sum {est:.0}");
            }
        }
    }
    for refusal in follower.refusals() {
        eprintln!("refused: {refusal}");
    }
    Ok(())
}

/// `reseed`: rebuild a stranded (typically fenced ex-leader) node as a
/// follower from a live leader's `ship --seed` stream. The target
/// directories must be fresh — re-seeding exists precisely because the
/// local history diverged, so it never merges onto old state. Receives
/// the granted term, committed snapshots, and journal tail, then keeps
/// serving the session like `follow` until the seeder closes.
pub fn reseed(args: &[String]) -> Result<(), CliError> {
    use std::net::TcpListener;
    use std::sync::Arc;
    use synoptic_repl::TcpTransport;
    use synoptic_stream::{rejoin, FollowConfig, SharedStorage};

    let f = Flags::parse(args).usage()?;
    let catalog_dir = f.required("catalog").usage()?;
    let wal_dir = f.required("wal-dir").usage()?;
    let listen = f.required("listen").usage()?;
    let max_lag: Option<u64> = f.parsed_opt("max-lag").usage()?;

    let listener =
        TcpListener::bind(listen).map_err(|e| CliError::from(format!("bind {listen}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::from(format!("local_addr: {e}")))?;
    if let Some(path) = f.optional("port-file") {
        std::fs::write(path, local.port().to_string())
            .map_err(|e| CliError::from(format!("write {path}: {e}")))?;
    }
    println!("re-seed target listening on {local} (into {catalog_dir} + {wal_dir})");
    let (stream, peer) = listener
        .accept()
        .map_err(|e| CliError::from(format!("accept: {e}")))?;
    let mut transport = TcpTransport::from_stream(stream);
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let config = FollowConfig {
        max_lag,
        ..FollowConfig::default()
    };
    let (mut follower, report) = rejoin(storage, catalog_dir, wal_dir, config, &mut transport)?;
    print!("{}", report.render());
    println!(
        "re-seeded from {peer}: rejoined as a follower on term {}",
        follower.term()
    );
    follower.serve(&mut transport)?;
    for column in follower.columns() {
        let applied = follower.applied_lsn(&column).unwrap_or(0);
        let lag = follower.lag(&column).unwrap_or(0);
        println!("rejoined column {column}: applied lsn {applied}, lag {lag}");
        if let Some(values) = follower.values(&column) {
            if !values.is_empty() {
                let q = RangeQuery::new(0, values.len() - 1)?;
                let est = follower.estimate(&column, q)?;
                println!("rejoined column {column}: full-range sum {est:.0}");
            }
        }
    }
    for refusal in follower.refusals() {
        eprintln!("refused: {refusal}");
    }
    Ok(())
}

/// `recover`: replay the write-ahead journals under `--wal-dir` on top of
/// the committed catalog snapshots (running fsck/repair and
/// abandoned-generation pruning first) and report the reconstructed
/// per-column state. With `--commit` the recovered frequencies are saved
/// back as a new generation and the journals are checkpointed, so the
/// next `maintain` run starts from the recovered state. An untrustworthy
/// journal (corruption beyond the tolerated torn tail, or a journal from
/// a newer generation than the snapshot) exits with the dedicated
/// unrecoverable code.
pub fn recover(args: &[String]) -> Result<(), CliError> {
    use synoptic_catalog::wal::{ColumnWal, WalConfig};

    let f = Flags::parse(args).usage()?;
    let store = open_store(f.required("catalog").usage()?, false)?;
    let wal_dir = f.required("wal-dir").usage()?;
    let report = synoptic_stream::recover(&store, wal_dir)?;
    print!("{}", report.render());
    if !f.switch("commit") {
        return Ok(());
    }
    if report.columns.is_empty() {
        println!("nothing to commit");
        return Ok(());
    }
    let synoptic_stream::RecoveryReport {
        columns,
        mut catalog,
        ..
    } = report;
    for c in &columns {
        let total: i64 = c.values.iter().sum();
        catalog.insert(
            &c.name,
            ColumnEntry {
                n: c.values.len(),
                total_rows: total,
                synopsis: PersistentSynopsis::from_frequencies(&c.values),
            },
        );
        catalog.set_wal_mark(&c.name, c.max_lsn.max(c.committed_mark));
    }
    let generation = store.save(&catalog)?;
    for c in &columns {
        let wal = ColumnWal::open(
            FsStorage::new(),
            wal_dir,
            &c.name,
            generation,
            WalConfig::default(),
        )?;
        wal.checkpoint(c.max_lsn.max(c.committed_mark), generation)?;
    }
    println!(
        "committed recovered state as generation {generation}; {} journal(s) checkpointed",
        columns.len()
    );
    Ok(())
}

/// `report`: summarize the committed generation of a store.
pub fn report(args: &[String]) -> Result<(), CliError> {
    let f = Flags::parse(args).usage()?;
    let store = open_store(f.required("catalog").usage()?, false)?;
    let m = store.effective_manifest()?;
    let catalog = store.load()?;
    println!("generation {}", m.generation);
    print!("{}", catalog.summary());
    Ok(())
}

/// `fsck`: read-only consistency check. Exits non-zero when issues exist.
/// On a healthy store it also reports (without touching) abandoned
/// never-committed generations that `repair --prune` would reclaim.
pub fn fsck(args: &[String]) -> Result<(), CliError> {
    let f = Flags::parse(args).usage()?;
    let store = open_store(f.required("catalog").usage()?, false)?;
    let report = store.fsck()?;
    print!("{}", report.render());
    if report.healthy() {
        let prunable = store.prune_abandoned(true)?;
        if !prunable.abandoned_generations.is_empty() {
            print!("{}", prunable.render());
            println!("reclaim with `synoptic repair --catalog DIR --prune`");
        }
        Ok(())
    } else {
        Err(CliError {
            msg: format!(
                "{} issue(s) found — run `synoptic repair --catalog DIR` to quarantine damage",
                report.issues.len()
            ),
            code: EXIT_CORRUPT,
        })
    }
}

/// `repair`: quarantine corrupt/stray files and re-point `CURRENT` at the
/// newest valid generation. Deletes nothing by default; `--prune`
/// additionally reclaims abandoned (valid but never committed) generation
/// files, which is idempotent and skips anything the committed chain still
/// references.
pub fn repair(args: &[String]) -> Result<(), CliError> {
    let f = Flags::parse(args).usage()?;
    let store = open_store(f.required("catalog").usage()?, false)?;
    let report = store.repair()?;
    print!("{}", report.render());
    if f.switch("prune") {
        let pruned = store.prune_abandoned(false)?;
        print!("{}", pruned.render());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::AnswerSource;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("{name}_{}", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    }

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn full_cli_pipeline() {
        let col = tmp("synoptic_cli_col.txt");
        let cat = tmp("synoptic_cli_store");
        let _ = std::fs::remove_dir_all(&cat);

        generate(&s(&["--n", "32", "--out", &col])).unwrap();
        build(&s(&[
            "--input",
            &col,
            "--method",
            "sap0",
            "--budget",
            "18",
            "--catalog",
            &cat,
            "--column",
            "price",
        ]))
        .unwrap();
        build(&s(&[
            "--input",
            &col,
            "--method",
            "opt-a",
            "--budget",
            "16",
            "--catalog",
            &cat,
            "--column",
            "qty",
        ]))
        .unwrap();
        estimate(&s(&[
            "--catalog",
            &cat,
            "--column",
            "price",
            "--range",
            "0..31",
        ]))
        .unwrap();
        report(&s(&["--catalog", &cat])).unwrap();
        fsck(&s(&["--catalog", &cat])).unwrap();
        evaluate(&s(&["--input", &col, "--budget", "16"])).unwrap();

        // The store answers the whole-domain query near the true total, from
        // the primary synopsis.
        let values = read_column(&col).unwrap();
        let total: i64 = values.iter().sum();
        let store = open_store(&cat, false).unwrap();
        let e = store.estimate("qty", RangeQuery { lo: 0, hi: 31 }).unwrap();
        assert_eq!(e.source, AnswerSource::Primary);
        assert!(
            (e.value - total as f64).abs() < 1.0,
            "estimate {} vs total {total}",
            e.value
        );

        let _ = std::fs::remove_file(&col);
        let _ = std::fs::remove_dir_all(&cat);
    }

    #[test]
    fn build_rejects_unknown_method() {
        let col = tmp("synoptic_cli_col2.txt");
        write_column(&col, &[1, 2, 3, 4]).unwrap();
        let err = build(&s(&[
            "--input",
            &col,
            "--method",
            "magic",
            "--catalog",
            "/dev/null",
            "--column",
            "x",
        ]))
        .unwrap_err();
        assert!(err.msg.contains("unknown method"));
        assert_eq!(err.code, EXIT_USAGE);
        let _ = std::fs::remove_file(&col);
    }

    #[test]
    fn estimate_errors_cleanly_on_missing_store() {
        let err = estimate(&s(&[
            "--catalog",
            "/nonexistent/stats",
            "--column",
            "x",
            "--range",
            "0..1",
        ]))
        .unwrap_err();
        assert!(err.msg.contains("does not exist"), "{}", err.msg);
        assert_eq!(err.code, EXIT_USAGE);
    }

    #[test]
    fn every_cli_method_builds() {
        let col = tmp("synoptic_cli_col3.txt");
        let cat = tmp("synoptic_cli_store3");
        let _ = std::fs::remove_dir_all(&cat);
        generate(&s(&["--n", "24", "--out", &col])).unwrap();
        for m in [
            "naive",
            "opt-a",
            "opt-a-reopt",
            "sap0",
            "sap1",
            "wavelet-range",
        ] {
            build(&s(&[
                "--input",
                &col,
                "--method",
                m,
                "--budget",
                "20",
                "--catalog",
                &cat,
                "--column",
                m,
            ]))
            .unwrap();
        }
        let store = open_store(&cat, false).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), 6);
        let _ = std::fs::remove_file(&col);
        let _ = std::fs::remove_dir_all(&cat);
    }

    #[test]
    fn maintain_runs_the_pool_end_to_end() {
        let col = tmp("synoptic_cli_col5.txt");
        generate(&s(&["--n", "48", "--out", &col])).unwrap();
        maintain(&s(&[
            "--input",
            &col,
            "--method",
            "sap0",
            "--budget",
            "18",
            "--updates",
            "200",
            "--every-k",
            "25",
            "--workers",
            "2",
        ]))
        .unwrap();
        // Degraded + upgrade path: a 0-cell budget forces the ladder down to
        // naive, then the background upgrade (huge factor) restores opt-a.
        maintain(&s(&[
            "--input",
            &col,
            "--method",
            "opt-a",
            "--budget",
            "16",
            "--updates",
            "64",
            "--every-k",
            "16",
            "--max-cells",
            "1",
            "--upgrade-in-background",
            "--upgrade-factor",
            "1000000",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&col);
    }

    #[test]
    fn maintain_journals_and_recover_replays() {
        let col = tmp("synoptic_cli_col7.txt");
        let cat = tmp("synoptic_cli_store7");
        let wal = tmp("synoptic_cli_wal7");
        let _ = std::fs::remove_dir_all(&cat);
        let _ = std::fs::remove_dir_all(&wal);
        generate(&s(&["--n", "32", "--out", &col])).unwrap();
        // A rebuild threshold above the update count keeps every update in
        // the journal only: the committed snapshot stays at generation 1.
        maintain(&s(&[
            "--input",
            &col,
            "--method",
            "sap0",
            "--budget",
            "18",
            "--updates",
            "100",
            "--every-k",
            "1000000",
            "--workers",
            "1",
            "--wal-dir",
            &wal,
            "--catalog",
            &cat,
            "--fsync",
            "rotate",
        ]))
        .unwrap();
        let store = open_store(&cat, false).unwrap();
        let r1 = synoptic_stream::recover(&store, &wal).unwrap();
        let c1 = r1.column("cli").unwrap().clone();
        assert_eq!(c1.replayed, 100, "all acknowledged updates replay");
        recover(&s(&["--catalog", &cat, "--wal-dir", &wal, "--commit"])).unwrap();
        // After --commit the journal is checkpointed and the catalog holds
        // the recovered values: a second recovery replays nothing and
        // reconstructs the same state.
        let r2 = synoptic_stream::recover(&store, &wal).unwrap();
        let c2 = r2.column("cli").unwrap();
        assert_eq!(c2.replayed, 0);
        assert_eq!(c2.values, c1.values);
        let _ = std::fs::remove_file(&col);
        let _ = std::fs::remove_dir_all(&cat);
        let _ = std::fs::remove_dir_all(&wal);
    }

    #[test]
    fn maintain_refuses_an_unreplayed_journal_without_discard() {
        let col = tmp("synoptic_cli_col8.txt");
        let cat = tmp("synoptic_cli_store8");
        let wal = tmp("synoptic_cli_wal8");
        let _ = std::fs::remove_dir_all(&cat);
        let _ = std::fs::remove_dir_all(&wal);
        generate(&s(&["--n", "32", "--out", &col])).unwrap();
        let base = [
            "--input",
            &col,
            "--method",
            "naive",
            "--updates",
            "50",
            "--every-k",
            "1000000",
            "--workers",
            "1",
            "--wal-dir",
            &wal,
            "--catalog",
            &cat,
        ];
        // First run leaves 50 acknowledged records in the journal (the
        // rebuild threshold is never reached, so no checkpoint runs): a
        // rerun would silently discard them by fast-forwarding the mark.
        maintain(&s(&base)).unwrap();
        let err = maintain(&s(&base)).unwrap_err();
        assert_eq!(err.code, EXIT_USAGE);
        assert!(err.msg.contains("synoptic recover"), "{}", err.msg);
        assert!(err.msg.contains("--discard-journal"), "{}", err.msg);
        // Replaying them via `recover --commit` clears the debt...
        recover(&s(&["--catalog", &cat, "--wal-dir", &wal, "--commit"])).unwrap();
        maintain(&s(&base)).unwrap();
        // ...and --discard-journal is the explicit drop-them escape hatch.
        let mut discard: Vec<&str> = base.to_vec();
        discard.push("--discard-journal");
        maintain(&s(&discard)).unwrap();
        let _ = std::fs::remove_file(&col);
        let _ = std::fs::remove_dir_all(&cat);
        let _ = std::fs::remove_dir_all(&wal);
    }

    #[test]
    fn maintain_rejects_unmaintainable_method() {
        let col = tmp("synoptic_cli_col6.txt");
        write_column(&col, &[1, 2, 3, 4]).unwrap();
        let err = maintain(&s(&["--input", &col, "--method", "wavelet-range"])).unwrap_err();
        assert!(
            err.msg.contains("unknown maintainable method"),
            "{}",
            err.msg
        );
        assert_eq!(err.code, EXIT_USAGE);
        let _ = std::fs::remove_file(&col);
    }

    #[test]
    fn fsck_flags_damage_and_repair_restores_service() {
        let col = tmp("synoptic_cli_col4.txt");
        let cat = tmp("synoptic_cli_store4");
        let _ = std::fs::remove_dir_all(&cat);
        generate(&s(&["--n", "16", "--out", &col])).unwrap();
        for _ in 0..2 {
            build(&s(&[
                "--input",
                &col,
                "--method",
                "sap1",
                "--budget",
                "20",
                "--catalog",
                &cat,
                "--column",
                "price",
            ]))
            .unwrap();
        }
        // Corrupt the newest synopsis file.
        let victim = std::path::Path::new(&cat).join("price-2.syn");
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        std::fs::write(&victim, bytes).unwrap();

        let err = fsck(&s(&["--catalog", &cat])).unwrap_err();
        assert!(err.msg.contains("issue"), "{}", err.msg);
        assert_eq!(err.code, EXIT_CORRUPT);
        repair(&s(&["--catalog", &cat])).unwrap();
        // Damage was quarantined, not deleted.
        assert!(std::path::Path::new(&cat)
            .join("quarantine")
            .join("price-2.syn")
            .exists());
        // Repair rolled CURRENT back to the last fully-valid generation, so
        // estimates serve it as primary again.
        estimate(&s(&[
            "--catalog",
            &cat,
            "--column",
            "price",
            "--range",
            "0..15",
        ]))
        .unwrap();
        let store = open_store(&cat, false).unwrap();
        let e = store
            .estimate("price", RangeQuery { lo: 0, hi: 15 })
            .unwrap();
        assert_eq!(e.source, AnswerSource::Primary);
        // And fsck is clean again.
        fsck(&s(&["--catalog", &cat])).unwrap();
        let _ = std::fs::remove_file(&col);
        let _ = std::fs::remove_dir_all(&cat);
    }
}
