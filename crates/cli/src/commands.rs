//! The CLI subcommands.

use synoptic_catalog::{Catalog, ColumnEntry, DurableCatalog, FsStorage, PersistentSynopsis};
use synoptic_core::{PrefixSums, RangeEstimator, RangeQuery, RoundingMode};
use synoptic_data::zipf::{paper_dataset, ZipfConfig};
use synoptic_eval::methods::{exact_sse, MethodSpec};
use synoptic_hist::opta::{build_opt_a, OptAConfig};
use synoptic_hist::reopt::reoptimize;
use synoptic_hist::sap0::build_sap0;
use synoptic_hist::sap1::build_sap1;
use synoptic_wavelet::RangeOptimalWavelet;

use crate::io::{parse_range, read_column, write_column, Flags};

/// Top-level usage text.
pub const USAGE: &str = "\
synoptic — range-sum synopses from the PODS 2001 paper

USAGE:
  synoptic generate --n N [--alpha A] [--mass M] [--seed S] [--permuted] --out FILE
  synoptic build    --input FILE --method METHOD --budget WORDS \\
                    --catalog DIR --column NAME
  synoptic estimate --catalog DIR --column NAME --range LO..HI
  synoptic evaluate --input FILE [--budget WORDS]
  synoptic report   --catalog DIR
  synoptic fsck     --catalog DIR
  synoptic repair   --catalog DIR

METHODS: naive | opt-a | opt-a-reopt | sap0 | sap1 | wavelet-range
FILES:   one integer frequency per line ('#' comments allowed)
CATALOG: a store directory of checksummed synopsis files with generational
         manifests (see docs/PERSISTENCE.md); corrupt files are quarantined,
         never deleted, and estimates degrade gracefully with a warning.";

/// Opens the store at `dir`, creating it only when `create` is set —
/// read-only commands must not invent an empty store at a mistyped path.
fn open_store(dir: &str, create: bool) -> Result<DurableCatalog<FsStorage>, String> {
    if !create && !std::path::Path::new(dir).is_dir() {
        return Err(format!("catalog store '{dir}' does not exist"));
    }
    DurableCatalog::open(dir, FsStorage::new()).map_err(|e| e.to_string())
}

/// `generate`: emit a synthetic Zipf column per the paper's recipe.
pub fn generate(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let cfg = ZipfConfig {
        n: f.parsed("n")?,
        alpha: f.parsed_or("alpha", 1.8)?,
        total_mass: f.parsed_or("mass", 10_000.0)?,
        permute: f.switch("permuted"),
        seed: f.parsed_or("seed", 2001)?,
        ..ZipfConfig::default()
    };
    let out = f.required("out")?;
    let data = paper_dataset(&cfg);
    write_column(out, data.values())?;
    println!(
        "wrote {} values (total mass {}) to {out}",
        data.n(),
        data.total()
    );
    Ok(())
}

fn build_synopsis(
    method: &str,
    ps: &PrefixSums,
    budget: usize,
) -> Result<PersistentSynopsis, String> {
    let err = |e: synoptic_core::SynopticError| e.to_string();
    Ok(match method {
        "naive" => PersistentSynopsis::from_naive(ps),
        "opt-a" => {
            let b = (budget / 2).clamp(1, ps.n());
            let r = build_opt_a(ps, &OptAConfig::exact(b, RoundingMode::None)).map_err(err)?;
            let vh = synoptic_core::ValueHistogram::with_averages(
                r.histogram.bucketing().clone(),
                ps,
                "OPT-A",
            )
            .map_err(err)?;
            PersistentSynopsis::from_value_histogram(&vh)
        }
        "opt-a-reopt" => {
            let b = (budget / 2).clamp(1, ps.n());
            let base = build_opt_a(ps, &OptAConfig::exact(b, RoundingMode::None)).map_err(err)?;
            let re = reoptimize(base.histogram.bucketing(), ps, "OPT-A").map_err(err)?;
            PersistentSynopsis::from_value_histogram(&re.histogram)
        }
        "sap0" => {
            let b = (budget / 3).clamp(1, ps.n());
            PersistentSynopsis::from_sap0(&build_sap0(ps, b).map_err(err)?)
        }
        "sap1" => {
            let b = (budget / 5).clamp(1, ps.n());
            PersistentSynopsis::from_sap1(&build_sap1(ps, b).map_err(err)?)
        }
        "wavelet-range" => {
            let b = (budget / 2).max(1);
            PersistentSynopsis::from_wavelet_range(&RangeOptimalWavelet::build(ps, b))
        }
        other => {
            return Err(format!(
                "unknown method '{other}' (naive|opt-a|opt-a-reopt|sap0|sap1|wavelet-range)"
            ));
        }
    })
}

/// `build`: construct a synopsis and commit it to the store as a new
/// generation (the previous generation stays on disk for fallback).
pub fn build(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let input = f.required("input")?;
    let method = f.required("method")?;
    let budget: usize = f.parsed_or("budget", 32)?;
    let store_dir = f.required("catalog")?;
    let column = f.required("column")?;

    let values = read_column(input)?;
    let ps = PrefixSums::from_values(&values);
    let synopsis = build_synopsis(method, &ps, budget)?;

    let store = open_store(store_dir, true)?;
    // Start from the committed generation when one exists; a damaged store
    // refuses here — run `fsck`/`repair` first rather than overwriting
    // evidence.
    let mut catalog = match store.effective_manifest() {
        Ok(_) => store.load().map_err(|e| e.to_string())?,
        Err(_) => Catalog::new(),
    };
    let words = synopsis.storage_words();
    catalog.insert(
        column,
        ColumnEntry {
            n: values.len(),
            total_rows: ps.total() as i64,
            synopsis,
        },
    );
    let generation = store.save(&catalog).map_err(|e| e.to_string())?;
    println!(
        "built {method} for column '{column}' ({words} words) → {store_dir} generation {generation}"
    );
    Ok(())
}

/// `estimate`: answer one range query through the degraded-mode-aware
/// fallback chain. A non-primary answer prints a warning on stderr so
/// degradation is never silent.
pub fn estimate(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let store = open_store(f.required("catalog")?, false)?;
    let column = f.required("column")?;
    let (lo, hi) = parse_range(f.required("range")?)?;
    let q = RangeQuery::new(lo, hi).map_err(|e| e.to_string())?;
    let answer = store.estimate(column, q).map_err(|e| e.to_string())?;
    if answer.source.is_degraded() {
        eprintln!(
            "warning: degraded answer for column '{column}' (source: {})",
            answer.source
        );
    }
    println!("{:.2}", answer.value);
    Ok(())
}

/// `evaluate`: compare methods on a column file at one budget.
pub fn evaluate(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let values = read_column(f.required("input")?)?;
    let ps = PrefixSums::from_values(&values);
    let budget: usize = f.parsed_or("budget", 32)?;
    println!(
        "n = {}, rows = {}, budget = {budget} words; SSE over all {} ranges",
        values.len(),
        ps.total(),
        RangeQuery::count_all(values.len())
    );
    println!(
        "{:<14} {:>8} {:>14} {:>12}",
        "method", "words", "sse", "rmse"
    );
    for m in [
        MethodSpec::Naive,
        MethodSpec::EquiDepth,
        MethodSpec::PointOpt,
        MethodSpec::Sap0,
        MethodSpec::Sap1,
        MethodSpec::OptA,
        MethodSpec::OptAReopt,
        MethodSpec::WaveletRange,
    ] {
        match m.build_at_budget(&values, &ps, budget) {
            Ok(est) => {
                let sse = exact_sse(est.as_ref(), &ps);
                let rmse = (sse / RangeQuery::count_all(values.len()) as f64).sqrt();
                println!(
                    "{:<14} {:>8} {:>14.4e} {:>12.2}",
                    m.name(),
                    est.storage_words(),
                    sse,
                    rmse
                );
            }
            Err(e) => println!("{:<14} {:>8} {e}", m.name(), "-"),
        }
    }
    Ok(())
}

/// `report`: summarize the committed generation of a store.
pub fn report(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let store = open_store(f.required("catalog")?, false)?;
    let m = store.effective_manifest().map_err(|e| e.to_string())?;
    let catalog = store.load().map_err(|e| e.to_string())?;
    println!("generation {}", m.generation);
    print!("{}", catalog.summary());
    Ok(())
}

/// `fsck`: read-only consistency check. Exits non-zero when issues exist.
pub fn fsck(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let store = open_store(f.required("catalog")?, false)?;
    let report = store.fsck().map_err(|e| e.to_string())?;
    print!("{}", report.render());
    if report.healthy() {
        Ok(())
    } else {
        Err(format!(
            "{} issue(s) found — run `synoptic repair --catalog DIR` to quarantine damage",
            report.issues.len()
        ))
    }
}

/// `repair`: quarantine corrupt/stray files and re-point `CURRENT` at the
/// newest valid generation. Never deletes anything.
pub fn repair(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let store = open_store(f.required("catalog")?, false)?;
    let report = store.repair().map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::AnswerSource;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("{name}_{}", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    }

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn full_cli_pipeline() {
        let col = tmp("synoptic_cli_col.txt");
        let cat = tmp("synoptic_cli_store");
        let _ = std::fs::remove_dir_all(&cat);

        generate(&s(&["--n", "32", "--out", &col])).unwrap();
        build(&s(&[
            "--input",
            &col,
            "--method",
            "sap0",
            "--budget",
            "18",
            "--catalog",
            &cat,
            "--column",
            "price",
        ]))
        .unwrap();
        build(&s(&[
            "--input",
            &col,
            "--method",
            "opt-a",
            "--budget",
            "16",
            "--catalog",
            &cat,
            "--column",
            "qty",
        ]))
        .unwrap();
        estimate(&s(&[
            "--catalog",
            &cat,
            "--column",
            "price",
            "--range",
            "0..31",
        ]))
        .unwrap();
        report(&s(&["--catalog", &cat])).unwrap();
        fsck(&s(&["--catalog", &cat])).unwrap();
        evaluate(&s(&["--input", &col, "--budget", "16"])).unwrap();

        // The store answers the whole-domain query near the true total, from
        // the primary synopsis.
        let values = read_column(&col).unwrap();
        let total: i64 = values.iter().sum();
        let store = open_store(&cat, false).unwrap();
        let e = store.estimate("qty", RangeQuery { lo: 0, hi: 31 }).unwrap();
        assert_eq!(e.source, AnswerSource::Primary);
        assert!(
            (e.value - total as f64).abs() < 1.0,
            "estimate {} vs total {total}",
            e.value
        );

        let _ = std::fs::remove_file(&col);
        let _ = std::fs::remove_dir_all(&cat);
    }

    #[test]
    fn build_rejects_unknown_method() {
        let col = tmp("synoptic_cli_col2.txt");
        write_column(&col, &[1, 2, 3, 4]).unwrap();
        let err = build(&s(&[
            "--input",
            &col,
            "--method",
            "magic",
            "--catalog",
            "/dev/null",
            "--column",
            "x",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown method"));
        let _ = std::fs::remove_file(&col);
    }

    #[test]
    fn estimate_errors_cleanly_on_missing_store() {
        let err = estimate(&s(&[
            "--catalog",
            "/nonexistent/stats",
            "--column",
            "x",
            "--range",
            "0..1",
        ]))
        .unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
    }

    #[test]
    fn every_cli_method_builds() {
        let col = tmp("synoptic_cli_col3.txt");
        let cat = tmp("synoptic_cli_store3");
        let _ = std::fs::remove_dir_all(&cat);
        generate(&s(&["--n", "24", "--out", &col])).unwrap();
        for m in [
            "naive",
            "opt-a",
            "opt-a-reopt",
            "sap0",
            "sap1",
            "wavelet-range",
        ] {
            build(&s(&[
                "--input",
                &col,
                "--method",
                m,
                "--budget",
                "20",
                "--catalog",
                &cat,
                "--column",
                m,
            ]))
            .unwrap();
        }
        let store = open_store(&cat, false).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), 6);
        let _ = std::fs::remove_file(&col);
        let _ = std::fs::remove_dir_all(&cat);
    }

    #[test]
    fn fsck_flags_damage_and_repair_restores_service() {
        let col = tmp("synoptic_cli_col4.txt");
        let cat = tmp("synoptic_cli_store4");
        let _ = std::fs::remove_dir_all(&cat);
        generate(&s(&["--n", "16", "--out", &col])).unwrap();
        for _ in 0..2 {
            build(&s(&[
                "--input",
                &col,
                "--method",
                "sap1",
                "--budget",
                "20",
                "--catalog",
                &cat,
                "--column",
                "price",
            ]))
            .unwrap();
        }
        // Corrupt the newest synopsis file.
        let victim = std::path::Path::new(&cat).join("price-2.syn");
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        std::fs::write(&victim, bytes).unwrap();

        let err = fsck(&s(&["--catalog", &cat])).unwrap_err();
        assert!(err.contains("issue"), "{err}");
        repair(&s(&["--catalog", &cat])).unwrap();
        // Damage was quarantined, not deleted.
        assert!(std::path::Path::new(&cat)
            .join("quarantine")
            .join("price-2.syn")
            .exists());
        // Repair rolled CURRENT back to the last fully-valid generation, so
        // estimates serve it as primary again.
        estimate(&s(&[
            "--catalog",
            &cat,
            "--column",
            "price",
            "--range",
            "0..15",
        ]))
        .unwrap();
        let store = open_store(&cat, false).unwrap();
        let e = store
            .estimate("price", RangeQuery { lo: 0, hi: 15 })
            .unwrap();
        assert_eq!(e.source, AnswerSource::Primary);
        // And fsck is clean again.
        fsck(&s(&["--catalog", &cat])).unwrap();
        let _ = std::fs::remove_file(&col);
        let _ = std::fs::remove_dir_all(&cat);
    }
}
