//! `synoptic` — build, persist, and query range-sum synopses from the
//! command line.
//!
//! ```text
//! synoptic generate --n 127 --alpha 1.8 --out column.txt
//! synoptic build    --input column.txt --method sap0 --budget 32 \
//!                   --catalog stats/ --column price
//! synoptic estimate --catalog stats/ --column price --range 10..40
//! synoptic serve    --input column.txt --method sap0 --listen 127.0.0.1:7600
//! synoptic evaluate --input column.txt --budget 32
//! synoptic maintain --input column.txt --method opt-a --updates 512 --workers 2
//! synoptic ship     --wal-dir stats/wal --to 127.0.0.1:7501
//! synoptic follow   --catalog replica/ --wal-dir replica/wal --listen 127.0.0.1:7501
//! synoptic recover  --catalog stats/ --wal-dir stats/wal --commit
//! synoptic report   --catalog stats/
//! synoptic fsck     --catalog stats/
//! synoptic repair   --catalog stats/
//! ```
//!
//! Input files hold one integer frequency per line (`#` comments allowed).
//! Argument parsing is deliberately dependency-free.

mod commands;
mod io;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => commands::generate(rest),
        "build" => commands::build(rest),
        "estimate" => commands::estimate(rest),
        "serve" => commands::serve(rest),
        "evaluate" => commands::evaluate(rest),
        "maintain" => commands::maintain(rest),
        "ship" => commands::ship(rest),
        "follow" => commands::follow(rest),
        "reseed" => commands::reseed(rest),
        "recover" => commands::recover(rest),
        "report" => commands::report(rest),
        "fsck" => commands::fsck(rest),
        "repair" => commands::repair(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(commands::CliError::usage(format!(
            "unknown command '{other}'\n{}",
            commands::USAGE
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.msg);
            ExitCode::from(e.code)
        }
    }
}
