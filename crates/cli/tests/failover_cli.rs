//! End-to-end automated failover through the `synoptic` binary: a
//! term-stamped leader streams to `follow --auto-promote` over real TCP
//! and then goes silent; the replica's lease expires, it promotes itself
//! in place (claiming the next term) and serves its first read. The
//! promoted state then `ship --seed`s into a `reseed` receiver, which
//! rejoins as a follower on the granted term, and a stale term-0 shipper
//! against the rejoined node exits with the dedicated fenced code (9).

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use synoptic_catalog::wal::{ColumnWal, WalConfig};
use synoptic_catalog::FsStorage;
use synoptic_repl::{Shipper, TcpTransport};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_synoptic")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("failed to launch synoptic binary")
}

fn ok(args: &[&str]) -> Output {
    let out = run(args);
    assert!(
        out.status.success(),
        "`synoptic {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("{name}_{}", std::process::id()))
}

/// Spawns a listening subcommand (`follow`/`reseed`) on an ephemeral port
/// and waits for the port file to learn where it listens.
fn spawn_listener(args: &[&str], port_file: &PathBuf) -> (Child, u16) {
    let _ = std::fs::remove_file(port_file);
    let mut full = args.to_vec();
    full.extend_from_slice(&[
        "--listen",
        "127.0.0.1:0",
        "--port-file",
        port_file.to_str().unwrap(),
    ]);
    let child = Command::new(bin())
        .args(&full)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to spawn listener");
    let deadline = Instant::now() + Duration::from_secs(20);
    let port = loop {
        if let Ok(s) = std::fs::read_to_string(port_file) {
            if let Ok(p) = s.trim().parse::<u16>() {
                break p;
            }
        }
        assert!(
            Instant::now() < deadline,
            "listener never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, port)
}

fn wait(child: Child, what: &str) -> Output {
    let out = child.wait_with_output().expect("wait on child");
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The whole failover loop: silent leader → lease expiry → in-place
/// promotion and first served read → seed → rejoin → fence.
#[test]
fn leader_silence_promotes_replica_then_reseed_and_fencing() {
    let col = tmp("synoptic_fo_col.txt");
    let leader_wal = tmp("synoptic_fo_leader_wal");
    let replica_cat = tmp("synoptic_fo_replica_cat");
    let replica_wal = tmp("synoptic_fo_replica_wal");
    let rejoin_cat = tmp("synoptic_fo_rejoin_cat");
    let rejoin_wal = tmp("synoptic_fo_rejoin_wal");
    let pf1 = tmp("synoptic_fo_port1");
    let pf2 = tmp("synoptic_fo_port2");
    let pf3 = tmp("synoptic_fo_port3");
    for d in [
        &leader_wal,
        &replica_cat,
        &replica_wal,
        &rejoin_cat,
        &rejoin_wal,
    ] {
        let _ = std::fs::remove_dir_all(d);
    }
    // 32 values of 3: the initial full-range sum is 96, exactly.
    std::fs::write(&col, "3\n".repeat(32)).unwrap();
    let col_s = col.to_str().unwrap();
    let (rc, rw) = (replica_cat.to_str().unwrap(), replica_wal.to_str().unwrap());

    // Commit the starting snapshot on the replica (zero updates).
    ok(&[
        "maintain",
        "--input",
        col_s,
        "--method",
        "naive",
        "--updates",
        "0",
        "--workers",
        "1",
        "--wal-dir",
        rw,
        "--catalog",
        rc,
    ]);

    // The replica serves under a heartbeat lease and may promote itself.
    let (follower, port) = spawn_listener(
        &[
            "follow",
            "--catalog",
            rc,
            "--wal-dir",
            rw,
            "--auto-promote",
            "--lease-ttl-ms",
            "500",
            "--node",
            "5",
        ],
        &pf1,
    );

    // A term-1 leader ships 20 updates of +2 (sum 136 after)... and then
    // goes silent without ever closing the link — the crash under test.
    let wal = ColumnWal::open(
        FsStorage::new(),
        &leader_wal,
        "cli",
        1,
        WalConfig {
            segment_bytes: 64,
            ..WalConfig::default()
        },
    )
    .unwrap();
    for i in 0..20u64 {
        wal.append(i % 32, 2).unwrap();
    }
    wal.seal().unwrap();
    let mut transport = TcpTransport::connect(&format!("127.0.0.1:{port}")).unwrap();
    let shipper = Shipper::new(FsStorage::new(), &leader_wal, "cli").with_term(1);
    let report = shipper.ship(&mut transport, wal.pending_mark()).unwrap();
    assert_eq!(report.acked_lsn, 20, "replica must ack the whole journal");
    // Silence: the transport stays open, no heartbeat ever arrives again.

    let follower_out = wait(follower, "auto-promoting follower");
    drop(transport);
    let stdout = String::from_utf8_lossy(&follower_out.stdout).to_string();
    assert!(stdout.contains("lease expired"), "{stdout}");
    assert!(
        stdout.contains("promoted node 5 to leader for term 2"),
        "{stdout}"
    );
    assert!(
        stdout.contains("first served read (full-range sum) 136"),
        "detection -> promotion -> first read must serve the exact \
         replicated state: {stdout}"
    );

    // Re-seed: the promoted node streams its state to a fresh `reseed`
    // receiver, which rejoins as a follower on the granted term.
    let (fc, fw) = (rejoin_cat.to_str().unwrap(), rejoin_wal.to_str().unwrap());
    let (reseed, port2) = spawn_listener(&["reseed", "--catalog", fc, "--wal-dir", fw], &pf2);
    let seed_out = ok(&[
        "ship",
        "--seed",
        "--catalog",
        rc,
        "--wal-dir",
        rw,
        "--to",
        &format!("127.0.0.1:{port2}"),
    ]);
    let seed_stdout = String::from_utf8_lossy(&seed_out.stdout).to_string();
    assert!(
        seed_stdout.contains("term 2 (node 5)"),
        "the seeder announces the recorded term and vote: {seed_stdout}"
    );
    let reseed_out = wait(reseed, "reseed receiver");
    let reseed_stdout = String::from_utf8_lossy(&reseed_out.stdout).to_string();
    assert!(
        reseed_stdout.contains("rejoined as a follower on term 2"),
        "{reseed_stdout}"
    );
    assert!(
        reseed_stdout.contains("full-range sum 136"),
        "the rejoined node converges to the promoted state: {reseed_stdout}"
    );

    // Fencing through the binary: a term-0 shipper (the deposed leader's
    // old journal, no election state) against the term-2 rejoined node
    // exits with the dedicated fenced code and provenance.
    let (fenced_follower, port3) =
        spawn_listener(&["follow", "--catalog", fc, "--wal-dir", fw], &pf3);
    let lw = leader_wal.to_str().unwrap();
    let fenced = run(&[
        "ship",
        "--wal-dir",
        lw,
        "--to",
        &format!("127.0.0.1:{port3}"),
    ]);
    assert_eq!(
        fenced.status.code(),
        Some(9),
        "a stale-term write must exit fenced\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&fenced.stdout),
        String::from_utf8_lossy(&fenced.stderr)
    );
    let fenced_stderr = String::from_utf8_lossy(&fenced.stderr).to_string();
    assert!(
        fenced_stderr.contains("term 0 is stale") && fenced_stderr.contains("term is 2"),
        "fencing must carry both terms: {fenced_stderr}"
    );
    let fenced_follower_out = wait(fenced_follower, "fenced-side follower");
    let ff_stderr = String::from_utf8_lossy(&fenced_follower_out.stderr).to_string();
    assert!(
        ff_stderr.contains("fenced"),
        "the replica records the refusal with provenance: {ff_stderr}"
    );

    for p in [&col, &pf1, &pf2, &pf3] {
        let _ = std::fs::remove_file(p);
    }
    for d in [
        &leader_wal,
        &replica_cat,
        &replica_wal,
        &rejoin_cat,
        &rejoin_wal,
    ] {
        let _ = std::fs::remove_dir_all(d);
    }
}
