//! End-to-end serving through the `synoptic` binary: a `serve` process
//! answers real `serve::Client` batches over TCP, a kill -9 mid-batch
//! surfaces as a clean client error (never a hang or a panic), and a
//! restarted server answers from the same last-good build. Admission
//! refusals cross the wire structurally with exit code 10, and the
//! `serve` flag validation rejects bad bounds with the usage code.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use synoptic_api::wire::RequestHeader;
use synoptic_api::{exit_code, EXIT_REFUSED};
use synoptic_core::{RangeQuery, SynopticError};
use synoptic_serve::Client;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_synoptic")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("failed to launch synoptic binary")
}

fn ok(args: &[&str]) -> Output {
    let out = run(args);
    assert!(
        out.status.success(),
        "`synoptic {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("{name}_{}", std::process::id()))
}

/// Spawns `synoptic serve` with an ephemeral port and waits for the port
/// file to learn where it listens.
fn spawn_server(input: &str, port_file: &PathBuf, extra: &[&str]) -> (Child, String) {
    let _ = std::fs::remove_file(port_file);
    let mut args = vec![
        "serve",
        "--input",
        input,
        "--method",
        "sap0",
        "--budget",
        "16",
        "--column",
        "price",
        "--workers",
        "1",
        "--listen",
        "127.0.0.1:0",
        "--port-file",
        port_file.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let child = Command::new(bin())
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to spawn server");
    let deadline = Instant::now() + Duration::from_secs(20);
    let port = loop {
        if let Ok(s) = std::fs::read_to_string(port_file) {
            if let Ok(p) = s.trim().parse::<u16>() {
                break p;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, format!("127.0.0.1:{port}"))
}

/// A live server answers batches; kill -9 mid-batch gives the client a
/// clean structural error; a restarted server (same input, same build)
/// serves the identical last-good answers.
#[test]
fn serve_answers_batches_and_survives_kill_dash_nine_via_restart() {
    let col = tmp("synoptic_serve_col.txt");
    let port_file = tmp("synoptic_serve_port");
    let col_s = col.to_str().unwrap();
    ok(&["generate", "--n", "64", "--seed", "7", "--out", col_s]);

    let (mut server, addr) = spawn_server(col_s, &port_file, &[]);
    let client = Client::connect_with_timeout(&addr, Duration::from_secs(5)).expect("connect");
    client.ping().expect("ping");

    // A real batch over the wire, answered at one generation.
    let ranges = vec![
        RangeQuery::new(0, 63).unwrap(),
        RangeQuery::new(0, 31).unwrap(),
        RangeQuery::new(32, 63).unwrap(),
    ];
    let first = client
        .estimate_batch("price", ranges.clone())
        .expect("first batch");
    assert_eq!(first.values.len(), 3);
    assert_eq!(first.generation, 0, "initial build is generation 0");

    // Updates are acknowledged and visible in the server's stats.
    let (applied, _scheduled) = client
        .update("price", vec![(3, 5), (9, -2)])
        .expect("update");
    assert_eq!(applied, 2);
    let stats = client.stats("price").expect("stats");
    assert_eq!(stats.updates, 2);
    assert_eq!(stats.n, 64);

    // Kill -9 while batches are in flight: the client must get a clean
    // error (connection refused/reset or a timeout), not hang or panic.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        server.kill().expect("kill -9 the server");
        server.wait().expect("reap the server");
    });
    let died = loop {
        match client.estimate_batch("price", ranges.clone()) {
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    killer.join().expect("killer thread");
    assert!(
        matches!(
            died,
            SynopticError::Io { .. }
                | SynopticError::DeadlineExceeded { .. }
                | SynopticError::CorruptSynopsis { .. }
        ),
        "a killed server must surface as a clean transport error, got: {died}"
    );

    // Restart over the same input: the deterministic build serves the
    // same last-good answers the first process did.
    let (mut server, addr) = spawn_server(col_s, &port_file, &[]);
    let client = Client::connect_with_timeout(&addr, Duration::from_secs(5)).expect("reconnect");
    let again = client
        .estimate_batch("price", ranges)
        .expect("batch after restart");
    assert_eq!(
        again.values, first.values,
        "a restarted server must serve the same last-good build"
    );
    server.kill().expect("stop the restarted server");
    server.wait().expect("reap the restarted server");

    let _ = std::fs::remove_file(&col);
    let _ = std::fs::remove_file(&port_file);
}

/// Admission refusals cross the wire structurally: a dry tenant token
/// bucket refuses with `ServerOverloaded` carrying the observed count
/// and the limit, mapping to exit code 10. The bucket follows the
/// TENANT, not the connection — reconnecting buys nothing — while pings
/// (liveness) and other tenants keep working.
#[test]
fn serve_tenant_bucket_refusal_crosses_the_wire_with_exit_code_10() {
    let col = tmp("synoptic_serve_quota_col.txt");
    let port_file = tmp("synoptic_serve_quota_port");
    let col_s = col.to_str().unwrap();
    ok(&["generate", "--n", "32", "--seed", "5", "--out", col_s]);

    // A refill interval far beyond the test's lifetime: the burst is all
    // a tenant gets.
    let (mut server, addr) = spawn_server(
        col_s,
        &port_file,
        &["--tenant-burst", "2", "--tenant-refill-ms", "600000"],
    );
    let client = Client::connect_with_timeout(&addr, Duration::from_secs(5)).expect("connect");
    let q = vec![RangeQuery::new(0, 31).unwrap()];
    client
        .estimate_batch("price", q.clone())
        .expect("first estimate within the burst");
    client
        .estimate_batch("price", q.clone())
        .expect("second estimate within the burst");
    let err = client
        .estimate_batch("price", q.clone())
        .expect_err("third estimate must be refused");
    match &err {
        SynopticError::ServerOverloaded {
            what,
            observed,
            limit,
        } => {
            assert!(what.contains("token bucket"), "got what={what:?}");
            assert_eq!((*observed, *limit), (3, 2));
        }
        other => panic!("expected ServerOverloaded, got {other}"),
    }
    assert_eq!(exit_code(&err), EXIT_REFUSED);

    // Reconnecting does not refresh the bucket: admission follows the
    // tenant (un-headered clients share the default tenant).
    let fresh = Client::connect_with_timeout(&addr, Duration::from_secs(5)).expect("reconnect");
    let err = fresh
        .estimate_batch("price", q.clone())
        .expect_err("the tenant bucket is still dry on a fresh connection");
    assert!(matches!(err, SynopticError::ServerOverloaded { .. }));
    // Liveness probes never spend tokens.
    fresh.ping().expect("pings are exempt from metering");
    // A different tenant has its own (full) bucket.
    let header = RequestHeader {
        tenant: Some("other".to_string()),
        ..RequestHeader::default()
    };
    fresh
        .estimate_batch_with(&header, "price", q)
        .expect("another tenant is unaffected");

    server.kill().expect("stop the server");
    server.wait().expect("reap the server");
    let _ = std::fs::remove_file(&col);
    let _ = std::fs::remove_file(&port_file);
}

/// `serve` flag validation is a usage error (exit 2) before any listener
/// binds: conflicting policies, zero bounds, malformed addresses, and
/// duplicated flags are all refused with a message naming the flag.
#[test]
fn serve_flag_validation_exits_with_usage_code() {
    let col = tmp("synoptic_serve_usage_col.txt");
    let col_s = col.to_str().unwrap();
    ok(&["generate", "--n", "16", "--seed", "2", "--out", col_s]);
    let base = ["serve", "--input", col_s, "--method", "sap0"];

    let cases: &[(&[&str], &str)] = &[
        (
            &[
                "--listen",
                "127.0.0.1:0",
                "--every-k",
                "4",
                "--drift",
                "0.5",
            ],
            "mutually exclusive",
        ),
        (&["--listen", "127.0.0.1:0", "--every-k", "0"], "--every-k"),
        (&["--listen", "127.0.0.1:0", "--drift", "-0.5"], "--drift"),
        (
            &["--listen", "127.0.0.1:0", "--max-queue-depth", "0"],
            "--max-queue-depth",
        ),
        (
            &["--listen", "127.0.0.1:0", "--tenant-burst", "0"],
            "--tenant-burst",
        ),
        (
            &["--listen", "127.0.0.1:0", "--max-conns", "0"],
            "--max-conns",
        ),
        (
            &["--listen", "127.0.0.1:0", "--max-batch", "0"],
            "--max-batch",
        ),
        (&["--listen", "127.0.0.1:0", "--workers", "0"], "--workers"),
        (&["--listen", "127.0.0.1:99999"], "--listen"),
        (&["--listen", "not-an-address"], "--listen"),
        (
            &["--listen", "127.0.0.1:0", "--budget", "8", "--budget", "9"],
            "duplicate",
        ),
    ];
    for (extra, needle) in cases {
        let mut args: Vec<&str> = base.to_vec();
        args.extend_from_slice(extra);
        let out = run(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "`synoptic {}` must exit 2\nstderr: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr).to_lowercase();
        assert!(
            stderr.contains(&needle.to_lowercase()),
            "stderr for `{}` must mention '{needle}': {stderr}",
            args.join(" ")
        );
    }
    let _ = std::fs::remove_file(&col);
}
