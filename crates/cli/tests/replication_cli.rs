//! End-to-end replication through the `synoptic` binary: a leader
//! `maintain --replicate-to` run streams its journal to a `follow`
//! process over real TCP; the replica's served sum must equal the
//! leader's exact post-stream state, and promotion (`recover` on the
//! replica's own directories) must succeed. A follower that cannot apply
//! the stream exits the shipper with the dedicated replication code.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_synoptic")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("failed to launch synoptic binary")
}

fn ok(args: &[&str]) -> Output {
    let out = run(args);
    assert!(
        out.status.success(),
        "`synoptic {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("{name}_{}", std::process::id()))
}

/// Spawns `synoptic follow` with an ephemeral port and waits for the port
/// file to learn where it listens.
fn spawn_follower(catalog: &str, wal: &str, port_file: &PathBuf, extra: &[&str]) -> (Child, u16) {
    let _ = std::fs::remove_file(port_file);
    let mut args = vec![
        "follow",
        "--catalog",
        catalog,
        "--wal-dir",
        wal,
        "--listen",
        "127.0.0.1:0",
        "--port-file",
        port_file.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let child = Command::new(bin())
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to spawn follower");
    let deadline = Instant::now() + Duration::from_secs(20);
    let port = loop {
        if let Ok(s) = std::fs::read_to_string(port_file) {
            if let Ok(p) = s.trim().parse::<u16>() {
                break p;
            }
        }
        assert!(
            Instant::now() < deadline,
            "follower never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, port)
}

fn wait(child: Child, what: &str) -> Output {
    let out = child.wait_with_output().expect("wait on follower");
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Leader maintains with continuous replication; the replica converges to
/// the leader's exact state and promotes via plain `recover`.
#[test]
fn maintain_replicates_to_follower_and_replica_promotes() {
    let col = tmp("synoptic_repl_col.txt");
    let leader_cat = tmp("synoptic_repl_leader_cat");
    let leader_wal = tmp("synoptic_repl_leader_wal");
    let replica_cat = tmp("synoptic_repl_replica_cat");
    let replica_wal = tmp("synoptic_repl_replica_wal");
    let port_file = tmp("synoptic_repl_port");
    for d in [&leader_cat, &leader_wal, &replica_cat, &replica_wal] {
        let _ = std::fs::remove_dir_all(d);
    }
    let col_s = col.to_str().unwrap();
    let (lc, lw) = (leader_cat.to_str().unwrap(), leader_wal.to_str().unwrap());
    let (rc, rw) = (replica_cat.to_str().unwrap(), replica_wal.to_str().unwrap());

    ok(&["generate", "--n", "48", "--seed", "11", "--out", col_s]);
    // Commit the same starting snapshot on the replica (zero updates: this
    // just writes the initial generation the journal will replay onto).
    ok(&[
        "maintain",
        "--input",
        col_s,
        "--method",
        "sap0",
        "--updates",
        "0",
        "--workers",
        "1",
        "--wal-dir",
        rw,
        "--catalog",
        rc,
    ]);

    let (follower, port) = spawn_follower(rc, rw, &port_file, &[]);
    let to = format!("127.0.0.1:{port}");

    // The leader: 160 updates, small segments so seals (and ship rounds)
    // happen mid-run, checkpoints racing the retention holds.
    let leader_out = ok(&[
        "maintain",
        "--input",
        col_s,
        "--method",
        "sap0",
        "--updates",
        "160",
        "--every-k",
        "40",
        "--workers",
        "1",
        "--seed",
        "9",
        "--wal-dir",
        lw,
        "--catalog",
        lc,
        "--segment-bytes",
        "256",
        "--fsync",
        "rotate",
        "--replicate-to",
        &to,
    ]);
    let leader_stdout = String::from_utf8_lossy(&leader_out.stdout).to_string();
    assert!(
        leader_stdout.contains("replication: follower acked lsn"),
        "{leader_stdout}"
    );
    let exact: i64 = leader_stdout
        .lines()
        .find_map(|l| l.split(" vs exact ").nth(1))
        .and_then(|r| r.split_whitespace().next())
        .expect("leader must print its exact full-range sum")
        .parse()
        .unwrap();

    let follower_out = wait(follower, "follower");
    let follower_stdout = String::from_utf8_lossy(&follower_out.stdout).to_string();
    assert!(
        follower_stdout.contains("replica column cli: full-range sum"),
        "{follower_stdout}"
    );
    let replica_sum: i64 = follower_stdout
        .lines()
        .find_map(|l| l.split("full-range sum ").nth(1))
        .expect("replica must print its sum")
        .trim()
        .parse()
        .unwrap();
    assert_eq!(
        replica_sum, exact,
        "replica must serve the leader's exact acknowledged state\n\
         leader:\n{leader_stdout}\nfollower:\n{follower_stdout}"
    );

    // Promotion: recovery over the replica's own directories.
    let promote = ok(&["recover", "--catalog", rc, "--wal-dir", rw]);
    let promote_stdout = String::from_utf8_lossy(&promote.stdout).to_string();
    assert!(promote_stdout.contains("cli"), "{promote_stdout}");

    for p in [&col, &port_file] {
        let _ = std::fs::remove_file(p);
    }
    for d in [&leader_cat, &leader_wal, &replica_cat, &replica_wal] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// A follower that cannot apply the stream (no such column in its
/// committed catalog) refuses every pass; the shipper reports divergence
/// with exit code 8 instead of hanging or pretending success.
#[test]
fn ship_to_incompatible_follower_exits_with_replication_code() {
    let col = tmp("synoptic_div_col.txt");
    let leader_cat = tmp("synoptic_div_leader_cat");
    let leader_wal = tmp("synoptic_div_leader_wal");
    let replica_cat = tmp("synoptic_div_replica_cat");
    let replica_wal = tmp("synoptic_div_replica_wal");
    let port_file = tmp("synoptic_div_port");
    for d in [&leader_cat, &leader_wal, &replica_cat, &replica_wal] {
        let _ = std::fs::remove_dir_all(d);
    }
    let col_s = col.to_str().unwrap();
    let (lc, lw) = (leader_cat.to_str().unwrap(), leader_wal.to_str().unwrap());
    let (rc, rw) = (replica_cat.to_str().unwrap(), replica_wal.to_str().unwrap());

    ok(&["generate", "--n", "32", "--seed", "3", "--out", col_s]);
    // Leader journals column "cli" with records past the committed mark.
    let leader_out = run(&[
        "maintain",
        "--input",
        col_s,
        "--method",
        "sap0",
        "--updates",
        "40",
        "--every-k",
        "1000000",
        "--workers",
        "1",
        "--wal-dir",
        lw,
        "--catalog",
        lc,
    ]);
    assert!(leader_out.status.success());
    // The replica's catalog holds a different column ("price", and as a
    // lossy synopsis at that) — the shipped stream can never apply.
    ok(&[
        "build",
        "--input",
        col_s,
        "--method",
        "sap0",
        "--budget",
        "16",
        "--catalog",
        rc,
        "--column",
        "price",
    ]);

    let (follower, port) = spawn_follower(rc, rw, &port_file, &[]);
    let to = format!("127.0.0.1:{port}");
    let ship_out = run(&["ship", "--wal-dir", lw, "--to", &to]);
    assert_eq!(
        ship_out.status.code(),
        Some(8),
        "divergence must exit 8\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&ship_out.stdout),
        String::from_utf8_lossy(&ship_out.stderr)
    );
    let stderr = String::from_utf8_lossy(&ship_out.stderr).to_string();
    assert!(stderr.contains("replication divergence"), "{stderr}");

    // The follower survives the refused stream and reports why.
    let follower_out = wait(follower, "follower");
    let follower_stderr = String::from_utf8_lossy(&follower_out.stderr).to_string();
    assert!(
        follower_stderr.contains("unknown column"),
        "refusals must be reported: {follower_stderr}"
    );

    let _ = std::fs::remove_file(&col);
    let _ = std::fs::remove_file(&port_file);
    for d in [&leader_cat, &leader_wal, &replica_cat, &replica_wal] {
        let _ = std::fs::remove_dir_all(d);
    }
}
