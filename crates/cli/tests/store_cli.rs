//! End-to-end test of the `synoptic` binary's durable-store commands:
//! build → estimate → fsck → (inject corruption) → fsck fails → repair →
//! fsck clean → estimate still answers, with degradation warned on stderr.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_synoptic")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("failed to launch synoptic binary")
}

fn ok(args: &[&str]) -> Output {
    let out = run(args);
    assert!(
        out.status.success(),
        "`synoptic {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("{name}_{}", std::process::id()))
}

#[test]
fn fsck_and_repair_lifecycle() {
    let col = tmp("synoptic_e2e_col.txt");
    let store = tmp("synoptic_e2e_store");
    let _ = std::fs::remove_dir_all(&store);
    let col_s = col.to_str().unwrap();
    let store_s = store.to_str().unwrap();

    ok(&["generate", "--n", "32", "--seed", "7", "--out", col_s]);
    // Two builds → two generations of the same column.
    for _ in 0..2 {
        ok(&[
            "build",
            "--input",
            col_s,
            "--method",
            "sap0",
            "--budget",
            "18",
            "--catalog",
            store_s,
            "--column",
            "price",
        ]);
    }

    // A healthy store: estimate answers without warnings, fsck is clean.
    let est = ok(&[
        "estimate",
        "--catalog",
        store_s,
        "--column",
        "price",
        "--range",
        "0..31",
    ]);
    assert!(est.stderr.is_empty(), "unexpected stderr: {:?}", est.stderr);
    let clean: f64 = String::from_utf8_lossy(&est.stdout).trim().parse().unwrap();
    ok(&["fsck", "--catalog", store_s]);
    let report = ok(&["report", "--catalog", store_s]);
    let report_text = String::from_utf8_lossy(&report.stdout).to_string();
    assert!(report_text.contains("generation 2"), "{report_text}");
    assert!(report_text.contains("price"), "{report_text}");

    // Flip one bit in the committed generation's synopsis.
    let victim = store.join("price-2.syn");
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x04;
    std::fs::write(&victim, &bytes).unwrap();

    // fsck now fails with a non-zero exit and names the damaged file.
    let f = run(&["fsck", "--catalog", store_s]);
    assert!(!f.status.success());
    let fsck_text = format!(
        "{}{}",
        String::from_utf8_lossy(&f.stdout),
        String::from_utf8_lossy(&f.stderr)
    );
    assert!(fsck_text.contains("price-2.syn"), "{fsck_text}");

    // Estimation still works — degraded, loudly, and with the same answer
    // served from the older generation.
    let est = ok(&[
        "estimate",
        "--catalog",
        store_s,
        "--column",
        "price",
        "--range",
        "0..31",
    ]);
    let degraded: f64 = String::from_utf8_lossy(&est.stdout).trim().parse().unwrap();
    assert_eq!(degraded, clean);
    let warn = String::from_utf8_lossy(&est.stderr).to_string();
    assert!(warn.contains("degraded"), "{warn}");

    // Repair quarantines (never deletes) and restores a clean fsck.
    ok(&["repair", "--catalog", store_s]);
    assert!(store.join("quarantine").join("price-2.syn").exists());
    ok(&["fsck", "--catalog", store_s]);
    let est = ok(&[
        "estimate",
        "--catalog",
        store_s,
        "--column",
        "price",
        "--range",
        "0..31",
    ]);
    assert!(est.stderr.is_empty(), "still degraded after repair");

    // Unknown store paths fail cleanly without inventing directories.
    let bad = run(&[
        "estimate",
        "--catalog",
        "/nonexistent/store",
        "--column",
        "x",
        "--range",
        "0..1",
    ]);
    assert!(!bad.status.success());

    let _ = std::fs::remove_file(&col);
    let _ = std::fs::remove_dir_all(&store);
}

/// The crash-recovery lifecycle of a journaled `maintain` run, and the
/// dedicated exit code (7) for a journal that cannot be trusted.
#[test]
fn recover_replays_journals_and_exit_7_on_corruption() {
    let col = tmp("synoptic_rec_col.txt");
    let store = tmp("synoptic_rec_store");
    let wal = tmp("synoptic_rec_wal");
    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&wal);
    let col_s = col.to_str().unwrap();
    let store_s = store.to_str().unwrap();
    let wal_s = wal.to_str().unwrap();

    ok(&["generate", "--n", "32", "--seed", "7", "--out", col_s]);
    // The rebuild threshold exceeds the update count, so every update
    // lives only in the journal — exactly the state a crash mid-stream
    // leaves behind.
    ok(&[
        "maintain",
        "--input",
        col_s,
        "--method",
        "sap0",
        "--budget",
        "18",
        "--updates",
        "100",
        "--every-k",
        "1000000",
        "--workers",
        "1",
        "--wal-dir",
        wal_s,
        "--catalog",
        store_s,
        "--fsync",
        "rotate",
    ]);

    // Recovery replays all 100 acknowledged updates onto the snapshot.
    let out = ok(&["recover", "--catalog", store_s, "--wal-dir", wal_s]);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("100 journal record(s) replayed"), "{text}");

    // A torn final record (the classic kill-mid-append) is tolerated:
    // it was never acknowledged as durable.
    let seg = std::fs::read_dir(&wal)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "wal"))
        .expect("one journal segment");
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 10]).unwrap();
    let out = ok(&["recover", "--catalog", store_s, "--wal-dir", wal_s]);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("torn final record dropped"), "{text}");
    assert!(text.contains("99 journal record(s) replayed"), "{text}");

    // Damage inside the journal body is NOT tolerated: exit 7, nothing
    // committed.
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&seg, &bytes).unwrap();
    let out = run(&[
        "recover",
        "--catalog",
        store_s,
        "--wal-dir",
        wal_s,
        "--commit",
    ]);
    assert_eq!(
        out.status.code(),
        Some(7),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("journal"), "{err}");
    // The committed snapshot is untouched by the failed recovery.
    let report = ok(&["report", "--catalog", store_s]);
    let report_text = String::from_utf8_lossy(&report.stdout).to_string();
    assert!(report_text.contains("generation 1"), "{report_text}");

    // A missing journal directory is a clean (empty) recovery, and
    // `repair --prune` on a healthy store has nothing to reclaim.
    let out = ok(&[
        "recover",
        "--catalog",
        store_s,
        "--wal-dir",
        "/nonexistent/wal",
    ]);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("0 journal record(s) replayed"), "{text}");
    let out = ok(&["repair", "--catalog", store_s, "--prune"]);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("no abandoned generations"), "{text}");

    let _ = std::fs::remove_file(&col);
    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&wal);
}

/// The documented exit-code contract (see `synoptic help`):
/// 0 success, 1 failure, 2 usage, 4 corrupt synopsis/store,
/// 5 deadline/cell budget exceeded, 6 cancelled, 7 unrecoverable journal
/// (exercised in `recover_replays_journals_and_exit_7_on_corruption`).
#[test]
fn exit_code_contract() {
    let col = tmp("synoptic_exit_col.txt");
    let store = tmp("synoptic_exit_store");
    let _ = std::fs::remove_dir_all(&store);
    let col_s = col.to_str().unwrap();
    let store_s = store.to_str().unwrap();

    // 2: usage errors — unknown command, missing flag, unknown method.
    assert_eq!(run(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(run(&["generate", "--out", col_s]).status.code(), Some(2));
    ok(&["generate", "--n", "32", "--seed", "7", "--out", col_s]);
    assert_eq!(
        run(&[
            "build",
            "--input",
            col_s,
            "--method",
            "magic",
            "--catalog",
            store_s,
            "--column",
            "x",
        ])
        .status
        .code(),
        Some(2)
    );

    // 1: generic failure — unreadable input file.
    assert_eq!(
        run(&[
            "build",
            "--input",
            "/nonexistent/col.txt",
            "--method",
            "sap0",
            "--catalog",
            store_s,
            "--column",
            "x",
        ])
        .status
        .code(),
        Some(1)
    );

    // 5: an exhausted budget aborts the build by default (strict mode) —
    // wall-clock deadline and cell cap land on the same code.
    for limit in [&["--deadline-ms", "0"][..], &["--max-cells", "5"][..]] {
        let mut args = vec![
            "build",
            "--input",
            col_s,
            "--method",
            "opt-a",
            "--budget",
            "18",
            "--catalog",
            store_s,
            "--column",
            "price",
        ];
        args.extend_from_slice(limit);
        let out = run(&args);
        assert_eq!(
            out.status.code(),
            Some(5),
            "{limit:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // …and the aborted builds committed nothing.
    assert!(!store.exists() || run(&["report", "--catalog", store_s]).status.code() != Some(0));

    // 6: cancellation always aborts, even in anytime mode — the ladder
    // never substitutes a weaker synopsis for an explicit abort.
    for extra in [&[][..], &["--anytime"][..]] {
        let mut args = vec![
            "build",
            "--input",
            col_s,
            "--method",
            "sap0",
            "--budget",
            "18",
            "--catalog",
            store_s,
            "--column",
            "price",
            "--cancel-after-checks",
            "0",
        ];
        args.extend_from_slice(extra);
        assert_eq!(run(&args).status.code(), Some(6), "extra={extra:?}");
    }

    // 0 + provenance: with --anytime a hopeless deadline still commits a
    // usable synopsis and reports what it degraded to.
    let out = ok(&[
        "build",
        "--input",
        col_s,
        "--method",
        "opt-a",
        "--budget",
        "18",
        "--catalog",
        store_s,
        "--column",
        "price",
        "--deadline-ms",
        "0",
        "--anytime",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stdout.contains("provenance: degraded:"), "{stdout}");
    assert!(stderr.contains("degraded build"), "{stderr}");
    ok(&[
        "estimate",
        "--catalog",
        store_s,
        "--column",
        "price",
        "--range",
        "0..31",
    ]);

    // 4: corruption has its own code — fsck on a damaged store.
    let victim = store.join("price-1.syn");
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x08;
    std::fs::write(&victim, &bytes).unwrap();
    assert_eq!(run(&["fsck", "--catalog", store_s]).status.code(), Some(4));

    let _ = std::fs::remove_file(&col);
    let _ = std::fs::remove_dir_all(&store);
}
