//! End-to-end test of the `synoptic` binary's durable-store commands:
//! build → estimate → fsck → (inject corruption) → fsck fails → repair →
//! fsck clean → estimate still answers, with degradation warned on stderr.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_synoptic")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("failed to launch synoptic binary")
}

fn ok(args: &[&str]) -> Output {
    let out = run(args);
    assert!(
        out.status.success(),
        "`synoptic {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("{name}_{}", std::process::id()))
}

#[test]
fn fsck_and_repair_lifecycle() {
    let col = tmp("synoptic_e2e_col.txt");
    let store = tmp("synoptic_e2e_store");
    let _ = std::fs::remove_dir_all(&store);
    let col_s = col.to_str().unwrap();
    let store_s = store.to_str().unwrap();

    ok(&["generate", "--n", "32", "--seed", "7", "--out", col_s]);
    // Two builds → two generations of the same column.
    for _ in 0..2 {
        ok(&[
            "build",
            "--input",
            col_s,
            "--method",
            "sap0",
            "--budget",
            "18",
            "--catalog",
            store_s,
            "--column",
            "price",
        ]);
    }

    // A healthy store: estimate answers without warnings, fsck is clean.
    let est = ok(&[
        "estimate",
        "--catalog",
        store_s,
        "--column",
        "price",
        "--range",
        "0..31",
    ]);
    assert!(est.stderr.is_empty(), "unexpected stderr: {:?}", est.stderr);
    let clean: f64 = String::from_utf8_lossy(&est.stdout).trim().parse().unwrap();
    ok(&["fsck", "--catalog", store_s]);
    let report = ok(&["report", "--catalog", store_s]);
    let report_text = String::from_utf8_lossy(&report.stdout).to_string();
    assert!(report_text.contains("generation 2"), "{report_text}");
    assert!(report_text.contains("price"), "{report_text}");

    // Flip one bit in the committed generation's synopsis.
    let victim = store.join("price-2.syn");
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x04;
    std::fs::write(&victim, &bytes).unwrap();

    // fsck now fails with a non-zero exit and names the damaged file.
    let f = run(&["fsck", "--catalog", store_s]);
    assert!(!f.status.success());
    let fsck_text = format!(
        "{}{}",
        String::from_utf8_lossy(&f.stdout),
        String::from_utf8_lossy(&f.stderr)
    );
    assert!(fsck_text.contains("price-2.syn"), "{fsck_text}");

    // Estimation still works — degraded, loudly, and with the same answer
    // served from the older generation.
    let est = ok(&[
        "estimate",
        "--catalog",
        store_s,
        "--column",
        "price",
        "--range",
        "0..31",
    ]);
    let degraded: f64 = String::from_utf8_lossy(&est.stdout).trim().parse().unwrap();
    assert_eq!(degraded, clean);
    let warn = String::from_utf8_lossy(&est.stderr).to_string();
    assert!(warn.contains("degraded"), "{warn}");

    // Repair quarantines (never deletes) and restores a clean fsck.
    ok(&["repair", "--catalog", store_s]);
    assert!(store.join("quarantine").join("price-2.syn").exists());
    ok(&["fsck", "--catalog", store_s]);
    let est = ok(&[
        "estimate",
        "--catalog",
        store_s,
        "--column",
        "price",
        "--range",
        "0..31",
    ]);
    assert!(est.stderr.is_empty(), "still degraded after repair");

    // Unknown store paths fail cleanly without inventing directories.
    let bad = run(&[
        "estimate",
        "--catalog",
        "/nonexistent/store",
        "--column",
        "x",
        "--range",
        "0..1",
    ]);
    assert!(!bad.status.success());

    let _ = std::fs::remove_file(&col);
    let _ = std::fs::remove_dir_all(&store);
}

/// The documented exit-code contract (see `synoptic help`):
/// 0 success, 1 failure, 2 usage, 4 corrupt synopsis/store,
/// 5 deadline/cell budget exceeded, 6 cancelled.
#[test]
fn exit_code_contract() {
    let col = tmp("synoptic_exit_col.txt");
    let store = tmp("synoptic_exit_store");
    let _ = std::fs::remove_dir_all(&store);
    let col_s = col.to_str().unwrap();
    let store_s = store.to_str().unwrap();

    // 2: usage errors — unknown command, missing flag, unknown method.
    assert_eq!(run(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(run(&["generate", "--out", col_s]).status.code(), Some(2));
    ok(&["generate", "--n", "32", "--seed", "7", "--out", col_s]);
    assert_eq!(
        run(&[
            "build",
            "--input",
            col_s,
            "--method",
            "magic",
            "--catalog",
            store_s,
            "--column",
            "x",
        ])
        .status
        .code(),
        Some(2)
    );

    // 1: generic failure — unreadable input file.
    assert_eq!(
        run(&[
            "build",
            "--input",
            "/nonexistent/col.txt",
            "--method",
            "sap0",
            "--catalog",
            store_s,
            "--column",
            "x",
        ])
        .status
        .code(),
        Some(1)
    );

    // 5: an exhausted budget aborts the build by default (strict mode) —
    // wall-clock deadline and cell cap land on the same code.
    for limit in [&["--deadline-ms", "0"][..], &["--max-cells", "5"][..]] {
        let mut args = vec![
            "build",
            "--input",
            col_s,
            "--method",
            "opt-a",
            "--budget",
            "18",
            "--catalog",
            store_s,
            "--column",
            "price",
        ];
        args.extend_from_slice(limit);
        let out = run(&args);
        assert_eq!(
            out.status.code(),
            Some(5),
            "{limit:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // …and the aborted builds committed nothing.
    assert!(!store.exists() || run(&["report", "--catalog", store_s]).status.code() != Some(0));

    // 6: cancellation always aborts, even in anytime mode — the ladder
    // never substitutes a weaker synopsis for an explicit abort.
    for extra in [&[][..], &["--anytime"][..]] {
        let mut args = vec![
            "build",
            "--input",
            col_s,
            "--method",
            "sap0",
            "--budget",
            "18",
            "--catalog",
            store_s,
            "--column",
            "price",
            "--cancel-after-checks",
            "0",
        ];
        args.extend_from_slice(extra);
        assert_eq!(run(&args).status.code(), Some(6), "extra={extra:?}");
    }

    // 0 + provenance: with --anytime a hopeless deadline still commits a
    // usable synopsis and reports what it degraded to.
    let out = ok(&[
        "build",
        "--input",
        col_s,
        "--method",
        "opt-a",
        "--budget",
        "18",
        "--catalog",
        store_s,
        "--column",
        "price",
        "--deadline-ms",
        "0",
        "--anytime",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stdout.contains("provenance: degraded:"), "{stdout}");
    assert!(stderr.contains("degraded build"), "{stderr}");
    ok(&[
        "estimate",
        "--catalog",
        store_s,
        "--column",
        "price",
        "--range",
        "0..31",
    ]);

    // 4: corruption has its own code — fsck on a damaged store.
    let victim = store.join("price-1.syn");
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x08;
    std::fs::write(&victim, &bytes).unwrap();
    assert_eq!(run(&["fsck", "--catalog", store_s]).status.code(), Some(4));

    let _ = std::fs::remove_file(&col);
    let _ = std::fs::remove_dir_all(&store);
}
