//! Exhaustive search over all bucketings — the ground truth that the DP
//! algorithms are validated against in tests. Exponential (`2^{n−1}`
//! bucketings), so only usable for small `n`.

use synoptic_core::{Bucketing, Result, SynopticError};

/// Enumerates every bucketing of `0..n` with at most `max_buckets` buckets
/// and returns the one minimizing `evaluate` (plus its value).
///
/// `evaluate` receives each candidate [`Bucketing`] and must return its cost
/// (e.g. the exact SSE of a histogram built over it).
///
/// # Errors
/// On `n == 0`, `n > 24` (enumeration would exceed ~8M bucketings), or an
/// invalid bucket count.
pub fn exhaustive_optimal<F>(
    n: usize,
    max_buckets: usize,
    mut evaluate: F,
) -> Result<(Bucketing, f64)>
where
    F: FnMut(&Bucketing) -> f64,
{
    if n == 0 {
        return Err(SynopticError::EmptyInput);
    }
    if n > 24 {
        return Err(SynopticError::InvalidParameter(format!(
            "exhaustive search limited to n ≤ 24, got {n}"
        )));
    }
    if max_buckets == 0 || max_buckets > n {
        return Err(SynopticError::InvalidBucketCount {
            buckets: max_buckets,
            n,
        });
    }
    let interior = n - 1;
    let mut best: Option<(Bucketing, f64)> = None;
    for mask in 0u32..(1u32 << interior) {
        if (mask.count_ones() as usize) + 1 > max_buckets {
            continue;
        }
        let mut starts = Vec::with_capacity(mask.count_ones() as usize + 1);
        starts.push(0usize);
        for i in 0..interior {
            if mask >> i & 1 == 1 {
                starts.push(i + 1);
            }
        }
        let bucketing = Bucketing::new(n, starts)?;
        let cost = evaluate(&bucketing);
        match &best {
            Some((_, c)) if *c <= cost => {}
            _ => best = Some((bucketing, cost)),
        }
    }
    Ok(best.expect("at least the single-bucket partition is enumerated"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_zero_cost_partition() {
        // Cost zero iff boundaries exactly {0, 3}; positive otherwise.
        let (b, c) = exhaustive_optimal(6, 3, |bk| {
            if bk.starts() == [0, 3] {
                0.0
            } else {
                1.0 + bk.num_buckets() as f64
            }
        })
        .unwrap();
        assert_eq!(b.starts(), &[0, 3]);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn respects_bucket_limit() {
        let (_, _) = exhaustive_optimal(5, 2, |bk| {
            assert!(bk.num_buckets() <= 2);
            0.5
        })
        .unwrap();
    }

    #[test]
    fn counts_all_bucketings() {
        // Σ_{k=0}^{B−1} C(n−1, k) candidates.
        let mut count = 0usize;
        let _ = exhaustive_optimal(6, 6, |_| {
            count += 1;
            1.0
        })
        .unwrap();
        assert_eq!(count, 32); // 2^5 bucketings of 6 elements
        count = 0;
        let _ = exhaustive_optimal(6, 2, |_| {
            count += 1;
            1.0
        })
        .unwrap();
        assert_eq!(count, 1 + 5); // 1 bucket + C(5,1) two-bucket splits
    }

    #[test]
    fn validates_inputs() {
        assert!(exhaustive_optimal(0, 1, |_| 0.0).is_err());
        assert!(exhaustive_optimal(25, 2, |_| 0.0).is_err());
        assert!(exhaustive_optimal(5, 0, |_| 0.0).is_err());
        assert!(exhaustive_optimal(5, 9, |_| 0.0).is_err());
    }
}
