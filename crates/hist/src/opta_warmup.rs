//! The paper's warm-up OPT-A algorithm (§2.1.1, Theorem 1): the explicit
//! state table over `E*(i, k, Λ₂, Λ)`.
//!
//! The warm-up DP accounts for every SSE term *as soon as both endpoints are
//! placed*, which requires carrying **two** running aggregates of the
//! suffix-piece errors `u(a)`:
//!
//! * `Λ = Σ_{a ≤ i} u(a)` — feeds the cross terms `2·λ·V₁(new bucket)`, and
//! * `Λ₂ = Σ_{a ≤ i} u(a)²` — each new bucket of width `w` adds `λ₂ · w`
//!   (every earlier left endpoint gains `w` new right endpoints).
//!
//! The improved algorithm of §2.1.2 (implemented in [`crate::opta`]) removes
//! `Λ₂` by charging `u(a)²·(n − right)` once, at bucket-close time. The
//! warm-up is retained as an independent cross-check: both must agree on the
//! optimum, and tests assert they do. States are kept in a hash table keyed
//! by the *integral* `(Λ₂, Λ)` pair, so this implementation requires
//! [`RoundingMode::NearestInt`] — exactly the integral setting in which the
//! paper states Theorem 1. State counts explode quickly; intended for
//! `n ≲ 16`.

use std::collections::HashMap;

use synoptic_core::rounding::round_scaled;
use synoptic_core::sse::sse_brute;
use synoptic_core::{Bucketing, OptAHistogram, PrefixSums, Result, RoundingMode, SynopticError};

/// Result of the warm-up table DP.
#[derive(Debug, Clone)]
pub struct WarmupResult {
    /// The constructed histogram (rounded answering).
    pub histogram: OptAHistogram,
    /// Exact SSE, re-evaluated on the constructed histogram.
    pub sse: f64,
    /// The DP objective (must equal `sse`; tested).
    pub dp_objective: f64,
    /// Total number of `(i, k, Λ₂, Λ)` states materialized — the quantity
    /// the paper bounds by `O(n·B·Λ₂*·Λ*)`.
    pub states: u64,
}

/// Integer window ingredients under the rounded answering procedure.
#[derive(Debug, Clone, Copy)]
struct IntCost {
    intra: i128,
    u1: i128,
    u2: i128,
    v1: i128,
    v2: i128,
}

fn window_cost(p: &[i128], l: usize, r: usize) -> IntCost {
    let len = (r - l + 1) as i128;
    let s = p[r + 1] - p[l];
    let (mut u1, mut u2, mut v1, mut v2) = (0i128, 0i128, 0i128, 0i128);
    for a in l..=r {
        let t = (r - a + 1) as i128;
        let u = (p[r + 1] - p[a]) - round_scaled(t, s, len);
        u1 += u;
        u2 += u * u;
        let t = (a - l + 1) as i128;
        let v = (p[a + 1] - p[l]) - round_scaled(t, s, len);
        v1 += v;
        v2 += v * v;
    }
    let mut intra = 0i128;
    for d in 1..=(r - l + 1) {
        let piece = round_scaled(d as i128, s, len);
        for a in l..=(r + 1 - d) {
            let delta = (p[a + d] - p[a]) - piece;
            intra += delta * delta;
        }
    }
    IntCost {
        intra,
        u1,
        u2,
        v1,
        v2,
    }
}

/// Runs the warm-up `E*(i, k, Λ₂, Λ)` table DP with at most `buckets`
/// buckets under the rounded (integral) answering procedure.
///
/// # Errors
/// On invalid bucket counts or `n > 16` (the table blows up beyond that; the
/// improved algorithm in [`crate::opta`] has no such limit).
pub fn build_opt_a_warmup(ps: &PrefixSums, buckets: usize) -> Result<WarmupResult> {
    let n = ps.n();
    if buckets == 0 || buckets > n {
        return Err(SynopticError::InvalidBucketCount { buckets, n });
    }
    if n > 16 {
        return Err(SynopticError::InvalidParameter(format!(
            "warm-up table DP limited to n ≤ 16, got {n} (use opta::build_opt_a)"
        )));
    }
    let p = ps.table();

    // table[k][i]: (λ2, λ) → (E, parent (j, λ2, λ))
    type Key = (i128, i128);
    type Val = (i128, usize, Key);
    let mut table: Vec<Vec<HashMap<Key, Val>>> = vec![vec![HashMap::new(); n + 1]; buckets + 1];
    table[0][0].insert((0, 0), (0, usize::MAX, (0, 0)));
    let mut states = 1u64;

    for k in 1..=buckets {
        for i in k..=n {
            let mut fresh: HashMap<Key, Val> = HashMap::new();
            #[allow(clippy::needless_range_loop)] // j is an index *and* a boundary value
            for j in (k - 1)..i {
                if table[k - 1][j].is_empty() {
                    continue;
                }
                let wc = window_cost(p, j, i - 1);
                let width = (i - j) as i128;
                for (&(l2, l1), &(e, _, _)) in &table[k - 1][j] {
                    // New pairs completed by this bucket: its intra queries,
                    // plus (a ≤ j, b in bucket): Σu²·width + Σv²·j + 2λ·V₁.
                    let cost = e + wc.intra + l2 * width + wc.v2 * j as i128 + 2 * l1 * wc.v1;
                    let key = (l2 + wc.u2, l1 + wc.u1);
                    let entry = fresh.entry(key).or_insert((i128::MAX, 0, (0, 0)));
                    if cost < entry.0 {
                        *entry = (cost, j, (l2, l1));
                    }
                }
            }
            states += fresh.len() as u64;
            table[k][i] = fresh;
        }
    }

    // Best over at most `buckets` buckets; Λ₂/Λ are irrelevant at i = n.
    let mut best: Option<(i128, usize, Key)> = None;
    for (k, tk) in table.iter().enumerate().take(buckets + 1).skip(1) {
        for (&key, &(e, _, _)) in &tk[n] {
            if best.is_none() || e < best.unwrap().0 {
                best = Some((e, k, key));
            }
        }
    }
    let (dp_objective, mut k, mut key) = best.expect("k = 1 always reachable");

    // Walk parents.
    let mut starts = Vec::with_capacity(k);
    let mut i = n;
    while k > 0 {
        let &(_, j, pkey) = table[k][i]
            .get(&key)
            .expect("reconstruction follows stored parents");
        starts.push(j);
        i = j;
        key = pkey;
        k -= 1;
    }
    starts.reverse();

    let histogram = OptAHistogram::new(Bucketing::new(n, starts)?, ps, RoundingMode::NearestInt)?;
    let sse = sse_brute(&histogram, ps);
    Ok(WarmupResult {
        histogram,
        sse,
        dp_objective: dp_objective as f64,
        states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opta::{build_opt_a, OptAConfig};

    fn ps(vals: &[i64]) -> PrefixSums {
        PrefixSums::from_values(vals)
    }

    #[test]
    fn dp_objective_equals_true_sse() {
        for vals in [
            vec![1i64, 3, 5, 11],
            vec![12, 9, 4, 1, 1, 0, 2, 14],
            vec![0, 7, 0, 7, 0, 7],
        ] {
            let p = ps(&vals);
            for b in 1..=3 {
                let r = build_opt_a_warmup(&p, b).unwrap();
                assert!(
                    (r.dp_objective - r.sse).abs() < 1e-9,
                    "vals={vals:?} b={b}: dp={} sse={}",
                    r.dp_objective,
                    r.sse
                );
            }
        }
    }

    #[test]
    fn warmup_and_improved_algorithms_agree() {
        // Theorem 1 and Theorem 2 describe the same optimum.
        for vals in [
            vec![1i64, 3, 5, 11, 12, 13],
            vec![12, 9, 4, 1, 1, 0, 2, 14],
            vec![100, 1, 1, 1, 1, 90],
        ] {
            let p = ps(&vals);
            for b in 1..=4 {
                let w = build_opt_a_warmup(&p, b).unwrap();
                let f = build_opt_a(&p, &OptAConfig::exact(b, RoundingMode::NearestInt)).unwrap();
                assert!(
                    (w.sse - f.sse).abs() < 1e-9,
                    "vals={vals:?} b={b}: warmup {} vs improved {}",
                    w.sse,
                    f.sse
                );
            }
        }
    }

    #[test]
    fn paper_example_state_is_reachable() {
        // Paper §2.1.1: A = (1,3,5,11), equal split ⇒ Λ = 4, Λ₂ = 10.
        // Our warm-up enumerates that state when forced to 2 buckets of 2.
        let p = ps(&[1, 3, 5, 11]);
        let wc0 = window_cost(p.table(), 0, 1);
        let wc1 = window_cost(p.table(), 2, 3);
        assert_eq!(wc0.u1 + wc1.u1, 4, "Λ of the paper's example");
        assert_eq!(wc0.u2 + wc1.u2, 10, "Λ₂ of the paper's example");
    }

    #[test]
    fn rejects_large_n_and_bad_bucket_counts() {
        let p = ps(&[1i64; 20]);
        assert!(build_opt_a_warmup(&p, 2).is_err());
        let p = ps(&[1, 2, 3]);
        assert!(build_opt_a_warmup(&p, 0).is_err());
        assert!(build_opt_a_warmup(&p, 4).is_err());
    }

    #[test]
    fn state_counts_grow_with_buckets() {
        let p = ps(&[12i64, 9, 4, 1, 1, 0, 2, 14]);
        let s1 = build_opt_a_warmup(&p, 1).unwrap().states;
        let s3 = build_opt_a_warmup(&p, 3).unwrap().states;
        assert!(s3 > s1);
    }
}
