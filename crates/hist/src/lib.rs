//! # synoptic-hist
//!
//! Histogram **construction** algorithms for range-sum estimation — the
//! algorithmic heart of the PODS 2001 paper this workspace reproduces.
//!
//! | Module | Algorithm | Guarantee | Time |
//! |--------|-----------|-----------|------|
//! | [`opta`] | OPT-A exact DP (`F*(i,k,Λ)`, Thm 2) with convex-hull state pruning | range-optimal boundaries for the eq.-1 answering procedure | pseudo-poly (fast in practice) |
//! | [`opta_warmup`] | warm-up DP (`E*(i,k,Λ₂,Λ)`, Thm 1) with explicit state table | same optimum; cross-check for tiny inputs | pseudo-poly (slow) |
//! | [`opta_rounded`] | OPT-A-ROUNDED data-scaling wrapper (Thm 4) | `(1+ε)`-approximation | pseudo-poly / ε |
//! | [`sap0`] | SAP0 DP (Thm 6) | exactly optimal SAP0 histogram | `O(n²B)` |
//! | [`sap1`] | SAP1 DP (Thm 8) | exactly optimal SAP1 histogram | `O(n²B)` |
//! | [`a0`] | A0 heuristic DP (paper §4) | none (ignores cross term) | `O(n²B)` |
//! | [`vopt`] | V-optimal point histogram [Jagadish et al.], uniform or range-inclusion weights (POINT-OPT) | optimal for *point* queries | `O(n²B)` |
//! | [`heuristics`] | equi-width, equi-depth, max-diff | none | `O(n log n)` |
//! | [`reopt`] | fixed-boundary quadratic re-optimization (paper §5) | optimal bucket values for given boundaries | `O(nB² + B³)` |
//! | [`local_search`] | boundary hill-climbing (paper §4) | local optimum | configurable |
//! | [`exhaustive`] | enumerate all bucketings | global optimum (ground truth for tests) | exponential |
//! | [`workload_opt`] | arbitrary-workload value/boundary tuning (extension) | optimal values per workload | `O(|W|·B² + B³)` |
//!
//! All DPs share the O(1)-per-window cost oracles of
//! [`synoptic_core::window`] and the generic engine in [`dp`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod a0;
pub mod builder;
pub mod dp;
pub mod exhaustive;
pub mod heuristics;
pub mod local_search;
pub mod merge;
pub mod opta;
pub mod opta_rounded;
pub mod opta_warmup;
pub mod reopt;
pub mod sap0;
pub mod sap1;
pub mod vopt;
pub mod workload_opt;

pub use builder::{
    build, build_anytime, build_with_budget, fallback_ladder, AnytimeParams, AnytimeResult,
    HistogramMethod,
};
pub use merge::{build_sap0_partials, merge_sap0};
pub use opta::{build_opt_a, build_opt_a_with_budget, OptAConfig, OptAResult};
