//! OPT-A: the range-optimal classical histogram (paper §2.1, Theorems 1–2).
//!
//! ## The dynamic program
//!
//! The total SSE of an OPT-A histogram splits into per-bucket *intra* costs
//! plus, over inter-bucket queries `(a, b)`, terms `(u(a) + v(b))²` where
//! `u(a)` / `v(b)` are the suffix/prefix end-piece errors determined by the
//! endpoint's own bucket. Charging `u(a)²·(n−1−right(a))` and
//! `v(b)²·left(b)` when a bucket closes, the only interaction between
//! buckets is the cross term `2·Σ_{p<q} U₁(p)·V₁(q)`, so the DP state is the
//! paper's `F*(i, k, Λ)` with `Λ = Σ_{a<i} u(a)`:
//!
//! ```text
//! F*(i, k, λ + U₁(j,i−1)) ≤ F*(j, k−1, λ) + intra(j,i−1)
//!                          + U₂(j,i−1)·(n−i) + V₂(j,i−1)·j + 2·λ·V₁(j,i−1)
//! ```
//!
//! ## Convex-hull pruning (exact)
//!
//! For any fixed completion `S` of the histogram to the right of `i`, the
//! final SSE equals `F + C(S) + 2Λ·V₁ᵗᵃⁱˡ(S)` — *affine in Λ*. A linear
//! functional over a finite point set `{(Λ, F)}` is minimized at a vertex of
//! the lower convex hull, so keeping only hull vertices per `(i, k)` is
//! lossless. This replaces the paper's `Λ ∈ [−Λ*, Λ*]` table (the source of
//! the pseudo-polynomial bound) with a state set that is tiny in practice,
//! and it extends the exact algorithm to the *unrounded* answering procedure
//! (real-valued Λ), which an integral table cannot index. The paper's bound
//! remains the worst case: the hull can never exceed the number of distinct
//! reachable Λ values, which is at most `2Λ* + 1` in rounded mode.

use std::time::Instant;

use synoptic_core::sse::sse_brute;
use synoptic_core::window::WindowOracle;
use synoptic_core::{
    Bucketing, Budget, OptAHistogram, PrefixSums, RangeEstimator, Result, RoundingMode,
    SynopticError,
};

/// Configuration for the OPT-A construction.
#[derive(Debug, Clone)]
pub struct OptAConfig {
    /// Maximum number of buckets `B`.
    pub buckets: usize,
    /// Answering-procedure rounding. [`RoundingMode::NearestInt`] matches the
    /// paper's integral setting; [`RoundingMode::None`] optimizes the
    /// real-valued procedure shared with the other methods (default).
    pub mode: RoundingMode,
    /// If positive, snap every Λ to a multiple of this quantum. `0.0`
    /// (default) keeps the DP exact; positive values trade optimality for
    /// fewer states, in the spirit of OPT-A-ROUNDED's intermediate-value
    /// rounding.
    pub lambda_quantum: f64,
    /// If positive, cap each `(i, k)` hull at this many states (keeping the
    /// cheapest plus the extremes). `0` (default) = unlimited = exact.
    pub max_hull_states: usize,
}

impl OptAConfig {
    /// Exact construction with `buckets` buckets and the given rounding mode.
    pub fn exact(buckets: usize, mode: RoundingMode) -> Self {
        Self {
            buckets,
            mode,
            lambda_quantum: 0.0,
            max_hull_states: 0,
        }
    }
}

/// Diagnostics from the DP run (ablation A2 in EXPERIMENTS.md).
#[derive(Debug, Clone, Default)]
pub struct DpStats {
    /// Candidate states generated across all `(i, k)`.
    pub states_generated: u64,
    /// States surviving hull pruning.
    pub states_kept: u64,
    /// Largest single hull.
    pub max_hull_size: usize,
    /// Largest |Λ| value among kept states — the paper bounds this by
    /// `min(OPT, n·s[1,n])`; recorded so ablation A2 can compare.
    pub max_abs_lambda: f64,
    /// Wall-clock seconds spent in the DP.
    pub seconds: f64,
    /// Whether quantization or hull capping made the run approximate.
    pub approximate: bool,
}

/// Result of an OPT-A construction.
#[derive(Debug, Clone)]
pub struct OptAResult {
    /// The constructed histogram (answering under the configured mode).
    pub histogram: OptAHistogram,
    /// Exact SSE of `histogram` over all ranges (re-evaluated, not trusted
    /// from the DP).
    pub sse: f64,
    /// The DP's own objective value; equals `sse` up to float tolerance when
    /// the run was exact (asserted in tests).
    pub dp_objective: f64,
    /// DP diagnostics.
    pub stats: DpStats,
}

/// Per-window cost ingredients for one candidate bucket.
#[derive(Debug, Clone, Copy, Default)]
struct WindowCost {
    intra: f64,
    u1: f64,
    u2: f64,
    v1: f64,
    v2: f64,
}

/// Cost provider abstracting over the two rounding modes.
enum Costs<'a> {
    /// O(1) closed forms from the window oracle.
    Unrounded(&'a WindowOracle),
    /// Precomputed table of rounded-piece costs, indexed by `(l, r)`.
    Rounded { n: usize, table: Vec<WindowCost> },
}

impl<'a> Costs<'a> {
    fn get(&self, l: usize, r: usize) -> WindowCost {
        match self {
            Costs::Unrounded(oracle) => {
                let agg = oracle.endpoint_aggregates(l, r);
                WindowCost {
                    intra: oracle.intra_avg_sse(l, r),
                    u1: agg.u1,
                    u2: agg.u2,
                    v1: agg.v1,
                    v2: agg.v2,
                }
            }
            Costs::Rounded { n, table } => {
                let idx = l * *n - l * (l + 1) / 2 + r; // row-major upper triangle
                table[idx]
            }
        }
    }
}

/// Builds the rounded-mode window-cost table: O(len) per window for the
/// endpoint pieces plus O(len²) for the rounded intra SSE, `O(n⁴/12)` total —
/// the price of the paper's integral answering procedure. Practical for
/// `n` in the hundreds (the paper's own experiment uses `n = 127` for
/// exactly this reason).
fn rounded_table(ps: &PrefixSums, budget: &Budget) -> Result<Vec<WindowCost>> {
    use synoptic_core::rounding::round_scaled;
    let n = ps.n();
    let p = ps.table();
    let mut table = vec![WindowCost::default(); n * (n + 1) / 2];
    for l in 0..n {
        for r in l..n {
            // One checkpoint per window; its cost is quadratic in the width
            // (the rounded intra-SSE double loop below).
            let width = (r - l + 1) as u64;
            budget.charge(width * width)?;
            let len = (r - l + 1) as i128;
            let s = p[r + 1] - p[l];
            let (mut u1, mut u2, mut v1, mut v2) = (0i128, 0i128, 0i128, 0i128);
            for a in l..=r {
                let t = (r - a + 1) as i128;
                let u = (p[r + 1] - p[a]) - round_scaled(t, s, len);
                u1 += u;
                u2 += u * u;
                let t = (a - l + 1) as i128;
                let v = (p[a + 1] - p[l]) - round_scaled(t, s, len);
                v1 += v;
                v2 += v * v;
            }
            let mut intra = 0i128;
            for d in 1..=(r - l + 1) {
                let piece = round_scaled(d as i128, s, len);
                for a in l..=(r + 1 - d) {
                    let delta = (p[a + d] - p[a]) - piece;
                    intra += delta * delta;
                }
            }
            let idx = l * n - l * (l + 1) / 2 + r;
            table[idx] = WindowCost {
                intra: intra as f64,
                u1: u1 as f64,
                u2: u2 as f64,
                v1: v1 as f64,
                v2: v2 as f64,
            };
        }
    }
    Ok(table)
}

/// One DP state: a vertex of the `(Λ, F)` lower hull with its predecessor.
#[derive(Debug, Clone, Copy)]
struct State {
    lambda: f64,
    cost: f64,
    parent_j: u32,
    parent_idx: u32,
}

/// Lower convex hull of candidate states (sorted by Λ, min cost per Λ,
/// convex minorant vertices only). Exactness argument in the module docs.
fn lower_hull(mut cands: Vec<State>) -> Vec<State> {
    if cands.len() <= 1 {
        return cands;
    }
    cands.sort_by(|a, b| {
        a.lambda
            .total_cmp(&b.lambda)
            .then(a.cost.total_cmp(&b.cost))
    });
    let mut hull: Vec<State> = Vec::with_capacity(cands.len().min(64));
    for c in cands {
        if let Some(last) = hull.last() {
            if last.lambda == c.lambda {
                // Same Λ: sorted order guarantees `last` is the cheaper one.
                continue;
            }
        }
        while hull.len() >= 2 {
            let p1 = &hull[hull.len() - 2];
            let p2 = &hull[hull.len() - 1];
            // Pop p2 unless it lies strictly below segment p1–c.
            let cross = (p2.lambda - p1.lambda) * (c.cost - p1.cost)
                - (p2.cost - p1.cost) * (c.lambda - p1.lambda);
            if cross <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(c);
    }
    hull
}

/// Caps a hull at `cap` states, keeping the two extreme-Λ vertices and then
/// the cheapest of the rest (an approximation; only used when
/// `max_hull_states > 0`).
fn cap_hull(hull: Vec<State>, cap: usize) -> Vec<State> {
    if cap == 0 || hull.len() <= cap {
        return hull;
    }
    if cap == 1 {
        // Keep the single cheapest state.
        let best = hull
            .into_iter()
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
            .expect("non-empty hull");
        return vec![best];
    }
    let first = hull[0];
    let last = hull[hull.len() - 1];
    let mut rest: Vec<State> = hull[1..hull.len() - 1].to_vec();
    rest.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    rest.truncate(cap.saturating_sub(2));
    let mut out = Vec::with_capacity(cap);
    out.push(first);
    out.extend(rest);
    if hull.len() > 1 {
        out.push(last);
    }
    out.sort_by(|a, b| a.lambda.total_cmp(&b.lambda));
    out
}

/// Builds the OPT-A histogram with optimal bucket boundaries for the
/// configured answering procedure (paper Theorems 1–2).
///
/// The returned [`OptAResult::sse`] is re-measured on the constructed
/// histogram with an exact evaluator, so it is trustworthy even under
/// quantization or hull capping.
pub fn build_opt_a(ps: &PrefixSums, cfg: &OptAConfig) -> Result<OptAResult> {
    build_opt_a_with_budget(ps, cfg, &Budget::unlimited())
}

/// [`build_opt_a`] under execution control (deadline / cell cap /
/// cancellation). Checkpoints are charged once per `(k, i)` DP cell — and,
/// in rounded mode, once per window of the `O(n⁴)` cost table, the actual
/// hot spot — so an exhausted budget aborts within one cell-group of work.
/// With [`Budget::unlimited`] the run is bit-identical to [`build_opt_a`].
pub fn build_opt_a_with_budget(
    ps: &PrefixSums,
    cfg: &OptAConfig,
    budget: &Budget,
) -> Result<OptAResult> {
    let n = ps.n();
    if cfg.buckets == 0 || cfg.buckets > n {
        return Err(SynopticError::InvalidBucketCount {
            buckets: cfg.buckets,
            n,
        });
    }
    if cfg.lambda_quantum < 0.0 {
        return Err(SynopticError::InvalidParameter(
            "lambda_quantum must be ≥ 0".into(),
        ));
    }
    let started = Instant::now();
    let oracle;
    let costs = match cfg.mode {
        RoundingMode::None => {
            oracle = WindowOracle::new(ps);
            Costs::Unrounded(&oracle)
        }
        RoundingMode::NearestInt => Costs::Rounded {
            n,
            table: rounded_table(ps, budget)?,
        },
    };

    let b = cfg.buckets;
    let mut stats = DpStats {
        approximate: cfg.lambda_quantum > 0.0 || cfg.max_hull_states > 0,
        ..DpStats::default()
    };
    // hulls[k][i]: states covering [0, i) with exactly k buckets.
    let mut hulls: Vec<Vec<Vec<State>>> = vec![vec![Vec::new(); n + 1]; b + 1];
    hulls[0][0] = vec![State {
        lambda: 0.0,
        cost: 0.0,
        parent_j: u32::MAX,
        parent_idx: u32::MAX,
    }];

    let snap = |lambda: f64| {
        if cfg.lambda_quantum > 0.0 {
            (lambda / cfg.lambda_quantum).round() * cfg.lambda_quantum
        } else {
            lambda
        }
    };

    for k in 1..=b {
        for i in k..=n {
            budget.charge((i - (k - 1)) as u64)?;
            let mut cands: Vec<State> = Vec::new();
            #[allow(clippy::needless_range_loop)] // j is an index *and* a boundary value
            for j in (k - 1)..i {
                if hulls[k - 1][j].is_empty() {
                    continue;
                }
                let wc = costs.get(j, i - 1);
                let base = wc.intra + wc.u2 * (n - i) as f64 + wc.v2 * j as f64;
                for (idx, st) in hulls[k - 1][j].iter().enumerate() {
                    cands.push(State {
                        lambda: snap(st.lambda + wc.u1),
                        cost: st.cost + base + 2.0 * st.lambda * wc.v1,
                        parent_j: j as u32,
                        parent_idx: idx as u32,
                    });
                }
            }
            stats.states_generated += cands.len() as u64;
            let hull = cap_hull(lower_hull(cands), cfg.max_hull_states);
            stats.states_kept += hull.len() as u64;
            stats.max_hull_size = stats.max_hull_size.max(hull.len());
            for st in &hull {
                stats.max_abs_lambda = stats.max_abs_lambda.max(st.lambda.abs());
            }
            hulls[k][i] = hull;
        }
    }

    // Best final state over "at most b buckets" (Λ is irrelevant at i = n:
    // there are no queries extending past the end).
    let mut best: Option<(usize, usize, f64)> = None; // (k, idx, cost)
    for (k, hk) in hulls.iter().enumerate().take(b + 1).skip(1) {
        for (idx, st) in hk[n].iter().enumerate() {
            if best.is_none() || st.cost < best.unwrap().2 {
                best = Some((k, idx, st.cost));
            }
        }
    }
    let (mut k, mut idx, dp_objective) =
        best.expect("DP always reaches i = n with k = 1 (single bucket)");

    // Reconstruct boundaries by walking parents.
    let mut starts = Vec::with_capacity(k);
    let mut i = n;
    while k > 0 {
        let st = hulls[k][i][idx];
        starts.push(st.parent_j as usize);
        i = st.parent_j as usize;
        idx = st.parent_idx as usize;
        k -= 1;
    }
    starts.reverse();
    stats.seconds = started.elapsed().as_secs_f64();

    let bucketing = Bucketing::new(n, starts)?;
    let histogram = OptAHistogram::new(bucketing, ps, cfg.mode)?;
    let sse = match cfg.mode {
        // For the unrounded procedure the O(n) closed form applies; brute
        // force otherwise. Both are exact.
        RoundingMode::None => {
            let vh = synoptic_core::ValueHistogram::with_averages(
                histogram.bucketing().clone(),
                ps,
                "tmp",
            )?;
            synoptic_core::sse::sse_value_histogram(vh.xprefix(), ps)
        }
        RoundingMode::NearestInt => sse_brute(&histogram, ps),
    };
    debug_assert_eq!(histogram.n(), n);
    Ok(OptAResult {
        histogram,
        sse,
        dp_objective,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_optimal;
    use synoptic_core::sse::sse_value_histogram;
    use synoptic_core::ValueHistogram;

    fn ps(vals: &[i64]) -> PrefixSums {
        PrefixSums::from_values(vals)
    }

    fn datasets() -> Vec<Vec<i64>> {
        vec![
            vec![1, 3, 5, 11, 12, 13],
            vec![12, 9, 4, 1, 1, 0, 2, 14, 13, 6],
            vec![5, 5, 5, 5, 5, 5],
            vec![100, 1, 1, 1, 1, 1, 1, 90],
            vec![0, 7, 0, 7, 0, 7, 0, 7, 0],
        ]
    }

    #[test]
    fn dp_objective_matches_true_sse_unrounded() {
        for vals in datasets() {
            let p = ps(&vals);
            for b in 1..=4 {
                let r = build_opt_a(&p, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
                assert!(
                    (r.dp_objective - r.sse).abs() <= 1e-6 * (1.0 + r.sse),
                    "vals={vals:?} b={b}: dp={} sse={}",
                    r.dp_objective,
                    r.sse
                );
                assert!(!r.stats.approximate);
            }
        }
    }

    #[test]
    fn dp_objective_matches_true_sse_rounded() {
        for vals in datasets() {
            let p = ps(&vals);
            for b in 1..=4 {
                let r = build_opt_a(&p, &OptAConfig::exact(b, RoundingMode::NearestInt)).unwrap();
                assert!(
                    (r.dp_objective - r.sse).abs() <= 1e-6 * (1.0 + r.sse),
                    "vals={vals:?} b={b}: dp={} sse={}",
                    r.dp_objective,
                    r.sse
                );
            }
        }
    }

    #[test]
    fn unrounded_optimum_matches_exhaustive_search() {
        for vals in datasets() {
            let p = ps(&vals);
            let n = vals.len();
            for b in 1..=3.min(n) {
                let r = build_opt_a(&p, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
                let (_, best) = exhaustive_optimal(n, b, |bk| {
                    let vh = ValueHistogram::with_averages(bk.clone(), &p, "cand").unwrap();
                    sse_value_histogram(vh.xprefix(), &p)
                })
                .unwrap();
                assert!(
                    r.sse <= best + 1e-6 * (1.0 + best),
                    "vals={vals:?} b={b}: DP {} vs exhaustive {best}",
                    r.sse
                );
            }
        }
    }

    #[test]
    fn rounded_optimum_matches_exhaustive_search() {
        for vals in datasets() {
            let p = ps(&vals);
            let n = vals.len();
            for b in 1..=3.min(n) {
                let r = build_opt_a(&p, &OptAConfig::exact(b, RoundingMode::NearestInt)).unwrap();
                let (_, best) = exhaustive_optimal(n, b, |bk| {
                    let h = OptAHistogram::new(bk.clone(), &p, RoundingMode::NearestInt).unwrap();
                    sse_brute(&h, &p)
                })
                .unwrap();
                assert!(
                    r.sse <= best + 1e-6 * (1.0 + best),
                    "vals={vals:?} b={b}: DP {} vs exhaustive {best}",
                    r.sse
                );
            }
        }
    }

    #[test]
    fn more_buckets_never_hurt() {
        let vals = vec![9i64, 0, 0, 9, 9, 0, 0, 9, 5, 5, 1, 7];
        let p = ps(&vals);
        let mut prev = f64::INFINITY;
        for b in 1..=6 {
            let r = build_opt_a(&p, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
            assert!(r.sse <= prev + 1e-9, "b={b}");
            prev = r.sse;
        }
    }

    #[test]
    fn quantized_lambda_is_close_but_flagged_approximate() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let p = ps(&vals);
        let exact = build_opt_a(&p, &OptAConfig::exact(3, RoundingMode::None)).unwrap();
        let approx = build_opt_a(
            &p,
            &OptAConfig {
                buckets: 3,
                mode: RoundingMode::None,
                lambda_quantum: 4.0,
                max_hull_states: 0,
            },
        )
        .unwrap();
        assert!(approx.stats.approximate);
        assert!(approx.sse >= exact.sse - 1e-9, "approx cannot beat exact");
        assert!(
            approx.sse <= exact.sse * 2.0 + 1e-9,
            "coarse quantum should still be in the ballpark: {} vs {}",
            approx.sse,
            exact.sse
        );
    }

    #[test]
    fn hull_capping_is_flagged_and_sane() {
        let vals = vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8];
        let p = ps(&vals);
        let exact = build_opt_a(&p, &OptAConfig::exact(4, RoundingMode::None)).unwrap();
        let capped = build_opt_a(
            &p,
            &OptAConfig {
                buckets: 4,
                mode: RoundingMode::None,
                lambda_quantum: 0.0,
                max_hull_states: 2,
            },
        )
        .unwrap();
        assert!(capped.stats.approximate);
        assert!(capped.stats.max_hull_size <= 2);
        assert!(capped.sse >= exact.sse - 1e-9);
    }

    #[test]
    fn stats_are_populated() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14];
        let p = ps(&vals);
        let r = build_opt_a(&p, &OptAConfig::exact(3, RoundingMode::None)).unwrap();
        assert!(r.stats.states_generated > 0);
        assert!(r.stats.states_kept > 0);
        assert!(r.stats.states_kept <= r.stats.states_generated);
        assert!(r.stats.max_hull_size >= 1);
    }

    #[test]
    fn validates_bucket_count() {
        let p = ps(&[1, 2, 3]);
        assert!(build_opt_a(&p, &OptAConfig::exact(0, RoundingMode::None)).is_err());
        assert!(build_opt_a(&p, &OptAConfig::exact(4, RoundingMode::None)).is_err());
    }

    #[test]
    fn single_bucket_equals_naive_shape() {
        let vals = vec![4i64, 9, 2, 7];
        let p = ps(&vals);
        let r = build_opt_a(&p, &OptAConfig::exact(1, RoundingMode::None)).unwrap();
        assert_eq!(r.histogram.bucketing().num_buckets(), 1);
        // One-bucket OPT-A (unrounded) ≡ NAIVE.
        let nv = synoptic_core::NaiveEstimator::new(&p);
        let brute = sse_brute(&nv, &p);
        assert!((r.sse - brute).abs() < 1e-9);
    }

    #[test]
    fn budgeted_build_is_identical_when_unconstrained_and_aborts_when_capped() {
        use synoptic_core::CancelToken;
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let p = ps(&vals);
        let cfg = OptAConfig::exact(3, RoundingMode::None);
        let free = build_opt_a(&p, &cfg).unwrap();
        let metered = Budget::unlimited();
        let tracked = build_opt_a_with_budget(&p, &cfg, &metered).unwrap();
        assert_eq!(
            free.histogram.bucketing().starts(),
            tracked.histogram.bucketing().starts()
        );
        assert_eq!(free.sse.to_bits(), tracked.sse.to_bits());
        assert!(metered.cells_used() > 0);
        // Cell cap below usage ⇒ clean abort with the budget error.
        let capped = Budget::unlimited().with_max_cells(metered.cells_used() / 2);
        match build_opt_a_with_budget(&p, &cfg, &capped) {
            Err(SynopticError::CellBudgetExceeded { .. }) => {}
            other => panic!("expected CellBudgetExceeded, got {other:?}"),
        }
        // Pre-cancelled token ⇒ Cancelled at the first checkpoint.
        let token = CancelToken::new();
        token.cancel();
        let cancelled = Budget::unlimited().with_cancel_token(token);
        match build_opt_a_with_budget(&p, &cfg, &cancelled) {
            Err(SynopticError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn rounded_mode_charges_the_cost_table() {
        let vals = vec![5i64, 1, 7, 2, 6, 3];
        let p = ps(&vals);
        let cfg = OptAConfig::exact(2, RoundingMode::NearestInt);
        let metered = Budget::unlimited();
        build_opt_a_with_budget(&p, &cfg, &metered).unwrap();
        // The O(n⁴) table dominates: far more cells than the DP alone.
        assert!(metered.cells_used() > 100, "{}", metered.cells_used());
        let capped = Budget::unlimited().with_max_cells(10);
        assert!(matches!(
            build_opt_a_with_budget(&p, &cfg, &capped),
            Err(SynopticError::CellBudgetExceeded { .. })
        ));
    }

    #[test]
    fn lower_hull_keeps_minorant_vertices_only() {
        let mk = |lambda: f64, cost: f64| State {
            lambda,
            cost,
            parent_j: 0,
            parent_idx: 0,
        };
        let hull = lower_hull(vec![
            mk(0.0, 0.0),
            mk(1.0, 5.0), // above segment (0,0)–(2,0): pruned
            mk(2.0, 0.0),
            mk(1.5, -3.0), // below: kept
            mk(1.5, -1.0), // duplicate Λ, worse cost: pruned
        ]);
        let lam: Vec<f64> = hull.iter().map(|s| s.lambda).collect();
        assert_eq!(lam, vec![0.0, 1.5, 2.0]);
    }
}
