//! Fixed-boundary value re-optimization — the paper's closing idea (§5,
//! "A-reopt").
//!
//! Once boundaries are fixed, eq. (1)'s `avg(i)` can be replaced by free
//! values `x(i)`; the all-ranges SSE is then a degree-2 polynomial
//! `x Q xᵀ + g xᵀ + c` minimized by solving `2Qx + g = 0`. Using the
//! telescoping form of the estimator (DESIGN.md §4.4) with per-position
//! coverage vectors `c(i) ∈ ℝᴮ` (`c(i)_t = |[0, i) ∩ bucket t|`):
//!
//! ```text
//! Q   = (n+1)·Σᵢ c(i)c(i)ᵀ − C Cᵀ          (C = Σᵢ c(i))
//! rhs = (n+1)·Σᵢ P[i]·c(i) − (Σᵢ P[i])·C    (solve Q x = rhs)
//! ```
//!
//! built in `O(nB²)` and solved in `O(B³)` — the paper's `O(N + B^{O(1)})`.
//! `Q` is positive semi-definite by construction; rank deficiency (possible
//! in principle) is handled by a ridge fallback, any minimizer being equally
//! acceptable.

use synoptic_core::sse::sse_value_histogram;
use synoptic_core::{Bucketing, Budget, PrefixSums, Result, SynopticError, ValueHistogram};
use synoptic_linalg::{solve_spd_with_ridge, Matrix};

/// Result of a re-optimization.
#[derive(Debug, Clone)]
pub struct ReoptResult {
    /// Histogram with the same boundaries and SSE-optimal values.
    pub histogram: ValueHistogram,
    /// Exact SSE of the re-optimized histogram.
    pub sse: f64,
}

/// Builds the normal-equation system `(Q, rhs)` for the given boundaries.
/// Exposed for tests and diagnostics.
pub fn normal_equations(bucketing: &Bucketing, ps: &PrefixSums) -> (Matrix, Vec<f64>) {
    normal_equations_with_budget(bucketing, ps, &Budget::unlimited())
        .expect("unlimited budget cannot fail")
}

/// [`normal_equations`] under execution control: charges one checkpoint per
/// position row (`O(B²)` work units each). Bit-identical with
/// [`Budget::unlimited`].
pub fn normal_equations_with_budget(
    bucketing: &Bucketing,
    ps: &PrefixSums,
    budget: &Budget,
) -> Result<(Matrix, Vec<f64>)> {
    let n = bucketing.n();
    let nb = bucketing.num_buckets();
    let kf = (n + 1) as f64;
    let mut sum_cc = Matrix::zeros(nb, nb); // Σ c(i)c(i)ᵀ
    let mut cap_c = vec![0.0; nb]; // C = Σ c(i)
    let mut sum_dc = vec![0.0; nb]; // Σ P[i]·c(i)
    let mut cap_d = 0.0; // Σ P[i]
                         // c(i) is built incrementally: position i−1 lives in bucket b(i−1).
    let mut c = vec![0.0; nb];
    let posmap = bucketing.position_map();
    for i in 0..=n {
        budget.charge((nb * nb) as u64)?;
        if i > 0 {
            c[posmap[i - 1] as usize] += 1.0;
        }
        let d = ps.p(i) as f64;
        cap_d += d;
        for t in 0..nb {
            if c[t] == 0.0 {
                continue;
            }
            cap_c[t] += c[t];
            sum_dc[t] += d * c[t];
            for u in t..nb {
                sum_cc[(t, u)] += c[t] * c[u];
            }
        }
    }
    // Symmetrize and assemble Q = (n+1)Σccᵀ − CCᵀ.
    let mut q = Matrix::zeros(nb, nb);
    for t in 0..nb {
        for u in 0..nb {
            let cc = if u >= t {
                sum_cc[(t, u)]
            } else {
                sum_cc[(u, t)]
            };
            q[(t, u)] = kf * cc - cap_c[t] * cap_c[u];
        }
    }
    let rhs: Vec<f64> = (0..nb).map(|t| kf * sum_dc[t] - cap_d * cap_c[t]).collect();
    Ok((q, rhs))
}

/// Re-optimizes the per-bucket values of any bucketing for the all-ranges
/// SSE. `base_name` labels the result (e.g. `"OPT-A"` → `"OPT-A-reopt"`).
pub fn reoptimize(bucketing: &Bucketing, ps: &PrefixSums, base_name: &str) -> Result<ReoptResult> {
    reoptimize_with_budget(bucketing, ps, base_name, &Budget::unlimited())
}

/// [`reoptimize`] under execution control; bit-identical with
/// [`Budget::unlimited`], aborts with the budget's error otherwise.
pub fn reoptimize_with_budget(
    bucketing: &Bucketing,
    ps: &PrefixSums,
    base_name: &str,
    budget: &Budget,
) -> Result<ReoptResult> {
    let (q, rhs) = normal_equations_with_budget(bucketing, ps, budget)?;
    let x =
        solve_spd_with_ridge(&q, &rhs).map_err(|e| SynopticError::SingularSystem(e.to_string()))?;
    let histogram = ValueHistogram::new(bucketing.clone(), x, format!("{base_name}-reopt"))?;
    let sse = sse_value_histogram(histogram.xprefix(), ps);
    Ok(ReoptResult { histogram, sse })
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::sse_brute;
    use synoptic_core::RangeEstimator;
    use synoptic_core::RangeQuery;

    fn ps(vals: &[i64]) -> PrefixSums {
        PrefixSums::from_values(vals)
    }

    /// Brute-force Q and rhs accumulated query-by-query:
    /// `SSE(x) = Σ_q (s_q − c_qᵀx)²` ⇒ `Q = Σ c_q c_qᵀ`, `rhs = Σ s_q c_q`.
    fn brute_normal_equations(bucketing: &Bucketing, p: &PrefixSums) -> (Matrix, Vec<f64>) {
        let n = bucketing.n();
        let nb = bucketing.num_buckets();
        let mut q = Matrix::zeros(nb, nb);
        let mut rhs = vec![0.0; nb];
        for query in RangeQuery::all(n) {
            let mut c = vec![0.0; nb];
            for i in query.lo..=query.hi {
                c[bucketing.bucket_of(i)] += 1.0;
            }
            let s = p.answer(query) as f64;
            for t in 0..nb {
                rhs[t] += s * c[t];
                for u in 0..nb {
                    q[(t, u)] += c[t] * c[u];
                }
            }
        }
        (q, rhs)
    }

    #[test]
    fn closed_form_normal_equations_match_brute_force() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let p = ps(&vals);
        for starts in [vec![0usize], vec![0, 4], vec![0, 2, 7], vec![0, 1, 5, 8]] {
            let b = Bucketing::new(vals.len(), starts).unwrap();
            let (q, rhs) = normal_equations(&b, &p);
            let (bq, brhs) = brute_normal_equations(&b, &p);
            for t in 0..b.num_buckets() {
                assert!(
                    (rhs[t] - brhs[t]).abs() <= 1e-6 * (1.0 + brhs[t].abs()),
                    "rhs[{t}]"
                );
                for u in 0..b.num_buckets() {
                    assert!(
                        (q[(t, u)] - bq[(t, u)]).abs() <= 1e-6 * (1.0 + bq[(t, u)].abs()),
                        "Q[{t},{u}]: {} vs {}",
                        q[(t, u)],
                        bq[(t, u)]
                    );
                }
            }
        }
    }

    #[test]
    fn reopt_never_worse_than_averages() {
        // The average vector is feasible, so the optimum is ≤ its SSE.
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1];
        let p = ps(&vals);
        for starts in [vec![0usize, 4, 8], vec![0, 6], vec![0, 2, 5, 9]] {
            let b = Bucketing::new(vals.len(), starts).unwrap();
            let avg = ValueHistogram::with_averages(b.clone(), &p, "avg").unwrap();
            let base = sse_value_histogram(avg.xprefix(), &p);
            let r = reoptimize(&b, &p, "OPT-A").unwrap();
            assert!(
                r.sse <= base + 1e-6,
                "reopt {} must be ≤ averages {base}",
                r.sse
            );
        }
    }

    #[test]
    fn reopt_is_a_stationary_point() {
        // Perturbing any coordinate must not decrease the (convex) SSE.
        let vals = vec![5i64, 1, 8, 8, 2, 9, 0, 3];
        let p = ps(&vals);
        let b = Bucketing::new(8, vec![0, 3, 6]).unwrap();
        let r = reoptimize(&b, &p, "X").unwrap();
        let base = r.sse;
        for t in 0..3 {
            for delta in [-0.1, 0.1] {
                let mut vals2 = r.histogram.values().to_vec();
                vals2[t] += delta;
                let h = ValueHistogram::new(b.clone(), vals2, "pert").unwrap();
                let s = sse_value_histogram(h.xprefix(), &p);
                assert!(
                    s >= base - 1e-7,
                    "perturbing x[{t}] by {delta} lowered SSE: {s} < {base}"
                );
            }
        }
    }

    #[test]
    fn reopt_sse_matches_brute_force_evaluation() {
        let vals = vec![7i64, 2, 9, 4, 4, 6, 1, 8];
        let p = ps(&vals);
        let b = Bucketing::new(8, vec![0, 3, 5]).unwrap();
        let r = reoptimize(&b, &p, "EQ").unwrap();
        let brute = sse_brute(&r.histogram, &p);
        assert!((r.sse - brute).abs() <= 1e-6 * (1.0 + brute));
        assert_eq!(r.histogram.method_name(), "EQ-reopt");
    }

    #[test]
    fn single_bucket_reopt_matches_calculus() {
        // One bucket: estimate of [a,b] is (b−a+1)·x; optimal x has closed
        // form Σ len_q·s_q / Σ len_q².
        let vals = vec![4i64, 9, 2];
        let p = ps(&vals);
        let b = Bucketing::single(3).unwrap();
        let r = reoptimize(&b, &p, "N").unwrap();
        let (mut num, mut den) = (0.0, 0.0);
        for q in RangeQuery::all(3) {
            let len = q.len() as f64;
            num += len * p.answer(q) as f64;
            den += len * len;
        }
        assert!((r.histogram.values()[0] - num / den).abs() < 1e-9);
    }

    #[test]
    fn degenerate_all_zero_data() {
        let vals = vec![0i64; 6];
        let p = ps(&vals);
        let b = Bucketing::new(6, vec![0, 3]).unwrap();
        let r = reoptimize(&b, &p, "Z").unwrap();
        assert!(r.sse < 1e-9);
        for v in r.histogram.values() {
            assert!(v.abs() < 1e-9);
        }
    }
}
