//! Workload-aware histogram optimization.
//!
//! The paper optimizes for the *all-ranges* workload; its related work
//! section contrasts with methods optimal for restricted query classes —
//! equality queries (ref. 6) and hierarchical/prefix ranges (ref. 9). This module
//! generalizes the §5 re-optimization and the boundary local search to an
//! **arbitrary query workload** `W` (any multiset of ranges):
//!
//! * [`workload_normal_equations`] / [`reoptimize_for_workload`] — exactly
//!   optimal per-bucket values for fixed boundaries under
//!   `SSE_W(x) = Σ_{q∈W} (s_q − c_qᵀ x)²`, built in `O(|W|·B + n)` using the
//!   same corner-telescoping trick as the all-ranges case, solved in
//!   `O(B³)`.
//! * [`optimize_for_workload`] — boundaries from a seed construction (OPT-A
//!   by default) improved by local search under the workload SSE, values
//!   re-optimized at the end. For the all-ranges workload this reduces to
//!   `OPT-A-reopt`; for `prefix_queries(n)` or `dyadic_ranges(n)` it yields
//!   the prefix-/hierarchy-tuned histograms the prior work targeted.
//!
//! The normal-equation build exploits the telescoping form: each query's
//! coverage vector is `c_q = c(hi+1) − c(lo)` where `c(i)` is the
//! per-position coverage prefix, so `Q = Σ_q (c(y) − c(x))(c(y) − c(x))ᵀ`
//! accumulates over at most `2|W|` *corner* vectors instead of `B`-dense
//! query vectors — but since corner vectors are dense anyway we simply cache
//! the `n + 1` distinct corners once.

use synoptic_core::sse::sse_workload;
use synoptic_core::{Bucketing, PrefixSums, RangeQuery, Result, SynopticError, ValueHistogram};
use synoptic_linalg::{solve_spd_with_ridge, Matrix};

use crate::local_search::local_search;

/// Builds `(Q, rhs)` for `min_x Σ_{q∈W} (s_q − c_qᵀx)²` over the given
/// boundaries.
pub fn workload_normal_equations(
    bucketing: &Bucketing,
    ps: &PrefixSums,
    queries: &[RangeQuery],
) -> Result<(Matrix, Vec<f64>)> {
    let n = bucketing.n();
    let nb = bucketing.num_buckets();
    if queries.is_empty() {
        return Err(SynopticError::InvalidParameter(
            "workload must contain at least one query".into(),
        ));
    }
    // Corner coverage vectors c(i), i ∈ 0..=n: c(i)_t = |[0, i) ∩ bucket t|.
    let posmap = bucketing.position_map();
    let mut corners = vec![vec![0.0f64; nb]; n + 1];
    for i in 1..=n {
        corners[i] = corners[i - 1].clone();
        corners[i][posmap[i - 1] as usize] += 1.0;
    }
    let mut q = Matrix::zeros(nb, nb);
    let mut rhs = vec![0.0; nb];
    let mut cq = vec![0.0f64; nb];
    for query in queries {
        query.check_bounds(n)?;
        let (lo, hi) = (query.lo, query.hi + 1);
        for t in 0..nb {
            cq[t] = corners[hi][t] - corners[lo][t];
        }
        let s = ps.range_sum(query.lo, query.hi) as f64;
        for t in 0..nb {
            if cq[t] == 0.0 {
                continue;
            }
            rhs[t] += s * cq[t];
            for u in t..nb {
                q[(t, u)] += cq[t] * cq[u];
            }
        }
    }
    // Symmetrize.
    for t in 0..nb {
        for u in 0..t {
            q[(t, u)] = q[(u, t)];
        }
    }
    Ok((q, rhs))
}

/// Optimal per-bucket values for fixed boundaries under the workload SSE.
pub fn reoptimize_for_workload(
    bucketing: &Bucketing,
    ps: &PrefixSums,
    queries: &[RangeQuery],
    name: &str,
) -> Result<ValueHistogram> {
    let (q, rhs) = workload_normal_equations(bucketing, ps, queries)?;
    let x =
        solve_spd_with_ridge(&q, &rhs).map_err(|e| SynopticError::SingularSystem(e.to_string()))?;
    ValueHistogram::new(bucketing.clone(), x, name.to_string())
}

/// Result of a full workload optimization.
#[derive(Debug, Clone)]
pub struct WorkloadOptResult {
    /// The tuned histogram.
    pub histogram: ValueHistogram,
    /// Workload SSE of the result.
    pub sse: f64,
    /// Workload SSE of the seed (before boundary search / value re-fit).
    pub seed_sse: f64,
}

/// Tunes boundaries (local search from `seed`) and values (normal equations)
/// for an arbitrary workload. `max_passes` bounds the boundary search.
pub fn optimize_for_workload(
    seed: Bucketing,
    ps: &PrefixSums,
    queries: &[RangeQuery],
    max_passes: usize,
    name: &str,
) -> Result<WorkloadOptResult> {
    let seed_hist = ValueHistogram::with_averages(seed.clone(), ps, "seed")?;
    let seed_sse = sse_workload(&seed_hist, ps, queries);
    // Local-search cost: workload SSE with value re-fit per candidate.
    // Re-fitting inside the cost is expensive but exact; for the boundary
    // search we use average values (cheap, monotone proxy) and re-fit once
    // at the end — a documented approximation.
    let cost = |bk: &Bucketing| -> f64 {
        match ValueHistogram::with_averages(bk.clone(), ps, "c") {
            Ok(h) => sse_workload(&h, ps, queries),
            Err(_) => f64::INFINITY,
        }
    };
    let searched = local_search(seed, cost, max_passes)?;
    let histogram = reoptimize_for_workload(&searched.bucketing, ps, queries, name)?;
    let sse = sse_workload(&histogram, ps, queries);
    Ok(WorkloadOptResult {
        histogram,
        sse,
        seed_sse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reopt::{normal_equations, reoptimize};
    use synoptic_core::RangeEstimator;

    fn ps(vals: &[i64]) -> PrefixSums {
        PrefixSums::from_values(vals)
    }

    fn all_queries(n: usize) -> Vec<RangeQuery> {
        RangeQuery::all(n).collect()
    }

    fn prefix_queries(n: usize) -> Vec<RangeQuery> {
        (0..n).map(RangeQuery::prefix).collect()
    }

    /// Dyadic (hierarchical) ranges: all aligned power-of-two blocks.
    fn dyadic_queries(n: usize) -> Vec<RangeQuery> {
        let mut out = Vec::new();
        let mut width = 1usize;
        while width <= n {
            let mut lo = 0;
            while lo + width <= n {
                out.push(RangeQuery {
                    lo,
                    hi: lo + width - 1,
                });
                lo += width;
            }
            width *= 2;
        }
        out
    }

    #[test]
    fn all_ranges_workload_matches_closed_form_reopt() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let p = ps(&vals);
        let b = Bucketing::new(10, vec![0, 3, 7]).unwrap();
        let (q1, r1) = workload_normal_equations(&b, &p, &all_queries(10)).unwrap();
        let (q2, r2) = normal_equations(&b, &p);
        for t in 0..3 {
            assert!(
                (r1[t] - r2[t]).abs() <= 1e-6 * (1.0 + r2[t].abs()),
                "rhs[{t}]"
            );
            for u in 0..3 {
                assert!(
                    (q1[(t, u)] - q2[(t, u)]).abs() <= 1e-6 * (1.0 + q2[(t, u)].abs()),
                    "Q[{t},{u}]"
                );
            }
        }
        let h1 = reoptimize_for_workload(&b, &p, &all_queries(10), "W").unwrap();
        let h2 = reoptimize(&b, &p, "A").unwrap();
        for (a, c) in h1.values().iter().zip(h2.histogram.values()) {
            assert!((a - c).abs() < 1e-6);
        }
    }

    #[test]
    fn prefix_workload_fit_is_exact_when_buckets_allow() {
        // With n buckets, the prefix fit can interpolate every prefix sum
        // exactly (x(i) = A[i]).
        let vals = vec![5i64, 2, 8, 1];
        let p = ps(&vals);
        let b = Bucketing::new(4, vec![0, 1, 2, 3]).unwrap();
        let h = reoptimize_for_workload(&b, &p, &prefix_queries(4), "P").unwrap();
        let sse = sse_workload(&h, &p, &prefix_queries(4));
        assert!(sse < 1e-9, "sse = {sse}");
        for (x, &v) in h.values().iter().zip(&vals) {
            assert!((x - v as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn workload_specialization_beats_all_ranges_tuning_on_that_workload() {
        // A histogram tuned for prefix queries must beat (or tie) the
        // all-ranges-tuned histogram *on the prefix workload*.
        let vals = vec![40i64, 1, 2, 1, 0, 0, 33, 35, 2, 1, 1, 0, 28, 3, 1, 2];
        let p = ps(&vals);
        let b = Bucketing::new(16, vec![0, 5, 11]).unwrap();
        let prefixes = prefix_queries(16);
        let tuned = reoptimize_for_workload(&b, &p, &prefixes, "P").unwrap();
        let generic = reoptimize(&b, &p, "A").unwrap();
        let t = sse_workload(&tuned, &p, &prefixes);
        let g = sse_workload(&generic.histogram, &p, &prefixes);
        assert!(t <= g + 1e-6, "tuned {t} vs generic {g}");
    }

    #[test]
    fn dyadic_workload_runs_and_optimum_is_stationary() {
        let vals = vec![7i64, 2, 9, 4, 4, 6, 1, 8];
        let p = ps(&vals);
        let b = Bucketing::new(8, vec![0, 3, 6]).unwrap();
        let queries = dyadic_queries(8);
        let h = reoptimize_for_workload(&b, &p, &queries, "D").unwrap();
        let base = sse_workload(&h, &p, &queries);
        for t in 0..3 {
            for delta in [-0.25, 0.25] {
                let mut v = h.values().to_vec();
                v[t] += delta;
                let h2 = ValueHistogram::new(b.clone(), v, "pert").unwrap();
                assert!(sse_workload(&h2, &p, &queries) >= base - 1e-7);
            }
        }
    }

    #[test]
    fn full_pipeline_improves_on_the_seed() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1];
        let p = ps(&vals);
        let seed = Bucketing::equi_width(12, 3).unwrap();
        let r = optimize_for_workload(seed, &p, &prefix_queries(12), 50, "PFX").unwrap();
        assert!(r.sse <= r.seed_sse + 1e-6, "{} vs {}", r.sse, r.seed_sse);
        assert_eq!(r.histogram.method_name(), "PFX");
    }

    #[test]
    fn empty_workload_is_rejected() {
        let p = ps(&[1, 2, 3]);
        let b = Bucketing::single(3).unwrap();
        assert!(workload_normal_equations(&b, &p, &[]).is_err());
    }

    #[test]
    fn out_of_bounds_queries_are_rejected() {
        let p = ps(&[1, 2, 3]);
        let b = Bucketing::single(3).unwrap();
        let bad = vec![RangeQuery { lo: 0, hi: 5 }];
        assert!(workload_normal_equations(&b, &p, &bad).is_err());
    }
}
