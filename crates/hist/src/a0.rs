//! The A0 heuristic histogram (paper §4).
//!
//! A0 stores only the bucket average (like OPT-A, `2B` words) but picks its
//! boundaries with the SAP0-style DP machinery, *ignoring the cross term*
//! that the average-answering procedure actually incurs. The resulting
//! histogram is therefore **not** optimal — the paper introduces it as a
//! cheap heuristic that empirically lands close to OPT-A — and the value the
//! DP minimizes (`objective`) is only a lower-ish proxy for the true SSE,
//! which callers should measure with the exact evaluators.

use crate::dp::{optimal_bucketing, optimal_bucketing_with_budget};
use synoptic_core::window::WindowOracle;
use synoptic_core::{Budget, PrefixSums, Result, ValueHistogram};

/// The cross-term-blind A0 bucket cost: identical shape to SAP0's, but with
/// the suffix/prefix errors measured against `(len piece)·avg` (the actual
/// eq.-1 end pieces) rather than against the optimal suffix/prefix means.
pub fn a0_bucket_cost(oracle: &WindowOracle, n: usize, l: usize, r: usize) -> f64 {
    let agg = oracle.endpoint_aggregates(l, r);
    oracle.intra_avg_sse(l, r) + agg.u2 * (n - 1 - r) as f64 + agg.v2 * l as f64
}

/// Builds the A0 histogram with at most `buckets` buckets in `O(n²·buckets)`.
/// Returns the histogram; its *true* SSE (including the ignored cross term)
/// can be computed exactly in O(n) via
/// [`synoptic_core::sse::sse_value_histogram`].
pub fn build_a0(ps: &PrefixSums, buckets: usize) -> Result<ValueHistogram> {
    Ok(build_a0_with_objective(ps, buckets)?.0)
}

/// [`build_a0`] under execution control; bit-identical with
/// [`Budget::unlimited`], aborts with the budget's error otherwise.
pub fn build_a0_with_budget(
    ps: &PrefixSums,
    buckets: usize,
    budget: &Budget,
) -> Result<ValueHistogram> {
    let oracle = WindowOracle::new(ps);
    let n = ps.n();
    let sol =
        optimal_bucketing_with_budget(n, buckets, |l, r| a0_bucket_cost(&oracle, n, l, r), budget)?;
    ValueHistogram::with_averages(sol.bucketing, ps, "A0")
}

/// Builds A0 and also returns the (cross-term-blind) DP objective.
pub fn build_a0_with_objective(ps: &PrefixSums, buckets: usize) -> Result<(ValueHistogram, f64)> {
    let oracle = WindowOracle::new(ps);
    let n = ps.n();
    let sol = optimal_bucketing(n, buckets, |l, r| a0_bucket_cost(&oracle, n, l, r))?;
    let h = ValueHistogram::with_averages(sol.bucketing, ps, "A0")?;
    Ok((h, sol.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::{sse_brute, sse_value_histogram};
    use synoptic_core::PrefixSums;

    #[test]
    fn closed_form_sse_matches_brute() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let ps = PrefixSums::from_values(&vals);
        for b in 1..=5 {
            let h = build_a0(&ps, b).unwrap();
            let fast = sse_value_histogram(h.xprefix(), &ps);
            let brute = sse_brute(&h, &ps);
            assert!((fast - brute).abs() <= 1e-6 * (1.0 + brute), "b={b}");
        }
    }

    #[test]
    fn objective_omits_cross_term() {
        // The DP objective differs from the true SSE exactly by the total
        // cross term 2·Σ_{p<q} U1(p)·V1(q).
        let vals = vec![5i64, 1, 8, 8, 2, 9, 0, 3];
        let ps = PrefixSums::from_values(&vals);
        let oracle = WindowOracle::new(&ps);
        let (h, obj) = build_a0_with_objective(&ps, 3).unwrap();
        let truth = sse_value_histogram(h.xprefix(), &ps);
        let b = h.bucketing();
        let aggs: Vec<_> = b
            .iter()
            .map(|(l, r)| oracle.endpoint_aggregates(l, r))
            .collect();
        let mut cross = 0.0;
        for q in 1..aggs.len() {
            for p in 0..q {
                cross += 2.0 * aggs[p].u1 * aggs[q].v1;
            }
        }
        assert!(
            (obj + cross - truth).abs() <= 1e-6 * (1.0 + truth),
            "objective {obj} + cross {cross} should equal SSE {truth}"
        );
    }

    #[test]
    fn a0_is_reasonable_but_not_necessarily_optimal() {
        // Sanity: A0 should beat the single-bucket NAIVE whenever B > 1
        // provides signal.
        let vals = vec![100i64, 1, 1, 1, 1, 1, 1, 90];
        let ps = PrefixSums::from_values(&vals);
        let h1 = build_a0(&ps, 1).unwrap();
        let h3 = build_a0(&ps, 3).unwrap();
        let s1 = sse_value_histogram(h1.xprefix(), &ps);
        let s3 = sse_value_histogram(h3.xprefix(), &ps);
        assert!(s3 < s1, "3 buckets ({s3}) should beat 1 ({s1})");
    }

    #[test]
    fn name_and_storage() {
        use synoptic_core::RangeEstimator;
        let ps = PrefixSums::from_values(&[1, 2, 3, 4]);
        let h = build_a0(&ps, 2).unwrap();
        assert_eq!(h.method_name(), "A0");
        assert_eq!(h.storage_words(), 2 * h.bucketing().num_buckets());
    }
}
