//! Optimal SAP1 construction (paper Theorem 8).

use crate::dp::{optimal_bucketing, optimal_bucketing_with_budget};
use synoptic_core::window::WindowOracle;
use synoptic_core::{Budget, PrefixSums, Result, Sap1Histogram};

/// Bucket-additive SAP1 cost: as SAP0 but with the *regression residuals*
/// of the best linear fits to the suffix/prefix sums instead of their
/// variances. Least-squares residuals (with intercept) sum to zero per
/// bucket, so the Decomposition Lemma carries over and the DP is exact.
pub fn sap1_bucket_cost(oracle: &WindowOracle, n: usize, l: usize, r: usize) -> f64 {
    let (srss, _, _) = oracle.suffix_fit(l, r);
    let (prss, _, _) = oracle.prefix_fit(l, r);
    oracle.intra_avg_sse(l, r) + srss * (n - 1 - r) as f64 + prss * l as f64
}

/// Builds the SSE-optimal SAP1 histogram with at most `buckets` buckets in
/// `O(n²·buckets)` (Theorem 8).
pub fn build_sap1(ps: &PrefixSums, buckets: usize) -> Result<Sap1Histogram> {
    Ok(build_sap1_with_sse(ps, buckets)?.0)
}

/// [`build_sap1`] under execution control; bit-identical with
/// [`Budget::unlimited`], aborts with the budget's error otherwise.
pub fn build_sap1_with_budget(
    ps: &PrefixSums,
    buckets: usize,
    budget: &Budget,
) -> Result<Sap1Histogram> {
    let oracle = WindowOracle::new(ps);
    let n = ps.n();
    let sol = optimal_bucketing_with_budget(
        n,
        buckets,
        |l, r| sap1_bucket_cost(&oracle, n, l, r),
        budget,
    )?;
    Sap1Histogram::optimal_values(sol.bucketing, ps)
}

/// Builds SAP1 and also returns the DP objective (= the exact SSE).
pub fn build_sap1_with_sse(ps: &PrefixSums, buckets: usize) -> Result<(Sap1Histogram, f64)> {
    let oracle = WindowOracle::new(ps);
    let n = ps.n();
    let sol = optimal_bucketing(n, buckets, |l, r| sap1_bucket_cost(&oracle, n, l, r))?;
    let h = Sap1Histogram::optimal_values(sol.bucketing, ps)?;
    Ok((h, sol.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sap0::build_sap0_with_sse;
    use synoptic_core::sse::sse_brute;
    use synoptic_core::PrefixSums;

    #[test]
    fn dp_objective_equals_true_sse() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1];
        let ps = PrefixSums::from_values(&vals);
        for b in 1..=5 {
            let (h, obj) = build_sap1_with_sse(&ps, b).unwrap();
            let brute = sse_brute(&h, &ps);
            assert!(
                (obj - brute).abs() <= 1e-6 * (1.0 + brute),
                "b={b}: dp={obj} brute={brute}"
            );
        }
    }

    #[test]
    fn sap1_no_worse_than_sap0_at_equal_bucket_count() {
        // Per-bucket, the linear fit dominates the constant fit, and both DPs
        // are exact, so SAP1's optimum is ≤ SAP0's at the same B.
        let vals = vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7];
        let ps = PrefixSums::from_values(&vals);
        for b in 1..=6 {
            let (_, s1) = build_sap1_with_sse(&ps, b).unwrap();
            let (_, s0) = build_sap0_with_sse(&ps, b).unwrap();
            assert!(s1 <= s0 + 1e-6, "b={b}: SAP1 {s1} > SAP0 {s0}");
        }
    }

    #[test]
    fn linear_trend_data_favors_sap1_strongly() {
        // Strictly increasing data: suffix sums are quadratic-ish in t, a
        // linear fit captures far more than a constant.
        let vals: Vec<i64> = (0..16).map(|i| 10 * i).collect();
        let ps = PrefixSums::from_values(&vals);
        let (_, s1) = build_sap1_with_sse(&ps, 2).unwrap();
        let (_, s0) = build_sap0_with_sse(&ps, 2).unwrap();
        assert!(
            s1 < s0 * 0.5,
            "expected SAP1 ({s1}) to beat SAP0 ({s0}) by >2× on a ramp"
        );
    }

    #[test]
    fn more_buckets_never_hurt() {
        let vals = vec![9i64, 0, 0, 9, 9, 0, 0, 9, 5, 5];
        let ps = PrefixSums::from_values(&vals);
        let mut prev = f64::INFINITY;
        for b in 1..=6 {
            let (_, sse) = build_sap1_with_sse(&ps, b).unwrap();
            assert!(sse <= prev + 1e-9, "b={b}");
            prev = sse;
        }
    }
}
