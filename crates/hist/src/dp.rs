//! The shared O(n²B) dynamic program for *bucket-additive* objectives.
//!
//! When a histogram's total error is a sum of per-bucket costs that depend
//! only on the bucket's own `[l, r]` (plus the global `n`) — which the
//! paper's Decomposition Lemma establishes for SAP0/SAP1, which holds
//! trivially for point-query objectives, and which A0 *pretends* holds — the
//! optimal boundaries follow from the classical interval-partition DP of
//! Jagadish et al. (the paper's ref. 6):
//!
//! ```text
//! E(i, k) = min_{k−1 ≤ j < i}  E(j, k−1) + cost(j, i−1)
//! ```
//!
//! where `E(i, k)` is the best cost of covering the prefix `[0, i)` with
//! exactly `k` buckets and `cost(l, r)` is the (O(1)-oracle) cost of a bucket
//! over the inclusive index window `[l, r]`.

use synoptic_core::{Bucketing, Budget, Result, SynopticError};

/// Result of the bucket-additive DP: boundaries, the DP objective value, and
/// the number of buckets actually used.
#[derive(Debug, Clone)]
pub struct DpSolution {
    /// The optimal bucketing.
    pub bucketing: Bucketing,
    /// The DP objective value (the true SSE only when the objective is
    /// genuinely bucket-additive, e.g. SAP0/SAP1 — not A0).
    pub objective: f64,
}

/// Runs the interval-partition DP for a bucket-additive cost.
///
/// `cost(l, r)` must return the cost of a single bucket covering the
/// inclusive window `[l, r]`, `0 ≤ l ≤ r < n`. Uses **at most** `max_buckets`
/// buckets (fewer if that is cheaper, which can happen for costs that are not
/// monotone in the partition refinement).
///
/// Complexity: `O(n² · max_buckets)` cost evaluations, `O(n · max_buckets)`
/// memory.
pub fn optimal_bucketing<C>(n: usize, max_buckets: usize, cost: C) -> Result<DpSolution>
where
    C: Fn(usize, usize) -> f64,
{
    optimal_bucketing_with_budget(n, max_buckets, cost, &Budget::unlimited())
}

/// [`optimal_bucketing`] under execution control: the DP charges its
/// [`Budget`] one checkpoint per `(k, i)` cell (counting the candidate
/// split points examined as work units) and aborts with the budget's error
/// at the first exhausted constraint. With [`Budget::unlimited`] this is
/// bit-identical to [`optimal_bucketing`].
pub fn optimal_bucketing_with_budget<C>(
    n: usize,
    max_buckets: usize,
    cost: C,
    budget: &Budget,
) -> Result<DpSolution>
where
    C: Fn(usize, usize) -> f64,
{
    if n == 0 {
        return Err(SynopticError::EmptyInput);
    }
    if max_buckets == 0 || max_buckets > n {
        return Err(SynopticError::InvalidBucketCount {
            buckets: max_buckets,
            n,
        });
    }
    let b = max_buckets;
    // e[k][i]: best cost covering [0, i) with exactly k buckets; usize::MAX
    // parents mark unreachable states.
    let mut e = vec![vec![f64::INFINITY; n + 1]; b + 1];
    let mut parent = vec![vec![usize::MAX; n + 1]; b + 1];
    e[0][0] = 0.0;
    for k in 1..=b {
        // With k buckets we can cover at least k and at most n positions.
        for i in k..=n {
            budget.charge((i - (k - 1)) as u64)?;
            let mut best = f64::INFINITY;
            let mut best_j = usize::MAX;
            #[allow(clippy::needless_range_loop)] // j is an index *and* a boundary value
            for j in (k - 1)..i {
                let prev = e[k - 1][j];
                if !prev.is_finite() {
                    continue;
                }
                let c = prev + cost(j, i - 1);
                if c < best {
                    best = c;
                    best_j = j;
                }
            }
            e[k][i] = best;
            parent[k][i] = best_j;
        }
    }
    // Best over "at most b buckets".
    let (mut best_k, mut best) = (1, e[1][n]);
    for (k, ek) in e.iter().enumerate().take(b + 1).skip(2) {
        if ek[n] < best {
            best = ek[n];
            best_k = k;
        }
    }
    // Reconstruct boundaries.
    let mut starts = Vec::with_capacity(best_k);
    let (mut i, mut k) = (n, best_k);
    while k > 0 {
        let j = parent[k][i];
        debug_assert_ne!(j, usize::MAX, "unreachable DP state in reconstruction");
        starts.push(j);
        i = j;
        k -= 1;
    }
    starts.reverse();
    Ok(DpSolution {
        bucketing: Bucketing::new(n, starts)?,
        objective: best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: enumerate all bucketings with ≤ b buckets.
    fn brute<C: Fn(usize, usize) -> f64 + Copy>(n: usize, b: usize, cost: C) -> f64 {
        fn rec<C: Fn(usize, usize) -> f64 + Copy>(
            start: usize,
            n: usize,
            left: usize,
            cost: C,
        ) -> f64 {
            if start == n {
                return 0.0;
            }
            if left == 0 {
                return f64::INFINITY;
            }
            let mut best = f64::INFINITY;
            for end in start..n {
                let c = cost(start, end) + rec(end + 1, n, left - 1, cost);
                if c < best {
                    best = c;
                }
            }
            best
        }
        rec(0, n, b, cost)
    }

    #[test]
    fn validates_inputs() {
        assert!(optimal_bucketing(0, 1, |_, _| 0.0).is_err());
        assert!(optimal_bucketing(5, 0, |_, _| 0.0).is_err());
        assert!(optimal_bucketing(5, 6, |_, _| 0.0).is_err());
    }

    #[test]
    fn single_bucket_when_b_is_one() {
        let sol = optimal_bucketing(7, 1, |l, r| ((r - l) as f64).powi(2)).unwrap();
        assert_eq!(sol.bucketing.num_buckets(), 1);
        assert_eq!(sol.objective, 36.0);
    }

    #[test]
    fn matches_brute_force_on_random_costs() {
        // A deterministic but irregular cost function.
        let cost = |l: usize, r: usize| {
            let x = (l * 31 + r * 17) % 13;
            (x as f64) + (r - l) as f64 * 1.5
        };
        for n in 1..=9usize {
            for b in 1..=n {
                let sol = optimal_bucketing(n, b, cost).unwrap();
                let want = brute(n, b, cost);
                assert!(
                    (sol.objective - want).abs() < 1e-9,
                    "n={n} b={b}: {} vs {want}",
                    sol.objective
                );
                // Reconstructed bucketing must reproduce the objective.
                let recon: f64 = sol.bucketing.iter().map(|(l, r)| cost(l, r)).sum();
                assert!((recon - sol.objective).abs() < 1e-9, "n={n} b={b}");
                assert!(sol.bucketing.num_buckets() <= b);
            }
        }
    }

    #[test]
    fn splitting_helps_with_convex_costs() {
        // cost = (width)², so more buckets always help; with b = n the
        // optimum is 0 … wait, width 1 ⇒ cost 1. Use (width − 1)² so
        // singleton buckets are free.
        let cost = |l: usize, r: usize| ((r - l) as f64).powi(2);
        let sol = optimal_bucketing(6, 6, cost).unwrap();
        assert_eq!(sol.objective, 0.0);
        assert_eq!(sol.bucketing.num_buckets(), 6);
    }

    #[test]
    fn budgeted_dp_matches_unbudgeted_and_aborts_cleanly() {
        use synoptic_core::SynopticError;
        let cost = |l: usize, r: usize| ((r - l) as f64) * 1.25 + ((l * 7 + r) % 5) as f64;
        let free = optimal_bucketing(12, 4, cost).unwrap();
        let metered = Budget::unlimited();
        let budgeted = optimal_bucketing_with_budget(12, 4, cost, &metered).unwrap();
        assert_eq!(free.bucketing.starts(), budgeted.bucketing.starts());
        assert_eq!(free.objective, budgeted.objective);
        assert!(metered.cells_used() > 0);
        // A cap below the metered usage must abort with the budget error.
        let capped = Budget::unlimited().with_max_cells(metered.cells_used() / 2);
        match optimal_bucketing_with_budget(12, 4, cost, &capped) {
            Err(SynopticError::CellBudgetExceeded { .. }) => {}
            other => panic!("expected CellBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn may_use_fewer_buckets_when_cheaper() {
        // Penalize narrow buckets: cost = 1/width. Optimal is one wide bucket
        // even when more are allowed.
        let cost = |l: usize, r: usize| 1.0 / (r - l + 1) as f64;
        let sol = optimal_bucketing(8, 4, cost).unwrap();
        assert_eq!(sol.bucketing.num_buckets(), 1);
        assert!((sol.objective - 0.125).abs() < 1e-12);
    }
}
