//! OPT-A-ROUNDED (paper §2.1.3, Theorem 4): trade a bounded quality loss
//! for a faster pseudo-polynomial construction by coarsening the *data*.
//!
//! Definition 3 of the paper: round every `A[i]` to a nearby multiple of a
//! scale `x`, divide through by `x`, compute OPT-A on the result, and
//! multiply the histogram through by `x`. Shrinking the data shrinks the
//! paper's `Λ*` bound — and, in our hull-pruned DP, the number of distinct
//! integral Λ values — by the factor `x`, while Theorem 4 bounds the error
//! inflation by `(1 + ε)` for a suitable `x = x(ε)`.

use synoptic_core::sse::sse_value_histogram;
use synoptic_core::{Budget, PrefixSums, Result, RoundingMode, SynopticError, ValueHistogram};

use crate::opta::{build_opt_a, build_opt_a_with_budget, DpStats, OptAConfig};

/// Result of an OPT-A-ROUNDED construction.
#[derive(Debug, Clone)]
pub struct OptARoundedResult {
    /// The constructed histogram: boundaries from the scaled DP, values
    /// `x · avg(scaled bucket)` per Definition 3.
    pub histogram: ValueHistogram,
    /// Exact SSE of `histogram` against the *original* data.
    pub sse: f64,
    /// The scale `x` used.
    pub scale: i64,
    /// Diagnostics of the underlying DP run on the scaled data.
    pub stats: DpStats,
}

/// Rounds `v` to the nearest multiple of `x` (ties away from zero). The
/// paper allows "up or down, arbitrarily"; nearest is an admissible,
/// deterministic choice.
fn round_to_multiple(v: i64, x: i64) -> i64 {
    debug_assert!(x > 0);
    let (q, r) = (v / x, v % x);
    if 2 * r.abs() >= x {
        q + r.signum()
    } else {
        q
    }
}

/// Unbiased randomized rounding to a multiple of `x`: round away from the
/// floor with probability `|remainder| / x` — the paper's closing remark in
/// §2.1.3 ("additional savings is possible by using unbiased randomized
/// rounding", improving the runtime's ε-dependence). Deterministic given
/// `(seed, position)` via a splitmix64 hash, so rebuilds are reproducible.
fn round_to_multiple_randomized(v: i64, x: i64, seed: u64, position: usize) -> i64 {
    debug_assert!(x > 0);
    let q = v.div_euclid(x);
    let r = v.rem_euclid(x); // 0 ≤ r < x
    if r == 0 {
        return q;
    }
    // splitmix64 over (seed, position) → uniform in [0, 1).
    let mut z = seed ^ (position as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    if u < r as f64 / x as f64 {
        q + 1
    } else {
        q
    }
}

/// Builds OPT-A-ROUNDED with **unbiased randomized** data rounding
/// (Theorem 4's improved variant). Identical pipeline to
/// [`build_opt_a_rounded`] except the per-value rounding direction is drawn
/// with probability proportional to the remainder.
pub fn build_opt_a_rounded_randomized(
    ps: &PrefixSums,
    values: &[i64],
    buckets: usize,
    scale: i64,
    seed: u64,
) -> Result<OptARoundedResult> {
    if scale < 1 {
        return Err(SynopticError::InvalidParameter(format!(
            "scale must be ≥ 1, got {scale}"
        )));
    }
    let scaled: Vec<i64> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| round_to_multiple_randomized(v, scale, seed, i))
        .collect();
    let scaled_ps = PrefixSums::from_values(&scaled);
    let inner = build_opt_a(
        &scaled_ps,
        &OptAConfig::exact(buckets, RoundingMode::NearestInt),
    )?;
    let bucketing = inner.histogram.bucketing().clone();
    let vals: Vec<f64> = bucketing
        .iter()
        .map(|(l, r)| scale as f64 * scaled_ps.range_sum(l, r) as f64 / (r - l + 1) as f64)
        .collect();
    let histogram = ValueHistogram::new(bucketing, vals, "OPT-A-ROUNDED(rand)")?;
    let sse = sse_value_histogram(histogram.xprefix(), ps);
    Ok(OptARoundedResult {
        histogram,
        sse,
        scale,
        stats: inner.stats,
    })
}

/// Builds OPT-A-ROUNDED with explicit scale `x ≥ 1`.
///
/// The returned histogram follows Definition 3 exactly: its stored values
/// are `x` times the scaled-data bucket averages (not re-fit to the original
/// data), and its SSE is measured against the original data.
pub fn build_opt_a_rounded(
    ps: &PrefixSums,
    values: &[i64],
    buckets: usize,
    scale: i64,
) -> Result<OptARoundedResult> {
    build_opt_a_rounded_with_budget(ps, values, buckets, scale, &Budget::unlimited())
}

/// [`build_opt_a_rounded`] under execution control: the inner scaled DP
/// (and its `O(n⁴)` rounded cost table, the true hot spot) charge the
/// budget. Bit-identical with [`Budget::unlimited`].
pub fn build_opt_a_rounded_with_budget(
    ps: &PrefixSums,
    values: &[i64],
    buckets: usize,
    scale: i64,
    budget: &Budget,
) -> Result<OptARoundedResult> {
    if scale < 1 {
        return Err(SynopticError::InvalidParameter(format!(
            "scale must be ≥ 1, got {scale}"
        )));
    }
    let scaled: Vec<i64> = values
        .iter()
        .map(|&v| round_to_multiple(v, scale))
        .collect();
    let scaled_ps = PrefixSums::from_values(&scaled);
    // The DP runs on the divided data; RoundingMode::NearestInt keeps Λ
    // integral on the divided scale, which is where the ×x state shrinkage
    // comes from.
    let inner = build_opt_a_with_budget(
        &scaled_ps,
        &OptAConfig::exact(buckets, RoundingMode::NearestInt),
        budget,
    )?;
    let bucketing = inner.histogram.bucketing().clone();
    // "Multiply through by x": values are x · avg(divided bucket), i.e. the
    // averages of the rounded-to-multiple data.
    let vals: Vec<f64> = bucketing
        .iter()
        .map(|(l, r)| scale as f64 * scaled_ps.range_sum(l, r) as f64 / (r - l + 1) as f64)
        .collect();
    let histogram = ValueHistogram::new(bucketing, vals, "OPT-A-ROUNDED")?;
    let sse = sse_value_histogram(histogram.xprefix(), ps);
    Ok(OptARoundedResult {
        histogram,
        sse,
        scale,
        stats: inner.stats,
    })
}

/// Maps a target approximation parameter `ε` to a data scale `x`.
///
/// Theorem 4's proof fixes `x` as a function of `ε` up to constants the
/// paper leaves implicit; this implementation uses the natural choice
/// `x = max(1, ⌊ε · mean(A)⌋)` — scaling each datum's rounding perturbation
/// to an `ε`-fraction of its typical magnitude. Ablation A1 in
/// EXPERIMENTS.md measures the realized error inflation against `ε`.
pub fn scale_for_epsilon(values: &[i64], eps: f64) -> Result<i64> {
    if eps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(SynopticError::InvalidParameter(format!(
            "epsilon must be positive, got {eps}"
        )));
    }
    let mean =
        values.iter().map(|&v| v.unsigned_abs() as f64).sum::<f64>() / values.len().max(1) as f64;
    Ok(((eps * mean).floor() as i64).max(1))
}

/// Convenience wrapper: OPT-A-ROUNDED with `ε`-derived scale.
pub fn build_opt_a_rounded_eps(
    ps: &PrefixSums,
    values: &[i64],
    buckets: usize,
    eps: f64,
) -> Result<OptARoundedResult> {
    let scale = scale_for_epsilon(values, eps)?;
    build_opt_a_rounded(ps, values, buckets, scale)
}

/// [`build_opt_a_rounded_eps`] under execution control.
pub fn build_opt_a_rounded_eps_with_budget(
    ps: &PrefixSums,
    values: &[i64],
    buckets: usize,
    eps: f64,
    budget: &Budget,
) -> Result<OptARoundedResult> {
    let scale = scale_for_epsilon(values, eps)?;
    build_opt_a_rounded_with_budget(ps, values, buckets, scale, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::{RangeEstimator, RoundingMode};

    fn ps(vals: &[i64]) -> PrefixSums {
        PrefixSums::from_values(vals)
    }

    #[test]
    fn scale_one_reduces_to_plain_opt_a_boundaries() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let p = ps(&vals);
        let r = build_opt_a_rounded(&p, &vals, 3, 1).unwrap();
        let plain = build_opt_a(&p, &OptAConfig::exact(3, RoundingMode::NearestInt)).unwrap();
        assert_eq!(
            r.histogram.bucketing().starts(),
            plain.histogram.bucketing().starts()
        );
        assert_eq!(r.scale, 1);
    }

    #[test]
    fn rounding_to_multiples() {
        assert_eq!(round_to_multiple(7, 5), 1); // 7 → 5/5
        assert_eq!(round_to_multiple(8, 5), 2); // 8 → 10/5
        assert_eq!(round_to_multiple(-7, 5), -1);
        assert_eq!(round_to_multiple(-8, 5), -2);
        assert_eq!(round_to_multiple(10, 5), 2);
        assert_eq!(round_to_multiple(0, 5), 0);
        assert_eq!(round_to_multiple(2, 4), 1); // ties away from zero
    }

    #[test]
    fn quality_degrades_gracefully_with_scale() {
        let vals = vec![120i64, 90, 40, 10, 10, 0, 20, 140, 130, 60, 20, 10];
        let p = ps(&vals);
        let exact = build_opt_a(&p, &OptAConfig::exact(3, RoundingMode::None)).unwrap();
        // Note: the rounded histogram's values are averages of the perturbed
        // data, which are NOT constrained to be bucket averages of the
        // original — so it may even edge out the average-valued optimum
        // (the same slack the reopt step exploits). The meaningful property
        // is Theorem 4's: a small scale stays within a small factor of OPT-A.
        let fine = build_opt_a_rounded(&p, &vals, 3, 2).unwrap();
        let coarse = build_opt_a_rounded(&p, &vals, 3, 8).unwrap();
        assert!(
            fine.sse <= exact.sse * 1.5 + 1e-6,
            "fine {} vs exact {}",
            fine.sse,
            exact.sse
        );
        assert!(
            coarse.sse <= exact.sse * 25.0 + 1e-6,
            "coarse {} drifted absurdly far from exact {}",
            coarse.sse,
            exact.sse
        );
        // The reopt lower bound over the same boundaries holds in both
        // directions: reopt(boundaries) ≤ any value assignment.
        let re = crate::reopt::reoptimize(fine.histogram.bucketing(), &p, "R").unwrap();
        assert!(re.sse <= fine.sse + 1e-6);
    }

    #[test]
    fn epsilon_mapping_is_monotone() {
        let vals = vec![120i64, 90, 40, 10, 10, 0, 20, 140];
        let x1 = scale_for_epsilon(&vals, 0.05).unwrap();
        let x2 = scale_for_epsilon(&vals, 0.5).unwrap();
        assert!(x1 <= x2);
        assert!(x1 >= 1);
        assert!(scale_for_epsilon(&vals, 0.0).is_err());
        assert!(scale_for_epsilon(&vals, -1.0).is_err());
    }

    #[test]
    fn eps_wrapper_runs_end_to_end() {
        let vals = vec![120i64, 90, 40, 10, 10, 0, 20, 140, 130, 60];
        let p = ps(&vals);
        let r = build_opt_a_rounded_eps(&p, &vals, 3, 0.2).unwrap();
        assert!(r.sse.is_finite());
        assert!(r.scale >= 1);
        assert_eq!(r.histogram.method_name(), "OPT-A-ROUNDED");
    }

    #[test]
    fn randomized_rounding_is_unbiased_and_bounded() {
        // Mean of many roundings of 7 with scale 5 → 7/5 = 1.4 (in divided
        // units); each rounding is floor or floor+1.
        let mut acc = 0i64;
        let k = 20_000;
        for pos in 0..k {
            let r = round_to_multiple_randomized(7, 5, 42, pos);
            assert!(r == 1 || r == 2);
            acc += r;
        }
        let mean = acc as f64 / k as f64;
        assert!((mean - 1.4).abs() < 0.02, "mean {mean}");
        // Exact multiples never move, negatives stay unbiased in sign.
        assert_eq!(round_to_multiple_randomized(10, 5, 1, 0), 2);
        let r = round_to_multiple_randomized(-7, 5, 1, 3);
        assert!(r == -2 || r == -1);
    }

    #[test]
    fn randomized_variant_builds_and_is_deterministic_per_seed() {
        let vals = vec![123i64, 91, 38, 11, 9, 2, 21, 139, 131, 62, 19, 8];
        let p = ps(&vals);
        let a = build_opt_a_rounded_randomized(&p, &vals, 3, 4, 7).unwrap();
        let b = build_opt_a_rounded_randomized(&p, &vals, 3, 4, 7).unwrap();
        assert_eq!(a.sse, b.sse);
        assert_eq!(a.histogram.method_name(), "OPT-A-ROUNDED(rand)");
        // And it stays in the same quality ballpark as the deterministic one.
        let det = build_opt_a_rounded(&p, &vals, 3, 4).unwrap();
        assert!(a.sse <= det.sse * 10.0 + 1e-6 && det.sse <= a.sse * 10.0 + 1e-6);
        assert!(build_opt_a_rounded_randomized(&p, &vals, 3, 0, 7).is_err());
    }

    #[test]
    fn rejects_bad_scale() {
        let vals = vec![1i64, 2, 3];
        let p = ps(&vals);
        assert!(build_opt_a_rounded(&p, &vals, 2, 0).is_err());
    }
}
