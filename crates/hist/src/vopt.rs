//! V-optimal point-query histograms [Jagadish et al., ref. 6 of the paper]
//! and the paper's POINT-OPT baseline.
//!
//! The classical V-optimal histogram minimizes the (weighted) SSE of **point**
//! queries: `Σ_i w_i (A[i] − val(buck(i)))²`. The paper evaluates it as a
//! baseline for range queries after "adjusting the probabilities for each
//! point `A[i]` to reflect the probability that `A[i]` is part of a random
//! range-query" — i.e. weights `w_i = (i+1)(n−i)`, the number of ranges
//! covering `i`. The stored value per bucket is the weighted mean (optimal
//! for the weighted point objective); range queries are answered through the
//! usual eq.-1 value-histogram procedure.

use crate::dp::{optimal_bucketing, optimal_bucketing_with_budget};
use synoptic_core::window::WeightedPointOracle;
use synoptic_core::{Bucketing, Budget, PrefixSums, Result, ValueHistogram};

/// Which point-query weighting to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PointWeighting {
    /// Uniform weights: the textbook V-optimal histogram.
    Uniform,
    /// Range-inclusion weights `w_i = (i+1)(n−i)` — the paper's POINT-OPT
    /// adjustment. Default.
    #[default]
    RangeInclusion,
}

/// Builds the weighted V-optimal histogram with at most `buckets` buckets in
/// `O(n²·buckets)`; stored values are the weighted bucket means.
pub fn build_point_opt(
    values: &[i64],
    ps: &PrefixSums,
    buckets: usize,
    weighting: PointWeighting,
) -> Result<ValueHistogram> {
    Ok(build_point_opt_with_objective(values, ps, buckets, weighting)?.0)
}

/// [`build_point_opt`] under execution control; bit-identical with
/// [`Budget::unlimited`], aborts with the budget's error otherwise.
pub fn build_point_opt_with_budget(
    values: &[i64],
    ps: &PrefixSums,
    buckets: usize,
    weighting: PointWeighting,
    budget: &Budget,
) -> Result<ValueHistogram> {
    let oracle = match weighting {
        PointWeighting::Uniform => WeightedPointOracle::uniform(values),
        PointWeighting::RangeInclusion => WeightedPointOracle::range_inclusion(values),
    };
    let n = values.len();
    let sol = optimal_bucketing_with_budget(n, buckets, |l, r| oracle.cost(l, r), budget)?;
    let vals: Vec<f64> = sol
        .bucketing
        .iter()
        .map(|(l, r)| oracle.wmean(l, r))
        .collect();
    let name = match weighting {
        PointWeighting::Uniform => "V-OPT",
        PointWeighting::RangeInclusion => "POINT-OPT",
    };
    let h = ValueHistogram::new(sol.bucketing, vals, name)?;
    let _ = ps; // kept in the signature for API symmetry with other builders
    Ok(h)
}

/// As [`build_point_opt`], also returning the weighted point-query objective
/// the DP minimized (not the range SSE!).
pub fn build_point_opt_with_objective(
    values: &[i64],
    ps: &PrefixSums,
    buckets: usize,
    weighting: PointWeighting,
) -> Result<(ValueHistogram, f64)> {
    let oracle = match weighting {
        PointWeighting::Uniform => WeightedPointOracle::uniform(values),
        PointWeighting::RangeInclusion => WeightedPointOracle::range_inclusion(values),
    };
    let n = values.len();
    let sol = optimal_bucketing(n, buckets, |l, r| oracle.cost(l, r))?;
    let vals: Vec<f64> = sol
        .bucketing
        .iter()
        .map(|(l, r)| oracle.wmean(l, r))
        .collect();
    let name = match weighting {
        PointWeighting::Uniform => "V-OPT",
        PointWeighting::RangeInclusion => "POINT-OPT",
    };
    let h = ValueHistogram::new(sol.bucketing, vals, name)?;
    let _ = ps; // kept in the signature for API symmetry with other builders
    Ok((h, sol.objective))
}

/// Weighted point-query SSE of an arbitrary bucketing with weighted-mean
/// values (for tests and diagnostics).
pub fn weighted_point_sse(values: &[i64], bucketing: &Bucketing, weighting: PointWeighting) -> f64 {
    let oracle = match weighting {
        PointWeighting::Uniform => WeightedPointOracle::uniform(values),
        PointWeighting::RangeInclusion => WeightedPointOracle::range_inclusion(values),
    };
    bucketing.iter().map(|(l, r)| oracle.cost(l, r)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::RangeEstimator;

    fn ps(vals: &[i64]) -> PrefixSums {
        PrefixSums::from_values(vals)
    }

    #[test]
    fn uniform_vopt_minimizes_point_sse() {
        let vals = vec![1i64, 1, 1, 50, 50, 50, 2, 2];
        let p = ps(&vals);
        let (h, obj) =
            build_point_opt_with_objective(&vals, &p, 3, PointWeighting::Uniform).unwrap();
        // Perfect split: [0..2], [3..5], [6..7] ⇒ zero point error.
        assert!(obj < 1e-9, "objective {obj}");
        let point_sse: f64 = (0..8)
            .map(|i| {
                let q = synoptic_core::RangeQuery::point(i);
                let d = vals[i] as f64 - h.estimate(q);
                d * d
            })
            .sum();
        assert!(point_sse < 1e-9);
    }

    #[test]
    fn dp_objective_matches_recomputed_cost() {
        let vals = vec![3i64, 9, 1, 7, 2, 8, 5, 5, 0, 4];
        let p = ps(&vals);
        for w in [PointWeighting::Uniform, PointWeighting::RangeInclusion] {
            for b in 1..=4 {
                let (h, obj) = build_point_opt_with_objective(&vals, &p, b, w).unwrap();
                let recomputed = weighted_point_sse(&vals, h.bucketing(), w);
                assert!(
                    (obj - recomputed).abs() <= 1e-6 * (1.0 + obj),
                    "w={w:?} b={b}"
                );
            }
        }
    }

    #[test]
    fn range_inclusion_downweights_the_edges() {
        // A spike at the edge matters less than a spike in the middle under
        // range-inclusion weights; with B = 2 the split should isolate the
        // *middle* spike.
        let mut vals = vec![0i64; 15];
        vals[0] = 100; // edge spike, weight 1·15 = 15
        vals[7] = 100; // middle spike, weight 8·8 = 64
        let p = ps(&vals);
        let h = build_point_opt(&vals, &p, 3, PointWeighting::RangeInclusion).unwrap();
        // The middle spike must sit alone in its bucket (its bucket width 1).
        let bk = h.bucketing();
        let mid = bk.bucket_of(7);
        assert_eq!(
            (bk.left(mid), bk.right(mid)),
            (7, 7),
            "boundaries {:?}",
            bk.starts()
        );
    }

    #[test]
    fn names_follow_weighting() {
        let vals = vec![1i64, 2, 3, 4];
        let p = ps(&vals);
        let h = build_point_opt(&vals, &p, 2, PointWeighting::Uniform).unwrap();
        assert_eq!(h.method_name(), "V-OPT");
        let h = build_point_opt(&vals, &p, 2, PointWeighting::RangeInclusion).unwrap();
        assert_eq!(h.method_name(), "POINT-OPT");
    }

    #[test]
    fn more_buckets_never_hurt_the_point_objective() {
        let vals = vec![7i64, 3, 9, 9, 1, 0, 2, 8, 4, 4, 6, 1];
        let p = ps(&vals);
        let mut prev = f64::INFINITY;
        for b in 1..=8 {
            let (_, obj) =
                build_point_opt_with_objective(&vals, &p, b, PointWeighting::RangeInclusion)
                    .unwrap();
            assert!(obj <= prev + 1e-9, "b={b}");
            prev = obj;
        }
    }
}
