//! The histogram merge operator: partial per-segment builds and prefix-sum
//! stitching.
//!
//! A SAP0 histogram stores, per bucket, the mean of the bucket's suffix
//! sums and the mean of its prefix sums — both exact `i128` moments *local
//! to the bucket*, divided once by the bucket width. Because every stored
//! quantity is bucket-local, a histogram built over a segment slice carries
//! exactly the values the monolithic build would have produced for the same
//! buckets, bit for bit. Stitching is therefore exact: concatenate
//! bucketings (shifting starts by the running segment offset), carry the
//! stored values over unchanged, and rebase the exact cumulative bucket
//! sums ([`synoptic_core::Sap0Histogram::stitch`]).
//!
//! What stitching does *not* claim: the merged histogram equals a
//! monolithic **DP** over the whole domain. The DP may place boundaries
//! across segment edges; partial builds cannot. The equivalence the
//! merge-equivalence suite asserts is against the monolithic build *on the
//! stitched bucketing* — same boundaries, same prefix sums — which is the
//! strongest statement that survives partialization (and the same contract
//! timescaledb-toolkit documents for partializable t-digests).

use synoptic_core::{Budget, PrefixSums, Result, Sap0Histogram, SegmentLayout, SynopticError};

use crate::sap0::build_sap0_with_budget;

/// Builds one optimal SAP0 partial per segment of `layout`, the DP running
/// on the segment-local prefix sums with `buckets[s]` buckets, all attempts
/// charged to the shared `budget`.
pub fn build_sap0_partials(
    values: &[i64],
    layout: &SegmentLayout,
    buckets: &[usize],
    budget: &Budget,
) -> Result<Vec<Sap0Histogram>> {
    if buckets.len() != layout.segments() {
        return Err(SynopticError::InvalidParameter(format!(
            "expected {} per-segment bucket counts, got {}",
            layout.segments(),
            buckets.len()
        )));
    }
    if values.len() != layout.n() {
        return Err(SynopticError::InvalidParameter(format!(
            "layout covers {} positions, values hold {}",
            layout.n(),
            values.len()
        )));
    }
    layout
        .iter()
        .zip(buckets)
        .map(|((l, r), &b)| {
            let lps = PrefixSums::from_values(&values[l..=r]);
            build_sap0_with_budget(&lps, b.clamp(1, r - l + 1), budget)
        })
        .collect()
}

/// Prefix-sum stitching: merges per-segment SAP0 partials (in segment
/// order) into one histogram over the concatenated domain. Bit-identical to
/// the monolithic [`Sap0Histogram::optimal_values`] on the stitched
/// bucketing — see the module docs for exactly what that claims.
pub fn merge_sap0(parts: &[Sap0Histogram]) -> Result<Sap0Histogram> {
    Sap0Histogram::stitch(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::{Bucketing, RangeEstimator, RangeQuery};

    #[test]
    fn partials_merge_to_the_monolithic_build_on_the_stitched_bucketing() {
        let vals: Vec<i64> = (0..40).map(|i| (i * i * 31 + 7 * i) % 97 - 20).collect();
        let ps = PrefixSums::from_values(&vals);
        for segments in [1usize, 2, 4, 5] {
            let layout = SegmentLayout::equi_width(vals.len(), segments).unwrap();
            let buckets = vec![3usize; segments];
            let parts =
                build_sap0_partials(&vals, &layout, &buckets, &Budget::unlimited()).unwrap();
            let merged = merge_sap0(&parts).unwrap();
            // Reconstruct the stitched boundaries and build monolithically.
            let mut starts = Vec::new();
            for ((l, _), part) in layout.iter().zip(&parts) {
                starts.extend(part.bucketing().starts().iter().map(|s| l + s));
            }
            let mono =
                Sap0Histogram::optimal_values(Bucketing::new(vals.len(), starts).unwrap(), &ps)
                    .unwrap();
            for q in RangeQuery::all(vals.len()) {
                assert_eq!(
                    merged.estimate(q).to_bits(),
                    mono.estimate(q).to_bits(),
                    "S={segments} q={q:?}"
                );
            }
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let vals = vec![1i64; 10];
        let layout = SegmentLayout::equi_width(10, 2).unwrap();
        let b = Budget::unlimited();
        assert!(build_sap0_partials(&vals, &layout, &[2], &b).is_err());
        assert!(build_sap0_partials(&vals[..8], &layout, &[2, 2], &b).is_err());
        assert!(merge_sap0(&[]).is_err());
    }
}
