//! A unified, budget-aware construction facade.
//!
//! Experiments compare methods at equal **storage budgets** (machine words),
//! not equal bucket counts, because the representations store different
//! numbers of values per bucket (paper §4, Figure 1's x-axis). This module
//! maps `(method, budget)` to a concrete construction with
//! `B = ⌊budget / words_per_bucket⌋` buckets.

use synoptic_core::{
    NaiveEstimator, PrefixSums, RangeEstimator, Result, RoundingMode, SynopticError,
};

use crate::a0::build_a0;
use crate::heuristics::{build_equi_depth, build_equi_width, build_max_diff};
use crate::opta::{build_opt_a, OptAConfig};
use crate::opta_rounded::build_opt_a_rounded_eps;
use crate::reopt::reoptimize;
use crate::sap0::build_sap0;
use crate::sap1::build_sap1;
use crate::vopt::{build_point_opt, PointWeighting};

/// The histogram families exposed through [`build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HistogramMethod {
    /// Single global average (1 word).
    Naive,
    /// Equal-width buckets (2 words/bucket).
    EquiWidth,
    /// Mass-balanced buckets (2 words/bucket).
    EquiDepth,
    /// Boundaries at the largest adjacent differences (2 words/bucket).
    MaxDiff,
    /// Classical point-query V-optimal histogram (2 words/bucket).
    VOptUniform,
    /// The paper's POINT-OPT: V-optimal with range-inclusion weights
    /// (2 words/bucket).
    PointOpt,
    /// The paper's A0 heuristic (2 words/bucket).
    A0,
    /// Range-optimal SAP0 (3 words/bucket).
    Sap0,
    /// Range-optimal SAP1 (5 words/bucket).
    Sap1,
    /// Range-optimal OPT-A, unrounded answering (2 words/bucket).
    OptA,
    /// Range-optimal OPT-A with the paper's integral answering
    /// (2 words/bucket).
    OptAIntegral,
    /// OPT-A-ROUNDED with approximation parameter ε (2 words/bucket).
    OptARounded {
        /// Target approximation parameter.
        eps: f64,
    },
    /// OPT-A boundaries with §5 re-optimized values (2 words/bucket).
    OptAReopt,
    /// A0 boundaries with §5 re-optimized values (2 words/bucket).
    A0Reopt,
    /// OPT-A boundaries with per-bucket min/max for certified error
    /// intervals (4 words/bucket; extension).
    BoundedOptA,
}

impl HistogramMethod {
    /// Storage accounting: words consumed per bucket (paper's convention).
    pub fn words_per_bucket(&self) -> usize {
        match self {
            HistogramMethod::Naive => 1,
            HistogramMethod::Sap0 => 3,
            HistogramMethod::BoundedOptA => 4,
            HistogramMethod::Sap1 => 5,
            _ => 2,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            HistogramMethod::Naive => "NAIVE",
            HistogramMethod::EquiWidth => "EQUI-WIDTH",
            HistogramMethod::EquiDepth => "EQUI-DEPTH",
            HistogramMethod::MaxDiff => "MAX-DIFF",
            HistogramMethod::VOptUniform => "V-OPT",
            HistogramMethod::PointOpt => "POINT-OPT",
            HistogramMethod::A0 => "A0",
            HistogramMethod::Sap0 => "SAP0",
            HistogramMethod::Sap1 => "SAP1",
            HistogramMethod::OptA => "OPT-A",
            HistogramMethod::OptAIntegral => "OPT-A(int)",
            HistogramMethod::OptARounded { .. } => "OPT-A-ROUNDED",
            HistogramMethod::OptAReopt => "OPT-A-reopt",
            HistogramMethod::A0Reopt => "A0-reopt",
            HistogramMethod::BoundedOptA => "BOUNDED",
        }
    }

    /// Bucket count affordable within `budget_words`, clamped to `[1, n]`.
    pub fn buckets_for_budget(&self, budget_words: usize, n: usize) -> Result<usize> {
        let wpb = self.words_per_bucket();
        if budget_words < wpb {
            return Err(SynopticError::BudgetTooSmall {
                words: budget_words,
                minimum: wpb,
            });
        }
        Ok((budget_words / wpb).clamp(1, n))
    }
}

/// Builds the requested method within `budget_words` of storage.
pub fn build(
    method: HistogramMethod,
    values: &[i64],
    ps: &PrefixSums,
    budget_words: usize,
) -> Result<Box<dyn RangeEstimator>> {
    let n = ps.n();
    let b = method.buckets_for_budget(budget_words, n)?;
    Ok(match method {
        HistogramMethod::Naive => Box::new(NaiveEstimator::new(ps)),
        HistogramMethod::EquiWidth => Box::new(build_equi_width(ps, b)?),
        HistogramMethod::EquiDepth => Box::new(build_equi_depth(ps, b)?),
        HistogramMethod::MaxDiff => Box::new(build_max_diff(values, ps, b)?),
        HistogramMethod::VOptUniform => {
            Box::new(build_point_opt(values, ps, b, PointWeighting::Uniform)?)
        }
        HistogramMethod::PointOpt => Box::new(build_point_opt(
            values,
            ps,
            b,
            PointWeighting::RangeInclusion,
        )?),
        HistogramMethod::A0 => Box::new(build_a0(ps, b)?),
        HistogramMethod::Sap0 => Box::new(build_sap0(ps, b)?),
        HistogramMethod::Sap1 => Box::new(build_sap1(ps, b)?),
        HistogramMethod::OptA => {
            Box::new(build_opt_a(ps, &OptAConfig::exact(b, RoundingMode::None))?.histogram)
        }
        HistogramMethod::OptAIntegral => {
            Box::new(build_opt_a(ps, &OptAConfig::exact(b, RoundingMode::NearestInt))?.histogram)
        }
        HistogramMethod::OptARounded { eps } => {
            Box::new(build_opt_a_rounded_eps(ps, values, b, eps)?.histogram)
        }
        HistogramMethod::OptAReopt => {
            let base = build_opt_a(ps, &OptAConfig::exact(b, RoundingMode::None))?;
            Box::new(reoptimize(base.histogram.bucketing(), ps, "OPT-A")?.histogram)
        }
        HistogramMethod::A0Reopt => {
            let base = build_a0(ps, b)?;
            Box::new(reoptimize(base.bucketing(), ps, "A0")?.histogram)
        }
        HistogramMethod::BoundedOptA => {
            let base = build_opt_a(ps, &OptAConfig::exact(b, RoundingMode::None))?;
            Box::new(synoptic_core::BoundedHistogram::build(
                base.histogram.bucketing().clone(),
                values,
                ps,
            )?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::sse_brute;

    fn all_methods() -> Vec<HistogramMethod> {
        vec![
            HistogramMethod::Naive,
            HistogramMethod::EquiWidth,
            HistogramMethod::EquiDepth,
            HistogramMethod::MaxDiff,
            HistogramMethod::VOptUniform,
            HistogramMethod::PointOpt,
            HistogramMethod::A0,
            HistogramMethod::Sap0,
            HistogramMethod::Sap1,
            HistogramMethod::OptA,
            HistogramMethod::OptAIntegral,
            HistogramMethod::OptARounded { eps: 0.25 },
            HistogramMethod::OptAReopt,
            HistogramMethod::A0Reopt,
            HistogramMethod::BoundedOptA,
        ]
    }

    #[test]
    fn every_method_builds_within_budget() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1, 7, 7, 3, 9];
        let ps = PrefixSums::from_values(&vals);
        for m in all_methods() {
            let est = build(m, &vals, &ps, 12).unwrap();
            assert!(
                est.storage_words() <= 12 || matches!(m, HistogramMethod::Naive),
                "{} used {} words",
                m.name(),
                est.storage_words()
            );
            let sse = sse_brute(&est, &ps);
            assert!(sse.is_finite() && sse >= 0.0, "{}", m.name());
        }
    }

    #[test]
    fn budget_accounting_matches_words_per_bucket() {
        assert_eq!(
            HistogramMethod::Sap0.buckets_for_budget(12, 100).unwrap(),
            4
        );
        assert_eq!(
            HistogramMethod::Sap1.buckets_for_budget(12, 100).unwrap(),
            2
        );
        assert_eq!(
            HistogramMethod::OptA.buckets_for_budget(12, 100).unwrap(),
            6
        );
        assert_eq!(HistogramMethod::OptA.buckets_for_budget(12, 4).unwrap(), 4);
        assert!(HistogramMethod::Sap1.buckets_for_budget(4, 100).is_err());
    }

    #[test]
    fn optimal_methods_dominate_naive() {
        let vals = vec![40i64, 1, 2, 1, 0, 0, 33, 35, 2, 1, 1, 0, 28, 3, 1, 2];
        let ps = PrefixSums::from_values(&vals);
        let naive = sse_brute(&build(HistogramMethod::Naive, &vals, &ps, 2).unwrap(), &ps);
        for m in [
            HistogramMethod::OptA,
            HistogramMethod::Sap0,
            HistogramMethod::Sap1,
            HistogramMethod::OptAReopt,
        ] {
            let sse = sse_brute(&build(m, &vals, &ps, 12).unwrap(), &ps);
            assert!(
                sse < naive,
                "{} at 12 words ({sse}) should beat NAIVE ({naive})",
                m.name()
            );
        }
    }

    #[test]
    fn reopt_never_worse_than_its_base() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1];
        let ps = PrefixSums::from_values(&vals);
        let base = sse_brute(&build(HistogramMethod::OptA, &vals, &ps, 8).unwrap(), &ps);
        let re = sse_brute(
            &build(HistogramMethod::OptAReopt, &vals, &ps, 8).unwrap(),
            &ps,
        );
        assert!(re <= base + 1e-6, "reopt {re} vs base {base}");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(HistogramMethod::OptA.name(), "OPT-A");
        assert_eq!(
            HistogramMethod::OptARounded { eps: 0.1 }.name(),
            "OPT-A-ROUNDED"
        );
    }
}
