//! A unified, budget-aware construction facade.
//!
//! Experiments compare methods at equal **storage budgets** (machine words),
//! not equal bucket counts, because the representations store different
//! numbers of values per bucket (paper §4, Figure 1's x-axis). This module
//! maps `(method, budget)` to a concrete construction with
//! `B = ⌊budget / words_per_bucket⌋` buckets.

use std::time::{Duration, Instant};

use synoptic_core::{
    Budget, BuildAttempt, BuildOutcome, CancelToken, NaiveEstimator, PrefixSums, RangeEstimator,
    Result, RoundingMode, SynopticError,
};

use crate::a0::build_a0_with_budget;
use crate::heuristics::{build_equi_depth, build_equi_width, build_max_diff};
use crate::opta::{build_opt_a_with_budget, OptAConfig};
use crate::opta_rounded::build_opt_a_rounded_eps_with_budget;
use crate::reopt::reoptimize_with_budget;
use crate::sap0::build_sap0_with_budget;
use crate::sap1::build_sap1_with_budget;
use crate::vopt::{build_point_opt_with_budget, PointWeighting};

/// The histogram families exposed through [`build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HistogramMethod {
    /// Single global average (1 word).
    Naive,
    /// Equal-width buckets (2 words/bucket).
    EquiWidth,
    /// Mass-balanced buckets (2 words/bucket).
    EquiDepth,
    /// Boundaries at the largest adjacent differences (2 words/bucket).
    MaxDiff,
    /// Classical point-query V-optimal histogram (2 words/bucket).
    VOptUniform,
    /// The paper's POINT-OPT: V-optimal with range-inclusion weights
    /// (2 words/bucket).
    PointOpt,
    /// The paper's A0 heuristic (2 words/bucket).
    A0,
    /// Range-optimal SAP0 (3 words/bucket).
    Sap0,
    /// Range-optimal SAP1 (5 words/bucket).
    Sap1,
    /// Range-optimal OPT-A, unrounded answering (2 words/bucket).
    OptA,
    /// Range-optimal OPT-A with the paper's integral answering
    /// (2 words/bucket).
    OptAIntegral,
    /// OPT-A-ROUNDED with approximation parameter ε (2 words/bucket).
    OptARounded {
        /// Target approximation parameter.
        eps: f64,
    },
    /// OPT-A boundaries with §5 re-optimized values (2 words/bucket).
    OptAReopt,
    /// A0 boundaries with §5 re-optimized values (2 words/bucket).
    A0Reopt,
    /// OPT-A boundaries with per-bucket min/max for certified error
    /// intervals (4 words/bucket; extension).
    BoundedOptA,
}

impl HistogramMethod {
    /// Storage accounting: words consumed per bucket (paper's convention).
    pub fn words_per_bucket(&self) -> usize {
        match self {
            HistogramMethod::Naive => 1,
            HistogramMethod::Sap0 => 3,
            HistogramMethod::BoundedOptA => 4,
            HistogramMethod::Sap1 => 5,
            _ => 2,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            HistogramMethod::Naive => "NAIVE",
            HistogramMethod::EquiWidth => "EQUI-WIDTH",
            HistogramMethod::EquiDepth => "EQUI-DEPTH",
            HistogramMethod::MaxDiff => "MAX-DIFF",
            HistogramMethod::VOptUniform => "V-OPT",
            HistogramMethod::PointOpt => "POINT-OPT",
            HistogramMethod::A0 => "A0",
            HistogramMethod::Sap0 => "SAP0",
            HistogramMethod::Sap1 => "SAP1",
            HistogramMethod::OptA => "OPT-A",
            HistogramMethod::OptAIntegral => "OPT-A(int)",
            HistogramMethod::OptARounded { .. } => "OPT-A-ROUNDED",
            HistogramMethod::OptAReopt => "OPT-A-reopt",
            HistogramMethod::A0Reopt => "A0-reopt",
            HistogramMethod::BoundedOptA => "BOUNDED",
        }
    }

    /// Bucket count affordable within `budget_words`, clamped to `[1, n]`.
    pub fn buckets_for_budget(&self, budget_words: usize, n: usize) -> Result<usize> {
        let wpb = self.words_per_bucket();
        if budget_words < wpb {
            return Err(SynopticError::BudgetTooSmall {
                words: budget_words,
                minimum: wpb,
            });
        }
        Ok((budget_words / wpb).clamp(1, n))
    }
}

/// Builds the requested method within `budget_words` of storage.
pub fn build(
    method: HistogramMethod,
    values: &[i64],
    ps: &PrefixSums,
    budget_words: usize,
) -> Result<Box<dyn RangeEstimator>> {
    build_with_budget(method, values, ps, budget_words, &Budget::unlimited())
}

/// [`build`] under execution control: every DP inside the requested method
/// charges `budget` at its checkpoints. Bit-identical to [`build`] with
/// [`Budget::unlimited`]; aborts with the budget's error otherwise.
pub fn build_with_budget(
    method: HistogramMethod,
    values: &[i64],
    ps: &PrefixSums,
    budget_words: usize,
    budget: &Budget,
) -> Result<Box<dyn RangeEstimator>> {
    let n = ps.n();
    let b = method.buckets_for_budget(budget_words, n)?;
    Ok(match method {
        HistogramMethod::Naive => {
            budget.check()?;
            Box::new(NaiveEstimator::new(ps))
        }
        HistogramMethod::EquiWidth => {
            budget.charge(n as u64)?;
            Box::new(build_equi_width(ps, b)?)
        }
        HistogramMethod::EquiDepth => {
            budget.charge(n as u64)?;
            Box::new(build_equi_depth(ps, b)?)
        }
        HistogramMethod::MaxDiff => {
            budget.charge(n as u64)?;
            Box::new(build_max_diff(values, ps, b)?)
        }
        HistogramMethod::VOptUniform => Box::new(build_point_opt_with_budget(
            values,
            ps,
            b,
            PointWeighting::Uniform,
            budget,
        )?),
        HistogramMethod::PointOpt => Box::new(build_point_opt_with_budget(
            values,
            ps,
            b,
            PointWeighting::RangeInclusion,
            budget,
        )?),
        HistogramMethod::A0 => Box::new(build_a0_with_budget(ps, b, budget)?),
        HistogramMethod::Sap0 => Box::new(build_sap0_with_budget(ps, b, budget)?),
        HistogramMethod::Sap1 => Box::new(build_sap1_with_budget(ps, b, budget)?),
        HistogramMethod::OptA => Box::new(
            build_opt_a_with_budget(ps, &OptAConfig::exact(b, RoundingMode::None), budget)?
                .histogram,
        ),
        HistogramMethod::OptAIntegral => Box::new(
            build_opt_a_with_budget(ps, &OptAConfig::exact(b, RoundingMode::NearestInt), budget)?
                .histogram,
        ),
        HistogramMethod::OptARounded { eps } => {
            Box::new(build_opt_a_rounded_eps_with_budget(ps, values, b, eps, budget)?.histogram)
        }
        HistogramMethod::OptAReopt => {
            let base =
                build_opt_a_with_budget(ps, &OptAConfig::exact(b, RoundingMode::None), budget)?;
            Box::new(
                reoptimize_with_budget(base.histogram.bucketing(), ps, "OPT-A", budget)?.histogram,
            )
        }
        HistogramMethod::A0Reopt => {
            let base = build_a0_with_budget(ps, b, budget)?;
            Box::new(reoptimize_with_budget(base.bucketing(), ps, "A0", budget)?.histogram)
        }
        HistogramMethod::BoundedOptA => {
            let base =
                build_opt_a_with_budget(ps, &OptAConfig::exact(b, RoundingMode::None), budget)?;
            budget.charge(n as u64)?; // min/max scan
            Box::new(synoptic_core::BoundedHistogram::build(
                base.histogram.bucketing().clone(),
                values,
                ps,
            )?)
        }
    })
}

/// Execution-control parameters for an anytime build: constraints applied
/// *per ladder rung* (each attempt gets a fresh allowance), plus a shared
/// cancellation token that aborts the whole ladder.
#[derive(Debug, Clone, Default)]
pub struct AnytimeParams {
    /// Wall-clock allowance per attempt. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// DP-cell allowance per attempt. `None` = no cap.
    pub max_cells: Option<u64>,
    /// Cooperative cancellation, observed at every checkpoint of every
    /// rung. Cancellation *propagates* — the ladder never substitutes a
    /// weaker synopsis for an explicit abort.
    pub cancel: Option<CancelToken>,
}

impl AnytimeParams {
    /// No constraints: [`build_anytime`] behaves exactly like [`build`].
    pub fn unconstrained() -> Self {
        Self::default()
    }

    /// Sets the per-attempt wall-clock allowance.
    #[must_use]
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Sets the per-attempt DP-cell allowance.
    #[must_use]
    pub fn with_max_cells(mut self, max_cells: u64) -> Self {
        self.max_cells = Some(max_cells);
        self
    }

    /// Attaches a cancellation token shared by every rung.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether any constraint is configured.
    pub fn is_unconstrained(&self) -> bool {
        self.deadline.is_none() && self.max_cells.is_none() && self.cancel.is_none()
    }

    fn budget_for_attempt(&self, enforce: bool) -> Budget {
        let mut budget = Budget::unlimited();
        if enforce {
            if let Some(d) = self.deadline {
                budget = budget.with_deadline(d);
            }
            if let Some(c) = self.max_cells {
                budget = budget.with_max_cells(c);
            }
        }
        if let Some(token) = &self.cancel {
            budget = budget.with_cancel_token(token.clone());
        }
        budget
    }
}

/// A synopsis together with its construction provenance.
pub struct AnytimeResult {
    /// The best synopsis the ladder completed.
    pub estimator: Box<dyn RangeEstimator>,
    /// Which rung produced it, what was abandoned, and what it cost.
    pub outcome: BuildOutcome,
}

/// The quality ladder for a requested method: the method itself first, then
/// progressively cheaper constructions, ending in the greedy/naive safety
/// net. The boolean marks rungs where the per-attempt constraints are
/// *enforced*; the terminal greedy/naive rungs run them off (they are
/// `O(n log n)` / `O(1)`), so the ladder always bottoms out with a usable
/// synopsis instead of failing on an already-spent deadline.
pub fn fallback_ladder(method: HistogramMethod) -> Vec<(HistogramMethod, bool)> {
    let mut ladder: Vec<(HistogramMethod, bool)> = vec![(method, true)];
    match method {
        HistogramMethod::OptA
        | HistogramMethod::OptAIntegral
        | HistogramMethod::OptAReopt
        | HistogramMethod::BoundedOptA => {
            ladder.push((HistogramMethod::OptARounded { eps: 0.25 }, true));
            ladder.push((HistogramMethod::Sap0, true));
            ladder.push((HistogramMethod::A0, true));
        }
        HistogramMethod::OptARounded { .. } => {
            ladder.push((HistogramMethod::Sap0, true));
            ladder.push((HistogramMethod::A0, true));
        }
        HistogramMethod::Sap1 => {
            ladder.push((HistogramMethod::Sap0, true));
        }
        HistogramMethod::Sap0
        | HistogramMethod::A0
        | HistogramMethod::A0Reopt
        | HistogramMethod::VOptUniform
        | HistogramMethod::PointOpt => {}
        HistogramMethod::EquiWidth
        | HistogramMethod::EquiDepth
        | HistogramMethod::MaxDiff
        | HistogramMethod::Naive => {
            // Already at (or below) the greedy tier; fall straight to naive.
        }
    }
    if method != HistogramMethod::EquiDepth && method != HistogramMethod::Naive {
        ladder.push((HistogramMethod::EquiDepth, false));
    }
    // Always terminate with an unconstrained naive rung (even when naive
    // itself was requested): O(1) work, so the ladder can guarantee a
    // usable synopsis under any deadline short of explicit cancellation.
    ladder.push((HistogramMethod::Naive, false));
    ladder
}

/// Builds `method` under the paper's anytime quality ladder
/// (OPT-A → OPT-A-ROUNDED → SAP0/A0 → greedy → naive).
///
/// Semantics:
/// * **Unconstrained** ([`AnytimeParams::unconstrained`]): bit-identical to
///   [`build`] — same code path, never degrades, `tier = 0`.
/// * **Deadline / cell cap exhausted** on a rung: the attempt is recorded
///   in the returned [`BuildOutcome`] and the next (cheaper) rung runs with
///   a fresh allowance. The terminal greedy/naive rungs run without
///   resource constraints, so the ladder always returns *some* synopsis.
/// * **Cancellation**: propagates immediately as
///   [`SynopticError::Cancelled`] — explicit user intent is never papered
///   over with a weaker synopsis.
/// * Non-budget build errors on a rung (e.g. a storage budget too small
///   for that representation's words-per-bucket) also descend the ladder,
///   because a cheaper representation may fit; if even the naive rung
///   fails, its error propagates.
pub fn build_anytime(
    method: HistogramMethod,
    values: &[i64],
    ps: &PrefixSums,
    budget_words: usize,
    params: &AnytimeParams,
) -> Result<AnytimeResult> {
    let started = Instant::now();
    let mut attempts: Vec<BuildAttempt> = Vec::new();
    let mut total_cells: u64 = 0;
    let ladder = fallback_ladder(method);
    let last = ladder.len() - 1;
    for (tier, &(rung, enforce)) in ladder.iter().enumerate() {
        let budget = params.budget_for_attempt(enforce);
        let attempt_started = Instant::now();
        match build_with_budget(rung, values, ps, budget_words, &budget) {
            Ok(estimator) => {
                total_cells = total_cells.saturating_add(budget.cells_used());
                let outcome = BuildOutcome {
                    requested: method.name().to_string(),
                    used: rung.name().to_string(),
                    tier,
                    attempts,
                    elapsed_ms: started.elapsed().as_millis() as u64,
                    cells: total_cells,
                };
                return Ok(AnytimeResult { estimator, outcome });
            }
            Err(SynopticError::Cancelled) => return Err(SynopticError::Cancelled),
            Err(err) if tier < last => {
                total_cells = total_cells.saturating_add(budget.cells_used());
                attempts.push(BuildAttempt {
                    method: rung.name().to_string(),
                    error: err.to_string(),
                    elapsed_ms: attempt_started.elapsed().as_millis() as u64,
                    cells: budget.cells_used(),
                });
            }
            Err(err) => return Err(err),
        }
    }
    unreachable!("ladder always has at least one rung")
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::sse_brute;

    fn all_methods() -> Vec<HistogramMethod> {
        vec![
            HistogramMethod::Naive,
            HistogramMethod::EquiWidth,
            HistogramMethod::EquiDepth,
            HistogramMethod::MaxDiff,
            HistogramMethod::VOptUniform,
            HistogramMethod::PointOpt,
            HistogramMethod::A0,
            HistogramMethod::Sap0,
            HistogramMethod::Sap1,
            HistogramMethod::OptA,
            HistogramMethod::OptAIntegral,
            HistogramMethod::OptARounded { eps: 0.25 },
            HistogramMethod::OptAReopt,
            HistogramMethod::A0Reopt,
            HistogramMethod::BoundedOptA,
        ]
    }

    #[test]
    fn every_method_builds_within_budget() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1, 7, 7, 3, 9];
        let ps = PrefixSums::from_values(&vals);
        for m in all_methods() {
            let est = build(m, &vals, &ps, 12).unwrap();
            assert!(
                est.storage_words() <= 12 || matches!(m, HistogramMethod::Naive),
                "{} used {} words",
                m.name(),
                est.storage_words()
            );
            let sse = sse_brute(&est, &ps);
            assert!(sse.is_finite() && sse >= 0.0, "{}", m.name());
        }
    }

    #[test]
    fn budget_accounting_matches_words_per_bucket() {
        assert_eq!(
            HistogramMethod::Sap0.buckets_for_budget(12, 100).unwrap(),
            4
        );
        assert_eq!(
            HistogramMethod::Sap1.buckets_for_budget(12, 100).unwrap(),
            2
        );
        assert_eq!(
            HistogramMethod::OptA.buckets_for_budget(12, 100).unwrap(),
            6
        );
        assert_eq!(HistogramMethod::OptA.buckets_for_budget(12, 4).unwrap(), 4);
        assert!(HistogramMethod::Sap1.buckets_for_budget(4, 100).is_err());
    }

    #[test]
    fn optimal_methods_dominate_naive() {
        let vals = vec![40i64, 1, 2, 1, 0, 0, 33, 35, 2, 1, 1, 0, 28, 3, 1, 2];
        let ps = PrefixSums::from_values(&vals);
        let naive = sse_brute(&build(HistogramMethod::Naive, &vals, &ps, 2).unwrap(), &ps);
        for m in [
            HistogramMethod::OptA,
            HistogramMethod::Sap0,
            HistogramMethod::Sap1,
            HistogramMethod::OptAReopt,
        ] {
            let sse = sse_brute(&build(m, &vals, &ps, 12).unwrap(), &ps);
            assert!(
                sse < naive,
                "{} at 12 words ({sse}) should beat NAIVE ({naive})",
                m.name()
            );
        }
    }

    #[test]
    fn reopt_never_worse_than_its_base() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1];
        let ps = PrefixSums::from_values(&vals);
        let base = sse_brute(&build(HistogramMethod::OptA, &vals, &ps, 8).unwrap(), &ps);
        let re = sse_brute(
            &build(HistogramMethod::OptAReopt, &vals, &ps, 8).unwrap(),
            &ps,
        );
        assert!(re <= base + 1e-6, "reopt {re} vs base {base}");
    }

    #[test]
    fn anytime_unconstrained_is_bit_identical_to_build() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1, 7, 7, 3, 9];
        let ps = PrefixSums::from_values(&vals);
        for m in all_methods() {
            let direct = build(m, &vals, &ps, 12).unwrap();
            let anytime =
                build_anytime(m, &vals, &ps, 12, &AnytimeParams::unconstrained()).unwrap();
            assert_eq!(anytime.outcome.tier, 0, "{}", m.name());
            assert!(!anytime.outcome.is_degraded(), "{}", m.name());
            assert_eq!(anytime.outcome.used, m.name());
            assert_eq!(anytime.outcome.requested, m.name());
            assert!(anytime.outcome.attempts.is_empty());
            // Bit-identical estimates on every range.
            for q in synoptic_core::RangeQuery::all(vals.len()) {
                assert_eq!(
                    direct.estimate(q).to_bits(),
                    anytime.estimator.estimate(q).to_bits(),
                    "{} at {q:?}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn anytime_tiny_cell_cap_descends_the_ladder_with_provenance() {
        let vals: Vec<i64> = (0..48).map(|i| (i * i * 31 + 7 * i) % 97).collect();
        let ps = PrefixSums::from_values(&vals);
        // A cap that kills every DP rung but spares nothing: the ladder must
        // bottom out at the unconstrained greedy tier.
        let params = AnytimeParams::unconstrained().with_max_cells(3);
        let r = build_anytime(HistogramMethod::OptA, &vals, &ps, 12, &params).unwrap();
        assert!(r.outcome.is_degraded());
        assert_eq!(r.outcome.requested, "OPT-A");
        assert!(
            r.outcome.used == "EQUI-DEPTH" || r.outcome.used == "NAIVE",
            "used {}",
            r.outcome.used
        );
        assert_eq!(r.outcome.attempts.len(), r.outcome.tier);
        assert_eq!(r.outcome.attempts[0].method, "OPT-A");
        assert!(r.outcome.attempts[0].error.contains("cell budget"));
        // The synopsis is usable.
        let sse = sse_brute(&r.estimator, &ps);
        assert!(sse.is_finite() && sse >= 0.0);
    }

    #[test]
    fn anytime_generous_cap_stops_at_an_intermediate_rung() {
        let vals: Vec<i64> = (0..48)
            .map(|i| (i * 13 + (i % 5) * 40) as i64 % 83)
            .collect();
        let ps = PrefixSums::from_values(&vals);
        // Measure what each rung needs, then pick a cap between SAP0's need
        // and OPT-A's need so the ladder stops exactly at SAP0.
        let opta_cost = {
            let b = Budget::unlimited();
            build_with_budget(HistogramMethod::OptA, &vals, &ps, 12, &b).unwrap();
            b.cells_used()
        };
        let sap0_cost = {
            let b = Budget::unlimited();
            build_with_budget(HistogramMethod::Sap0, &vals, &ps, 12, &b).unwrap();
            b.cells_used()
        };
        let rounded_cost = {
            let b = Budget::unlimited();
            build_with_budget(
                HistogramMethod::OptARounded { eps: 0.25 },
                &vals,
                &ps,
                12,
                &b,
            )
            .unwrap();
            b.cells_used()
        };
        assert!(sap0_cost < opta_cost, "{sap0_cost} vs {opta_cost}");
        if sap0_cost < rounded_cost && rounded_cost.min(opta_cost) > sap0_cost {
            let cap = sap0_cost.max(1);
            let params = AnytimeParams::unconstrained().with_max_cells(cap);
            let r = build_anytime(HistogramMethod::OptA, &vals, &ps, 12, &params).unwrap();
            assert!(r.outcome.is_degraded());
            assert_eq!(r.outcome.used, "SAP0", "outcome {:?}", r.outcome);
        }
    }

    #[test]
    fn anytime_cancellation_propagates_instead_of_degrading() {
        use synoptic_core::CancelToken;
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let ps = PrefixSums::from_values(&vals);
        let token = CancelToken::new();
        token.cancel();
        let params = AnytimeParams::unconstrained().with_cancel_token(token);
        match build_anytime(HistogramMethod::OptA, &vals, &ps, 12, &params) {
            Err(SynopticError::Cancelled) => {}
            other => panic!("expected Cancelled, got {:?}", other.map(|r| r.outcome)),
        }
    }

    #[test]
    fn ladder_shapes_are_sensible() {
        let l = fallback_ladder(HistogramMethod::OptA);
        let names: Vec<&str> = l.iter().map(|(m, _)| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "OPT-A",
                "OPT-A-ROUNDED",
                "SAP0",
                "A0",
                "EQUI-DEPTH",
                "NAIVE"
            ]
        );
        // Constraints enforced on DP rungs, lifted on the safety net.
        assert!(l[..4].iter().all(|&(_, e)| e));
        assert!(l[4..].iter().all(|&(_, e)| !e));
        // Every ladder terminates in an unconstrained naive rung.
        for m in all_methods() {
            let l = fallback_ladder(m);
            let (last, enforce) = *l.last().unwrap();
            assert_eq!(last.name(), "NAIVE", "{}", m.name());
            assert!(!enforce);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(HistogramMethod::OptA.name(), "OPT-A");
        assert_eq!(
            HistogramMethod::OptARounded { eps: 0.1 }.name(),
            "OPT-A-ROUNDED"
        );
    }
}
