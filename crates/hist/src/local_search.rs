//! Boundary local search — the "local search improvements" the paper's
//! experimental section applies on top of heuristic bucketings.
//!
//! Starting from any bucketing, repeatedly try shifting each interior
//! boundary left/right (with doubling step sizes) and keep any move that
//! lowers the supplied cost. Converges to a local optimum of the
//! boundary-move neighbourhood; with the exact SSE as cost this is a strong,
//! cheap post-pass for heuristics like equi-depth or max-diff.

use synoptic_core::{Bucketing, Budget, Result};

/// Outcome of a local search run.
#[derive(Debug, Clone)]
pub struct LocalSearchResult {
    /// The locally optimal bucketing.
    pub bucketing: Bucketing,
    /// Its cost under the supplied objective.
    pub cost: f64,
    /// Number of improving moves accepted.
    pub moves: usize,
    /// Number of full passes over the boundaries.
    pub passes: usize,
}

/// Hill-climbs bucket boundaries under `cost`. `max_passes` bounds the
/// number of full sweeps (each sweep tries every boundary at step sizes
/// 1, 2, 4, … while they fit).
pub fn local_search<F>(start: Bucketing, cost: F, max_passes: usize) -> Result<LocalSearchResult>
where
    F: FnMut(&Bucketing) -> f64,
{
    local_search_with_budget(start, cost, max_passes, &Budget::unlimited())
}

/// [`local_search`] under execution control: one checkpoint per boundary
/// visited (each checkpoint covers the candidate evaluations at that
/// boundary, charged as work units). Bit-identical with
/// [`Budget::unlimited`]; aborts with the budget's error otherwise.
pub fn local_search_with_budget<F>(
    start: Bucketing,
    mut cost: F,
    max_passes: usize,
    budget: &Budget,
) -> Result<LocalSearchResult>
where
    F: FnMut(&Bucketing) -> f64,
{
    let n = start.n();
    let mut starts = start.starts().to_vec();
    let mut best_cost = cost(&start);
    let mut moves = 0usize;
    let mut passes = 0usize;

    while passes < max_passes {
        passes += 1;
        let mut improved = false;
        // Interior boundaries are starts[1..]; starts[0] is pinned at 0.
        for bi in 1..starts.len() {
            // Each boundary visit evaluates O(log n) candidate shifts; charge
            // them as one checkpoint so cancellation lands between boundaries.
            budget.charge(n.max(1).ilog2() as u64 + 1)?;
            let lo = starts[bi - 1] + 1; // keep left neighbour non-empty
            let hi = if bi + 1 < starts.len() {
                starts[bi + 1] - 1
            } else {
                n - 1
            };
            let mut step = 1usize;
            loop {
                let mut candidates = Vec::with_capacity(2);
                if starts[bi] >= lo + step {
                    candidates.push(starts[bi] - step);
                }
                if starts[bi] + step <= hi {
                    candidates.push(starts[bi] + step);
                }
                if candidates.is_empty() {
                    break;
                }
                let mut accepted = false;
                for cand in candidates {
                    let old = starts[bi];
                    starts[bi] = cand;
                    let b = Bucketing::new(n, starts.clone())?;
                    let c = cost(&b);
                    if c < best_cost - 1e-12 {
                        best_cost = c;
                        moves += 1;
                        improved = true;
                        accepted = true;
                        break;
                    }
                    starts[bi] = old;
                }
                if accepted {
                    step = 1; // restart fine-grained around the new position
                } else {
                    step *= 2;
                }
                if step > n {
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(LocalSearchResult {
        bucketing: Bucketing::new(n, starts)?,
        cost: best_cost,
        moves,
        passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::sse_value_histogram;
    use synoptic_core::{PrefixSums, ValueHistogram};

    fn sse_cost<'a>(ps: &'a PrefixSums) -> impl FnMut(&Bucketing) -> f64 + 'a {
        move |b: &Bucketing| {
            let h = ValueHistogram::with_averages(b.clone(), ps, "c").unwrap();
            sse_value_histogram(h.xprefix(), ps)
        }
    }

    #[test]
    fn finds_the_obvious_step_boundary() {
        // Step data: optimum for B = 2 is a boundary at the step.
        let vals = vec![10i64, 10, 10, 10, 50, 50, 50, 50];
        let ps = PrefixSums::from_values(&vals);
        // Start from the worst 2-bucket split.
        let start = Bucketing::new(8, vec![0, 1]).unwrap();
        let r = local_search(start, sse_cost(&ps), 50).unwrap();
        assert_eq!(r.bucketing.starts(), &[0, 4], "moves={}", r.moves);
    }

    #[test]
    fn never_increases_cost() {
        let vals = vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let ps = PrefixSums::from_values(&vals);
        let start = Bucketing::new(10, vec![0, 3, 6]).unwrap();
        let mut cost = sse_cost(&ps);
        let before = cost(&start);
        let r = local_search(start, cost, 50).unwrap();
        assert!(r.cost <= before + 1e-12);
        assert!(r.passes >= 1);
    }

    #[test]
    fn already_optimal_input_is_a_fixed_point() {
        let vals = vec![10i64, 10, 50, 50];
        let ps = PrefixSums::from_values(&vals);
        let start = Bucketing::new(4, vec![0, 2]).unwrap();
        let r = local_search(start.clone(), sse_cost(&ps), 50).unwrap();
        assert_eq!(r.bucketing.starts(), start.starts());
        assert_eq!(r.moves, 0);
    }

    #[test]
    fn respects_pass_budget() {
        let vals: Vec<i64> = (0..20).map(|i| (i * i * 7) % 23).collect();
        let ps = PrefixSums::from_values(&vals);
        let start = Bucketing::new(20, vec![0, 1, 2, 3]).unwrap();
        let r = local_search(start, sse_cost(&ps), 1).unwrap();
        assert_eq!(r.passes, 1);
    }

    #[test]
    fn single_bucket_has_no_moves() {
        let vals = vec![1i64, 2, 3];
        let ps = PrefixSums::from_values(&vals);
        let start = Bucketing::single(3).unwrap();
        let r = local_search(start, sse_cost(&ps), 10).unwrap();
        assert_eq!(r.moves, 0);
        assert_eq!(r.bucketing.num_buckets(), 1);
    }
}
