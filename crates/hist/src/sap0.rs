//! Optimal SAP0 construction (paper Theorem 6).

use crate::dp::{optimal_bucketing, optimal_bucketing_with_budget};
use synoptic_core::window::WindowOracle;
use synoptic_core::{Budget, PrefixSums, Result, Sap0Histogram};

/// Bucket-additive SAP0 cost of a candidate bucket `[l, r]` (0-based) in a
/// domain of size `n`:
///
/// ```text
/// cost(l, r) = intra(l, r)
///            + Var_suffix(l, r) · (n − 1 − r)    // left endpoints here
///            + Var_prefix(l, r) · l              // right endpoints here
/// ```
///
/// By the Decomposition Lemma the cross terms vanish when the summary values
/// are the suffix/prefix means, so the total SSE is exactly the sum of these
/// per-bucket costs — which is what licenses the interval-partition DP.
pub fn sap0_bucket_cost(oracle: &WindowOracle, n: usize, l: usize, r: usize) -> f64 {
    oracle.intra_avg_sse(l, r)
        + oracle.suffix_var(l, r) * (n - 1 - r) as f64
        + oracle.prefix_var(l, r) * l as f64
}

/// Builds the SSE-optimal SAP0 histogram with at most `buckets` buckets in
/// `O(n²·buckets)` (Theorem 6). Both the boundaries and the summary values
/// are simultaneously optimal (Lemma 5).
pub fn build_sap0(ps: &PrefixSums, buckets: usize) -> Result<Sap0Histogram> {
    let oracle = WindowOracle::new(ps);
    let n = ps.n();
    let sol = optimal_bucketing(n, buckets, |l, r| sap0_bucket_cost(&oracle, n, l, r))?;
    Sap0Histogram::optimal_values(sol.bucketing, ps)
}

/// [`build_sap0`] under execution control; bit-identical with
/// [`Budget::unlimited`], aborts with the budget's error otherwise.
pub fn build_sap0_with_budget(
    ps: &PrefixSums,
    buckets: usize,
    budget: &Budget,
) -> Result<Sap0Histogram> {
    let oracle = WindowOracle::new(ps);
    let n = ps.n();
    let sol = optimal_bucketing_with_budget(
        n,
        buckets,
        |l, r| sap0_bucket_cost(&oracle, n, l, r),
        budget,
    )?;
    Sap0Histogram::optimal_values(sol.bucketing, ps)
}

/// Builds SAP0 and also returns the DP objective (= the exact SSE).
pub fn build_sap0_with_sse(ps: &PrefixSums, buckets: usize) -> Result<(Sap0Histogram, f64)> {
    let oracle = WindowOracle::new(ps);
    let n = ps.n();
    let sol = optimal_bucketing(n, buckets, |l, r| sap0_bucket_cost(&oracle, n, l, r))?;
    let h = Sap0Histogram::optimal_values(sol.bucketing, ps)?;
    Ok((h, sol.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::sse_brute;
    use synoptic_core::{Bucketing, PrefixSums};

    fn all_bucketings(n: usize, max_b: usize) -> Vec<Bucketing> {
        // All subsets of interior boundaries with ≤ max_b buckets.
        let mut out = Vec::new();
        let interior = n - 1;
        for mask in 0u32..(1 << interior) {
            if (mask.count_ones() as usize) + 1 > max_b {
                continue;
            }
            let mut starts = vec![0usize];
            for i in 0..interior {
                if mask >> i & 1 == 1 {
                    starts.push(i + 1);
                }
            }
            out.push(Bucketing::new(n, starts).unwrap());
        }
        out
    }

    #[test]
    fn dp_objective_equals_true_sse() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let ps = PrefixSums::from_values(&vals);
        for b in 1..=5 {
            let (h, obj) = build_sap0_with_sse(&ps, b).unwrap();
            let brute = sse_brute(&h, &ps);
            assert!(
                (obj - brute).abs() <= 1e-6 * (1.0 + brute),
                "b={b}: dp={obj} brute={brute}"
            );
        }
    }

    #[test]
    fn dp_is_globally_optimal_over_all_bucketings() {
        let vals = vec![5i64, 1, 8, 8, 2, 9, 0, 3];
        let ps = PrefixSums::from_values(&vals);
        let n = vals.len();
        for b in 1..=4 {
            let (h, _) = build_sap0_with_sse(&ps, b).unwrap();
            let got = sse_brute(&h, &ps);
            // Exhaustive check: every bucketing with optimal values.
            let mut best = f64::INFINITY;
            for bk in all_bucketings(n, b) {
                let cand = Sap0Histogram::optimal_values(bk, &ps).unwrap();
                best = best.min(sse_brute(&cand, &ps));
            }
            assert!(
                got <= best + 1e-6,
                "b={b}: DP found {got}, exhaustive found {best}"
            );
        }
    }

    #[test]
    fn more_buckets_never_hurt() {
        let vals = vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8];
        let ps = PrefixSums::from_values(&vals);
        let mut prev = f64::INFINITY;
        for b in 1..=8 {
            let (_, sse) = build_sap0_with_sse(&ps, b).unwrap();
            assert!(
                sse <= prev + 1e-9,
                "b={b}: SSE {sse} worse than b−1's {prev}"
            );
            prev = sse;
        }
    }

    #[test]
    fn n_buckets_is_not_necessarily_exact_for_sap0() {
        // Even with one bucket per point, SAP0's inter-bucket answers are
        // constant per bucket pair (exact here since each suffix/prefix is a
        // single value) ⇒ SSE = 0 with n singleton buckets.
        let vals = vec![4i64, 7, 2];
        let ps = PrefixSums::from_values(&vals);
        let (h, sse) = build_sap0_with_sse(&ps, 3).unwrap();
        assert!(sse < 1e-9);
        assert!(sse_brute(&h, &ps) < 1e-9);
    }
}
