//! Classical O(n log n) bucketing heuristics: equi-width, equi-depth,
//! max-diff. These are the cheap baselines database engines actually ship;
//! the paper's point is precisely that such heuristics (and even point-query
//! optimal histograms) can be far from range-optimal.

use synoptic_core::{Bucketing, PrefixSums, Result, SynopticError, ValueHistogram};

/// Equi-width histogram: buckets of (near-)equal index width, bucket
/// averages as values.
pub fn build_equi_width(ps: &PrefixSums, buckets: usize) -> Result<ValueHistogram> {
    let b = Bucketing::equi_width(ps.n(), buckets)?;
    ValueHistogram::with_averages(b, ps, "EQUI-WIDTH")
}

/// Equi-depth bucketing: boundaries at (approximate) quantiles of the mass,
/// so every bucket holds roughly `total/buckets` records. Requires
/// non-negative data.
pub fn equi_depth_bucketing(ps: &PrefixSums, buckets: usize) -> Result<Bucketing> {
    let n = ps.n();
    if buckets == 0 || buckets > n {
        return Err(SynopticError::InvalidBucketCount { buckets, n });
    }
    let total = ps.total();
    if total < 0 {
        return Err(SynopticError::InvalidParameter(
            "equi-depth requires non-negative total mass".into(),
        ));
    }
    let mut starts = vec![0usize];
    let mut next_start = 1usize;
    for k in 1..buckets {
        // Target mass for the k-th boundary.
        let target = total * k as i128 / buckets as i128;
        // First index whose prefix mass strictly exceeds the target, but
        // always advance to keep buckets non-empty and leave room for the
        // remaining ones.
        let mut idx = next_start;
        while idx < n - (buckets - k - 1) && ps.p(idx) < target {
            idx += 1;
        }
        let idx = idx.min(n - (buckets - k)).max(next_start);
        starts.push(idx);
        next_start = idx + 1;
    }
    Bucketing::new(n, starts)
}

/// Equi-depth histogram with bucket averages as values.
pub fn build_equi_depth(ps: &PrefixSums, buckets: usize) -> Result<ValueHistogram> {
    let b = equi_depth_bucketing(ps, buckets)?;
    ValueHistogram::with_averages(b, ps, "EQUI-DEPTH")
}

/// Max-diff bucketing: place the `B − 1` boundaries at the largest adjacent
/// differences `|A[i+1] − A[i]|` (Poosala et al.'s MaxDiff heuristic).
pub fn max_diff_bucketing(values: &[i64], buckets: usize) -> Result<Bucketing> {
    let n = values.len();
    if n == 0 {
        return Err(SynopticError::EmptyInput);
    }
    if buckets == 0 || buckets > n {
        return Err(SynopticError::InvalidBucketCount { buckets, n });
    }
    let mut diffs: Vec<(i64, usize)> = values
        .windows(2)
        .enumerate()
        .map(|(i, w)| ((w[1] - w[0]).abs(), i + 1))
        .collect();
    // Largest diffs first; ties broken by position for determinism.
    diffs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut starts: Vec<usize> = diffs.iter().take(buckets - 1).map(|&(_, i)| i).collect();
    starts.push(0);
    starts.sort_unstable();
    starts.dedup();
    Bucketing::new(n, starts)
}

/// Max-diff histogram with bucket averages as values.
pub fn build_max_diff(values: &[i64], ps: &PrefixSums, buckets: usize) -> Result<ValueHistogram> {
    let b = max_diff_bucketing(values, buckets)?;
    ValueHistogram::with_averages(b, ps, "MAX-DIFF")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_shapes() {
        let ps = PrefixSums::from_values(&[1; 10]);
        let h = build_equi_width(&ps, 3).unwrap();
        let b = h.bucketing();
        assert_eq!(b.num_buckets(), 3);
        let widths: Vec<_> = (0..3).map(|i| b.len(i)).collect();
        assert_eq!(widths.iter().sum::<usize>(), 10);
    }

    #[test]
    fn equi_depth_balances_mass() {
        // Mass concentrated at the front: equi-depth buckets must be narrow
        // there and wide in the tail.
        let vals = vec![100i64, 100, 100, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let ps = PrefixSums::from_values(&vals);
        let b = equi_depth_bucketing(&ps, 3).unwrap();
        assert_eq!(b.num_buckets(), 3);
        assert!(b.len(0) <= b.len(2), "starts={:?}", b.starts());
        // Every bucket non-empty, full coverage.
        let total: usize = (0..3).map(|i| b.len(i)).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn equi_depth_handles_all_zero_mass() {
        let ps = PrefixSums::from_values(&[0i64; 6]);
        let b = equi_depth_bucketing(&ps, 3).unwrap();
        assert_eq!(b.num_buckets(), 3);
    }

    #[test]
    fn equi_depth_extreme_bucket_counts() {
        let ps = PrefixSums::from_values(&[5i64, 5, 5, 5]);
        assert_eq!(equi_depth_bucketing(&ps, 1).unwrap().num_buckets(), 1);
        assert_eq!(equi_depth_bucketing(&ps, 4).unwrap().num_buckets(), 4);
        assert!(equi_depth_bucketing(&ps, 5).is_err());
    }

    #[test]
    fn max_diff_cuts_at_the_jumps() {
        let vals = vec![1i64, 1, 1, 50, 50, 50, 2, 2];
        let b = max_diff_bucketing(&vals, 3).unwrap();
        // Jumps at index 3 (49) and 6 (−48) are the two biggest.
        assert_eq!(b.starts(), &[0, 3, 6]);
    }

    #[test]
    fn max_diff_single_bucket() {
        let vals = vec![4i64, 1, 9];
        let b = max_diff_bucketing(&vals, 1).unwrap();
        assert_eq!(b.num_buckets(), 1);
    }

    #[test]
    fn heuristic_names() {
        use synoptic_core::RangeEstimator;
        let vals = vec![1i64, 5, 9, 2, 4, 4];
        let ps = PrefixSums::from_values(&vals);
        assert_eq!(
            build_equi_width(&ps, 2).unwrap().method_name(),
            "EQUI-WIDTH"
        );
        assert_eq!(
            build_equi_depth(&ps, 2).unwrap().method_name(),
            "EQUI-DEPTH"
        );
        assert_eq!(
            build_max_diff(&vals, &ps, 2).unwrap().method_name(),
            "MAX-DIFF"
        );
    }
}
