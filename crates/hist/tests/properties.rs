//! Property-based tests for the construction algorithms: the DPs are checked
//! against exhaustive enumeration and against each other on random inputs.

use proptest::prelude::*;
use synoptic_core::sse::{sse_brute, sse_value_histogram};
use synoptic_core::{
    OptAHistogram, PrefixSums, RangeEstimator, RoundingMode, Sap0Histogram, Sap1Histogram,
    ValueHistogram,
};
use synoptic_hist::exhaustive::exhaustive_optimal;
use synoptic_hist::opta::{build_opt_a, OptAConfig};
use synoptic_hist::opta_warmup::build_opt_a_warmup;
use synoptic_hist::reopt::reoptimize;
use synoptic_hist::sap0::build_sap0_with_sse;
use synoptic_hist::sap1::build_sap1_with_sse;

fn arb_small() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..60, 2..9)
}

fn arb_medium() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..150, 4..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn opta_unrounded_dp_is_globally_optimal((vals, b) in (arb_small(), 1usize..4)) {
        let n = vals.len();
        prop_assume!(b <= n);
        let ps = PrefixSums::from_values(&vals);
        let dp = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        let (_, best) = exhaustive_optimal(n, b, |bk| {
            let vh = ValueHistogram::with_averages(bk.clone(), &ps, "c").unwrap();
            sse_value_histogram(vh.xprefix(), &ps)
        }).unwrap();
        prop_assert!(dp.sse <= best + 1e-6 * (1.0 + best),
            "DP {} vs exhaustive {}", dp.sse, best);
    }

    #[test]
    fn opta_rounded_dp_is_globally_optimal((vals, b) in (arb_small(), 1usize..4)) {
        let n = vals.len();
        prop_assume!(b <= n);
        let ps = PrefixSums::from_values(&vals);
        let dp = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::NearestInt)).unwrap();
        let (_, best) = exhaustive_optimal(n, b, |bk| {
            let h = OptAHistogram::new(bk.clone(), &ps, RoundingMode::NearestInt).unwrap();
            sse_brute(&h, &ps)
        }).unwrap();
        prop_assert!(dp.sse <= best + 1e-6 * (1.0 + best),
            "DP {} vs exhaustive {}", dp.sse, best);
    }

    #[test]
    fn warmup_table_and_hull_dp_agree((vals, b) in (arb_small(), 1usize..4)) {
        let n = vals.len();
        prop_assume!(b <= n);
        let ps = PrefixSums::from_values(&vals);
        let w = build_opt_a_warmup(&ps, b).unwrap();
        let f = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::NearestInt)).unwrap();
        prop_assert!((w.sse - f.sse).abs() <= 1e-6 * (1.0 + f.sse),
            "warmup {} vs hull {}", w.sse, f.sse);
    }

    #[test]
    fn sap0_dp_is_globally_optimal((vals, b) in (arb_small(), 1usize..4)) {
        let n = vals.len();
        prop_assume!(b <= n);
        let ps = PrefixSums::from_values(&vals);
        let (h, _) = build_sap0_with_sse(&ps, b).unwrap();
        let got = sse_brute(&h, &ps);
        let (_, best) = exhaustive_optimal(n, b, |bk| {
            sse_brute(&Sap0Histogram::optimal_values(bk.clone(), &ps).unwrap(), &ps)
        }).unwrap();
        prop_assert!(got <= best + 1e-6 * (1.0 + best));
    }

    #[test]
    fn sap1_dp_is_globally_optimal((vals, b) in (arb_small(), 1usize..4)) {
        let n = vals.len();
        prop_assume!(b <= n);
        let ps = PrefixSums::from_values(&vals);
        let (h, _) = build_sap1_with_sse(&ps, b).unwrap();
        let got = sse_brute(&h, &ps);
        let (_, best) = exhaustive_optimal(n, b, |bk| {
            sse_brute(&Sap1Histogram::optimal_values(bk.clone(), &ps).unwrap(), &ps)
        }).unwrap();
        prop_assert!(got <= best + 1e-6 * (1.0 + best));
    }

    #[test]
    fn dp_objectives_equal_measured_sse((vals, b) in (arb_medium(), 1usize..6)) {
        let n = vals.len();
        prop_assume!(b <= n);
        let ps = PrefixSums::from_values(&vals);
        let r = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        prop_assert!((r.dp_objective - r.sse).abs() <= 1e-6 * (1.0 + r.sse));
        let (h0, obj0) = build_sap0_with_sse(&ps, b).unwrap();
        prop_assert!((obj0 - sse_brute(&h0, &ps)).abs() <= 1e-6 * (1.0 + obj0));
        let (h1, obj1) = build_sap1_with_sse(&ps, b).unwrap();
        prop_assert!((obj1 - sse_brute(&h1, &ps)).abs() <= 1e-6 * (1.0 + obj1));
    }

    #[test]
    fn sse_is_monotone_in_bucket_budget(vals in arb_medium()) {
        let ps = PrefixSums::from_values(&vals);
        let n = vals.len();
        let mut prev = f64::INFINITY;
        for b in 1..=n.min(6) {
            let r = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
            prop_assert!(r.sse <= prev + 1e-6, "b={}: {} > {}", b, r.sse, prev);
            prev = r.sse;
        }
    }

    #[test]
    fn reopt_never_hurts_and_is_stationary((vals, b) in (arb_medium(), 1usize..5)) {
        let n = vals.len();
        prop_assume!(b <= n);
        let ps = PrefixSums::from_values(&vals);
        let base = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        let re = reoptimize(base.histogram.bucketing(), &ps, "O").unwrap();
        prop_assert!(re.sse <= base.sse + 1e-6 * (1.0 + base.sse),
            "reopt {} vs base {}", re.sse, base.sse);
        // Convexity: nudging any value up or down cannot help.
        let bk = base.histogram.bucketing().clone();
        for t in 0..bk.num_buckets() {
            for delta in [-0.5, 0.5] {
                let mut v = re.histogram.values().to_vec();
                v[t] += delta;
                let h = ValueHistogram::new(bk.clone(), v, "p").unwrap();
                let s = sse_value_histogram(h.xprefix(), &ps);
                prop_assert!(s >= re.sse - 1e-6 * (1.0 + re.sse));
            }
        }
    }

    #[test]
    fn opta_beats_every_fixed_average_histogram((vals, b) in (arb_small(), 1usize..4)) {
        // Optimality from the other side: no single random bucketing with
        // average values may beat the DP optimum.
        let n = vals.len();
        prop_assume!(b <= n);
        let ps = PrefixSums::from_values(&vals);
        let dp = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        // Equi-width candidate with the same bucket count.
        let bk = synoptic_core::Bucketing::equi_width(n, b).unwrap();
        let cand = ValueHistogram::with_averages(bk, &ps, "eq").unwrap();
        let cand_sse = sse_value_histogram(cand.xprefix(), &ps);
        prop_assert!(dp.sse <= cand_sse + 1e-6 * (1.0 + cand_sse));
    }

    #[test]
    fn all_histograms_answer_whole_domain_queries_well(vals in arb_medium()) {
        // The whole-domain query is answered exactly by every average-based
        // histogram (bucket totals are exact).
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let total = ps.total() as f64;
        let q = synoptic_core::RangeQuery { lo: 0, hi: n - 1 };
        let b = 3.min(n);
        let opta = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        prop_assert!((opta.histogram.estimate(q) - total).abs() < 1e-6);
        let (h0, _) = build_sap0_with_sse(&ps, b).unwrap();
        // SAP0 inter answers via suffix/prefix means — not exact in general,
        // but finite and sane.
        prop_assert!(h0.estimate(q).is_finite());
    }
}
