//! Randomized tests for the construction algorithms: the DPs are checked
//! against exhaustive enumeration and against each other on random inputs,
//! driven by the in-repo seeded [`Rng`] so they run fully offline.

use synoptic_core::rng::Rng;
use synoptic_core::sse::{sse_brute, sse_value_histogram};
use synoptic_core::{
    OptAHistogram, PrefixSums, RangeEstimator, RoundingMode, Sap0Histogram, Sap1Histogram,
    ValueHistogram,
};
use synoptic_hist::exhaustive::exhaustive_optimal;
use synoptic_hist::opta::{build_opt_a, OptAConfig};
use synoptic_hist::opta_warmup::build_opt_a_warmup;
use synoptic_hist::reopt::reoptimize;
use synoptic_hist::sap0::build_sap0_with_sse;
use synoptic_hist::sap1::build_sap1_with_sse;

const CASES: u64 = 32;

fn rand_small(rng: &mut Rng) -> Vec<i64> {
    let n = rng.usize_in(2, 9);
    (0..n).map(|_| rng.i64_in(0, 59)).collect()
}

fn rand_medium(rng: &mut Rng) -> Vec<i64> {
    let n = rng.usize_in(4, 20);
    (0..n).map(|_| rng.i64_in(0, 149)).collect()
}

/// A random bucket budget in `1..cap` clamped to `n`.
fn rand_budget(rng: &mut Rng, cap: usize, n: usize) -> usize {
    rng.usize_in(1, cap).min(n)
}

#[test]
fn opta_unrounded_dp_is_globally_optimal() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x11_000 + case);
        let vals = rand_small(&mut rng);
        let n = vals.len();
        let b = rand_budget(&mut rng, 4, n);
        let ps = PrefixSums::from_values(&vals);
        let dp = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        let (_, best) = exhaustive_optimal(n, b, |bk| {
            let vh = ValueHistogram::with_averages(bk.clone(), &ps, "c").unwrap();
            sse_value_histogram(vh.xprefix(), &ps)
        })
        .unwrap();
        assert!(
            dp.sse <= best + 1e-6 * (1.0 + best),
            "case {case}: DP {} vs exhaustive {best}",
            dp.sse
        );
    }
}

#[test]
fn opta_rounded_dp_is_globally_optimal() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x12_000 + case);
        let vals = rand_small(&mut rng);
        let n = vals.len();
        let b = rand_budget(&mut rng, 4, n);
        let ps = PrefixSums::from_values(&vals);
        let dp = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::NearestInt)).unwrap();
        let (_, best) = exhaustive_optimal(n, b, |bk| {
            let h = OptAHistogram::new(bk.clone(), &ps, RoundingMode::NearestInt).unwrap();
            sse_brute(&h, &ps)
        })
        .unwrap();
        assert!(
            dp.sse <= best + 1e-6 * (1.0 + best),
            "case {case}: DP {} vs exhaustive {best}",
            dp.sse
        );
    }
}

#[test]
fn warmup_table_and_hull_dp_agree() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x13_000 + case);
        let vals = rand_small(&mut rng);
        let n = vals.len();
        let b = rand_budget(&mut rng, 4, n);
        let ps = PrefixSums::from_values(&vals);
        let w = build_opt_a_warmup(&ps, b).unwrap();
        let f = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::NearestInt)).unwrap();
        assert!(
            (w.sse - f.sse).abs() <= 1e-6 * (1.0 + f.sse),
            "case {case}: warmup {} vs hull {}",
            w.sse,
            f.sse
        );
    }
}

#[test]
fn sap0_dp_is_globally_optimal() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x14_000 + case);
        let vals = rand_small(&mut rng);
        let n = vals.len();
        let b = rand_budget(&mut rng, 4, n);
        let ps = PrefixSums::from_values(&vals);
        let (h, _) = build_sap0_with_sse(&ps, b).unwrap();
        let got = sse_brute(&h, &ps);
        let (_, best) = exhaustive_optimal(n, b, |bk| {
            sse_brute(
                &Sap0Histogram::optimal_values(bk.clone(), &ps).unwrap(),
                &ps,
            )
        })
        .unwrap();
        assert!(got <= best + 1e-6 * (1.0 + best), "case {case}");
    }
}

#[test]
fn sap1_dp_is_globally_optimal() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x15_000 + case);
        let vals = rand_small(&mut rng);
        let n = vals.len();
        let b = rand_budget(&mut rng, 4, n);
        let ps = PrefixSums::from_values(&vals);
        let (h, _) = build_sap1_with_sse(&ps, b).unwrap();
        let got = sse_brute(&h, &ps);
        let (_, best) = exhaustive_optimal(n, b, |bk| {
            sse_brute(
                &Sap1Histogram::optimal_values(bk.clone(), &ps).unwrap(),
                &ps,
            )
        })
        .unwrap();
        assert!(got <= best + 1e-6 * (1.0 + best), "case {case}");
    }
}

#[test]
fn dp_objectives_equal_measured_sse() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x16_000 + case);
        let vals = rand_medium(&mut rng);
        let n = vals.len();
        let b = rand_budget(&mut rng, 6, n);
        let ps = PrefixSums::from_values(&vals);
        let r = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        assert!(
            (r.dp_objective - r.sse).abs() <= 1e-6 * (1.0 + r.sse),
            "case {case}"
        );
        let (h0, obj0) = build_sap0_with_sse(&ps, b).unwrap();
        assert!(
            (obj0 - sse_brute(&h0, &ps)).abs() <= 1e-6 * (1.0 + obj0),
            "case {case}"
        );
        let (h1, obj1) = build_sap1_with_sse(&ps, b).unwrap();
        assert!(
            (obj1 - sse_brute(&h1, &ps)).abs() <= 1e-6 * (1.0 + obj1),
            "case {case}"
        );
    }
}

#[test]
fn sse_is_monotone_in_bucket_budget() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x17_000 + case);
        let vals = rand_medium(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        let n = vals.len();
        let mut prev = f64::INFINITY;
        for b in 1..=n.min(6) {
            let r = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
            assert!(
                r.sse <= prev + 1e-6,
                "case {case}: b={b}: {} > {prev}",
                r.sse
            );
            prev = r.sse;
        }
    }
}

#[test]
fn reopt_never_hurts_and_is_stationary() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x18_000 + case);
        let vals = rand_medium(&mut rng);
        let n = vals.len();
        let b = rand_budget(&mut rng, 5, n);
        let ps = PrefixSums::from_values(&vals);
        let base = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        let re = reoptimize(base.histogram.bucketing(), &ps, "O").unwrap();
        assert!(
            re.sse <= base.sse + 1e-6 * (1.0 + base.sse),
            "case {case}: reopt {} vs base {}",
            re.sse,
            base.sse
        );
        // Convexity: nudging any value up or down cannot help.
        let bk = base.histogram.bucketing().clone();
        for t in 0..bk.num_buckets() {
            for delta in [-0.5, 0.5] {
                let mut v = re.histogram.values().to_vec();
                v[t] += delta;
                let h = ValueHistogram::new(bk.clone(), v, "p").unwrap();
                let s = sse_value_histogram(h.xprefix(), &ps);
                assert!(s >= re.sse - 1e-6 * (1.0 + re.sse), "case {case}");
            }
        }
    }
}

#[test]
fn opta_beats_every_fixed_average_histogram() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x19_000 + case);
        // Optimality from the other side: no single random bucketing with
        // average values may beat the DP optimum.
        let vals = rand_small(&mut rng);
        let n = vals.len();
        let b = rand_budget(&mut rng, 4, n);
        let ps = PrefixSums::from_values(&vals);
        let dp = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        // Equi-width candidate with the same bucket count.
        let bk = synoptic_core::Bucketing::equi_width(n, b).unwrap();
        let cand = ValueHistogram::with_averages(bk, &ps, "eq").unwrap();
        let cand_sse = sse_value_histogram(cand.xprefix(), &ps);
        assert!(dp.sse <= cand_sse + 1e-6 * (1.0 + cand_sse), "case {case}");
    }
}

#[test]
fn all_histograms_answer_whole_domain_queries_well() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x1A_000 + case);
        // The whole-domain query is answered exactly by every average-based
        // histogram (bucket totals are exact).
        let vals = rand_medium(&mut rng);
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let total = ps.total() as f64;
        let q = synoptic_core::RangeQuery { lo: 0, hi: n - 1 };
        let b = 3.min(n);
        let opta = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        assert!(
            (opta.histogram.estimate(q) - total).abs() < 1e-6,
            "case {case}"
        );
        let (h0, _) = build_sap0_with_sse(&ps, b).unwrap();
        // SAP0 inter answers via suffix/prefix means — not exact in general,
        // but finite and sane.
        assert!(h0.estimate(q).is_finite(), "case {case}");
    }
}
