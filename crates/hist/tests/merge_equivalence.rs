//! Merge-equivalence property suite for the histogram merge operator
//! (prefix-sum stitching): seeded datasets × segment counts × bucket
//! counts, asserting the stitched result is **bit-identical** to the
//! monolithic build on the stitched bucketing, stitching composes
//! (two-step == one-step), and cancellation landing during the partial
//! builds propagates as provenance instead of a silent degrade.

use synoptic_core::{
    Bucketing, Budget, CancelToken, PrefixSums, RangeEstimator, RangeQuery, Sap0Histogram,
    SegmentLayout, SynopticError,
};
use synoptic_hist::{build_sap0_partials, merge_sap0};

/// Deterministic xorshift dataset.
fn dataset(seed: u64, n: usize) -> Vec<i64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2001) as i64 - 1000
        })
        .collect()
}

#[test]
fn stitched_partials_are_bit_identical_across_seeded_sweeps() {
    for seed in [3u64, 17, 2001] {
        for n in [24usize, 60, 96] {
            let vals = dataset(seed, n);
            let ps = PrefixSums::from_values(&vals);
            for segments in [2usize, 3, 6] {
                for buckets in [1usize, 2, 4] {
                    let layout = SegmentLayout::equi_width(n, segments).unwrap();
                    let parts = build_sap0_partials(
                        &vals,
                        &layout,
                        &vec![buckets; segments],
                        &Budget::unlimited(),
                    )
                    .unwrap();
                    let merged = merge_sap0(&parts).unwrap();
                    let mut starts = Vec::new();
                    for ((l, _), part) in layout.iter().zip(&parts) {
                        starts.extend(part.bucketing().starts().iter().map(|s| l + s));
                    }
                    let mono =
                        Sap0Histogram::optimal_values(Bucketing::new(n, starts).unwrap(), &ps)
                            .unwrap();
                    for q in RangeQuery::all(n) {
                        assert_eq!(
                            merged.estimate(q).to_bits(),
                            mono.estimate(q).to_bits(),
                            "seed={seed} n={n} S={segments} B={buckets} q={q:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn stitching_composes_two_step_equals_one_step() {
    let vals = dataset(41, 48);
    let layout = SegmentLayout::equi_width(48, 4).unwrap();
    let parts = build_sap0_partials(&vals, &layout, &[2, 3, 2, 3], &Budget::unlimited()).unwrap();
    let all_at_once = merge_sap0(&parts).unwrap();
    let left = merge_sap0(&parts[..2]).unwrap();
    let right = merge_sap0(&parts[2..]).unwrap();
    let two_step = merge_sap0(&[left, right]).unwrap();
    for q in RangeQuery::all(48) {
        assert_eq!(
            two_step.estimate(q).to_bits(),
            all_at_once.estimate(q).to_bits(),
            "q={q:?}"
        );
    }
}

#[test]
fn cancellation_during_partial_builds_propagates() {
    let vals = dataset(7, 64);
    let layout = SegmentLayout::equi_width(64, 4).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel_token(token);
    let err = build_sap0_partials(&vals, &layout, &[2, 2, 2, 2], &budget);
    assert!(matches!(err, Err(SynopticError::Cancelled)), "got {err:?}");
}
