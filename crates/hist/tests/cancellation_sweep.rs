//! Cancellation is *clean* at every checkpoint: a seeded sweep arms
//! [`CancelToken::cancel_after_checks`] at each checkpoint index an OPT-A
//! anytime build observes, and asserts the result is always either a
//! bit-identical complete synopsis (token never tripped) or a bare
//! [`SynopticError::Cancelled`] — never a partial DP table leaking into an
//! estimator, and never a silent downgrade papering over an explicit abort.
//!
//! A second sweep drives the *resource* failure mode (the DP-cell cap)
//! through every possible exhaustion point and asserts the anytime ladder
//! always lands on a usable, budget-respecting synopsis with consistent
//! provenance.

use synoptic_core::rng::Rng;
use synoptic_core::{Budget, CancelToken, PrefixSums, RangeEstimator, RangeQuery, SynopticError};
use synoptic_hist::builder::{
    build, build_anytime, build_with_budget, AnytimeParams, HistogramMethod,
};

const BUDGET_WORDS: usize = 10;

fn rand_values(rng: &mut Rng) -> Vec<i64> {
    let n = rng.usize_in(5, 14);
    (0..n).map(|_| rng.i64_in(0, 99)).collect()
}

/// Every range estimate of `est`, as exact bit patterns.
fn all_estimates_bits(est: &dyn RangeEstimator, n: usize) -> Vec<u64> {
    let mut bits = Vec::with_capacity(n * (n + 1) / 2);
    for lo in 0..n {
        for hi in lo..n {
            bits.push(est.estimate(RangeQuery { lo, hi }).to_bits());
        }
    }
    bits
}

/// Checkpoints observed by an unconstrained tier-0 OPT-A build. Each
/// [`Budget::charge`] is exactly one checkpoint and (when a token is
/// attached) exactly one token observation, so this is also the number of
/// observations a never-tripping token would see on the direct path.
fn opt_a_checkpoints(values: &[i64], ps: &PrefixSums) -> u64 {
    let budget = Budget::unlimited();
    build_with_budget(HistogramMethod::OptA, values, ps, BUDGET_WORDS, &budget)
        .expect("unconstrained OPT-A build succeeds");
    budget.checks_performed()
}

#[test]
fn cancellation_at_every_checkpoint_is_all_or_nothing() {
    for case in 0..8u64 {
        let mut rng = Rng::new(0x005E_EDC0 + case);
        let values = rand_values(&mut rng);
        let n = values.len();
        let ps = PrefixSums::from_values(&values);
        let total = opt_a_checkpoints(&values, &ps);
        assert!(total > 0, "case {case}: OPT-A observed no checkpoints");

        let reference = build(HistogramMethod::OptA, &values, &ps, BUDGET_WORDS).unwrap();
        let reference_bits = all_estimates_bits(reference.as_ref(), n);

        // k < total: the token trips mid-build. The contract is a bare
        // `Cancelled` — the ladder must not substitute a weaker synopsis
        // for an explicit abort, and no partial DP state may escape.
        // k >= total: the token never trips and the result must be
        // bit-identical to the unconstrained build.
        for k in 0..=total {
            let token = CancelToken::new();
            token.cancel_after_checks(k);
            let params = AnytimeParams::unconstrained().with_cancel_token(token);
            let result = build_anytime(HistogramMethod::OptA, &values, &ps, BUDGET_WORDS, &params);
            if k < total {
                match result {
                    Err(SynopticError::Cancelled) => {}
                    Err(other) => {
                        panic!("case {case}, k={k}: expected Cancelled, got {other}")
                    }
                    Ok(r) => panic!(
                        "case {case}, k={k}: cancellation was papered over with {}",
                        r.outcome
                    ),
                }
            } else {
                let r = result.unwrap_or_else(|e| {
                    panic!("case {case}, k={k}: untripped token failed build: {e}")
                });
                assert_eq!(r.outcome.tier, 0, "case {case}: degraded without cause");
                assert_eq!(r.outcome.used, "OPT-A");
                assert!(r.outcome.attempts.is_empty());
                assert_eq!(
                    all_estimates_bits(r.estimator.as_ref(), n),
                    reference_bits,
                    "case {case}: untripped token changed the synopsis"
                );
            }
        }
    }
}

#[test]
fn cell_cap_at_every_exhaustion_point_yields_valid_synopsis() {
    for case in 0..4u64 {
        let mut rng = Rng::new(0x005E_EDD0 + case);
        let values = rand_values(&mut rng);
        let n = values.len();
        let ps = PrefixSums::from_values(&values);

        // Total cells the direct OPT-A path charges; capping anywhere at
        // or beyond this never degrades, capping below may.
        let probe = Budget::unlimited();
        build_with_budget(HistogramMethod::OptA, &values, &ps, BUDGET_WORDS, &probe).unwrap();
        let direct_cells = probe.cells_used();
        assert!(direct_cells > 0);

        for cap in 0..=direct_cells {
            let params = AnytimeParams::unconstrained().with_max_cells(cap);
            let r = build_anytime(HistogramMethod::OptA, &values, &ps, BUDGET_WORDS, &params)
                .unwrap_or_else(|e| panic!("case {case}, cap={cap}: ladder failed: {e}"));

            // Provenance is internally consistent: every abandoned rung is
            // on record, and the winning rung names itself.
            assert_eq!(r.outcome.requested, "OPT-A");
            assert_eq!(
                r.outcome.attempts.len(),
                r.outcome.tier,
                "case {case}, cap={cap}: tier/attempt mismatch ({})",
                r.outcome
            );
            if cap >= direct_cells {
                assert_eq!(r.outcome.tier, 0, "case {case}, cap={cap}: {}", r.outcome);
            }

            // Whatever rung won, the synopsis is whole: every range
            // estimate is finite and the storage contract holds.
            assert!(
                r.estimator.storage_words() <= BUDGET_WORDS,
                "case {case}, cap={cap}: {} words from {}",
                r.estimator.storage_words(),
                r.outcome.used
            );
            for &bits in &all_estimates_bits(r.estimator.as_ref(), n) {
                assert!(
                    f64::from_bits(bits).is_finite(),
                    "case {case}, cap={cap}: non-finite estimate from {}",
                    r.outcome.used
                );
            }
        }
    }
}
