//! Merge-equivalence property suite for the Haar merge operator
//! (coefficient union + re-truncation): seeded sweeps asserting the
//! merged synopsis stays within the documented re-truncation bound of the
//! untruncated union on every range, and that a full-budget merge *is*
//! the union (bound zero, agreement exact).

use synoptic_core::{RangeEstimator, RangeQuery};
use synoptic_wavelet::{merge_point_wavelets, PointWaveletSynopsis};

fn dataset(seed: u64, n: usize) -> Vec<i64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 401) as i64 - 200
        })
        .collect()
}

#[test]
fn merged_haar_stays_within_the_retruncation_bound_across_seeded_sweeps() {
    for seed in [5u64, 99, 1234] {
        for (n, seg_len) in [(64usize, 16usize), (96, 32), (128, 32)] {
            let vals = dataset(seed, n);
            let waves: Vec<PointWaveletSynopsis> = vals
                .chunks(seg_len)
                .map(|c| PointWaveletSynopsis::build(c, seg_len))
                .collect();
            let refs: Vec<&PointWaveletSynopsis> = waves.iter().collect();
            let (union, _) = merge_point_wavelets(&refs, usize::MAX).unwrap();
            for b in [4usize, 8, 16] {
                let (merged, outcome) = merge_point_wavelets(&refs, b).unwrap();
                for q in RangeQuery::all(n) {
                    let err = (merged.estimate(q) - union.estimate(q)).abs();
                    let bound = outcome.retruncation_bound(q);
                    assert!(
                        err <= bound + 1e-6,
                        "seed={seed} n={n} b={b} q={q:?}: err {err} > bound {bound}"
                    );
                }
            }
        }
    }
}

#[test]
fn full_budget_merge_is_the_union_with_zero_bound() {
    let vals = dataset(77, 64);
    let waves: Vec<PointWaveletSynopsis> = vals
        .chunks(16)
        .map(|c| PointWaveletSynopsis::build(c, 16))
        .collect();
    let refs: Vec<&PointWaveletSynopsis> = waves.iter().collect();
    let (merged, outcome) = merge_point_wavelets(&refs, usize::MAX).unwrap();
    assert!(outcome.dropped.is_empty());
    for q in RangeQuery::all(64) {
        assert_eq!(outcome.retruncation_bound(q), 0.0);
        // The union reconstructs the exact signal (every coefficient kept).
        let exact: i64 = vals[q.lo..=q.hi].iter().sum();
        assert!(
            (merged.estimate(q) - exact as f64).abs() < 1e-6,
            "q={q:?}: {} vs {exact}",
            merged.estimate(q)
        );
    }
}
