//! Property-based tests for the wavelet substrate and synopses.

use proptest::prelude::*;
use synoptic_core::sse::sse_brute;
use synoptic_core::{PrefixSums, RangeEstimator, RangeQuery};
use synoptic_wavelet::haar::{forward, inverse, next_pow2, BasisFn};
use synoptic_wavelet::{PointWaveletSynopsis, PrefixWaveletSynopsis, RangeOptimalWavelet};

fn arb_signal() -> impl Strategy<Value = Vec<f64>> {
    (1usize..6).prop_flat_map(|log| {
        prop::collection::vec(-100.0f64..100.0, 1usize << log..=(1usize << log))
    })
}

fn arb_values() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..200, 2..28)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_inverse_roundtrip(signal in arb_signal()) {
        let mut data = signal.clone();
        forward(&mut data);
        inverse(&mut data);
        for (a, b) in signal.iter().zip(&data) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_holds(signal in arb_signal()) {
        let mut data = signal.clone();
        forward(&mut data);
        let e1: f64 = signal.iter().map(|x| x * x).sum();
        let e2: f64 = data.iter().map(|x| x * x).sum();
        prop_assert!((e1 - e2).abs() <= 1e-8 * (1.0 + e1));
    }

    #[test]
    fn basis_range_sums_match_pointwise(signal in arb_signal()) {
        let n = signal.len();
        for c in 0..n {
            let basis = BasisFn::for_index(c, n);
            // Check a few ranges, including full domain.
            for (a, b) in [(0, n - 1), (0, 0), (n / 2, n - 1)] {
                let brute: f64 = (a..=b).map(|x| basis.eval(x)).sum();
                prop_assert!((basis.range_sum(a, b) - brute).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn full_budget_point_synopsis_is_exact(vals in arb_values()) {
        let ps = PrefixSums::from_values(&vals);
        let b = next_pow2(vals.len());
        let w = PointWaveletSynopsis::build(&vals, b);
        prop_assert!(sse_brute(&w, &ps) < 1e-5);
    }

    #[test]
    fn full_budget_prefix_synopsis_is_exact(vals in arb_values()) {
        let ps = PrefixSums::from_values(&vals);
        let b = next_pow2(vals.len() + 1);
        let w = PrefixWaveletSynopsis::build(&ps, b);
        prop_assert!(sse_brute(&w, &ps) < 1e-5);
    }

    #[test]
    fn full_budget_range_optimal_is_exact(vals in arb_values()) {
        let ps = PrefixSums::from_values(&vals);
        let nn = next_pow2(vals.len() + 1);
        let w = RangeOptimalWavelet::build(&ps, 2 * nn - 1);
        prop_assert!(sse_brute(&w, &ps) < 1e-5);
    }

    #[test]
    fn range_optimal_virtual_error_is_monotone_in_budget(vals in arb_values()) {
        let ps = PrefixSums::from_values(&vals);
        let mut prev = f64::INFINITY;
        for b in [1usize, 2, 4, 8, 16] {
            let w = RangeOptimalWavelet::build(&ps, b);
            prop_assert!(w.virtual_matrix_error() <= prev + 1e-6);
            prev = w.virtual_matrix_error();
        }
    }

    #[test]
    fn estimates_are_finite_for_every_budget_and_query(vals in arb_values()) {
        let ps = PrefixSums::from_values(&vals);
        let n = vals.len();
        for b in [1usize, 3, 7] {
            let estimators: Vec<Box<dyn RangeEstimator>> = vec![
                Box::new(PointWaveletSynopsis::build(&vals, b)),
                Box::new(PrefixWaveletSynopsis::build(&ps, b)),
                Box::new(RangeOptimalWavelet::build(&ps, b)),
            ];
            for est in &estimators {
                for q in RangeQuery::all(n) {
                    prop_assert!(est.estimate(q).is_finite());
                }
            }
        }
    }

    #[test]
    fn storage_never_exceeds_two_words_per_coefficient(vals in arb_values()) {
        let ps = PrefixSums::from_values(&vals);
        for b in [1usize, 4, 9] {
            prop_assert!(PointWaveletSynopsis::build(&vals, b).storage_words() <= 2 * b);
            prop_assert!(PrefixWaveletSynopsis::build(&ps, b).storage_words() <= 2 * b);
            prop_assert!(RangeOptimalWavelet::build(&ps, b).storage_words() <= 2 * b);
        }
    }

    #[test]
    fn range_optimal_endpoint_errors_match_estimates(vals in arb_values()) {
        use synoptic_core::sse::sse_two_function;
        let ps = PrefixSums::from_values(&vals);
        let w = RangeOptimalWavelet::build(&ps, 5);
        let (e, d) = w.endpoint_errors(&ps);
        let fast = sse_two_function(&e, &d);
        let brute = sse_brute(&w, &ps);
        prop_assert!((fast - brute).abs() <= 1e-6 * (1.0 + brute));
    }
}
