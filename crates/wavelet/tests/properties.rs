//! Randomized tests for the wavelet substrate and synopses, driven by the
//! in-repo seeded [`Rng`] so they run fully offline.

use synoptic_core::rng::Rng;
use synoptic_core::sse::sse_brute;
use synoptic_core::{PrefixSums, RangeEstimator, RangeQuery};
use synoptic_wavelet::haar::{forward, inverse, next_pow2, BasisFn};
use synoptic_wavelet::{PointWaveletSynopsis, PrefixWaveletSynopsis, RangeOptimalWavelet};

const CASES: u64 = 48;

/// A random power-of-two-length signal (length in {2, 4, 8, 16, 32}).
fn rand_signal(rng: &mut Rng) -> Vec<f64> {
    let log = rng.usize_in(1, 6);
    (0..1usize << log)
        .map(|_| rng.f64_in(-100.0, 100.0))
        .collect()
}

/// A random integer array of arbitrary (not power-of-two) length.
fn rand_values(rng: &mut Rng) -> Vec<i64> {
    let n = rng.usize_in(2, 28);
    (0..n).map(|_| rng.i64_in(0, 199)).collect()
}

#[test]
fn forward_inverse_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x21_000 + case);
        let signal = rand_signal(&mut rng);
        let mut data = signal.clone();
        forward(&mut data);
        inverse(&mut data);
        for (a, b) in signal.iter().zip(&data) {
            assert!((a - b).abs() < 1e-8, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn parseval_holds() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x22_000 + case);
        let signal = rand_signal(&mut rng);
        let mut data = signal.clone();
        forward(&mut data);
        let e1: f64 = signal.iter().map(|x| x * x).sum();
        let e2: f64 = data.iter().map(|x| x * x).sum();
        assert!((e1 - e2).abs() <= 1e-8 * (1.0 + e1), "case {case}");
    }
}

#[test]
fn basis_range_sums_match_pointwise() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x23_000 + case);
        let signal = rand_signal(&mut rng);
        let n = signal.len();
        for c in 0..n {
            let basis = BasisFn::for_index(c, n);
            // Check a few ranges, including full domain.
            for (a, b) in [(0, n - 1), (0, 0), (n / 2, n - 1)] {
                let brute: f64 = (a..=b).map(|x| basis.eval(x)).sum();
                assert!(
                    (basis.range_sum(a, b) - brute).abs() < 1e-10,
                    "case {case}: coeff {c} range ({a},{b})"
                );
            }
        }
    }
}

#[test]
fn full_budget_point_synopsis_is_exact() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x24_000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        let b = next_pow2(vals.len());
        let w = PointWaveletSynopsis::build(&vals, b);
        assert!(sse_brute(&w, &ps) < 1e-5, "case {case}");
    }
}

#[test]
fn full_budget_prefix_synopsis_is_exact() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x25_000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        let b = next_pow2(vals.len() + 1);
        let w = PrefixWaveletSynopsis::build(&ps, b);
        assert!(sse_brute(&w, &ps) < 1e-5, "case {case}");
    }
}

#[test]
fn full_budget_range_optimal_is_exact() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x26_000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        let nn = next_pow2(vals.len() + 1);
        let w = RangeOptimalWavelet::build(&ps, 2 * nn - 1);
        assert!(sse_brute(&w, &ps) < 1e-5, "case {case}");
    }
}

#[test]
fn range_optimal_virtual_error_is_monotone_in_budget() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x27_000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        let mut prev = f64::INFINITY;
        for b in [1usize, 2, 4, 8, 16] {
            let w = RangeOptimalWavelet::build(&ps, b);
            assert!(
                w.virtual_matrix_error() <= prev + 1e-6,
                "case {case}: budget {b}"
            );
            prev = w.virtual_matrix_error();
        }
    }
}

#[test]
fn estimates_are_finite_for_every_budget_and_query() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x28_000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        let n = vals.len();
        for b in [1usize, 3, 7] {
            let estimators: Vec<Box<dyn RangeEstimator>> = vec![
                Box::new(PointWaveletSynopsis::build(&vals, b)),
                Box::new(PrefixWaveletSynopsis::build(&ps, b)),
                Box::new(RangeOptimalWavelet::build(&ps, b)),
            ];
            for est in &estimators {
                for q in RangeQuery::all(n) {
                    assert!(est.estimate(q).is_finite(), "case {case}: {q:?}");
                }
            }
        }
    }
}

#[test]
fn storage_never_exceeds_two_words_per_coefficient() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x29_000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        for b in [1usize, 4, 9] {
            assert!(
                PointWaveletSynopsis::build(&vals, b).storage_words() <= 2 * b,
                "case {case}"
            );
            assert!(
                PrefixWaveletSynopsis::build(&ps, b).storage_words() <= 2 * b,
                "case {case}"
            );
            assert!(
                RangeOptimalWavelet::build(&ps, b).storage_words() <= 2 * b,
                "case {case}"
            );
        }
    }
}

#[test]
fn range_optimal_endpoint_errors_match_estimates() {
    use synoptic_core::sse::sse_two_function;
    for case in 0..CASES {
        let mut rng = Rng::new(0x2A_000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        let w = RangeOptimalWavelet::build(&ps, 5);
        let (e, d) = w.endpoint_errors(&ps);
        let fast = sse_two_function(&e, &d);
        let brute = sse_brute(&w, &ps);
        assert!(
            (fast - brute).abs() <= 1e-6 * (1.0 + brute),
            "case {case}: fast {fast} vs brute {brute}"
        );
    }
}
