//! The classical point-wise top-B wavelet synopsis (Matias–Vitter–Wang),
//! the literature method the paper's §3 improves upon for range queries.

use crate::coeff::SparseCoeffs;
use crate::haar::{forward, next_pow2};
use synoptic_core::{Budget, RangeEstimator, RangeQuery, Result};

/// Top-`B` orthonormal Haar coefficients of the data array itself.
///
/// L2-optimal for reconstructing `A` point-wise (by Parseval); range sums
/// are answered by summing the reconstructed values, i.e. `O(B)` per query
/// via per-basis-function range sums. No range-query optimality guarantee —
/// that is precisely the gap Theorem 9 closes.
#[derive(Debug, Clone)]
pub struct PointWaveletSynopsis {
    n: usize,
    coeffs: SparseCoeffs,
}

impl PointWaveletSynopsis {
    /// Builds the synopsis keeping `b` coefficients. The array is
    /// zero-padded to the next power of two (coefficient selection sees the
    /// padding, as in the standard constructions).
    pub fn build(values: &[i64], b: usize) -> Self {
        Self::build_with_budget(values, b, &Budget::unlimited())
            .expect("unlimited budget cannot fail")
    }

    /// [`PointWaveletSynopsis::build`] under execution control: one
    /// checkpoint per phase (signal materialization, forward transform,
    /// top-`b` selection). Bit-identical to [`PointWaveletSynopsis::build`]
    /// with [`synoptic_core::Budget::unlimited`].
    pub fn build_with_budget(values: &[i64], b: usize, budget: &Budget) -> Result<Self> {
        let n = values.len();
        let nn = next_pow2(n);
        let transform_cells = (nn.max(2).ilog2() as u64 + 1) * nn as u64;
        budget.charge(nn as u64)?;
        let mut signal: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        signal.resize(nn, 0.0);
        budget.charge(transform_cells)?;
        forward(&mut signal);
        budget.charge(transform_cells)?; // top-b selection in from_dense
        Ok(Self::from_dense(n, &signal, b))
    }

    /// Builds the synopsis from an already-computed dense transform over the
    /// padded domain (entry point for dynamically maintained transforms, see
    /// `synoptic-stream`). `n` is the original (un-padded) domain size.
    pub fn from_dense(n: usize, dense: &[f64], b: usize) -> Self {
        assert!(dense.len().is_power_of_two() && dense.len() >= n);
        Self {
            n,
            coeffs: SparseCoeffs::top_b(dense, b),
        }
    }

    /// Rebuilds a synopsis from persisted coefficients (see
    /// `synoptic-catalog`); the coefficient set carries its own padded
    /// power-of-two transform length.
    pub fn from_coeffs(n: usize, coeffs: SparseCoeffs) -> Self {
        assert!(coeffs.n() >= n);
        Self { n, coeffs }
    }

    /// The retained coefficients.
    pub fn coeffs(&self) -> &SparseCoeffs {
        &self.coeffs
    }

    /// Reconstructed (approximate) data values over the original domain.
    pub fn reconstruct(&self) -> Vec<f64> {
        let full = self.coeffs.reconstruct();
        full[..self.n].to_vec()
    }

    /// The estimate prefix table `X[0..=n]` (for the O(n) SSE closed form:
    /// this synopsis is a telescoping estimator over reconstructed values).
    pub fn xprefix(&self) -> Vec<f64> {
        let mut x = Vec::with_capacity(self.n + 1);
        x.push(0.0);
        let mut acc = 0.0;
        for v in self.reconstruct() {
            acc += v;
            x.push(acc);
        }
        x
    }
}

impl RangeEstimator for PointWaveletSynopsis {
    fn n(&self) -> usize {
        self.n
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        self.coeffs.range_sum(q.lo, q.hi)
    }

    fn storage_words(&self) -> usize {
        2 * self.coeffs.len()
    }

    fn method_name(&self) -> &str {
        "WAVELET-POINT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::{sse_brute, sse_value_histogram};
    use synoptic_core::PrefixSums;

    #[test]
    fn full_coefficient_budget_is_exact() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14];
        let ps = PrefixSums::from_values(&vals);
        let w = PointWaveletSynopsis::build(&vals, 8);
        assert!(sse_brute(&w, &ps) < 1e-9);
        for (r, &v) in w.reconstruct().iter().zip(&vals) {
            assert!((r - v as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn non_pow2_padding_is_handled() {
        let vals = vec![3i64, 1, 4, 1, 5]; // padded to 8
        let ps = PrefixSums::from_values(&vals);
        let w = PointWaveletSynopsis::build(&vals, 8);
        assert_eq!(w.n(), 5);
        assert!(sse_brute(&w, &ps) < 1e-9);
    }

    #[test]
    fn xprefix_closed_form_matches_brute() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let ps = PrefixSums::from_values(&vals);
        for b in [1, 3, 5] {
            let w = PointWaveletSynopsis::build(&vals, b);
            let fast = sse_value_histogram(&w.xprefix(), &ps);
            let brute = sse_brute(&w, &ps);
            assert!(
                (fast - brute).abs() <= 1e-6 * (1.0 + brute),
                "b={b}: {fast} vs {brute}"
            );
        }
    }

    #[test]
    fn more_coefficients_never_hurt_point_error() {
        let vals = vec![40i64, 1, 2, 1, 0, 0, 33, 35, 2, 1, 1, 0, 28, 3, 1, 2];
        let mut prev = f64::INFINITY;
        for b in [1, 2, 4, 8, 16] {
            let w = PointWaveletSynopsis::build(&vals, b);
            let l2: f64 = w
                .reconstruct()
                .iter()
                .zip(&vals)
                .map(|(r, &v)| (r - v as f64) * (r - v as f64))
                .sum();
            assert!(l2 <= prev + 1e-9, "b={b}");
            prev = l2;
        }
    }

    #[test]
    fn budgeted_build_matches_and_aborts_cleanly() {
        use synoptic_core::{Budget, SynopticError};
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14];
        let free = PointWaveletSynopsis::build(&vals, 4);
        let metered = Budget::unlimited();
        let tracked = PointWaveletSynopsis::build_with_budget(&vals, 4, &metered).unwrap();
        assert_eq!(free.reconstruct(), tracked.reconstruct());
        assert!(metered.cells_used() > 0);
        let capped = Budget::unlimited().with_max_cells(1);
        assert!(matches!(
            PointWaveletSynopsis::build_with_budget(&vals, 4, &capped),
            Err(SynopticError::CellBudgetExceeded { .. })
        ));
    }

    #[test]
    fn storage_counts_index_value_pairs() {
        let vals = vec![5i64, 5, 5, 5];
        let w = PointWaveletSynopsis::build(&vals, 3);
        // Constant signal: only the scaling coefficient is non-zero.
        assert_eq!(w.storage_words(), 2);
        assert_eq!(w.method_name(), "WAVELET-POINT");
    }
}
