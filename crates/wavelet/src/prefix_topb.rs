//! Top-B Haar synopsis of the *prefix-sum* array.
//!
//! A range sum is a difference of two prefix sums, so approximating
//! `P[0..=n]` point-wise turns every range query into two point
//! reconstructions. This folklore variant often beats the point-wise
//! synopsis on range workloads (prefix sums are smoother), but its
//! selection still optimizes the wrong objective — point error on `P` with
//! uniform position weights — rather than the all-ranges SSE.

use crate::coeff::SparseCoeffs;
use crate::haar::{forward, next_pow2};
use synoptic_core::{Budget, PrefixSums, RangeEstimator, RangeQuery, Result};

/// Top-`B` orthonormal Haar coefficients of `P[0..=n]`.
#[derive(Debug, Clone)]
pub struct PrefixWaveletSynopsis {
    n: usize,
    coeffs: SparseCoeffs,
}

impl PrefixWaveletSynopsis {
    /// Builds the synopsis keeping `b` coefficients of the prefix array,
    /// padded with the constant continuation `P[n]` (the prefix function is
    /// flat past the domain, unlike zero-padding which would fabricate a
    /// cliff).
    pub fn build(ps: &PrefixSums, b: usize) -> Self {
        Self::build_with_budget(ps, b, &Budget::unlimited()).expect("unlimited budget cannot fail")
    }

    /// [`PrefixWaveletSynopsis::build`] under execution control: one
    /// checkpoint per phase (signal materialization, forward transform,
    /// top-`b` selection). Bit-identical to [`PrefixWaveletSynopsis::build`]
    /// with [`synoptic_core::Budget::unlimited`].
    pub fn build_with_budget(ps: &PrefixSums, b: usize, budget: &Budget) -> Result<Self> {
        let n = ps.n();
        let nn = next_pow2(n + 1);
        let transform_cells = (nn.max(2).ilog2() as u64 + 1) * nn as u64;
        budget.charge(nn as u64)?;
        let mut signal: Vec<f64> = ps.table().iter().map(|&p| p as f64).collect();
        signal.resize(nn, ps.total() as f64);
        budget.charge(transform_cells)?;
        forward(&mut signal);
        budget.charge(transform_cells)?; // top-b selection
        Ok(Self {
            n,
            coeffs: SparseCoeffs::top_b(&signal, b),
        })
    }

    /// The retained coefficients.
    pub fn coeffs(&self) -> &SparseCoeffs {
        &self.coeffs
    }

    /// Reconstructed prefix table `P̂[0..=n]`.
    pub fn xprefix(&self) -> Vec<f64> {
        (0..=self.n).map(|i| self.coeffs.eval(i)).collect()
    }
}

impl RangeEstimator for PrefixWaveletSynopsis {
    fn n(&self) -> usize {
        self.n
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        self.coeffs.eval(q.hi + 1) - self.coeffs.eval(q.lo)
    }

    fn storage_words(&self) -> usize {
        2 * self.coeffs.len()
    }

    fn method_name(&self) -> &str {
        "WAVELET-PREFIX"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::sse_brute;

    fn ps(vals: &[i64]) -> PrefixSums {
        PrefixSums::from_values(vals)
    }

    #[test]
    fn full_budget_is_exact() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2]; // P has 8 entries
        let p = ps(&vals);
        let w = PrefixWaveletSynopsis::build(&p, 8);
        assert!(sse_brute(&w, &p) < 1e-6);
    }

    #[test]
    fn estimate_differences_reconstructed_prefixes() {
        let vals = vec![5i64, 2, 8, 1];
        let p = ps(&vals);
        let w = PrefixWaveletSynopsis::build(&p, 2);
        let xp = w.xprefix();
        for q in RangeQuery::all(4) {
            let want = xp[q.hi + 1] - xp[q.lo];
            assert!((w.estimate(q) - want).abs() < 1e-9);
        }
    }

    #[test]
    fn note_sse_is_not_value_histogram_form_due_to_padding() {
        // The prefix synopsis *is* telescoping via its reconstructed P̂, so
        // the O(n) closed form applies with X = P̂ (w_i = P_i − P̂_i).
        use synoptic_core::sse::sse_value_histogram;
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13];
        let p = ps(&vals);
        let w = PrefixWaveletSynopsis::build(&p, 4);
        let fast = sse_value_histogram(&w.xprefix(), &p);
        let brute = sse_brute(&w, &p);
        assert!((fast - brute).abs() <= 1e-6 * (1.0 + brute));
    }

    #[test]
    fn budgeted_build_matches_and_aborts_cleanly() {
        use synoptic_core::{Budget, SynopticError};
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14];
        let p = ps(&vals);
        let free = PrefixWaveletSynopsis::build(&p, 4);
        let metered = Budget::unlimited();
        let tracked = PrefixWaveletSynopsis::build_with_budget(&p, 4, &metered).unwrap();
        assert_eq!(free.xprefix(), tracked.xprefix());
        assert!(metered.cells_used() > 0);
        let capped = Budget::unlimited().with_max_cells(1);
        assert!(matches!(
            PrefixWaveletSynopsis::build_with_budget(&p, 4, &capped),
            Err(SynopticError::CellBudgetExceeded { .. })
        ));
    }

    #[test]
    fn smooth_data_needs_few_coefficients() {
        // A constant array ⇒ P is a ramp; the Haar transform of a ramp decays
        // geometrically, so a handful of coefficients suffice for tiny error.
        let vals = vec![10i64; 15];
        let p = ps(&vals);
        let full = sse_brute(&PrefixWaveletSynopsis::build(&p, 16), &p);
        let some = sse_brute(&PrefixWaveletSynopsis::build(&p, 6), &p);
        let naive = sse_brute(&PrefixWaveletSynopsis::build(&p, 1), &p);
        assert!(full < 1e-6);
        assert!(some < naive.max(1.0), "some={some} naive={naive}");
    }
}
