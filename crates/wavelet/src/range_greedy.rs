//! Greedy range-SSE coefficient selection over the virtual-matrix family —
//! an orthogonal-matching-pursuit (OMP) style extension of Theorem 9.
//!
//! Theorem 9's top-B-by-magnitude rule is optimal for the *virtual matrix's*
//! Frobenius norm, which double-counts ranges and includes padding
//! (DESIGN.md §4.6) — ablation A3 shows it can trail even the point-wise
//! heuristic on the true objective. This module keeps the same O(N)
//! structured estimator family (`ŝ[a,b] = F(b) + G(a)`, `F`/`G` spanned by
//! first-row/first-column Haar terms) but:
//!
//! 1. **selects** coefficients greedily by the *exact all-ranges SSE* after
//!    a least-squares re-fit of all selected values (OMP), and
//! 2. **re-fits** the stored values to the range objective, instead of
//!    keeping the raw transform values.
//!
//! The objective is the quadratic `Σ_{a≤b}(e[b] − d[a])²` over the residual
//! arrays; each coefficient contributes the feature
//! `f_c(a,b) = pe_c[b] + pd_c[a]` (one side zero), so the fit is ordinary
//! least squares under the all-pairs inner product, whose Gram entries and
//! right-hand sides are O(n) bilinear forms. A greedy round costs
//! `O(N·(k·n + k³))` for `k` already-selected terms — trivial at synopsis
//! scales.
//!
//! Unlike magnitude selection, the result is *monotone in B by
//! construction* (adding a feature cannot raise the refit optimum) and, by
//! the same argument, never worse than the empty synopsis. The returned
//! value is a regular [`RangeOptimalWavelet`] (label `"TOPBB-GREEDY"`);
//! note its `virtual_matrix_error` diagnostic reports the Parseval energy of
//! the *unkept transform coefficients*, which no longer equals this
//! estimator's reconstruction error because the kept values are re-fit.

use crate::haar::{forward, next_pow2, BasisFn};
use crate::range_optimal::{CoeffSlot, RangeOptimalWavelet};
use synoptic_core::{Budget, PrefixSums, Result};
use synoptic_linalg::{solve_spd_with_ridge, Matrix};

/// One selectable coefficient: its slot label, raw transform value (for the
/// dropped-energy diagnostic) and dense endpoint profiles.
struct Feature {
    slot: CoeffSlot,
    raw_value: f64,
    /// Effect on the `e` side (right endpoints), length n.
    pe: Vec<f64>,
    /// Effect on the `d` side (left endpoints), length n.
    pd: Vec<f64>,
}

/// The all-pairs bilinear form
/// `⟨(e1,d1),(e2,d2)⟩ = Σ_{0≤a≤b<n} (e1[b] − d1[a])·(e2[b] − d2[a])`,
/// computed in O(n) with running moments.
fn bilinear(e1: &[f64], d1: &[f64], e2: &[f64], d2: &[f64]) -> f64 {
    let mut s_d1 = 0.0;
    let mut s_d2 = 0.0;
    let mut s_d12 = 0.0;
    let mut acc = 0.0;
    for b in 0..e1.len() {
        s_d1 += d1[b];
        s_d2 += d2[b];
        s_d12 += d1[b] * d2[b];
        let cnt = (b + 1) as f64;
        acc += e1[b] * e2[b] * cnt - e1[b] * s_d2 - e2[b] * s_d1 + s_d12;
    }
    acc
}

/// Builds a `b`-coefficient synopsis by OMP-style greedy selection with
/// per-round least-squares value re-fitting on the exact all-ranges SSE.
pub fn build_range_greedy(ps: &PrefixSums, b: usize) -> RangeOptimalWavelet {
    build_range_greedy_with_budget(ps, b, &Budget::unlimited())
        .expect("unlimited budget cannot fail")
}

/// [`build_range_greedy`] under execution control: checkpoints at feature
/// setup, the rhs/gram precompute, and once per greedy round (the candidate
/// scan, the hot loop). Bit-identical to [`build_range_greedy`] with
/// [`synoptic_core::Budget::unlimited`].
pub fn build_range_greedy_with_budget(
    ps: &PrefixSums,
    b: usize,
    budget: &Budget,
) -> Result<RangeOptimalWavelet> {
    let n = ps.n();
    let nn = next_pow2(n + 1);
    budget.charge(2 * nn as u64)?;
    let total = ps.total() as f64;
    let mut hp: Vec<f64> = (0..nn)
        .map(|j| if j < n { ps.p(j + 1) as f64 } else { total })
        .collect();
    let mut hq: Vec<f64> = (0..nn)
        .map(|i| if i <= n { ps.p(i) as f64 } else { total })
        .collect();
    forward(&mut hp);
    forward(&mut hq);
    let sqrt_n = (nn as f64).sqrt();
    let inv_sqrt = 1.0 / sqrt_n;

    // Candidate features. The answering formula is
    //   F(j) += value·(corner: 1/N | row c: h_c(j)/√N),
    //   G(i) += value·(col r: h_r(i)/√N),
    // and the residuals are e[b] = P[b+1] − F(b), d[a] = P[a] + G(a), so a
    // unit of value adds f(a,b) = pe[b] + pd[a] to (e − d)'s *negation*;
    // signs fold into the profiles below so the fit is a plain LS.
    let mut features: Vec<Feature> = Vec::with_capacity(2 * nn - 1);
    {
        let pe = vec![1.0 / nn as f64; n];
        features.push(Feature {
            slot: CoeffSlot::Corner,
            raw_value: sqrt_n * (hp[0] - hq[0]),
            pe,
            pd: vec![0.0; n],
        });
    }
    for (c, &v) in hp.iter().enumerate().skip(1) {
        let basis = BasisFn::for_index(c, nn);
        let pe: Vec<f64> = (0..n).map(|j| inv_sqrt * basis.eval(j)).collect();
        if pe.iter().all(|&x| x == 0.0) {
            continue; // supported entirely in the padding
        }
        features.push(Feature {
            slot: CoeffSlot::Row(c as u32),
            raw_value: sqrt_n * v,
            pe,
            pd: vec![0.0; n],
        });
    }
    for (r, &v) in hq.iter().enumerate().skip(1) {
        let basis = BasisFn::for_index(r, nn);
        // A unit of column-coefficient value moves G(a) — hence d[a] — by
        // +h_r(a)/√N. The feature function is f_c(a,b) = pe[b] + pd[a]; the
        // bilinear helper represents it as the pair (pe, −pd), which the
        // call sites build via `negate`.
        let pd: Vec<f64> = (0..n).map(|i| inv_sqrt * basis.eval(i)).collect();
        if pd.iter().all(|&x| x == 0.0) {
            continue;
        }
        features.push(Feature {
            slot: CoeffSlot::Col(r as u32),
            raw_value: -sqrt_n * v,
            pe: vec![0.0; n],
            pd,
        });
    }

    // Residual target: with no coefficients, e0[b] = P[b+1], d0[a] = P[a].
    let e0: Vec<f64> = (0..n).map(|bq| ps.p(bq + 1) as f64).collect();
    let d0: Vec<f64> = (0..n).map(|a| ps.p(a) as f64).collect();
    let sse0 = bilinear(&e0, &d0, &e0, &d0);

    // Precompute each feature's rhs ⟨r0, f⟩ and self-gram ⟨f, f⟩; maintain
    // the gram rows against the selected set incrementally.
    let m = features.len();
    budget.charge(2 * (m * n) as u64)?;
    let rhs_all: Vec<f64> = features
        .iter()
        .map(|f| bilinear(&e0, &d0, &f.pe, &negate(&f.pd)))
        .collect();
    // Note: the bilinear form treats its pair as (e, d) with residual
    // e[b] − d[a]; a feature enters the residual as −value·(pe[b] + pd[a]),
    // i.e. as "e-profile pe, d-profile −pd" in the form's convention.
    let gram_self: Vec<f64> = features
        .iter()
        .map(|f| bilinear(&f.pe, &negate(&f.pd), &f.pe, &negate(&f.pd)))
        .collect();
    let mut cross: Vec<Vec<f64>> = Vec::new(); // cross[k][c] = ⟨f_sel[k], f_c⟩
    let mut selected: Vec<usize> = Vec::new();
    let mut gram_sel: Vec<Vec<f64>> = Vec::new(); // gram among selected
    let mut current = sse0;

    for _ in 0..b.min(m) {
        let k = selected.len();
        // One checkpoint per greedy round, charging the candidate scan.
        budget.charge((m * (k + 1)) as u64)?;
        let mut best: Option<(usize, f64, Vec<f64>)> = None;
        for c in 0..m {
            if selected.contains(&c) || gram_self[c] <= 1e-12 {
                continue;
            }
            // Assemble the (k+1) system for S ∪ {c}.
            let mut g = Matrix::zeros(k + 1, k + 1);
            let mut r = vec![0.0; k + 1];
            for i in 0..k {
                r[i] = rhs_all[selected[i]];
                for j in 0..k {
                    g[(i, j)] = gram_sel[i][j];
                }
                g[(i, k)] = cross[i][c];
                g[(k, i)] = cross[i][c];
            }
            g[(k, k)] = gram_self[c];
            r[k] = rhs_all[c];
            let Ok(x) = solve_spd_with_ridge(&g, &r) else {
                continue;
            };
            // SSE after fit = sse0 − xᵀ·rhs (standard LS identity).
            let fitted: f64 = sse0 - x.iter().zip(&r).map(|(a, bb)| a * bb).sum::<f64>();
            // Stop threshold is relative to the *original* scale so float
            // noise near zero residual does not manufacture endless picks.
            if fitted < current - 1e-9 * (1.0 + sse0)
                && best.as_ref().map(|&(_, s, _)| fitted < s).unwrap_or(true)
            {
                best = Some((c, fitted, x));
            }
        }
        let Some((c, fitted, x)) = best else { break };
        // Commit: extend gram/cross structures.
        let fc = &features[c];
        let fc_e = fc.pe.clone();
        let fc_d = negate(&fc.pd);
        let mut new_cross = vec![0.0; m];
        for (cc, fo) in features.iter().enumerate() {
            new_cross[cc] = bilinear(&fc_e, &fc_d, &fo.pe, &negate(&fo.pd));
        }
        for (i, &s) in selected.iter().enumerate() {
            let v = new_cross[s];
            gram_sel[i].push(v);
            let _ = i;
        }
        let mut own_row: Vec<f64> = selected.iter().map(|&s| new_cross[s]).collect();
        own_row.push(gram_self[c]);
        gram_sel.push(own_row);
        cross.push(new_cross);
        selected.push(c);
        current = fitted;
        let _ = x; // final values re-fit once below
    }

    // Final re-fit over the selected support.
    let k = selected.len();
    let values: Vec<f64> = if k == 0 {
        Vec::new()
    } else {
        let mut g = Matrix::zeros(k, k);
        let mut r = vec![0.0; k];
        for i in 0..k {
            r[i] = rhs_all[selected[i]];
            for j in 0..k {
                g[(i, j)] = gram_sel[i][j];
            }
        }
        solve_spd_with_ridge(&g, &r).unwrap_or_else(|_| vec![0.0; k])
    };

    let kept: Vec<(CoeffSlot, f64)> = selected
        .iter()
        .zip(&values)
        .map(|(&c, &v)| (features[c].slot, v))
        .collect();
    let dropped: f64 = (0..m)
        .filter(|c| !selected.contains(c))
        .map(|c| features[c].raw_value * features[c].raw_value)
        .sum();
    Ok(RangeOptimalWavelet::from_parts(n, nn, kept, dropped).with_name("TOPBB-GREEDY"))
}

fn negate(v: &[f64]) -> Vec<f64> {
    v.iter().map(|&x| -x).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::sse_brute;
    use synoptic_core::RangeEstimator;

    fn ps(vals: &[i64]) -> PrefixSums {
        PrefixSums::from_values(vals)
    }

    fn datasets() -> Vec<Vec<i64>> {
        vec![
            vec![12, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1],
            vec![100, 1, 1, 1, 1, 1, 1, 90],
            vec![40, 1, 2, 1, 0, 0, 33, 35, 2, 1, 1, 0, 28, 3, 1, 2],
            vec![5, 5, 5, 5, 5, 5],
        ]
    }

    #[test]
    fn greedy_never_loses_to_magnitude_selection_on_range_sse() {
        for vals in datasets() {
            let p = ps(&vals);
            for b in [2usize, 4, 8] {
                let greedy = build_range_greedy(&p, b);
                let topbb = RangeOptimalWavelet::build(&p, b);
                let (g, t) = (sse_brute(&greedy, &p), sse_brute(&topbb, &p));
                assert!(
                    g <= t + 1e-6 * (1.0 + t),
                    "vals={vals:?} b={b}: greedy {g} vs topbb {t}"
                );
            }
        }
    }

    #[test]
    fn greedy_is_monotone_in_budget() {
        for vals in datasets() {
            let p = ps(&vals);
            let mut prev = f64::INFINITY;
            for b in [1usize, 2, 4, 8, 12] {
                let sse = sse_brute(&build_range_greedy(&p, b), &p);
                assert!(
                    sse <= prev + 1e-6 * (1.0 + prev),
                    "vals={vals:?} b={b}: {sse} vs {prev}"
                );
                prev = sse;
            }
        }
    }

    #[test]
    fn internal_objective_matches_measured_sse() {
        // The LS identity sse0 − xᵀr must agree with the brute-force SSE of
        // the constructed estimator.
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14];
        let p = ps(&vals);
        for b in [1usize, 3, 6] {
            let w = build_range_greedy(&p, b);
            let brute = sse_brute(&w, &p);
            // Rebuild residuals from the estimator itself.
            let (e, d) = w.endpoint_errors(&p);
            let direct = bilinear(&e, &d, &e, &d);
            assert!(
                (brute - direct).abs() <= 1e-6 * (1.0 + brute),
                "b={b}: {brute} vs {direct}"
            );
        }
    }

    #[test]
    fn full_budget_remains_exact() {
        let vals = vec![7i64, 2, 9, 4, 4, 6, 1];
        let p = ps(&vals);
        let nn = next_pow2(vals.len() + 1);
        let w = build_range_greedy(&p, 2 * nn - 1);
        assert!(sse_brute(&w, &p) < 1e-5, "sse = {}", sse_brute(&w, &p));
    }

    #[test]
    fn greedy_stops_early_when_nothing_helps() {
        // All-zero data: the residual target is identically zero, so no
        // feature can improve and the synopsis must stay empty. (Note that
        // *constant* data is NOT easy for this family — F/G must then
        // approximate prefix-sum ramps, which are Haar-dense.)
        let vals = vec![0i64; 7];
        let p = ps(&vals);
        let w = build_range_greedy(&p, 12);
        assert!(w.coeffs().is_empty(), "kept {}", w.coeffs().len());
        assert!(sse_brute(&w, &p) < 1e-9);
    }

    #[test]
    fn budgeted_build_matches_and_aborts_cleanly() {
        use synoptic_core::{Budget, SynopticError};
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14];
        let p = ps(&vals);
        let free = build_range_greedy(&p, 4);
        let metered = Budget::unlimited();
        let tracked = build_range_greedy_with_budget(&p, 4, &metered).unwrap();
        assert_eq!(free.coeffs(), tracked.coeffs());
        assert!(metered.cells_used() > 0);
        let capped = Budget::unlimited().with_max_cells(1);
        assert!(matches!(
            build_range_greedy_with_budget(&p, 4, &capped),
            Err(SynopticError::CellBudgetExceeded { .. })
        ));
    }

    #[test]
    fn name_and_storage() {
        let vals = vec![3i64, 1, 4, 1, 5];
        let p = ps(&vals);
        let w = build_range_greedy(&p, 3);
        assert_eq!(w.method_name(), "TOPBB-GREEDY");
        assert!(w.storage_words() <= 6);
    }
}
