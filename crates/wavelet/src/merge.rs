//! The wavelet merge operator: coefficient union + re-truncation.
//!
//! Haar partials over equal-length power-of-two segments merge *exactly*
//! into a global coefficient set, because the orthonormal Haar basis nests:
//!
//! * a non-DC coefficient of a segment transform is supported entirely
//!   inside its segment, and its amplitude `√(2^j / m)` depends only on the
//!   support length — so the same basis function appears in the global
//!   transform (support length unchanged, amplitude `√(2^{j'} / N)` with
//!   `N / 2^{j'} = m / 2^j`) and the coefficient **value carries over
//!   unchanged**; only its Mallat index shifts
//!   ([`lift_index`]: `2^j + k` in segment `s` of `S` becomes
//!   `(S + s)·2^j + k`);
//! * the segment DC coefficients (`segment sum / √m`) are exactly the
//!   length-`S` signal whose own Haar transform yields the global
//!   coefficients with support `≥ m` — indices `0..S` globally, index map
//!   the identity.
//!
//! So the union of lifted non-DC entries and the transformed DC vector *is*
//! the global transform, restricted to whatever each partial retained. The
//! merge then **re-truncates** to the global budget `b` by magnitude (same
//! deterministic tie-break as [`SparseCoeffs::top_b`]). The error this
//! introduces is exactly the dropped tail: for any range `q`,
//!
//! ```text
//! |merged(q) − union(q)|  ≤  Σ_{c dropped} |θ_c| · |Σ_{x∈q} h_c(x)|
//! ```
//!
//! computable in closed form ([`MergeOutcome::retruncation_bound`]) and
//! asserted by the merge-equivalence suite.

use crate::coeff::SparseCoeffs;
use crate::haar::{forward, next_pow2, BasisFn};
use crate::point_topb::PointWaveletSynopsis;
use synoptic_core::{RangeEstimator, RangeQuery, Result, SynopticError};

/// Global Mallat index of local non-DC coefficient `c` of segment `seg`,
/// when `s_pad` segments of equal power-of-two length are concatenated.
///
/// With `c = 2^j + k` (level `j`, block `k` inside the segment), the basis
/// function's global support sits `seg` segment-widths to the right, giving
/// global index `(s_pad + seg)·2^j + k`.
pub fn lift_index(c: usize, seg: usize, s_pad: usize) -> usize {
    debug_assert!(c > 0, "the DC coefficient does not lift 1:1");
    debug_assert!(s_pad.is_power_of_two() && seg < s_pad);
    let j = usize::BITS - 1 - c.leading_zeros();
    let k = c - (1usize << j);
    ((s_pad + seg) << j) + k
}

/// A merged coefficient set plus the tail re-truncation dropped, for the
/// documented error bound.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged synopsis: top-`b` of the union, over the concatenated
    /// (padded) domain.
    pub merged: SparseCoeffs,
    /// `(global index, value)` pairs present in the union but dropped by
    /// re-truncation, i.e. exactly the coefficients the bound sums over.
    pub dropped: Vec<(u32, f64)>,
}

impl MergeOutcome {
    /// The closed-form per-query re-truncation bound
    /// `Σ_{c dropped} |θ_c| · |Σ_{a≤x≤b} h_c(x)|`: the merged answer is
    /// within this of the un-truncated union's answer on `q`.
    pub fn retruncation_bound(&self, q: RangeQuery) -> f64 {
        let n = self.merged.n();
        self.dropped
            .iter()
            .map(|&(c, v)| (v * BasisFn::for_index(c as usize, n).range_sum(q.lo, q.hi)).abs())
            .sum()
    }
}

/// Merges per-segment sparse coefficient sets (in segment order, all over
/// the same power-of-two local length `m`) into one set over the
/// concatenated domain, re-truncated to `b` coefficients. The segment count
/// is padded to a power of two with implicit all-zero segments; the merged
/// domain length is `next_pow2(S)·m`.
pub fn merge_sparse(parts: &[&SparseCoeffs], b: usize) -> Result<MergeOutcome> {
    let Some(first) = parts.first() else {
        return Err(SynopticError::EmptyInput);
    };
    let m = first.n();
    if parts.iter().any(|p| p.n() != m) {
        return Err(SynopticError::InvalidParameter(
            "all partials must share one padded segment length".into(),
        ));
    }
    let s_pad = next_pow2(parts.len());
    let n = s_pad * m;
    // The segment DCs form a length-s_pad signal whose Haar transform is
    // the global coarse spectrum (indices 0..s_pad, identity index map).
    let mut dcs = vec![0.0f64; s_pad];
    let mut union: Vec<(u32, f64)> = Vec::new();
    for (seg, part) in parts.iter().enumerate() {
        for &(c, v) in part.entries() {
            if c == 0 {
                dcs[seg] = v;
            } else {
                union.push((lift_index(c as usize, seg, s_pad) as u32, v));
            }
        }
    }
    forward(&mut dcs);
    union.extend(
        dcs.iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0.0)
            .map(|(c, &v)| (c as u32, v)),
    );
    // Re-truncate with top_b's deterministic order: magnitude descending,
    // ties toward the smaller global index.
    union.sort_by(|&(xi, xv), &(yi, yv)| yv.abs().total_cmp(&xv.abs()).then(xi.cmp(&yi)));
    let keep = b.min(union.len());
    let dropped: Vec<(u32, f64)> = union.split_off(keep);
    union.retain(|&(_, v)| v != 0.0);
    Ok(MergeOutcome {
        merged: SparseCoeffs::from_entries(n, union),
        dropped,
    })
}

/// Re-expresses a coefficient set over a wider power-of-two domain `m`,
/// zero-extended on the right. Sound because a zero extension changes no
/// inner product: every non-DC basis function of the narrow domain is also
/// a basis function of the wide one (aligned support, same amplitude), and
/// the narrow DC spreads over the wide transform's coarse spectrum exactly
/// as a first segment followed by all-zero segments — so this *is*
/// [`merge_sparse`] with implicit empty partials.
fn lift_to(part: &SparseCoeffs, m: usize) -> Result<SparseCoeffs> {
    if part.n() == m {
        return Ok(part.clone());
    }
    let factor = m / part.n();
    let empty = SparseCoeffs::from_entries(part.n(), Vec::new());
    let mut segs: Vec<&SparseCoeffs> = vec![part];
    segs.resize(factor, &empty);
    Ok(merge_sparse(&segs, usize::MAX)?.merged)
}

/// [`merge_sparse`] over whole synopses: every partial except the last must
/// cover its full padded segment (`part.n() == coeffs.n()`, i.e. segments
/// are exactly `m` values, `m` a power of two; the last may be shorter —
/// its coefficients are lifted into the shared width over the same zero
/// padding the monolithic build would have used). The merged synopsis keeps
/// `b` coefficients over the concatenated original domain.
pub fn merge_point_wavelets(
    parts: &[&PointWaveletSynopsis],
    b: usize,
) -> Result<(PointWaveletSynopsis, MergeOutcome)> {
    let Some((last, full)) = parts.split_last() else {
        return Err(SynopticError::EmptyInput);
    };
    let m = parts.iter().map(|p| p.coeffs().n()).max().unwrap_or(1);
    for part in full {
        if part.n() != part.coeffs().n() || part.coeffs().n() != m {
            return Err(SynopticError::InvalidParameter(
                "only the final segment may be shorter than the shared segment width".into(),
            ));
        }
    }
    if last.coeffs().n() > m || m % last.coeffs().n() != 0 {
        return Err(SynopticError::InvalidParameter(
            "final segment must fit the shared segment width".into(),
        ));
    }
    let lifted_last = lift_to(last.coeffs(), m)?;
    let mut coeff_parts: Vec<&SparseCoeffs> = full.iter().map(|p| p.coeffs()).collect();
    coeff_parts.push(&lifted_last);
    let outcome = merge_sparse(&coeff_parts, b)?;
    let n: usize = full.iter().map(|p| p.n()).sum::<usize>() + last.n();
    Ok((
        PointWaveletSynopsis::from_coeffs(n, outcome.merged.clone()),
        outcome,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::RangeEstimator;

    fn transform(signal: &[f64]) -> Vec<f64> {
        let mut d = signal.to_vec();
        forward(&mut d);
        d
    }

    #[test]
    fn lift_index_preserves_the_basis_function() {
        // The lifted index must name a global basis function with the same
        // support (shifted by the segment offset) and the same amplitude.
        for (m, s_pad) in [(8usize, 4usize), (4, 2), (16, 8), (8, 1)] {
            let n = m * s_pad;
            for seg in 0..s_pad {
                for c in 1..m {
                    let local = BasisFn::for_index(c, m);
                    let global = BasisFn::for_index(lift_index(c, seg, s_pad), n);
                    assert_eq!(global.start, local.start + seg * m, "m={m} s={seg} c={c}");
                    assert_eq!(global.mid, local.mid + seg * m);
                    assert_eq!(global.end, local.end + seg * m);
                    assert!((global.amp - local.amp).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn full_budget_merge_equals_the_global_transform() {
        // 4 segments of 8: keep everything locally, merge with a full
        // global budget — the union must be the global transform exactly.
        let signal: Vec<f64> = (0..32).map(|i| ((i * 13 + 5) % 17) as f64 - 6.0).collect();
        let parts: Vec<SparseCoeffs> = signal
            .chunks(8)
            .map(|seg| SparseCoeffs::top_b(&transform(seg), 8))
            .collect();
        let refs: Vec<&SparseCoeffs> = parts.iter().collect();
        let out = merge_sparse(&refs, 32).unwrap();
        assert!(out.dropped.is_empty());
        let global = SparseCoeffs::top_b(&transform(&signal), 32);
        let as_map = |sc: &SparseCoeffs| -> std::collections::BTreeMap<u32, f64> {
            sc.entries().iter().copied().collect()
        };
        let (got, want) = (as_map(&out.merged), as_map(&global));
        for c in 0..32u32 {
            let g = got.get(&c).copied().unwrap_or(0.0);
            let w = want.get(&c).copied().unwrap_or(0.0);
            assert!((g - w).abs() < 1e-9, "coefficient {c}: {g} vs {w}");
        }
        for a in 0..32 {
            for b in a..32 {
                let exact: f64 = signal[a..=b].iter().sum();
                assert!(
                    (out.merged.range_sum(a, b) - exact).abs() < 1e-8,
                    "[{a},{b}]"
                );
            }
        }
    }

    #[test]
    fn retruncation_stays_within_the_documented_bound() {
        let signal: Vec<f64> = (0..64)
            .map(|i| ((i * i * 7 + 3 * i) % 31) as f64 - 11.0)
            .collect();
        let parts: Vec<SparseCoeffs> = signal
            .chunks(16)
            .map(|seg| SparseCoeffs::top_b(&transform(seg), 16))
            .collect();
        let refs: Vec<&SparseCoeffs> = parts.iter().collect();
        let full = merge_sparse(&refs, usize::MAX).unwrap();
        for b in [2usize, 6, 12, 24] {
            let out = merge_sparse(&refs, b).unwrap();
            assert!(out.merged.len() <= b);
            for a in 0..64usize {
                for bb in [a, (a + 9).min(63), 63] {
                    let q = RangeQuery { lo: a, hi: bb };
                    let gap = (out.merged.range_sum(a, bb) - full.merged.range_sum(a, bb)).abs();
                    let bound = out.retruncation_bound(q);
                    assert!(
                        gap <= bound + 1e-9,
                        "b={b} q=[{a},{bb}]: gap {gap} exceeds bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_pow2_segment_counts_pad_with_zero_segments() {
        let signal: Vec<f64> = (0..24).map(|i| (i % 7) as f64).collect();
        let parts: Vec<SparseCoeffs> = signal
            .chunks(8)
            .map(|seg| SparseCoeffs::top_b(&transform(seg), 8))
            .collect();
        assert_eq!(parts.len(), 3);
        let refs: Vec<&SparseCoeffs> = parts.iter().collect();
        let out = merge_sparse(&refs, usize::MAX).unwrap();
        assert_eq!(out.merged.n(), 32);
        for a in 0..24 {
            for b in a..24 {
                let exact: f64 = signal[a..=b].iter().sum();
                assert!((out.merged.range_sum(a, b) - exact).abs() < 1e-8);
            }
        }
        // The padding region reconstructs to zero.
        assert!(out.merged.range_sum(24, 31).abs() < 1e-8);
    }

    #[test]
    fn merged_synopsis_estimates_the_concatenated_array() {
        let values: Vec<i64> = (0..40).map(|i| (i * 11 + 3) % 19 - 4).collect();
        let parts: Vec<PointWaveletSynopsis> = values
            .chunks(16)
            .map(|seg| PointWaveletSynopsis::build(seg, 16))
            .collect();
        let refs: Vec<&PointWaveletSynopsis> = parts.iter().collect();
        let (merged, _) = merge_point_wavelets(&refs, usize::MAX).unwrap();
        assert_eq!(merged.n(), 40);
        for a in 0..40 {
            for b in a..40 {
                let exact: f64 = values[a..=b].iter().map(|&v| v as f64).sum();
                let got = merged.estimate(RangeQuery { lo: a, hi: b });
                assert!((got - exact).abs() < 1e-7, "[{a},{b}]: {got} vs {exact}");
            }
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let a = SparseCoeffs::top_b(&[1.0, 2.0, 3.0, 4.0], 4);
        let c = SparseCoeffs::top_b(&[1.0, 2.0], 2);
        assert!(merge_sparse(&[], 4).is_err());
        assert!(merge_sparse(&[&a, &c], 4).is_err());
        // A shorter *non-final* segment cannot merge at the synopsis level.
        let w1 = PointWaveletSynopsis::build(&[1, 2, 3], 4); // n=3, padded 4
        let w2 = PointWaveletSynopsis::build(&[4, 5, 6, 7], 4);
        let e = merge_point_wavelets(&[&w1, &w2], 8);
        assert!(e.is_err());
        assert!(merge_point_wavelets(&[&w2, &w1], 8).is_ok());
    }
}
