//! # synoptic-wavelet
//!
//! Haar-wavelet synopses for range-sum estimation (paper §3).
//!
//! Three strategies are provided, all storing `B` `(index, value)`
//! coefficient pairs (`2B` words):
//!
//! * [`point_topb`] — the literature heuristic the paper compares against
//!   (Matias–Vitter–Wang): keep the `B` largest orthonormal Haar
//!   coefficients of `A` itself. Point-wise optimal for reconstructing `A`,
//!   with no guarantee for range sums.
//! * [`prefix_topb`] — the same heuristic applied to the prefix-sum array,
//!   so a range query needs only two point reconstructions.
//! * [`range_optimal`] — **the paper's contribution (Theorem 9)**: top-`B`
//!   coefficients of the 2-D Haar transform of the *virtual* range-sum
//!   matrix `AA[i,j] = s[i,j]`. Because the (signed-completed) matrix is
//!   `1·pᵀ − q·1ᵀ` with `p, q` prefix-sum vectors, its 2-D transform is
//!   non-zero only in the first row and column — `O(N)` independent entries
//!   — so selection is `O(N log N)` instead of the generic `Ω(N²)`, and by
//!   Parseval the kept set is point-wise optimal for the virtual matrix.
//!
//! The 1-D transform substrate lives in [`haar`]; sparse-coefficient
//! machinery in [`coeff`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coeff;
pub mod haar;
pub mod merge;
pub mod point_topb;
pub mod prefix_topb;
pub mod range_greedy;
pub mod range_optimal;

pub use coeff::SparseCoeffs;
pub use merge::{lift_index, merge_point_wavelets, merge_sparse, MergeOutcome};
pub use point_topb::PointWaveletSynopsis;
pub use prefix_topb::PrefixWaveletSynopsis;
pub use range_greedy::{build_range_greedy, build_range_greedy_with_budget};
pub use range_optimal::RangeOptimalWavelet;
