//! The 1-D orthonormal Haar transform and O(1) basis-function evaluation.
//!
//! Coefficients use the standard Mallat layout for a signal of length
//! `N = 2^L`:
//!
//! * index `0` — the scaling coefficient (`φ(x) = 1/√N`),
//! * indices `c ∈ [2^j, 2^{j+1})`, `j = 0..L` — the `2^j` wavelets of level
//!   `j`, each supported on a block of `N / 2^j` positions with amplitude
//!   `√(2^j / N)`, positive on the first half of its block and negative on
//!   the second.
//!
//! The transform is orthonormal: `‖data‖₂ = ‖coeffs‖₂` (Parseval), which is
//! what makes largest-`B` coefficient thresholding L2-optimal.

/// Smallest power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward orthonormal Haar transform.
///
/// # Panics
/// If the length is not a power of two.
pub fn forward(data: &mut [f64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let mut scratch = vec![0.0; n];
    let mut len = n;
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let a = data[2 * i];
            let b = data[2 * i + 1];
            scratch[i] = (a + b) * inv_sqrt2;
            scratch[half + i] = (a - b) * inv_sqrt2;
        }
        data[..len].copy_from_slice(&scratch[..len]);
        len = half;
    }
}

/// In-place inverse orthonormal Haar transform.
///
/// # Panics
/// If the length is not a power of two.
pub fn inverse(data: &mut [f64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let mut scratch = vec![0.0; n];
    let mut len = 2;
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    while len <= n {
        let half = len / 2;
        for i in 0..half {
            let s = data[i];
            let d = data[half + i];
            scratch[2 * i] = (s + d) * inv_sqrt2;
            scratch[2 * i + 1] = (s - d) * inv_sqrt2;
        }
        data[..len].copy_from_slice(&scratch[..len]);
        len *= 2;
    }
}

/// Geometry of one Haar basis function over a domain of length `n` (a power
/// of two).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasisFn {
    /// Support start (inclusive).
    pub start: usize,
    /// Midpoint: positive part is `[start, mid)`, negative is `[mid, end)`.
    pub mid: usize,
    /// Support end (exclusive).
    pub end: usize,
    /// Amplitude `√(2^level / n)`; the scaling function has `mid == end`
    /// and amplitude `1/√n` (all-positive).
    pub amp: f64,
}

impl BasisFn {
    /// The basis function for coefficient index `c` in the Mallat layout.
    pub fn for_index(c: usize, n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && c < n);
        if c == 0 {
            return Self {
                start: 0,
                mid: n,
                end: n,
                amp: 1.0 / (n as f64).sqrt(),
            };
        }
        let level = usize::BITS - 1 - c.leading_zeros(); // floor(log2 c)
        let j = level as usize;
        let k = c - (1usize << j);
        let block = n >> j;
        let start = k * block;
        Self {
            start,
            mid: start + block / 2,
            end: start + block,
            amp: ((1usize << j) as f64 / n as f64).sqrt(),
        }
    }

    /// Value of the basis function at position `x`.
    #[inline]
    pub fn eval(&self, x: usize) -> f64 {
        if x < self.start || x >= self.end {
            0.0
        } else if x < self.mid {
            self.amp
        } else {
            -self.amp
        }
    }

    /// `Σ_{a ≤ x ≤ b}` of the basis function over an inclusive range — O(1).
    pub fn range_sum(&self, a: usize, b: usize) -> f64 {
        if b < self.start || a >= self.end {
            return 0.0;
        }
        let overlap = |lo: usize, hi: usize| -> f64 {
            // overlap of [a, b] (inclusive) with [lo, hi) as a count
            let s = a.max(lo);
            let e = (b + 1).min(hi);
            e.saturating_sub(s) as f64
        };
        self.amp * (overlap(self.start, self.mid) - overlap(self.mid, self.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(127), 128);
        assert_eq!(next_pow2(128), 128);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [1usize, 2, 4, 8, 32] {
            let orig: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 23) as f64 - 7.0).collect();
            let mut data = orig.clone();
            forward(&mut data);
            inverse(&mut data);
            for (a, b) in orig.iter().zip(&data) {
                assert!((a - b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn transform_is_orthonormal() {
        let orig: Vec<f64> = vec![3.0, -1.0, 4.0, 1.0, -5.0, 9.0, 2.0, 6.0];
        let mut data = orig.clone();
        forward(&mut data);
        let e1: f64 = orig.iter().map(|x| x * x).sum();
        let e2: f64 = data.iter().map(|x| x * x).sum();
        assert!((e1 - e2).abs() < 1e-9, "Parseval: {e1} vs {e2}");
    }

    #[test]
    fn known_small_transform() {
        // [1, 1, 1, 1] → scaling 2, all details 0 (orthonormal: Σ/√4 per
        // level twice ⇒ 4·(1/2) = 2).
        let mut data = vec![1.0, 1.0, 1.0, 1.0];
        forward(&mut data);
        assert!((data[0] - 2.0).abs() < 1e-12);
        for &d in &data[1..] {
            assert!(d.abs() < 1e-12);
        }
    }

    #[test]
    fn coefficients_are_inner_products_with_basis() {
        let n = 16usize;
        let signal: Vec<f64> = (0..n).map(|i| ((i * i * 13 + 5) % 29) as f64).collect();
        let mut coeffs = signal.clone();
        forward(&mut coeffs);
        for (c, &coeff) in coeffs.iter().enumerate() {
            let basis = BasisFn::for_index(c, n);
            let ip: f64 = signal
                .iter()
                .enumerate()
                .map(|(x, &v)| v * basis.eval(x))
                .sum();
            assert!(
                (coeff - ip).abs() < 1e-9,
                "coefficient {c}: transform {coeff} vs inner product {ip}"
            );
        }
    }

    #[test]
    fn reconstruction_from_basis_functions() {
        let n = 8usize;
        let signal: Vec<f64> = vec![5.0, 1.0, -2.0, 8.0, 0.0, 3.0, 3.0, -1.0];
        let mut coeffs = signal.clone();
        forward(&mut coeffs);
        for (x, &want) in signal.iter().enumerate() {
            let rec: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(c, &v)| v * BasisFn::for_index(c, n).eval(x))
                .sum();
            assert!((rec - want).abs() < 1e-9, "position {x}");
        }
    }

    #[test]
    fn basis_geometry() {
        let n = 8;
        let b = BasisFn::for_index(0, n);
        assert_eq!((b.start, b.mid, b.end), (0, 8, 8));
        let b = BasisFn::for_index(1, n); // level 0, whole domain
        assert_eq!((b.start, b.mid, b.end), (0, 4, 8));
        let b = BasisFn::for_index(3, n); // level 1, second half
        assert_eq!((b.start, b.mid, b.end), (4, 6, 8));
        let b = BasisFn::for_index(7, n); // level 2, last block
        assert_eq!((b.start, b.mid, b.end), (6, 7, 8));
        assert!((b.amp - (4.0f64 / 8.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn range_sum_matches_pointwise_sum() {
        let n = 16;
        for c in 0..n {
            let basis = BasisFn::for_index(c, n);
            for a in 0..n {
                for b in a..n {
                    let brute: f64 = (a..=b).map(|x| basis.eval(x)).sum();
                    let fast = basis.range_sum(a, b);
                    assert!(
                        (brute - fast).abs() < 1e-12,
                        "c={c} range=({a},{b}): {fast} vs {brute}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn forward_rejects_non_pow2() {
        let mut d = vec![1.0, 2.0, 3.0];
        forward(&mut d);
    }
}
