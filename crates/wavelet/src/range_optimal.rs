//! The paper's range-optimal wavelet synopsis (§3, Theorem 9).
//!
//! ## Construction
//!
//! Consider the *virtual* range-sum matrix `AA[i,j] = s[i,j]`, completed
//! below the diagonal as the signed matrix `M[i,j] = p(j) − q(i)` with
//! `p(j) = P[j+1]` and `q(i) = P[i]` (so `M[i,j] = s[i,j]` for `i ≤ j`).
//! `M = 1·pᵀ − q·1ᵀ` has rank ≤ 2, and because the orthonormal Haar basis
//! contains the constant vector (`H·1 = √N·e₀`), its 2-D transform
//!
//! ```text
//! H M Hᵀ = √N · ( e₀ (Hp)ᵀ − (Hq) e₀ᵀ )
//! ```
//!
//! is non-zero **only in the first row and first column** — the "special
//! structure with only O(N) independent entries" the paper exploits. Keeping
//! the `B` largest of these ≤ `2N − 1` values is, by Parseval, the 2-D Haar
//! synopsis minimizing the Frobenius error on `M` — "point-wise optimal
//! wavelets on AA" — and the whole construction runs in `O(N log N)`, within
//! Theorem 9's `O(N (B log N)^{O(1)})`.
//!
//! ## Objective fine print (documented deviation)
//!
//! The paper never says how `AA` is completed off the upper triangle. Our
//! signed completion counts each range's squared error twice (once negated
//! at the transposed position) plus zero-length diagonal terms, so the
//! minimized objective is a uniform 2× scaling of the all-ranges SSE up to
//! boundary terms — the retained-set *argmin* is unaffected by the uniform
//! factor. EXPERIMENTS.md (ablation A3) quantifies the gap empirically.
//!
//! ## Answering
//!
//! `ŝ[a,b] = F(b) + G(a)` where `F` collects the first-row (and corner)
//! terms and `G` the first-column terms — `O(B)` per query.

use crate::haar::{forward, next_pow2, BasisFn};
use synoptic_core::{Budget, PrefixSums, RangeEstimator, RangeQuery, Result};

/// Which half of the virtual matrix's transform a retained coefficient
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoeffSlot {
    /// `Θ[0][0]` — the joint scaling coefficient.
    Corner,
    /// `Θ[0][c]`, `c ≥ 1` — a function of the query's right endpoint.
    Row(u32),
    /// `Θ[r][0]`, `r ≥ 1` — a function of the query's left endpoint.
    Col(u32),
}

/// The range-optimal wavelet synopsis of Theorem 9.
#[derive(Debug, Clone)]
pub struct RangeOptimalWavelet {
    n: usize,
    /// Padded transform length `N` (power of two ≥ n + 1).
    nn: usize,
    /// Retained `(slot, value)` pairs.
    coeffs: Vec<(CoeffSlot, f64)>,
    /// Σ of squared *dropped* coefficients — the exact Frobenius error on
    /// the virtual matrix (Parseval).
    dropped_energy: f64,
    /// Display label (`"WAVELET-RANGE"`, or `"TOPBB-GREEDY"` for the greedy
    /// selection of [`crate::range_greedy`]).
    name: &'static str,
}

impl RangeOptimalWavelet {
    /// Builds the synopsis keeping `b` coefficients, in `O(N log N)`.
    ///
    /// Both endpoint functions are padded with the constant continuation
    /// `P[n]` (the virtual matrix extended by empty ranges) rather than
    /// zeros, so padding adds no artificial energy.
    pub fn build(ps: &PrefixSums, b: usize) -> Self {
        Self::build_with_budget(ps, b, &Budget::unlimited()).expect("unlimited budget cannot fail")
    }

    /// [`RangeOptimalWavelet::build`] under execution control: one
    /// checkpoint per phase (endpoint vectors, each 1-D transform, the
    /// top-`b` selection), charged with `O(N log N)`-scale work units.
    /// Bit-identical to [`RangeOptimalWavelet::build`] with
    /// [`synoptic_core::Budget::unlimited`].
    pub fn build_with_budget(ps: &PrefixSums, b: usize, budget: &Budget) -> Result<Self> {
        let n = ps.n();
        let nn = next_pow2(n + 1);
        let total = ps.total() as f64;
        let transform_cells = (nn.ilog2() as u64 + 1) * nn as u64;
        budget.charge(nn as u64)?;
        // p(j) = P[j+1], q(i) = P[i], both length nn with constant padding.
        let mut hp: Vec<f64> = (0..nn)
            .map(|j| if j < n { ps.p(j + 1) as f64 } else { total })
            .collect();
        let mut hq: Vec<f64> = (0..nn)
            .map(|i| if i <= n { ps.p(i) as f64 } else { total })
            .collect();
        budget.charge(transform_cells)?;
        forward(&mut hp);
        budget.charge(transform_cells)?;
        forward(&mut hq);
        budget.charge(transform_cells)?; // sort + selection in from_transforms
        Ok(Self::from_transforms(n, &hp, &hq, b))
    }

    /// Builds the synopsis from already-computed 1-D transforms of the two
    /// endpoint vectors (`hp` of `p(j) = P[j+1]`, `hq` of `q(i) = P[i]`,
    /// both padded to the same power-of-two length with the constant
    /// continuation). This is the entry point for dynamically *maintained*
    /// transforms (see `synoptic-stream`).
    pub fn from_transforms(n: usize, hp: &[f64], hq: &[f64], b: usize) -> Self {
        assert_eq!(hp.len(), hq.len());
        let nn = hp.len();
        assert!(nn.is_power_of_two() && nn > n);
        let sqrt_n = (nn as f64).sqrt();

        // Candidate coefficients of Θ = √N(e₀(Hp)ᵀ − (Hq)e₀ᵀ).
        let mut cands: Vec<(CoeffSlot, f64)> = Vec::with_capacity(2 * nn - 1);
        cands.push((CoeffSlot::Corner, sqrt_n * (hp[0] - hq[0])));
        for (c, &v) in hp.iter().enumerate().skip(1) {
            cands.push((CoeffSlot::Row(c as u32), sqrt_n * v));
        }
        for (r, &v) in hq.iter().enumerate().skip(1) {
            cands.push((CoeffSlot::Col(r as u32), -sqrt_n * v));
        }
        cands.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
        let kept: Vec<(CoeffSlot, f64)> = cands
            .iter()
            .take(b)
            .filter(|&&(_, v)| v != 0.0)
            .copied()
            .collect();
        let dropped_energy: f64 = cands.iter().skip(b).map(|&(_, v)| v * v).sum();
        Self {
            n,
            nn,
            coeffs: kept,
            dropped_energy,
            name: "WAVELET-RANGE",
        }
    }

    /// Rebuilds a synopsis from persisted coefficients (see
    /// `synoptic-catalog`). `dropped_energy` restores the Parseval
    /// diagnostic; pass 0.0 if unknown.
    pub fn from_parts(
        n: usize,
        nn: usize,
        coeffs: Vec<(CoeffSlot, f64)>,
        dropped_energy: f64,
    ) -> Self {
        assert!(nn.is_power_of_two() && nn > n);
        Self {
            n,
            nn,
            coeffs,
            dropped_energy,
            name: "WAVELET-RANGE",
        }
    }

    /// Relabels the synopsis (used by alternative selection strategies).
    pub fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// The padded transform length `N`.
    pub fn padded_len(&self) -> usize {
        self.nn
    }

    /// The retained `(slot, value)` pairs.
    pub fn coeffs(&self) -> &[(CoeffSlot, f64)] {
        &self.coeffs
    }

    /// Exact Frobenius error `‖M − M̂‖²_F` on the virtual matrix (Parseval
    /// over the dropped coefficients).
    pub fn virtual_matrix_error(&self) -> f64 {
        self.dropped_energy
    }

    /// The right-endpoint function `F(j)`: corner + first-row terms.
    pub fn f_at(&self, j: usize) -> f64 {
        let inv_sqrt = 1.0 / (self.nn as f64).sqrt();
        let mut acc = 0.0;
        for &(slot, v) in &self.coeffs {
            match slot {
                CoeffSlot::Corner => acc += v / self.nn as f64,
                CoeffSlot::Row(c) => {
                    acc += v * inv_sqrt * BasisFn::for_index(c as usize, self.nn).eval(j)
                }
                CoeffSlot::Col(_) => {}
            }
        }
        acc
    }

    /// The left-endpoint function `G(i)`: first-column terms.
    pub fn g_at(&self, i: usize) -> f64 {
        let inv_sqrt = 1.0 / (self.nn as f64).sqrt();
        let mut acc = 0.0;
        for &(slot, v) in &self.coeffs {
            if let CoeffSlot::Col(r) = slot {
                acc += v * inv_sqrt * BasisFn::for_index(r as usize, self.nn).eval(i);
            }
        }
        acc
    }

    /// The two per-endpoint error arrays for the O(n) SSE evaluator
    /// [`synoptic_core::sse::sse_two_function`]: returns `(e, d)` with
    /// `e[b] = P[b+1] − F(b)` and `d[a] = P[a] + G(a)` — the query error is
    /// `e[b] − d[a]`.
    pub fn endpoint_errors(&self, ps: &PrefixSums) -> (Vec<f64>, Vec<f64>) {
        let e = (0..self.n)
            .map(|b| ps.p(b + 1) as f64 - self.f_at(b))
            .collect();
        let d = (0..self.n).map(|a| ps.p(a) as f64 + self.g_at(a)).collect();
        (e, d)
    }
}

impl RangeEstimator for RangeOptimalWavelet {
    fn n(&self) -> usize {
        self.n
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        self.f_at(q.hi) + self.g_at(q.lo)
    }

    fn storage_words(&self) -> usize {
        2 * self.coeffs.len()
    }

    fn method_name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::{sse_brute, sse_two_function};

    fn ps(vals: &[i64]) -> PrefixSums {
        PrefixSums::from_values(vals)
    }

    #[test]
    fn full_budget_is_exact_on_all_ranges() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2];
        let p = ps(&vals);
        let nn = next_pow2(vals.len() + 1);
        let w = RangeOptimalWavelet::build(&p, 2 * nn - 1);
        assert!(sse_brute(&w, &p) < 1e-6, "sse={}", sse_brute(&w, &p));
        assert!(w.virtual_matrix_error() < 1e-6);
    }

    #[test]
    fn estimates_decompose_into_endpoint_functions() {
        let vals = vec![5i64, 2, 8, 1, 9, 9];
        let p = ps(&vals);
        let w = RangeOptimalWavelet::build(&p, 4);
        // ŝ depends on (lo) and (hi) separately.
        for q in RangeQuery::all(6) {
            let want = w.f_at(q.hi) + w.g_at(q.lo);
            assert!((w.estimate(q) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn two_function_sse_matches_brute() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let p = ps(&vals);
        for b in [1, 3, 6, 10] {
            let w = RangeOptimalWavelet::build(&p, b);
            let (e, d) = w.endpoint_errors(&p);
            let fast = sse_two_function(&e, &d);
            let brute = sse_brute(&w, &p);
            assert!(
                (fast - brute).abs() <= 1e-6 * (1.0 + brute),
                "b={b}: {fast} vs {brute}"
            );
        }
    }

    #[test]
    fn dropped_energy_decreases_with_budget() {
        let vals = vec![40i64, 1, 2, 1, 0, 0, 33, 35, 2, 1, 1, 0, 28, 3, 1];
        let p = ps(&vals);
        let mut prev = f64::INFINITY;
        for b in [1, 2, 4, 8, 16, 31] {
            let w = RangeOptimalWavelet::build(&p, b);
            assert!(w.virtual_matrix_error() <= prev + 1e-9, "b={b}");
            prev = w.virtual_matrix_error();
        }
    }

    #[test]
    fn virtual_matrix_error_matches_direct_frobenius() {
        // Build the padded virtual matrix explicitly and compare Frobenius
        // errors — validates the whole first-row/first-column algebra.
        let vals = vec![7i64, 2, 9, 4];
        let p = ps(&vals);
        let n = vals.len();
        let nn = next_pow2(n + 1); // 8
        let total = p.total() as f64;
        let pj = |j: usize| if j < n { p.p(j + 1) as f64 } else { total };
        let qi = |i: usize| if i <= n { p.p(i) as f64 } else { total };
        for b in [1, 3, 5, 9] {
            let w = RangeOptimalWavelet::build(&p, b);
            let mut frob = 0.0;
            for i in 0..nn {
                for j in 0..nn {
                    let truth = pj(j) - qi(i);
                    let est = w.f_at(j) + w.g_at(i);
                    frob += (truth - est) * (truth - est);
                }
            }
            assert!(
                (frob - w.virtual_matrix_error()).abs() <= 1e-6 * (1.0 + frob),
                "b={b}: direct {frob} vs parseval {}",
                w.virtual_matrix_error()
            );
        }
    }

    #[test]
    fn selection_is_optimal_for_the_virtual_matrix() {
        // Any swap of a kept coefficient for a dropped one of smaller
        // magnitude cannot reduce the Frobenius error (Parseval).
        let vals = vec![9i64, 0, 3, 7, 1, 1, 8];
        let p = ps(&vals);
        let w4 = RangeOptimalWavelet::build(&p, 4);
        let w5 = RangeOptimalWavelet::build(&p, 5);
        // The b=4 error equals b=5 error + (5th coefficient)².
        let fifth = w5.coeffs()[4].1;
        assert!(
            (w4.virtual_matrix_error() - (w5.virtual_matrix_error() + fifth * fifth)).abs() < 1e-6,
            "Parseval accounting"
        );
    }

    #[test]
    fn range_optimal_beats_point_wavelet_on_range_sse() {
        // The headline qualitative claim of §3: optimizing for ranges helps
        // range queries. Use spiky data where the point synopsis wastes its
        // budget reconstructing spikes exactly.
        use crate::point_topb::PointWaveletSynopsis;
        let vals = vec![
            40i64, 1, 2, 1, 0, 0, 33, 35, 2, 1, 1, 0, 28, 3, 1, 2, 17, 0, 0, 5, 9, 1, 1, 30,
        ];
        let p = ps(&vals);
        let b = 6;
        let range_w = RangeOptimalWavelet::build(&p, b);
        let point_w = PointWaveletSynopsis::build(&vals, b);
        let r_sse = sse_brute(&range_w, &p);
        let p_sse = sse_brute(&point_w, &p);
        assert!(
            r_sse < p_sse,
            "range-optimal ({r_sse}) should beat point-top-B ({p_sse}) at b={b}"
        );
    }

    #[test]
    fn budgeted_build_matches_and_aborts_cleanly() {
        use synoptic_core::SynopticError;
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        let p = ps(&vals);
        let free = RangeOptimalWavelet::build(&p, 5);
        let metered = Budget::unlimited();
        let tracked = RangeOptimalWavelet::build_with_budget(&p, 5, &metered).unwrap();
        assert_eq!(free.coeffs(), tracked.coeffs());
        assert!(metered.cells_used() > 0);
        let capped = Budget::unlimited().with_max_cells(1);
        assert!(matches!(
            RangeOptimalWavelet::build_with_budget(&p, 5, &capped),
            Err(SynopticError::CellBudgetExceeded { .. })
        ));
    }

    #[test]
    fn storage_and_name() {
        let vals = vec![1i64, 2, 3, 4, 5];
        let p = ps(&vals);
        let w = RangeOptimalWavelet::build(&p, 3);
        assert!(w.storage_words() <= 6);
        assert_eq!(w.method_name(), "WAVELET-RANGE");
        assert_eq!(w.n(), 5);
    }
}
