//! Sparse coefficient sets: thresholding, reconstruction, and evaluation.

use crate::haar::BasisFn;

/// A sparse set of retained Haar coefficients over a (padded) domain of
/// power-of-two length `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCoeffs {
    n: usize,
    /// `(coefficient index, value)` pairs, sorted by index.
    entries: Vec<(u32, f64)>,
}

impl SparseCoeffs {
    /// Keeps the `b` largest-magnitude coefficients of a dense transform
    /// (ties broken toward smaller indices, for determinism). This is the
    /// L2-optimal `b`-term synopsis by Parseval.
    pub fn top_b(dense: &[f64], b: usize) -> Self {
        assert!(dense.len().is_power_of_two());
        let mut order: Vec<u32> = (0..dense.len() as u32).collect();
        order.sort_by(|&x, &y| {
            dense[y as usize]
                .abs()
                .total_cmp(&dense[x as usize].abs())
                .then(x.cmp(&y))
        });
        let mut entries: Vec<(u32, f64)> = order
            .into_iter()
            .take(b)
            .map(|i| (i, dense[i as usize]))
            .filter(|&(_, v)| v != 0.0)
            .collect();
        entries.sort_by_key(|&(i, _)| i);
        Self {
            n: dense.len(),
            entries,
        }
    }

    /// An explicitly-given sparse set (for tests and ablations).
    pub fn from_entries(n: usize, mut entries: Vec<(u32, f64)>) -> Self {
        assert!(n.is_power_of_two());
        entries.sort_by_key(|&(i, _)| i);
        Self { n, entries }
    }

    /// Domain length (power of two).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of retained coefficients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no coefficients are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retained `(index, value)` pairs.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Point reconstruction `Σ θ_c · h_c(x)` in O(B).
    pub fn eval(&self, x: usize) -> f64 {
        self.entries
            .iter()
            .map(|&(c, v)| v * BasisFn::for_index(c as usize, self.n).eval(x))
            .sum()
    }

    /// Range-sum reconstruction `Σ θ_c · Σ_{a≤x≤b} h_c(x)` in O(B).
    pub fn range_sum(&self, a: usize, b: usize) -> f64 {
        self.entries
            .iter()
            .map(|&(c, v)| v * BasisFn::for_index(c as usize, self.n).range_sum(a, b))
            .sum()
    }

    /// Dense reconstruction of the whole signal in O(B·n) (diagnostics).
    pub fn reconstruct(&self) -> Vec<f64> {
        (0..self.n).map(|x| self.eval(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::forward;

    fn transform(signal: &[f64]) -> Vec<f64> {
        let mut d = signal.to_vec();
        forward(&mut d);
        d
    }

    #[test]
    fn keeping_all_coefficients_is_exact() {
        let signal = vec![5.0, 1.0, -2.0, 8.0, 0.0, 3.0, 3.0, -1.0];
        let sc = SparseCoeffs::top_b(&transform(&signal), 8);
        let rec = sc.reconstruct();
        for (a, b) in signal.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-9);
        }
        for a in 0..8 {
            for b in a..8 {
                let brute: f64 = signal[a..=b].iter().sum();
                assert!((sc.range_sum(a, b) - brute).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn top_b_minimizes_l2_among_equal_size_subsets() {
        // Parseval: dropping a coefficient costs exactly its square, so the
        // top-b set dominates any other b-subset.
        let signal = vec![9.0, 9.0, 1.0, 0.0, 4.0, 4.0, 4.0, 4.0];
        let dense = transform(&signal);
        let b = 3;
        let top = SparseCoeffs::top_b(&dense, b);
        let l2 = |sc: &SparseCoeffs| -> f64 {
            sc.reconstruct()
                .iter()
                .zip(&signal)
                .map(|(r, s)| (r - s) * (r - s))
                .sum()
        };
        let top_err = l2(&top);
        // Compare against every other 3-subset.
        let idx: Vec<u32> = (0..8).collect();
        for i in 0..8usize {
            for j in (i + 1)..8 {
                for k in (j + 1)..8 {
                    let sub = SparseCoeffs::from_entries(
                        8,
                        vec![(idx[i], dense[i]), (idx[j], dense[j]), (idx[k], dense[k])],
                    );
                    assert!(
                        top_err <= l2(&sub) + 1e-9,
                        "subset ({i},{j},{k}) beat top-b: {} vs {top_err}",
                        l2(&sub)
                    );
                }
            }
        }
    }

    #[test]
    fn zero_coefficients_are_not_stored() {
        let sc = SparseCoeffs::top_b(&[0.0, 0.0, 3.0, 0.0], 4);
        assert_eq!(sc.len(), 1);
        assert!(!sc.is_empty());
        assert_eq!(sc.entries(), &[(2, 3.0)]);
    }

    #[test]
    fn empty_synopsis_estimates_zero() {
        let sc = SparseCoeffs::top_b(&[0.0; 4], 2);
        assert!(sc.is_empty());
        assert_eq!(sc.eval(1), 0.0);
        assert_eq!(sc.range_sum(0, 3), 0.0);
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-magnitude coefficients: the smaller index wins.
        let sc = SparseCoeffs::top_b(&[0.0, 5.0, -5.0, 0.0], 1);
        assert_eq!(sc.entries(), &[(1, 5.0)]);
    }
}
