//! # synoptic-bench
//!
//! Criterion benchmark harness for the `synoptic` workspace. Each bench
//! target regenerates one artifact of the paper's evaluation:
//!
//! * `fig1_sse` — Figure 1: builds every method at every budget on the
//!   127-key Zipf(1.8) dataset and reports both wall-clock and the SSE
//!   series (printed to stderr alongside the timings).
//! * `claims` — the §4 narrative claims, including the reopt (§5) pass.
//! * `construction` — construction-time scaling per method across `n` and
//!   `B` (the complexity shapes of Theorems 2, 6, 8, 9).
//! * `query` — per-query estimation latency per representation.
//! * `wavelet` — Haar transform and synopsis-construction microbenches.
//!
//! Shared dataset helpers live here so every bench measures the same inputs.

use synoptic_core::{DataArray, PrefixSums};
use synoptic_data::zipf::{paper_dataset, ZipfConfig};

/// The paper's dataset (127 keys, Zipf 1.8, fair-coin rounding, seed 2001).
pub fn paper_data() -> (DataArray, PrefixSums) {
    let d = paper_dataset(&ZipfConfig::default());
    let ps = d.prefix_sums();
    (d, ps)
}

/// A scaled variant of the paper's dataset for `n`-sweeps.
pub fn data_of_size(n: usize) -> (DataArray, PrefixSums) {
    let d = paper_dataset(&ZipfConfig {
        n,
        ..ZipfConfig::default()
    });
    let ps = d.prefix_sums();
    (d, ps)
}
