//! Construction-time scaling per algorithm: the complexity shapes of the
//! paper's theorems (O(n²B) for SAP0/SAP1/POINT-OPT — Thms 6/8; the
//! hull-pruned pseudo-polynomial OPT-A DP — Thm 2; O(n log n) wavelets —
//! Thm 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use synoptic_bench::data_of_size;
use synoptic_core::RoundingMode;
use synoptic_hist::opta::{build_opt_a, OptAConfig};
use synoptic_hist::sap0::build_sap0;
use synoptic_hist::sap1::build_sap1;
use synoptic_hist::vopt::{build_point_opt, PointWeighting};
use synoptic_wavelet::RangeOptimalWavelet;

fn bench_scaling_in_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction_vs_n");
    group.sample_size(10);
    let b = 8;
    for n in [64usize, 127, 256, 512] {
        let (data, ps) = data_of_size(n);
        group.bench_with_input(BenchmarkId::new("sap0", n), &n, |bench, _| {
            bench.iter(|| black_box(build_sap0(&ps, b).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("sap1", n), &n, |bench, _| {
            bench.iter(|| black_box(build_sap1(&ps, b).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("point_opt", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    build_point_opt(data.values(), &ps, b, PointWeighting::RangeInclusion)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("opt_a_unrounded", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("wavelet_range", n), &n, |bench, _| {
            bench.iter(|| black_box(RangeOptimalWavelet::build(&ps, b)))
        });
    }
    group.finish();
}

fn bench_scaling_in_b(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction_vs_b");
    group.sample_size(10);
    let (_, ps) = data_of_size(127);
    for b in [4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::new("sap0", b), &b, |bench, &b| {
            bench.iter(|| black_box(build_sap0(&ps, b).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("opt_a_unrounded", b), &b, |bench, &b| {
            bench.iter(|| {
                black_box(build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("opt_a_integral", b), &b, |bench, &b| {
            bench.iter(|| {
                black_box(
                    build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::NearestInt)).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_in_n, bench_scaling_in_b);
criterion_main!(benches);
