//! Streaming-maintenance benches: O(log n) coefficient updates vs full
//! rebuilds, across domain sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use synoptic_bench::data_of_size;
use synoptic_stream::{Fenwick, StreamingHaar, StreamingRangeOptimal};
use synoptic_wavelet::RangeOptimalWavelet;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_update");
    for n in [128usize, 1024, 8192] {
        let (data, _) = data_of_size(n);
        group.bench_with_input(BenchmarkId::new("fenwick", n), &n, |bench, &n| {
            let mut f = Fenwick::from_values(data.values());
            let mut i = 0usize;
            bench.iter(|| {
                f.update(i % n, 1);
                i = i.wrapping_add(7919);
                black_box(&f);
            })
        });
        group.bench_with_input(BenchmarkId::new("streaming_haar", n), &n, |bench, &n| {
            let mut s = StreamingHaar::new(data.values()).unwrap();
            let mut i = 0usize;
            bench.iter(|| {
                s.update(i % n, 1).unwrap();
                i = i.wrapping_add(7919);
                black_box(&s);
            })
        });
        group.bench_with_input(
            BenchmarkId::new("streaming_range_optimal", n),
            &n,
            |bench, &n| {
                let mut s = StreamingRangeOptimal::new(data.values()).unwrap();
                let mut i = 0usize;
                bench.iter(|| {
                    s.update(i % n, 1).unwrap();
                    i = i.wrapping_add(7919);
                    black_box(&s);
                })
            },
        );
    }
    group.finish();
}

fn bench_snapshot_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("refresh_b16");
    group.sample_size(20);
    for n in [1024usize, 8192] {
        let (data, ps) = data_of_size(n);
        let streaming = StreamingRangeOptimal::new(data.values()).unwrap();
        group.bench_with_input(BenchmarkId::new("snapshot", n), &n, |bench, _| {
            bench.iter(|| black_box(streaming.snapshot(16)))
        });
        group.bench_with_input(BenchmarkId::new("full_rebuild", n), &n, |bench, _| {
            bench.iter(|| black_box(RangeOptimalWavelet::build(&ps, 16)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates, bench_snapshot_vs_rebuild);
criterion_main!(benches);
