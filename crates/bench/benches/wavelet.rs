//! Wavelet microbenches: the Haar transform substrate and the three
//! synopsis constructions, including Theorem 9's near-linear-time claim
//! (compare `wavelet_build/range_optimal` against `construction_vs_n`'s
//! quadratic histogram DPs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use synoptic_bench::data_of_size;
use synoptic_wavelet::haar::{forward, inverse};
use synoptic_wavelet::{PointWaveletSynopsis, PrefixWaveletSynopsis, RangeOptimalWavelet};

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("haar_transform");
    for log in [8usize, 12, 16] {
        let n = 1usize << log;
        let signal: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 251) as f64).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |bench, _| {
            bench.iter(|| {
                let mut d = signal.clone();
                forward(&mut d);
                black_box(d)
            })
        });
        group.bench_with_input(BenchmarkId::new("roundtrip", n), &n, |bench, _| {
            bench.iter(|| {
                let mut d = signal.clone();
                forward(&mut d);
                inverse(&mut d);
                black_box(d)
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("wavelet_build");
    let b = 16;
    for n in [127usize, 1024, 8192] {
        let (data, ps) = data_of_size(n);
        group.bench_with_input(BenchmarkId::new("point_topb", n), &n, |bench, _| {
            bench.iter(|| black_box(PointWaveletSynopsis::build(data.values(), b)))
        });
        group.bench_with_input(BenchmarkId::new("prefix_topb", n), &n, |bench, _| {
            bench.iter(|| black_box(PrefixWaveletSynopsis::build(&ps, b)))
        });
        group.bench_with_input(BenchmarkId::new("range_optimal", n), &n, |bench, _| {
            bench.iter(|| black_box(RangeOptimalWavelet::build(&ps, b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transform, bench_build);
criterion_main!(benches);
