//! Per-query estimation latency per representation: value histograms answer
//! in O(1) through the telescoping prefix table, SAP0/SAP1 in O(log B) for
//! the bucket lookup, wavelet synopses in O(B).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synoptic_bench::paper_data;
use synoptic_core::{RangeEstimator, RangeQuery};
use synoptic_data::workload::random_ranges;
use synoptic_eval::methods::MethodSpec;

fn bench_query(c: &mut Criterion) {
    let (data, ps) = paper_data();
    let queries: Vec<RangeQuery> = random_ranges(data.n(), 1024, 7);
    let budget = 32;

    let mut group = c.benchmark_group("query_latency_1024");
    for m in [
        MethodSpec::Naive,
        MethodSpec::OptA,
        MethodSpec::OptAIntegral,
        MethodSpec::Sap0,
        MethodSpec::Sap1,
        MethodSpec::WaveletPoint,
        MethodSpec::WaveletRange,
    ] {
        let est = m
            .build_at_budget(data.values(), &ps, budget)
            .expect("buildable at 32 words");
        group.bench_function(m.name(), |bench| {
            bench.iter(|| {
                let mut acc = 0.0;
                for &q in &queries {
                    acc += est.estimate(black_box(q));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
