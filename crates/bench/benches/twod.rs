//! 2-D extension benches: tile-histogram and tensor-wavelet construction and
//! rectangle-query latency on synthetic joint distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use synoptic_twod::{GreedyTileHistogram, Grid2D, GridHistogram, RectEstimator, RectQuery, Wavelet2D};

fn bumpy(n: usize) -> Grid2D {
    let mut g = Grid2D::zeros(n, n).expect("n > 0");
    for x in 0..n {
        for y in 0..n {
            let v = 40.0 * (-(((x as f64 - n as f64 * 0.3).powi(2)
                + (y as f64 - n as f64 * 0.6).powi(2))
                / (n as f64)))
                .exp()
                + ((x * 7 + y * 3) % 5) as f64;
            *g.get_mut(x, y) = v.round() as i64;
        }
    }
    g
}

fn bench_build_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("twod_build");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let g = bumpy(n);
        let ps = g.prefix_sums();
        group.bench_with_input(BenchmarkId::new("grid_4x4", n), &n, |bench, _| {
            bench.iter(|| black_box(GridHistogram::build(&ps, 4, 4).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("mhist_16", n), &n, |bench, _| {
            bench.iter(|| black_box(GreedyTileHistogram::build(&g, &ps, 16).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("wavelet_16", n), &n, |bench, _| {
            bench.iter(|| black_box(Wavelet2D::build(&g, 16)))
        });
    }
    group.finish();
}

fn bench_query_2d(c: &mut Criterion) {
    let n = 64usize;
    let g = bumpy(n);
    let ps = g.prefix_sums();
    let grid = GridHistogram::build(&ps, 4, 4).unwrap();
    let mhist = GreedyTileHistogram::build(&g, &ps, 16).unwrap();
    let wave = Wavelet2D::build(&g, 16);
    let queries: Vec<RectQuery> = (0..512)
        .map(|i| {
            let x0 = (i * 13) % n;
            let y0 = (i * 29) % n;
            RectQuery {
                x0: x0.min(n - 2),
                x1: (x0 + 11).min(n - 1).max(x0.min(n - 2)),
                y0: y0.min(n - 2),
                y1: (y0 + 17).min(n - 1).max(y0.min(n - 2)),
            }
        })
        .collect();
    let mut group = c.benchmark_group("twod_query_512");
    group.bench_function("grid", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &q in &queries {
                acc += grid.estimate(black_box(q));
            }
            black_box(acc)
        })
    });
    group.bench_function("mhist", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &q in &queries {
                acc += mhist.estimate(black_box(q));
            }
            black_box(acc)
        })
    });
    group.bench_function("wavelet", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &q in &queries {
                acc += wave.estimate(black_box(q));
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build_2d, bench_query_2d);
criterion_main!(benches);
