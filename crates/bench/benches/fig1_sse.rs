//! Figure 1 regeneration bench: times the full `(method × budget)` sweep on
//! the paper's dataset and prints the SSE series (the figure's y-values)
//! alongside the timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use synoptic_bench::paper_data;
use synoptic_eval::methods::{exact_sse, MethodSpec};

fn bench_fig1(c: &mut Criterion) {
    let (data, ps) = paper_data();
    let budgets = [8usize, 16, 32, 64];

    // Print the figure's series once, so `cargo bench` output doubles as the
    // figure regeneration record.
    eprintln!("\n== Figure 1 series (n = {}, SSE over all ranges) ==", data.n());
    for m in MethodSpec::paper_figure1() {
        eprint!("{:<12}", m.name());
        for &b in &budgets {
            match m.build_at_budget(data.values(), &ps, b) {
                Ok(est) => eprint!(" {:>12.4e}", exact_sse(est.as_ref(), &ps)),
                Err(_) => eprint!(" {:>12}", "-"),
            }
        }
        eprintln!();
    }

    let mut group = c.benchmark_group("fig1_build_and_score");
    group.sample_size(10);
    for m in MethodSpec::paper_figure1() {
        for &budget in &budgets {
            if m.build_at_budget(data.values(), &ps, budget).is_err() {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(m.name(), budget),
                &budget,
                |bench, &budget| {
                    bench.iter(|| {
                        let est = m
                            .build_at_budget(black_box(data.values()), &ps, budget)
                            .expect("buildable");
                        black_box(exact_sse(est.as_ref(), &ps))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
