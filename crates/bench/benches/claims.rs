//! Benchmarks backing the §4/§5 claims: the reopt normal-equation solve
//! (`O(nB² + B³)`, paper §5) and the full claims pipeline, with the measured
//! claim ratios printed alongside the timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use synoptic_bench::paper_data;
use synoptic_core::RoundingMode;
use synoptic_data::zipf::ZipfConfig;
use synoptic_eval::claims::run_all_claims;
use synoptic_eval::figure1::Fig1Config;
use synoptic_eval::methods::MethodSpec;
use synoptic_hist::opta::{build_opt_a, OptAConfig};
use synoptic_hist::reopt::{normal_equations, reoptimize};

fn bench_reopt(c: &mut Criterion) {
    let (_, ps) = paper_data();
    let mut group = c.benchmark_group("reopt");
    for b in [8usize, 16, 32] {
        let base = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        let bk = base.histogram.bucketing().clone();
        group.bench_with_input(BenchmarkId::new("normal_equations", b), &b, |bench, _| {
            bench.iter(|| black_box(normal_equations(&bk, &ps)))
        });
        group.bench_with_input(BenchmarkId::new("full_reopt", b), &b, |bench, _| {
            bench.iter(|| black_box(reoptimize(&bk, &ps, "OPT-A").unwrap()))
        });
        let re = reoptimize(&bk, &ps, "OPT-A").unwrap();
        eprintln!(
            "reopt gain at B = {b}: {:.1}% (paper T4: up to 41%)",
            100.0 * (1.0 - re.sse / base.sse)
        );
    }
    group.finish();
}

fn bench_claims_pipeline(c: &mut Criterion) {
    let cfg = Fig1Config {
        dataset: ZipfConfig::default(),
        budgets: vec![16, 32, 48],
        methods: MethodSpec::paper_figure1(),
    };
    // Print the claims once so the bench log records the measured ratios.
    let report = run_all_claims(&cfg).expect("claims run");
    for claim in &report.claims {
        eprintln!("[{}] {} — {}", claim.id, claim.paper, claim.measured);
    }
    let mut group = c.benchmark_group("claims_pipeline");
    group.sample_size(10);
    group.bench_function("run_all_claims", |bench| {
        bench.iter(|| black_box(run_all_claims(&cfg).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_reopt, bench_claims_pipeline);
criterion_main!(benches);
