//! Uniform access to every synopsis family at a given storage budget.

use std::time::Instant;

use synoptic_core::{
    Budget, BuildAttempt, BuildOutcome, PrefixSums, RangeEstimator, Result, SynopticError,
};
use synoptic_hist::builder::{build as build_hist, build_anytime, AnytimeParams, HistogramMethod};
use synoptic_wavelet::{PointWaveletSynopsis, PrefixWaveletSynopsis, RangeOptimalWavelet};

/// Every method the harness can evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MethodSpec {
    /// Single global average.
    Naive,
    /// Equi-width histogram.
    EquiWidth,
    /// Equi-depth histogram.
    EquiDepth,
    /// Max-diff histogram.
    MaxDiff,
    /// Classical V-optimal point histogram (uniform weights).
    VOptUniform,
    /// The paper's POINT-OPT baseline (range-inclusion weights).
    PointOpt,
    /// The paper's A0 heuristic.
    A0,
    /// Range-optimal SAP0 (3 words/bucket).
    Sap0,
    /// Range-optimal SAP1 (5 words/bucket).
    Sap1,
    /// Range-optimal OPT-A, unrounded answering.
    OptA,
    /// Range-optimal OPT-A, integral (paper) answering.
    OptAIntegral,
    /// OPT-A-ROUNDED with parameter ε.
    OptARounded(f64),
    /// OPT-A boundaries + §5 re-optimized values.
    OptAReopt,
    /// A0 boundaries + §5 re-optimized values.
    A0Reopt,
    /// OPT-A boundaries + per-bucket min/max (certified intervals;
    /// 4 words/bucket, extension).
    BoundedOptA,
    /// Top-B Haar coefficients of `A` (Matias–Vitter–Wang).
    WaveletPoint,
    /// Top-B Haar coefficients of the prefix sums.
    WaveletPrefix,
    /// The paper's range-optimal virtual-matrix wavelets (Theorem 9); the
    /// figure's `TOPBB` series.
    WaveletRange,
    /// OMP-style greedy selection + value re-fit over the same family
    /// (extension; see `synoptic_wavelet::range_greedy`).
    WaveletRangeGreedy,
}

impl MethodSpec {
    /// Display name used in tables and CSV headers.
    pub fn name(&self) -> &'static str {
        match self {
            MethodSpec::Naive => "NAIVE",
            MethodSpec::EquiWidth => "EQUI-WIDTH",
            MethodSpec::EquiDepth => "EQUI-DEPTH",
            MethodSpec::MaxDiff => "MAX-DIFF",
            MethodSpec::VOptUniform => "V-OPT",
            MethodSpec::PointOpt => "POINT-OPT",
            MethodSpec::A0 => "A0",
            MethodSpec::Sap0 => "SAP0",
            MethodSpec::Sap1 => "SAP1",
            MethodSpec::OptA => "OPT-A",
            MethodSpec::OptAIntegral => "OPT-A(int)",
            MethodSpec::OptARounded(_) => "OPT-A-ROUNDED",
            MethodSpec::OptAReopt => "OPT-A-reopt",
            MethodSpec::A0Reopt => "A0-reopt",
            MethodSpec::BoundedOptA => "BOUNDED",
            MethodSpec::WaveletPoint => "WAVELET-POINT",
            MethodSpec::WaveletPrefix => "WAVELET-PREFIX",
            MethodSpec::WaveletRange => "TOPBB",
            MethodSpec::WaveletRangeGreedy => "TOPBB-GREEDY",
        }
    }

    /// The method set plotted in the paper's Figure 1.
    pub fn paper_figure1() -> Vec<MethodSpec> {
        vec![
            MethodSpec::Naive,
            MethodSpec::PointOpt,
            MethodSpec::A0,
            MethodSpec::Sap0,
            MethodSpec::Sap1,
            MethodSpec::OptA,
            MethodSpec::WaveletRange,
        ]
    }

    /// Everything, for the extended sweeps.
    pub fn all() -> Vec<MethodSpec> {
        vec![
            MethodSpec::Naive,
            MethodSpec::EquiWidth,
            MethodSpec::EquiDepth,
            MethodSpec::MaxDiff,
            MethodSpec::VOptUniform,
            MethodSpec::PointOpt,
            MethodSpec::A0,
            MethodSpec::Sap0,
            MethodSpec::Sap1,
            MethodSpec::OptA,
            MethodSpec::OptAIntegral,
            MethodSpec::OptARounded(0.25),
            MethodSpec::OptAReopt,
            MethodSpec::A0Reopt,
            MethodSpec::BoundedOptA,
            MethodSpec::WaveletPoint,
            MethodSpec::WaveletPrefix,
            MethodSpec::WaveletRange,
            MethodSpec::WaveletRangeGreedy,
        ]
    }

    /// Builds the estimator within `budget_words` of storage. Wavelet
    /// methods keep `budget/2` coefficients (index + value per coefficient);
    /// histogram methods use their per-bucket word accounting.
    pub fn build_at_budget(
        &self,
        values: &[i64],
        ps: &PrefixSums,
        budget_words: usize,
    ) -> Result<Box<dyn RangeEstimator>> {
        let wavelet_b = |budget: usize| -> Result<usize> {
            if budget < 2 {
                return Err(SynopticError::BudgetTooSmall {
                    words: budget,
                    minimum: 2,
                });
            }
            Ok(budget / 2)
        };
        Ok(match self {
            MethodSpec::WaveletPoint => Box::new(PointWaveletSynopsis::build(
                values,
                wavelet_b(budget_words)?,
            )),
            MethodSpec::WaveletPrefix => {
                Box::new(PrefixWaveletSynopsis::build(ps, wavelet_b(budget_words)?))
            }
            MethodSpec::WaveletRange => {
                Box::new(RangeOptimalWavelet::build(ps, wavelet_b(budget_words)?))
            }
            MethodSpec::WaveletRangeGreedy => Box::new(synoptic_wavelet::build_range_greedy(
                ps,
                wavelet_b(budget_words)?,
            )),
            hist => {
                let hm = hist
                    .histogram_method()
                    .expect("wavelets handled above; everything else is a histogram");
                build_hist(hm, values, ps, budget_words)?
            }
        })
    }

    /// The histogram-builder equivalent, `None` for wavelet methods.
    pub fn histogram_method(&self) -> Option<HistogramMethod> {
        Some(match self {
            MethodSpec::Naive => HistogramMethod::Naive,
            MethodSpec::EquiWidth => HistogramMethod::EquiWidth,
            MethodSpec::EquiDepth => HistogramMethod::EquiDepth,
            MethodSpec::MaxDiff => HistogramMethod::MaxDiff,
            MethodSpec::VOptUniform => HistogramMethod::VOptUniform,
            MethodSpec::PointOpt => HistogramMethod::PointOpt,
            MethodSpec::A0 => HistogramMethod::A0,
            MethodSpec::Sap0 => HistogramMethod::Sap0,
            MethodSpec::Sap1 => HistogramMethod::Sap1,
            MethodSpec::OptA => HistogramMethod::OptA,
            MethodSpec::OptAIntegral => HistogramMethod::OptAIntegral,
            MethodSpec::OptARounded(eps) => HistogramMethod::OptARounded { eps: *eps },
            MethodSpec::OptAReopt => HistogramMethod::OptAReopt,
            MethodSpec::A0Reopt => HistogramMethod::A0Reopt,
            MethodSpec::BoundedOptA => HistogramMethod::BoundedOptA,
            MethodSpec::WaveletPoint
            | MethodSpec::WaveletPrefix
            | MethodSpec::WaveletRange
            | MethodSpec::WaveletRangeGreedy => return None,
        })
    }

    /// Builds the wavelet family of `self` with `b` retained coefficients
    /// under `budget`. Panics on histogram variants (callers dispatch those
    /// to the histogram ladder first).
    fn build_wavelet_with_budget(
        &self,
        values: &[i64],
        ps: &PrefixSums,
        b: usize,
        budget: &Budget,
    ) -> Result<Box<dyn RangeEstimator>> {
        match self {
            MethodSpec::WaveletPoint => PointWaveletSynopsis::build_with_budget(values, b, budget)
                .map(|w| Box::new(w) as Box<dyn RangeEstimator>),
            MethodSpec::WaveletPrefix => PrefixWaveletSynopsis::build_with_budget(ps, b, budget)
                .map(|w| Box::new(w) as Box<dyn RangeEstimator>),
            MethodSpec::WaveletRange => RangeOptimalWavelet::build_with_budget(ps, b, budget)
                .map(|w| Box::new(w) as Box<dyn RangeEstimator>),
            MethodSpec::WaveletRangeGreedy => {
                synoptic_wavelet::build_range_greedy_with_budget(ps, b, budget)
                    .map(|w| Box::new(w) as Box<dyn RangeEstimator>)
            }
            _ => unreachable!("histograms handled above"),
        }
    }

    /// Like [`MethodSpec::build_at_budget`] but under execution control,
    /// returning the estimator together with its [`BuildOutcome`]
    /// provenance. Histogram methods descend the anytime ladder
    /// (`synoptic_hist::build_anytime`). A wavelet method that exhausts
    /// its budget first retries the *same* family at half the coefficient
    /// count under a fresh budget — truncating to the top `B/2`
    /// coefficients is the wavelet-native degradation, typically far
    /// cheaper than the full-B selection — and only if that rung also
    /// exhausts its budget does the build fall into the histogram ladder
    /// at the equi-depth tier. Every abandoned rung is recorded in
    /// [`BuildOutcome::attempts`] (the truncation rung as `"NAME(B/2)"`).
    /// Unconstrained `params` reproduce [`MethodSpec::build_at_budget`]
    /// bit-for-bit.
    pub fn build_tracked(
        &self,
        values: &[i64],
        ps: &PrefixSums,
        budget_words: usize,
        params: &AnytimeParams,
    ) -> Result<(Box<dyn RangeEstimator>, BuildOutcome)> {
        if let Some(hm) = self.histogram_method() {
            let r = build_anytime(hm, values, ps, budget_words, params)?;
            return Ok((r.estimator, r.outcome));
        }
        // Wavelet tier: one constrained attempt of the method itself.
        let make_budget = || {
            let mut budget = Budget::unlimited();
            if let Some(d) = params.deadline {
                budget = budget.with_deadline(d);
            }
            if let Some(c) = params.max_cells {
                budget = budget.with_max_cells(c);
            }
            if let Some(t) = &params.cancel {
                budget = budget.with_cancel_token(t.clone());
            }
            budget
        };
        let b = if budget_words < 2 {
            return Err(SynopticError::BudgetTooSmall {
                words: budget_words,
                minimum: 2,
            });
        } else {
            budget_words / 2
        };
        let budget = make_budget();
        let started = Instant::now();
        let attempt = self.build_wavelet_with_budget(values, ps, b, &budget);
        let elapsed_ms = started.elapsed().as_millis() as u64;
        let first_failed = match attempt {
            Ok(est) => {
                return Ok((
                    est,
                    BuildOutcome::direct(self.name(), elapsed_ms, budget.cells_used()),
                ))
            }
            Err(e) if BuildOutcome::error_triggers_fallback(&e) => BuildAttempt {
                method: self.name().to_string(),
                error: e.to_string(),
                elapsed_ms,
                cells: budget.cells_used(),
            },
            Err(e) => return Err(e),
        };
        let mut attempts = vec![first_failed];
        // Wavelet-native fallback rung: same family, top B/2 coefficients,
        // fresh budget (the first attempt's cell spend is not charged
        // against the retry; an absolute deadline still applies as-is).
        if b / 2 >= 1 {
            let rung_name = format!("{}(B/2)", self.name());
            let retry_budget = make_budget();
            let retry_started = Instant::now();
            let retry = self.build_wavelet_with_budget(values, ps, b / 2, &retry_budget);
            let retry_ms = retry_started.elapsed().as_millis() as u64;
            match retry {
                Ok(est) => {
                    let total: u64 = attempts.iter().map(|a| a.elapsed_ms).sum();
                    let cells: u64 = attempts.iter().map(|a| a.cells).sum();
                    return Ok((
                        est,
                        BuildOutcome {
                            requested: self.name().to_string(),
                            used: rung_name,
                            tier: 1,
                            attempts,
                            elapsed_ms: total + retry_ms,
                            cells: cells + retry_budget.cells_used(),
                        },
                    ));
                }
                Err(e) if BuildOutcome::error_triggers_fallback(&e) => {
                    attempts.push(BuildAttempt {
                        method: rung_name,
                        error: e.to_string(),
                        elapsed_ms: retry_ms,
                        cells: retry_budget.cells_used(),
                    });
                }
                Err(e) => return Err(e),
            }
        }
        let r = build_anytime(HistogramMethod::EquiDepth, values, ps, budget_words, params)?;
        let mut outcome = r.outcome;
        outcome.requested = self.name().to_string();
        outcome.tier += attempts.len();
        outcome.elapsed_ms += attempts.iter().map(|a| a.elapsed_ms).sum::<u64>();
        outcome.cells += attempts.iter().map(|a| a.cells).sum::<u64>();
        for (i, failed) in attempts.into_iter().enumerate() {
            outcome.attempts.insert(i, failed);
        }
        Ok((r.estimator, outcome))
    }
}

/// Exact all-ranges SSE of an estimator (brute force through the public
/// interface — `O(n²)` queries, exact for every answering procedure, and
/// cheap at the paper's scale).
pub fn exact_sse(est: &dyn RangeEstimator, ps: &PrefixSums) -> f64 {
    synoptic_core::sse::sse_brute(&est, ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_data::zipf::{paper_dataset, ZipfConfig};

    #[test]
    fn every_method_builds_on_the_paper_dataset() {
        let cfg = ZipfConfig {
            n: 32, // keep the unit test quick; binaries use the full 127
            ..ZipfConfig::default()
        };
        let d = paper_dataset(&cfg);
        let ps = d.prefix_sums();
        for m in MethodSpec::all() {
            let est = m.build_at_budget(d.values(), &ps, 12).unwrap();
            let sse = exact_sse(est.as_ref(), &ps);
            assert!(sse.is_finite() && sse >= 0.0, "{}", m.name());
        }
    }

    #[test]
    fn budgets_are_respected() {
        let cfg = ZipfConfig {
            n: 32,
            ..ZipfConfig::default()
        };
        let d = paper_dataset(&cfg);
        let ps = d.prefix_sums();
        for m in MethodSpec::all() {
            for budget in [6, 10, 20] {
                let est = m.build_at_budget(d.values(), &ps, budget).unwrap();
                assert!(
                    est.storage_words() <= budget,
                    "{} at {budget}: used {}",
                    m.name(),
                    est.storage_words()
                );
            }
        }
    }

    #[test]
    fn tiny_budgets_error_cleanly() {
        let d = paper_dataset(&ZipfConfig {
            n: 16,
            ..ZipfConfig::default()
        });
        let ps = d.prefix_sums();
        assert!(MethodSpec::Sap1
            .build_at_budget(d.values(), &ps, 3)
            .is_err());
        assert!(MethodSpec::WaveletRange
            .build_at_budget(d.values(), &ps, 1)
            .is_err());
    }

    #[test]
    fn tracked_unconstrained_matches_build_at_budget() {
        use synoptic_core::RangeQuery;
        let d = paper_dataset(&ZipfConfig {
            n: 32,
            ..ZipfConfig::default()
        });
        let ps = d.prefix_sums();
        for m in MethodSpec::all() {
            let plain = m.build_at_budget(d.values(), &ps, 14).unwrap();
            let (tracked, outcome) = m
                .build_tracked(d.values(), &ps, 14, &AnytimeParams::unconstrained())
                .unwrap();
            assert!(!outcome.is_degraded(), "{}: {outcome}", m.name());
            assert_eq!(outcome.used, m.name());
            for q in RangeQuery::all(32) {
                assert_eq!(
                    plain.estimate(q).to_bits(),
                    tracked.estimate(q).to_bits(),
                    "{} at {q:?}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn tracked_wavelet_falls_into_histogram_ladder_under_tiny_cap() {
        let d = paper_dataset(&ZipfConfig {
            n: 32,
            ..ZipfConfig::default()
        });
        let ps = d.prefix_sums();
        let params = AnytimeParams::unconstrained().with_max_cells(1);
        for m in [
            MethodSpec::WaveletRange,
            MethodSpec::WaveletPoint,
            MethodSpec::WaveletPrefix,
            MethodSpec::WaveletRangeGreedy,
        ] {
            let (est, outcome) = m.build_tracked(d.values(), &ps, 14, &params).unwrap();
            assert!(outcome.is_degraded(), "{}: {outcome}", m.name());
            assert_eq!(outcome.requested, m.name());
            assert_eq!(outcome.attempts.first().unwrap().method, m.name());
            // The B/2 truncation rung is tried (and abandoned) before the
            // histogram ladder takes over.
            assert_eq!(
                outcome.attempts[1].method,
                format!("{}(B/2)", m.name()),
                "{outcome}"
            );
            assert!(outcome.tier >= 2, "{outcome}");
            assert!(exact_sse(est.as_ref(), &ps).is_finite());
        }
    }

    #[test]
    fn tracked_wavelet_b_half_rung_catches_a_mid_sized_cap() {
        use synoptic_core::Budget;
        let d = paper_dataset(&ZipfConfig {
            n: 32,
            ..ZipfConfig::default()
        });
        let ps = d.prefix_sums();
        // Greedy selection charges per round, so the B/2 build is strictly
        // cheaper than the full-B build. Meter both to pick a cap that
        // kills full B but admits B/2.
        let full = Budget::unlimited();
        synoptic_wavelet::build_range_greedy_with_budget(&ps, 7, &full).unwrap();
        let half = Budget::unlimited();
        synoptic_wavelet::build_range_greedy_with_budget(&ps, 3, &half).unwrap();
        let (c_full, c_half) = (full.cells_used(), half.cells_used());
        assert!(
            c_half < c_full,
            "need separable costs: {c_half} vs {c_full}"
        );
        let params = AnytimeParams::unconstrained().with_max_cells(c_full - 1);
        let (est, outcome) = MethodSpec::WaveletRangeGreedy
            .build_tracked(d.values(), &ps, 14, &params)
            .unwrap();
        assert_eq!(outcome.used, "TOPBB-GREEDY(B/2)", "{outcome}");
        assert_eq!(outcome.tier, 1, "{outcome}");
        assert_eq!(outcome.attempts.len(), 1);
        assert_eq!(outcome.attempts[0].method, "TOPBB-GREEDY");
        assert!(est.storage_words() <= 14);
        assert!(exact_sse(est.as_ref(), &ps).is_finite());
    }

    #[test]
    fn tracked_cancellation_propagates() {
        use synoptic_core::CancelToken;
        let d = paper_dataset(&ZipfConfig {
            n: 32,
            ..ZipfConfig::default()
        });
        let ps = d.prefix_sums();
        let token = CancelToken::new();
        token.cancel();
        let params = AnytimeParams::unconstrained().with_cancel_token(token);
        for m in [MethodSpec::OptA, MethodSpec::WaveletRange] {
            let err = m
                .build_tracked(d.values(), &ps, 14, &params)
                .err()
                .expect("cancellation must propagate");
            assert!(matches!(err, SynopticError::Cancelled), "{}", m.name());
        }
    }

    #[test]
    fn figure1_set_matches_paper() {
        let names: Vec<&str> = MethodSpec::paper_figure1()
            .iter()
            .map(|m| m.name())
            .collect();
        assert_eq!(
            names,
            vec!["NAIVE", "POINT-OPT", "A0", "SAP0", "SAP1", "OPT-A", "TOPBB"]
        );
    }
}
