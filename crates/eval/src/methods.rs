//! Uniform access to every synopsis family at a given storage budget.

use synoptic_core::{PrefixSums, RangeEstimator, Result, SynopticError};
use synoptic_hist::builder::{build as build_hist, HistogramMethod};
use synoptic_wavelet::{PointWaveletSynopsis, PrefixWaveletSynopsis, RangeOptimalWavelet};

/// Every method the harness can evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MethodSpec {
    /// Single global average.
    Naive,
    /// Equi-width histogram.
    EquiWidth,
    /// Equi-depth histogram.
    EquiDepth,
    /// Max-diff histogram.
    MaxDiff,
    /// Classical V-optimal point histogram (uniform weights).
    VOptUniform,
    /// The paper's POINT-OPT baseline (range-inclusion weights).
    PointOpt,
    /// The paper's A0 heuristic.
    A0,
    /// Range-optimal SAP0 (3 words/bucket).
    Sap0,
    /// Range-optimal SAP1 (5 words/bucket).
    Sap1,
    /// Range-optimal OPT-A, unrounded answering.
    OptA,
    /// Range-optimal OPT-A, integral (paper) answering.
    OptAIntegral,
    /// OPT-A-ROUNDED with parameter ε.
    OptARounded(f64),
    /// OPT-A boundaries + §5 re-optimized values.
    OptAReopt,
    /// A0 boundaries + §5 re-optimized values.
    A0Reopt,
    /// OPT-A boundaries + per-bucket min/max (certified intervals;
    /// 4 words/bucket, extension).
    BoundedOptA,
    /// Top-B Haar coefficients of `A` (Matias–Vitter–Wang).
    WaveletPoint,
    /// Top-B Haar coefficients of the prefix sums.
    WaveletPrefix,
    /// The paper's range-optimal virtual-matrix wavelets (Theorem 9); the
    /// figure's `TOPBB` series.
    WaveletRange,
    /// OMP-style greedy selection + value re-fit over the same family
    /// (extension; see `synoptic_wavelet::range_greedy`).
    WaveletRangeGreedy,
}

impl MethodSpec {
    /// Display name used in tables and CSV headers.
    pub fn name(&self) -> &'static str {
        match self {
            MethodSpec::Naive => "NAIVE",
            MethodSpec::EquiWidth => "EQUI-WIDTH",
            MethodSpec::EquiDepth => "EQUI-DEPTH",
            MethodSpec::MaxDiff => "MAX-DIFF",
            MethodSpec::VOptUniform => "V-OPT",
            MethodSpec::PointOpt => "POINT-OPT",
            MethodSpec::A0 => "A0",
            MethodSpec::Sap0 => "SAP0",
            MethodSpec::Sap1 => "SAP1",
            MethodSpec::OptA => "OPT-A",
            MethodSpec::OptAIntegral => "OPT-A(int)",
            MethodSpec::OptARounded(_) => "OPT-A-ROUNDED",
            MethodSpec::OptAReopt => "OPT-A-reopt",
            MethodSpec::A0Reopt => "A0-reopt",
            MethodSpec::BoundedOptA => "BOUNDED",
            MethodSpec::WaveletPoint => "WAVELET-POINT",
            MethodSpec::WaveletPrefix => "WAVELET-PREFIX",
            MethodSpec::WaveletRange => "TOPBB",
            MethodSpec::WaveletRangeGreedy => "TOPBB-GREEDY",
        }
    }

    /// The method set plotted in the paper's Figure 1.
    pub fn paper_figure1() -> Vec<MethodSpec> {
        vec![
            MethodSpec::Naive,
            MethodSpec::PointOpt,
            MethodSpec::A0,
            MethodSpec::Sap0,
            MethodSpec::Sap1,
            MethodSpec::OptA,
            MethodSpec::WaveletRange,
        ]
    }

    /// Everything, for the extended sweeps.
    pub fn all() -> Vec<MethodSpec> {
        vec![
            MethodSpec::Naive,
            MethodSpec::EquiWidth,
            MethodSpec::EquiDepth,
            MethodSpec::MaxDiff,
            MethodSpec::VOptUniform,
            MethodSpec::PointOpt,
            MethodSpec::A0,
            MethodSpec::Sap0,
            MethodSpec::Sap1,
            MethodSpec::OptA,
            MethodSpec::OptAIntegral,
            MethodSpec::OptARounded(0.25),
            MethodSpec::OptAReopt,
            MethodSpec::A0Reopt,
            MethodSpec::BoundedOptA,
            MethodSpec::WaveletPoint,
            MethodSpec::WaveletPrefix,
            MethodSpec::WaveletRange,
            MethodSpec::WaveletRangeGreedy,
        ]
    }

    /// Builds the estimator within `budget_words` of storage. Wavelet
    /// methods keep `budget/2` coefficients (index + value per coefficient);
    /// histogram methods use their per-bucket word accounting.
    pub fn build_at_budget(
        &self,
        values: &[i64],
        ps: &PrefixSums,
        budget_words: usize,
    ) -> Result<Box<dyn RangeEstimator>> {
        let wavelet_b = |budget: usize| -> Result<usize> {
            if budget < 2 {
                return Err(SynopticError::BudgetTooSmall {
                    words: budget,
                    minimum: 2,
                });
            }
            Ok(budget / 2)
        };
        Ok(match self {
            MethodSpec::WaveletPoint => Box::new(PointWaveletSynopsis::build(
                values,
                wavelet_b(budget_words)?,
            )),
            MethodSpec::WaveletPrefix => {
                Box::new(PrefixWaveletSynopsis::build(ps, wavelet_b(budget_words)?))
            }
            MethodSpec::WaveletRange => {
                Box::new(RangeOptimalWavelet::build(ps, wavelet_b(budget_words)?))
            }
            MethodSpec::WaveletRangeGreedy => Box::new(synoptic_wavelet::build_range_greedy(
                ps,
                wavelet_b(budget_words)?,
            )),
            hist => {
                let hm = match hist {
                    MethodSpec::Naive => HistogramMethod::Naive,
                    MethodSpec::EquiWidth => HistogramMethod::EquiWidth,
                    MethodSpec::EquiDepth => HistogramMethod::EquiDepth,
                    MethodSpec::MaxDiff => HistogramMethod::MaxDiff,
                    MethodSpec::VOptUniform => HistogramMethod::VOptUniform,
                    MethodSpec::PointOpt => HistogramMethod::PointOpt,
                    MethodSpec::A0 => HistogramMethod::A0,
                    MethodSpec::Sap0 => HistogramMethod::Sap0,
                    MethodSpec::Sap1 => HistogramMethod::Sap1,
                    MethodSpec::OptA => HistogramMethod::OptA,
                    MethodSpec::OptAIntegral => HistogramMethod::OptAIntegral,
                    MethodSpec::OptARounded(eps) => HistogramMethod::OptARounded { eps: *eps },
                    MethodSpec::OptAReopt => HistogramMethod::OptAReopt,
                    MethodSpec::A0Reopt => HistogramMethod::A0Reopt,
                    MethodSpec::BoundedOptA => HistogramMethod::BoundedOptA,
                    _ => unreachable!("wavelets handled above"),
                };
                build_hist(hm, values, ps, budget_words)?
            }
        })
    }
}

/// Exact all-ranges SSE of an estimator (brute force through the public
/// interface — `O(n²)` queries, exact for every answering procedure, and
/// cheap at the paper's scale).
pub fn exact_sse(est: &dyn RangeEstimator, ps: &PrefixSums) -> f64 {
    synoptic_core::sse::sse_brute(&est, ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_data::zipf::{paper_dataset, ZipfConfig};

    #[test]
    fn every_method_builds_on_the_paper_dataset() {
        let cfg = ZipfConfig {
            n: 32, // keep the unit test quick; binaries use the full 127
            ..ZipfConfig::default()
        };
        let d = paper_dataset(&cfg);
        let ps = d.prefix_sums();
        for m in MethodSpec::all() {
            let est = m.build_at_budget(d.values(), &ps, 12).unwrap();
            let sse = exact_sse(est.as_ref(), &ps);
            assert!(sse.is_finite() && sse >= 0.0, "{}", m.name());
        }
    }

    #[test]
    fn budgets_are_respected() {
        let cfg = ZipfConfig {
            n: 32,
            ..ZipfConfig::default()
        };
        let d = paper_dataset(&cfg);
        let ps = d.prefix_sums();
        for m in MethodSpec::all() {
            for budget in [6, 10, 20] {
                let est = m.build_at_budget(d.values(), &ps, budget).unwrap();
                assert!(
                    est.storage_words() <= budget,
                    "{} at {budget}: used {}",
                    m.name(),
                    est.storage_words()
                );
            }
        }
    }

    #[test]
    fn tiny_budgets_error_cleanly() {
        let d = paper_dataset(&ZipfConfig {
            n: 16,
            ..ZipfConfig::default()
        });
        let ps = d.prefix_sums();
        assert!(MethodSpec::Sap1
            .build_at_budget(d.values(), &ps, 3)
            .is_err());
        assert!(MethodSpec::WaveletRange
            .build_at_budget(d.values(), &ps, 1)
            .is_err());
    }

    #[test]
    fn figure1_set_matches_paper() {
        let names: Vec<&str> = MethodSpec::paper_figure1()
            .iter()
            .map(|m| m.name())
            .collect();
        assert_eq!(
            names,
            vec!["NAIVE", "POINT-OPT", "A0", "SAP0", "SAP1", "OPT-A", "TOPBB"]
        );
    }
}
