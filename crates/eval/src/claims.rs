//! The paper's four quantitative narrative claims (§4), each reproduced as
//! a checkable "table".

use synoptic_core::Result;
use synoptic_core::RoundingMode;
use synoptic_data::zipf::{paper_dataset, ZipfConfig};
use synoptic_hist::opta::{build_opt_a, OptAConfig};
use synoptic_hist::reopt::reoptimize;

use crate::figure1::{run_figure1, Fig1Config, Fig1Result};
use crate::json::{JsonValue, ToJson};
use crate::methods::MethodSpec;

/// The measured counterpart of one narrative claim.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    /// Claim id (T1–T4 in EXPERIMENTS.md).
    pub id: String,
    /// The paper's wording.
    pub paper: String,
    /// Our measured statistic(s), human-readable.
    pub measured: String,
    /// Key ratios backing the statement (per budget where applicable).
    pub ratios: Vec<(usize, f64)>,
    /// Whether the measured shape supports the paper's claim.
    pub holds: bool,
}

/// All four claims, computed from one Figure 1 run (plus a dedicated reopt
/// pass for T4).
#[derive(Debug, Clone)]
pub struct ClaimsReport {
    /// Individual claim outcomes.
    pub claims: Vec<ClaimResult>,
}

impl ToJson for ClaimResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("id", self.id.to_json()),
            ("paper", self.paper.to_json()),
            ("measured", self.measured.to_json()),
            ("ratios", self.ratios.to_json()),
            ("holds", self.holds.to_json()),
        ])
    }
}

impl ToJson for ClaimsReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([("claims", self.claims.to_json())])
    }
}

fn ratio_series(fig: &Fig1Result, num: &str, den: &str) -> Vec<(usize, f64)> {
    fig.budgets()
        .into_iter()
        .filter_map(|b| {
            let n = fig.sse_of(num, b)?;
            let d = fig.sse_of(den, b)?;
            (d > 0.0).then_some((b, n / d))
        })
        .collect()
}

/// T1: "the point optimal histogram is up to 8 times worse than OPT-A …
/// on average, OPT-A is more than three times better."
pub fn point_opt_vs_opt_a(fig: &Fig1Result) -> ClaimResult {
    let ratios = ratio_series(fig, "POINT-OPT", "OPT-A");
    let max = ratios.iter().map(|&(_, r)| r).fold(0.0, f64::max);
    let avg = ratios.iter().map(|&(_, r)| r).sum::<f64>() / ratios.len().max(1) as f64;
    ClaimResult {
        id: "T1".into(),
        paper: "POINT-OPT up to 8× worse than OPT-A; on average OPT-A >3× better".into(),
        measured: format!("max ratio {max:.2}×, mean ratio {avg:.2}×"),
        holds: max >= 2.0 && avg >= 1.5,
        ratios,
    }
}

/// T2: "In our tests OPT-A is 2–4 times better than SAP1, with respect to
/// SSE for a given space bound."
pub fn opt_a_vs_sap1(fig: &Fig1Result) -> ClaimResult {
    let ratios = ratio_series(fig, "SAP1", "OPT-A");
    let min = ratios.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min);
    let max = ratios.iter().map(|&(_, r)| r).fold(0.0, f64::max);
    ClaimResult {
        id: "T2".into(),
        paper: "OPT-A 2–4× better SSE than SAP1 at equal storage".into(),
        measured: format!("SAP1/OPT-A SSE ratio ∈ [{min:.2}, {max:.2}]"),
        holds: max >= 1.5, // SAP1 pays 2.5× words per bucket; OPT-A should win
        ratios,
    }
}

/// T3: "The SAP0 approximation … was inferior (in terms of SSE per unit
/// storage) to all other histograms that we tested."
pub fn sap0_inferior(fig: &Fig1Result) -> ClaimResult {
    let budgets = fig.budgets();
    let mut worst_count = 0usize;
    let mut comparable = 0usize;
    let mut ratios = Vec::new();
    for &b in &budgets {
        let Some(sap0) = fig.sse_of("SAP0", b) else {
            continue;
        };
        let others: Vec<f64> = ["OPT-A", "A0", "SAP1"]
            .iter()
            .filter_map(|m| fig.sse_of(m, b))
            .collect();
        if others.is_empty() {
            continue;
        }
        comparable += 1;
        let best_other = others.iter().copied().fold(f64::INFINITY, f64::min);
        if best_other > 0.0 {
            ratios.push((b, sap0 / best_other));
        }
        if others.iter().all(|&o| sap0 >= o - 1e-9) {
            worst_count += 1;
        }
    }
    ClaimResult {
        id: "T3".into(),
        paper: "SAP0 inferior per unit storage to the other range histograms".into(),
        measured: format!(
            "SAP0 worst of the range histograms at {worst_count}/{comparable} budgets"
        ),
        holds: comparable > 0 && worst_count * 2 >= comparable,
        ratios,
    }
}

/// T4: "We did a preliminary experiment with A-reopt … it was superior and
/// up to 41% better than OPT-A, with respect to the SSE."
///
/// Measured directly (not via Figure 1): for each bucket count, re-optimize
/// the OPT-A boundaries and compare.
pub fn reopt_gain(dataset: &ZipfConfig, bucket_counts: &[usize]) -> Result<ClaimResult> {
    let data = paper_dataset(dataset);
    let ps = data.prefix_sums();
    let mut ratios = Vec::new();
    let mut best_gain = 0.0f64;
    for &b in bucket_counts {
        let base = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None))?;
        let re = reoptimize(base.histogram.bucketing(), &ps, "OPT-A")?;
        if base.sse > 0.0 {
            let gain = 1.0 - re.sse / base.sse;
            best_gain = best_gain.max(gain);
            ratios.push((2 * b, gain));
        }
    }
    Ok(ClaimResult {
        id: "T4".into(),
        paper: "A-reopt up to 41% better than OPT-A (preliminary)".into(),
        measured: format!("max SSE reduction {:.1}%", best_gain * 100.0),
        holds: best_gain > 0.0,
        ratios,
    })
}

/// Runs everything with the paper's dataset configuration.
pub fn run_all_claims(cfg: &Fig1Config) -> Result<ClaimsReport> {
    let mut methods = cfg.methods.clone();
    for needed in [
        MethodSpec::PointOpt,
        MethodSpec::OptA,
        MethodSpec::Sap0,
        MethodSpec::Sap1,
    ] {
        if !methods.contains(&needed) {
            methods.push(needed);
        }
    }
    let fig = run_figure1(&Fig1Config {
        dataset: cfg.dataset.clone(),
        budgets: cfg.budgets.clone(),
        methods,
    })?;
    let bucket_counts: Vec<usize> = cfg.budgets.iter().map(|&w| (w / 2).max(1)).collect();
    Ok(ClaimsReport {
        claims: vec![
            point_opt_vs_opt_a(&fig),
            opt_a_vs_sap1(&fig),
            sap0_inferior(&fig),
            reopt_gain(&cfg.dataset, &bucket_counts)?,
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Fig1Config {
        Fig1Config {
            dataset: ZipfConfig {
                n: 32,
                ..ZipfConfig::default()
            },
            budgets: vec![10, 16, 24],
            methods: MethodSpec::paper_figure1(),
        }
    }

    #[test]
    fn all_claims_run_and_reopt_always_helps() {
        let report = run_all_claims(&small_cfg()).unwrap();
        assert_eq!(report.claims.len(), 4);
        let t4 = &report.claims[3];
        assert_eq!(t4.id, "T4");
        assert!(t4.holds, "reopt must never hurt: {}", t4.measured);
        for (_, gain) in &t4.ratios {
            assert!(*gain >= -1e-9, "negative reopt gain {gain}");
        }
    }

    #[test]
    fn t1_ratios_are_positive_and_a0_never_beats_opt_a() {
        // POINT-OPT stores *weighted means*, which live outside OPT-A's
        // average-valued family, so its ratio can dip below 1 on tiny
        // domains; assert positivity for it, and assert the strict
        // guarantee where one exists: A0 shares OPT-A's representation, so
        // OPT-A (the optimum of that family) is never worse.
        let fig = run_figure1(&small_cfg()).unwrap();
        let t1 = point_opt_vs_opt_a(&fig);
        assert!(!t1.ratios.is_empty());
        for (b, r) in &t1.ratios {
            assert!(r.is_finite() && *r > 0.0, "budget {b}: ratio {r}");
        }
        for b in fig.budgets() {
            let (a0, opta) = (
                fig.sse_of("A0", b).unwrap(),
                fig.sse_of("OPT-A", b).unwrap(),
            );
            assert!(
                opta <= a0 + 1e-6 + 1e-9 * a0,
                "budget {b}: OPT-A {opta} vs A0 {a0}"
            );
        }
    }

    #[test]
    fn claims_serialize() {
        let report = run_all_claims(&small_cfg()).unwrap();
        let js = crate::json::to_string_pretty(&report);
        assert!(js.contains("T1") && js.contains("T4"));
    }
}
