//! # synoptic-eval
//!
//! The experiment harness that regenerates every figure and quantitative
//! claim of the paper's evaluation section (§4), plus the extended ablations
//! documented in DESIGN.md/EXPERIMENTS.md.
//!
//! * [`methods`] — a uniform `(method, storage budget) → estimator`
//!   interface spanning all histogram *and* wavelet families.
//! * [`figure1`] — Figure 1: SSE (log scale) vs storage for NAIVE,
//!   POINT-OPT, OPT-A, A0, SAP0, SAP1 and the wavelet series (TOPBB).
//! * [`claims`] — the four narrative claims (POINT-OPT up to 8× worse;
//!   OPT-A 2–4× better than SAP1; SAP0 inferior per word; reopt up to 41%
//!   better).
//! * [`sweeps`] — ablations A1–A5 (rounding scale, DP state counts, wavelet
//!   strategies, dataset families, certified-interval widths).
//! * [`metrics`] — per-query error distributions and certified-interval
//!   statistics (extension).
//! * [`report`] — ASCII tables, CSV and JSON artifacts.
//!
//! Binaries: `fig1`, `claims`, `sweep` (see `src/bin/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claims;
pub mod figure1;
pub mod json;
pub mod methods;
pub mod metrics;
pub mod report;
pub mod sweeps;

pub use figure1::{run_figure1, Fig1Config, Fig1Result, Fig1Row};
pub use json::{to_string_pretty, JsonValue, ToJson};
pub use methods::MethodSpec;
