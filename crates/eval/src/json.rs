//! A minimal JSON *emitter* (output only) for the experiment artifacts.
//!
//! The workspace builds fully offline, so `serde_json` is unavailable; the
//! harness only ever needs to *write* JSON (figures, claims, sweeps are
//! consumed by plotting scripts), so a small value tree plus a
//! pretty-printer suffices. Strings are escaped per RFC 8259; non-finite
//! floats (which JSON cannot represent) are emitted as `null`.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (emitted via Rust's shortest-round-trip float formatting;
    /// non-finite values print as `null`).
    Num(f64),
    /// An exact integer (kept separate so `u64`/`i64` never lose precision).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An object builder: `JsonValue::obj([("k", v), …])`.
    pub fn obj<I>(fields: I) -> Self
    where
        I: IntoIterator<Item = (&'static str, JsonValue)>,
    {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array from anything convertible.
    pub fn arr<T: ToJson, I: IntoIterator<Item = T>>(items: I) -> Self {
        JsonValue::Arr(items.into_iter().map(|x| x.to_json()).collect())
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// body (mirroring `serde_json::to_string_pretty`).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Compact single-line form.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        // Emit integral floats with a ".0" so readers keep
                        // the float type (matches serde_json's behaviour).
                        let _ = write!(out, "{:.1}", x);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`JsonValue`]; implemented by every artifact row type.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Num(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> JsonValue {
        JsonValue::Int(*self as i128)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Int(*self as i128)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Int(*self as i128)
    }
}

impl ToJson for u128 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Int(*self as i128)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str((*self).to_string())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(|x| x.to_json()).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (*self).to_json()
    }
}

/// `to_string_pretty(&value)` for any convertible type — drop-in for the
/// old `serde_json::to_string_pretty` call sites.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string_compact(), "null");
        assert_eq!(JsonValue::Bool(true).to_string_compact(), "true");
        assert_eq!(JsonValue::Int(42).to_string_compact(), "42");
        assert_eq!(JsonValue::Num(1.5).to_string_compact(), "1.5");
        assert_eq!(JsonValue::Num(2.0).to_string_compact(), "2.0");
        assert_eq!(JsonValue::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn strings_escape() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_object_matches_expected_layout() {
        let v = JsonValue::obj([
            ("name", JsonValue::Str("x".into())),
            ("vals", JsonValue::arr([1.0f64, 2.5])),
            ("empty", JsonValue::Arr(vec![])),
        ]);
        let expect =
            "{\n  \"name\": \"x\",\n  \"vals\": [\n    1.0,\n    2.5\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.to_string_pretty(), expect);
    }

    #[test]
    fn tuples_and_vecs_convert() {
        let pairs: Vec<(usize, f64)> = vec![(8, 0.5), (16, 0.25)];
        assert_eq!(pairs.to_json().to_string_compact(), "[[8,0.5],[16,0.25]]");
    }

    #[test]
    fn float_precision_round_trips() {
        // Shortest-round-trip formatting must preserve the exact value.
        for x in [0.1, 1.0 / 3.0, 123456.789, 1e-12, 1e15 + 0.5] {
            let s = JsonValue::Num(x).to_string_compact();
            let back: f64 = s.parse().unwrap();
            assert_eq!(back, x, "{s}");
        }
    }
}
