//! Checks the paper's four quantitative narrative claims (§4) against this
//! implementation: T1 POINT-OPT vs OPT-A, T2 OPT-A vs SAP1, T3 SAP0
//! inferiority, T4 reopt gains.
//!
//! Usage: `claims [--out DIR] [--n N] [--seed S]`

use synoptic_data::zipf::ZipfConfig;
use synoptic_eval::claims::run_all_claims;
use synoptic_eval::figure1::Fig1Config;
use synoptic_eval::report::{claims_text, write_artifact};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = get("--out").unwrap_or_else(|| "results".into());
    let mut dataset = ZipfConfig::default();
    if let Some(n) = get("--n").and_then(|s| s.parse().ok()) {
        dataset.n = n;
    }
    if let Some(seed) = get("--seed").and_then(|s| s.parse().ok()) {
        dataset.seed = seed;
    }
    let cfg = Fig1Config {
        dataset,
        ..Fig1Config::default()
    };
    eprintln!("claims: n = {}, seed = {}", cfg.dataset.n, cfg.dataset.seed);
    let report = run_all_claims(&cfg).expect("claims run failed");
    println!("{}", claims_text(&report));
    let json = synoptic_eval::json::to_string_pretty(&report);
    match write_artifact(&out, "claims.json", &json) {
        Ok(p) => eprintln!("wrote {p}"),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
