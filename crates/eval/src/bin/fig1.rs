//! Regenerates the paper's Figure 1: SSE vs storage for every summary
//! representation on the 127-key Zipf(1.8) dataset.
//!
//! Usage: `fig1 [--out DIR] [--n N] [--seed S] [--permuted]`
//!
//! Writes `fig1.csv` and `fig1.json` under `--out` (default `results/`)
//! and prints the ASCII table.

use synoptic_data::zipf::ZipfConfig;
use synoptic_eval::figure1::{run_figure1, Fig1Config};
use synoptic_eval::report::{fig1_csv, fig1_table, write_artifact};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = get("--out").unwrap_or_else(|| "results".into());
    let mut dataset = ZipfConfig::default();
    if let Some(n) = get("--n").and_then(|s| s.parse().ok()) {
        dataset.n = n;
    }
    if let Some(seed) = get("--seed").and_then(|s| s.parse().ok()) {
        dataset.seed = seed;
    }
    if args.iter().any(|a| a == "--permuted") {
        dataset.permute = true;
    }

    let cfg = Fig1Config {
        dataset,
        ..Fig1Config::default()
    };
    eprintln!(
        "figure 1: n = {}, seed = {}, permuted = {}, budgets = {:?}",
        cfg.dataset.n, cfg.dataset.seed, cfg.dataset.permute, cfg.budgets
    );
    let fig = run_figure1(&cfg).expect("figure 1 run failed");
    println!("{}", fig1_table(&fig));
    let csv = fig1_csv(&fig);
    let json = synoptic_eval::json::to_string_pretty(&fig);
    match (
        write_artifact(&out, "fig1.csv", &csv),
        write_artifact(&out, "fig1.json", &json),
    ) {
        (Ok(a), Ok(b)) => eprintln!("wrote {a} and {b}"),
        (a, b) => eprintln!("artifact write issues: {a:?} {b:?}"),
    }
}
