//! Runs the extended ablations A1–A4 (DESIGN.md §6).
//!
//! Usage: `sweep <rounding|states|wavelets|datasets|bounds|hull|segments|all> [--out DIR]`

use synoptic_data::zipf::ZipfConfig;
use synoptic_eval::methods::MethodSpec;
use synoptic_eval::report::write_artifact;
use synoptic_eval::sweeps::{
    bounds_sweep, dataset_sweep, hull_cap_sweep, rounding_sweep, segments_sweep, states_sweep,
    wavelet_sweep,
};

fn out_dir(args: &[String]) -> String {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results".into())
}

fn run_rounding(out: &str) {
    let rows = rounding_sweep(&ZipfConfig::default(), 12, &[1, 2, 4, 8, 16, 32])
        .expect("rounding sweep failed");
    println!("A1 — OPT-A-ROUNDED (B = 12, paper dataset)");
    println!(
        "{:>6} {:>14} {:>10} {:>12} {:>9}",
        "scale", "sse", "vs exact", "states", "seconds"
    );
    for r in &rows {
        println!(
            "{:>6} {:>14.4e} {:>9.3}x {:>12} {:>9.3}",
            r.scale, r.sse, r.ratio_vs_exact, r.states_kept, r.seconds
        );
    }
    let json = synoptic_eval::json::to_string_pretty(&rows);
    let _ = write_artifact(out, "sweep_rounding.json", &json);
}

fn run_states(out: &str) {
    let rows = states_sweep(&[32, 64, 127, 192, 256], 16, 2001).expect("states sweep failed");
    println!("A2 — hull-pruned DP states vs the paper's Λ*-table width (B = 16)");
    println!(
        "{:>5} {:>12} {:>9} {:>18} {:>9} {:>14} {:>12}",
        "n", "states", "max hull", "paper Λ-width", "seconds", "sse", "max |Λ|"
    );
    for r in &rows {
        println!(
            "{:>5} {:>12} {:>9} {:>18} {:>9.3} {:>14.4e} {:>12.0}",
            r.n, r.states_kept, r.max_hull, r.paper_table_width, r.seconds, r.sse, r.max_abs_lambda
        );
    }
    let json = synoptic_eval::json::to_string_pretty(&rows);
    let _ = write_artifact(out, "sweep_states.json", &json);
}

fn run_wavelets(out: &str) {
    let rows = wavelet_sweep(&ZipfConfig::default(), &[8, 16, 24, 32, 48, 64])
        .expect("wavelet sweep failed");
    println!("A3 — wavelet strategies vs OPT-A (paper dataset)");
    if let Some(first) = rows.first() {
        print!("{:>7}", "words");
        for (m, _) in &first.sse {
            print!(" {m:>14}");
        }
        println!();
    }
    for r in &rows {
        print!("{:>7}", r.budget_words);
        for (_, s) in &r.sse {
            print!(" {s:>14.4e}");
        }
        println!();
    }
    let json = synoptic_eval::json::to_string_pretty(&rows);
    let _ = write_artifact(out, "sweep_wavelets.json", &json);
}

fn run_datasets(out: &str) {
    let methods = [
        MethodSpec::Naive,
        MethodSpec::PointOpt,
        MethodSpec::A0,
        MethodSpec::Sap0,
        MethodSpec::Sap1,
        MethodSpec::OptA,
        MethodSpec::WaveletRange,
    ];
    let rows = dataset_sweep(127, 32, 2001, &methods).expect("dataset sweep failed");
    println!("A4 — dataset families at 32 words (n = 127)");
    if let Some(first) = rows.first() {
        print!("{:>12}", "dataset");
        for (m, _) in &first.sse {
            print!(" {m:>12}");
        }
        println!();
    }
    for r in &rows {
        print!("{:>12}", r.dataset);
        for (_, s) in &r.sse {
            print!(" {s:>12.3e}");
        }
        println!();
    }
    let json = synoptic_eval::json::to_string_pretty(&rows);
    let _ = write_artifact(out, "sweep_datasets.json", &json);
}

fn run_bounds(out: &str) {
    let rows =
        bounds_sweep(&ZipfConfig::default(), &[8, 16, 24, 32, 48, 64]).expect("bounds sweep");
    println!("A5 — certified intervals of BOUNDED (OPT-A boundaries, paper dataset)");
    println!(
        "{:>7} {:>12} {:>12} {:>8} {:>10}",
        "words", "mean width", "max width", "exact%", "rmse"
    );
    for r in &rows {
        println!(
            "{:>7} {:>12.2} {:>12.2} {:>7.1}% {:>10.2}",
            r.budget_words,
            r.mean_width,
            r.max_width,
            100.0 * r.exact_fraction,
            r.rmse
        );
    }
    let json = synoptic_eval::json::to_string_pretty(&rows);
    let _ = write_artifact(out, "sweep_bounds.json", &json);
}

fn run_hull(out: &str) {
    let rows = hull_cap_sweep(&ZipfConfig::default(), 16, &[1, 2, 4, 8, 16, 32, 0])
        .expect("hull-cap sweep");
    println!("A6 — hull-cap ablation (B = 16, paper dataset; cap 0 = exact)");
    println!(
        "{:>5} {:>14} {:>10} {:>12} {:>9}",
        "cap", "sse", "vs exact", "states", "seconds"
    );
    for r in &rows {
        println!(
            "{:>5} {:>14.4e} {:>9.4}x {:>12} {:>9.3}",
            r.cap, r.sse, r.ratio_vs_exact, r.states_kept, r.seconds
        );
    }
    let json = synoptic_eval::json::to_string_pretty(&rows);
    let _ = write_artifact(out, "sweep_hull.json", &json);
}

fn run_segments(out: &str) {
    let rows = segments_sweep(
        &ZipfConfig {
            n: 128,
            ..ZipfConfig::default()
        },
        16,
        &[1, 2, 4, 8, 16],
    )
    .expect("segments sweep failed");
    println!("A7 — cost of partialization (n = 128, 16 buckets, SAP0 + Haar merges)");
    println!(
        "{:>9} {:>13} {:>13} {:>13} {:>9} {:>16}",
        "segments", "stitch dev", "sse stitched", "sse monolith", "ratio", "haar min slack"
    );
    for r in &rows {
        println!(
            "{:>9} {:>13.4e} {:>13.4e} {:>13.4e} {:>9.4} {:>16.4e}",
            r.segments,
            r.stitch_max_dev,
            r.sse_stitched,
            r.sse_monolithic,
            r.sse_ratio,
            r.haar_bound_min_slack
        );
    }
    let json = synoptic_eval::json::to_string_pretty(&rows);
    let _ = write_artifact(out, "sweep_segments.json", &json);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let out = out_dir(&args);
    match which {
        "rounding" => run_rounding(&out),
        "states" => run_states(&out),
        "wavelets" => run_wavelets(&out),
        "datasets" => run_datasets(&out),
        "bounds" => run_bounds(&out),
        "hull" => run_hull(&out),
        "segments" => run_segments(&out),
        "all" => {
            run_rounding(&out);
            println!();
            run_states(&out);
            println!();
            run_wavelets(&out);
            println!();
            run_datasets(&out);
            println!();
            run_bounds(&out);
            println!();
            run_hull(&out);
            println!();
            run_segments(&out);
        }
        other => {
            eprintln!("unknown sweep '{other}'; expected rounding|states|wavelets|datasets|bounds|hull|segments|all");
            std::process::exit(2);
        }
    }
}
