//! Extended ablations A1–A4 (see DESIGN.md §6 and EXPERIMENTS.md).

use synoptic_core::{DataArray, Result, RoundingMode};
use synoptic_data::generators::{normal_mixture, steps, uniform};
use synoptic_data::zipf::{paper_dataset, ZipfConfig};
use synoptic_hist::opta::{build_opt_a, OptAConfig};
use synoptic_hist::opta_rounded::build_opt_a_rounded;

use crate::json::{JsonValue, ToJson};
use crate::methods::{exact_sse, MethodSpec};

/// A1 — OPT-A-ROUNDED: quality and DP-state shrinkage vs the data scale `x`.
#[derive(Debug, Clone)]
pub struct RoundingSweepRow {
    /// Data scale `x`.
    pub scale: i64,
    /// SSE of the rounded construction.
    pub sse: f64,
    /// SSE ratio vs the exact OPT-A at the same bucket count.
    pub ratio_vs_exact: f64,
    /// DP states kept on the scaled data.
    pub states_kept: u64,
    /// DP seconds on the scaled data.
    pub seconds: f64,
}

impl ToJson for RoundingSweepRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("scale", self.scale.to_json()),
            ("sse", self.sse.to_json()),
            ("ratio_vs_exact", self.ratio_vs_exact.to_json()),
            ("states_kept", self.states_kept.to_json()),
            ("seconds", self.seconds.to_json()),
        ])
    }
}

/// Runs ablation A1 on the paper dataset with `buckets` buckets.
pub fn rounding_sweep(
    dataset: &ZipfConfig,
    buckets: usize,
    scales: &[i64],
) -> Result<Vec<RoundingSweepRow>> {
    let data = paper_dataset(dataset);
    let ps = data.prefix_sums();
    let exact = build_opt_a(&ps, &OptAConfig::exact(buckets, RoundingMode::NearestInt))?;
    scales
        .iter()
        .map(|&scale| {
            let r = build_opt_a_rounded(&ps, data.values(), buckets, scale)?;
            Ok(RoundingSweepRow {
                scale,
                sse: r.sse,
                ratio_vs_exact: if exact.sse > 0.0 {
                    r.sse / exact.sse
                } else {
                    1.0
                },
                states_kept: r.stats.states_kept,
                seconds: r.stats.seconds,
            })
        })
        .collect()
}

/// A2 — hull-pruned DP state counts vs the paper's `Λ*`-table bound.
#[derive(Debug, Clone)]
pub struct StatesSweepRow {
    /// Domain size.
    pub n: usize,
    /// Bucket budget.
    pub buckets: usize,
    /// States the hull-pruned DP kept.
    pub states_kept: u64,
    /// Largest single hull.
    pub max_hull: usize,
    /// The paper's per-`(i,k)` table width `2Λ* + 1` with `Λ* ≈ n·s[1,n]` —
    /// what the pseudo-polynomial table would allocate *per DP cell*.
    pub paper_table_width: u128,
    /// DP seconds.
    pub seconds: f64,
    /// SSE found (exactness anchor: equals the rounded optimum).
    pub sse: f64,
    /// Largest |Λ| among kept states; the paper notes `Λ* ≤ OPT`.
    pub max_abs_lambda: f64,
}

impl ToJson for StatesSweepRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("n", self.n.to_json()),
            ("buckets", self.buckets.to_json()),
            ("states_kept", self.states_kept.to_json()),
            ("max_hull", self.max_hull.to_json()),
            ("paper_table_width", self.paper_table_width.to_json()),
            ("seconds", self.seconds.to_json()),
            ("sse", self.sse.to_json()),
            ("max_abs_lambda", self.max_abs_lambda.to_json()),
        ])
    }
}

/// Runs ablation A2 across domain sizes.
pub fn states_sweep(ns: &[usize], buckets: usize, seed: u64) -> Result<Vec<StatesSweepRow>> {
    ns.iter()
        .map(|&n| {
            let data = paper_dataset(&ZipfConfig {
                n,
                seed,
                ..ZipfConfig::default()
            });
            let ps = data.prefix_sums();
            let b = buckets.min(n);
            let r = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::NearestInt))?;
            Ok(StatesSweepRow {
                n,
                buckets: b,
                states_kept: r.stats.states_kept,
                max_hull: r.stats.max_hull_size,
                paper_table_width: 2 * (n as u128) * (data.total().unsigned_abs()) + 1,
                seconds: r.stats.seconds,
                sse: r.sse,
                max_abs_lambda: r.stats.max_abs_lambda,
            })
        })
        .collect()
}

/// A3 — wavelet strategy comparison row.
#[derive(Debug, Clone)]
pub struct WaveletSweepRow {
    /// Storage budget in words.
    pub budget_words: usize,
    /// SSE per strategy, keyed by method name.
    pub sse: Vec<(String, f64)>,
}

impl ToJson for WaveletSweepRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("budget_words", self.budget_words.to_json()),
            ("sse", self.sse.to_json()),
        ])
    }
}

/// Runs ablation A3: the three wavelet strategies plus OPT-A across budgets.
pub fn wavelet_sweep(dataset: &ZipfConfig, budgets: &[usize]) -> Result<Vec<WaveletSweepRow>> {
    let data = paper_dataset(dataset);
    let ps = data.prefix_sums();
    let methods = [
        MethodSpec::WaveletPoint,
        MethodSpec::WaveletPrefix,
        MethodSpec::WaveletRange,
        MethodSpec::WaveletRangeGreedy,
        MethodSpec::OptA,
    ];
    budgets
        .iter()
        .map(|&budget| {
            let mut sse = Vec::new();
            for m in methods {
                let est = m.build_at_budget(data.values(), &ps, budget)?;
                sse.push((m.name().to_string(), exact_sse(est.as_ref(), &ps)));
            }
            Ok(WaveletSweepRow {
                budget_words: budget,
                sse,
            })
        })
        .collect()
}

/// A4 — dataset-family sensitivity row.
#[derive(Debug, Clone)]
pub struct DatasetSweepRow {
    /// Dataset family label.
    pub dataset: String,
    /// Domain size.
    pub n: usize,
    /// SSE per method at the fixed budget, keyed by method name.
    pub sse: Vec<(String, f64)>,
}

impl ToJson for DatasetSweepRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("dataset", self.dataset.to_json()),
            ("n", self.n.to_json()),
            ("sse", self.sse.to_json()),
        ])
    }
}

/// The dataset families of ablation A4.
pub fn ablation_datasets(n: usize, seed: u64) -> Vec<(String, DataArray)> {
    let zipf = |alpha: f64| {
        paper_dataset(&ZipfConfig {
            n,
            alpha,
            seed,
            ..ZipfConfig::default()
        })
    };
    vec![
        ("zipf(0.5)".to_string(), zipf(0.5)),
        ("zipf(1.0)".to_string(), zipf(1.0)),
        ("zipf(1.8)".to_string(), zipf(1.8)),
        ("uniform".to_string(), uniform(n, 0, 200, seed)),
        ("normal-mix".to_string(), normal_mixture(n, 3, 150.0, seed)),
        ("steps".to_string(), steps(n, 8.min(n), 200, seed)),
    ]
}

/// Runs ablation A4 at a fixed storage budget.
pub fn dataset_sweep(
    n: usize,
    budget_words: usize,
    seed: u64,
    methods: &[MethodSpec],
) -> Result<Vec<DatasetSweepRow>> {
    ablation_datasets(n, seed)
        .into_iter()
        .map(|(label, data)| {
            let ps = data.prefix_sums();
            let mut sse = Vec::new();
            for m in methods {
                let est = m.build_at_budget(data.values(), &ps, budget_words)?;
                sse.push((m.name().to_string(), exact_sse(est.as_ref(), &ps)));
            }
            Ok(DatasetSweepRow {
                dataset: label,
                n,
                sse,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ZipfConfig {
        ZipfConfig {
            n: 24,
            ..ZipfConfig::default()
        }
    }

    #[test]
    fn rounding_sweep_states_shrink_with_scale() {
        let rows = rounding_sweep(&small(), 4, &[1, 4, 16]).unwrap();
        assert_eq!(rows.len(), 3);
        // Hull-vertex counts are not strictly monotone in the data scale
        // (different Λ landscapes reshape the hulls), but coarsening must
        // not blow the state set up: allow modest slack.
        assert!(
            rows[2].states_kept <= rows[0].states_kept * 3 / 2 + 8,
            "{} vs {}",
            rows[2].states_kept,
            rows[0].states_kept
        );
        for r in &rows {
            assert!(r.states_kept > 0);
            assert!(r.ratio_vs_exact >= 0.0 && r.sse.is_finite());
        }
    }

    #[test]
    fn states_sweep_is_far_below_paper_bound() {
        let rows = states_sweep(&[16, 24], 4, 2001).unwrap();
        for r in &rows {
            assert!(
                (r.states_kept as u128) < r.paper_table_width,
                "hull kept {} vs paper per-cell width {}",
                r.states_kept,
                r.paper_table_width
            );
        }
    }

    #[test]
    fn wavelet_sweep_has_all_methods() {
        let rows = wavelet_sweep(&small(), &[8, 16]).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.sse.len(), 5);
        }
    }

    #[test]
    fn dataset_sweep_covers_families() {
        let rows = dataset_sweep(
            24,
            12,
            7,
            &[MethodSpec::Naive, MethodSpec::OptA, MethodSpec::Sap0],
        )
        .unwrap();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            // OPT-A must beat NAIVE on every family (it can always fall back
            // to one bucket).
            let get = |name: &str| {
                row.sse
                    .iter()
                    .find(|(m, _)| m == name)
                    .map(|&(_, s)| s)
                    .unwrap()
            };
            assert!(
                get("OPT-A") <= get("NAIVE") + 1e-6,
                "{}: OPT-A {} vs NAIVE {}",
                row.dataset,
                get("OPT-A"),
                get("NAIVE")
            );
        }
    }

    #[test]
    fn steps_family_is_nearly_free_for_opt_a() {
        // A piecewise-constant dataset with ≤ 6 segments: OPT-A with ≥ 6
        // buckets has tiny intra error (still inter-bucket end-piece error
        // can be zero since buckets are constant ⇒ u ≡ 0). SSE ≈ 0.
        let rows = dataset_sweep(24, 16, 3, &[MethodSpec::OptA]).unwrap();
        let steps_row = rows.iter().find(|r| r.dataset == "steps").unwrap();
        let sse = steps_row.sse[0].1;
        assert!(sse < 1e-6, "steps SSE should vanish, got {sse}");
    }
}

/// A5 — certified-interval width vs budget for the bounded histogram
/// (extension; see `synoptic_core::histogram::bounded`).
#[derive(Debug, Clone)]
pub struct BoundsSweepRow {
    /// Storage budget in words.
    pub budget_words: usize,
    /// Mean certified width over all ranges.
    pub mean_width: f64,
    /// Max certified width.
    pub max_width: f64,
    /// Fraction of ranges answered exactly (zero width).
    pub exact_fraction: f64,
    /// RMSE of the midpoint estimate, for scale.
    pub rmse: f64,
}

impl ToJson for BoundsSweepRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("budget_words", self.budget_words.to_json()),
            ("mean_width", self.mean_width.to_json()),
            ("max_width", self.max_width.to_json()),
            ("exact_fraction", self.exact_fraction.to_json()),
            ("rmse", self.rmse.to_json()),
        ])
    }
}

/// Runs ablation A5 on the paper dataset.
pub fn bounds_sweep(dataset: &ZipfConfig, budgets: &[usize]) -> Result<Vec<BoundsSweepRow>> {
    use crate::metrics::{error_profile_all_ranges, interval_profile};
    use synoptic_core::BoundedHistogram;
    use synoptic_hist::opta::{build_opt_a, OptAConfig};

    let data = paper_dataset(dataset);
    let ps = data.prefix_sums();
    budgets
        .iter()
        .map(|&budget| {
            let b = (budget / 4).clamp(1, ps.n());
            let base = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None))?;
            let h =
                BoundedHistogram::build(base.histogram.bucketing().clone(), data.values(), &ps)?;
            let ip = interval_profile(&h, &ps);
            let ep = error_profile_all_ranges(&h, &ps);
            Ok(BoundsSweepRow {
                budget_words: budget,
                mean_width: ip.mean_width,
                max_width: ip.max_width,
                exact_fraction: ip.exact_fraction,
                rmse: ep.rmse,
            })
        })
        .collect()
}

#[cfg(test)]
mod bounds_tests {
    use super::*;

    #[test]
    fn bounds_sweep_tightens_with_budget() {
        let rows = bounds_sweep(
            &ZipfConfig {
                n: 32,
                ..ZipfConfig::default()
            },
            &[8, 16, 32],
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert!(
            rows[2].mean_width <= rows[0].mean_width + 1e-9,
            "{} vs {}",
            rows[2].mean_width,
            rows[0].mean_width
        );
        for r in &rows {
            assert!(r.exact_fraction > 0.0 && r.exact_fraction <= 1.0);
            assert!(r.mean_width <= r.max_width + 1e-9);
        }
    }
}

#[cfg(test)]
mod lambda_bound_tests {
    use super::*;

    /// The paper remarks that each |Λ| explored is at most OPT (the optimal
    /// error). Check the observed max |Λ| against the found SSE.
    #[test]
    fn observed_lambda_respects_the_paper_bound() {
        let rows = states_sweep(&[24, 48], 6, 2001).unwrap();
        for r in &rows {
            assert!(
                r.max_abs_lambda <= r.sse + 1e-6,
                "n={}: max|Λ| {} exceeds OPT {}",
                r.n,
                r.max_abs_lambda,
                r.sse
            );
        }
    }
}

/// A6 — hull-cap ablation: quality/speed impact of capping the per-cell
/// state hull (the `max_hull_states` knob of `OptAConfig`), the one
/// approximation lever DESIGN.md §4.1 introduces on top of the paper.
#[derive(Debug, Clone)]
pub struct HullCapSweepRow {
    /// Cap (0 = unlimited = exact).
    pub cap: usize,
    /// SSE of the constructed histogram.
    pub sse: f64,
    /// Ratio vs the exact optimum.
    pub ratio_vs_exact: f64,
    /// States kept under the cap.
    pub states_kept: u64,
    /// DP seconds.
    pub seconds: f64,
}

impl ToJson for HullCapSweepRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("cap", self.cap.to_json()),
            ("sse", self.sse.to_json()),
            ("ratio_vs_exact", self.ratio_vs_exact.to_json()),
            ("states_kept", self.states_kept.to_json()),
            ("seconds", self.seconds.to_json()),
        ])
    }
}

/// Runs ablation A6 on the paper dataset with `buckets` buckets.
pub fn hull_cap_sweep(
    dataset: &ZipfConfig,
    buckets: usize,
    caps: &[usize],
) -> Result<Vec<HullCapSweepRow>> {
    use synoptic_hist::opta::OptAConfig;
    let data = paper_dataset(dataset);
    let ps = data.prefix_sums();
    let exact = build_opt_a(&ps, &OptAConfig::exact(buckets, RoundingMode::None))?;
    caps.iter()
        .map(|&cap| {
            let r = build_opt_a(
                &ps,
                &OptAConfig {
                    buckets,
                    mode: RoundingMode::None,
                    lambda_quantum: 0.0,
                    max_hull_states: cap,
                },
            )?;
            Ok(HullCapSweepRow {
                cap,
                sse: r.sse,
                ratio_vs_exact: if exact.sse > 0.0 {
                    r.sse / exact.sse
                } else {
                    1.0
                },
                states_kept: r.stats.states_kept,
                seconds: r.stats.seconds,
            })
        })
        .collect()
}

#[cfg(test)]
mod hull_cap_tests {
    use super::*;

    #[test]
    fn caps_are_never_better_than_exact_and_converge() {
        let rows = hull_cap_sweep(
            &ZipfConfig {
                n: 48,
                ..ZipfConfig::default()
            },
            6,
            &[1, 2, 8, 64, 0],
        )
        .unwrap();
        for r in &rows {
            assert!(
                r.ratio_vs_exact >= 1.0 - 1e-9,
                "cap {} beat the exact optimum: {}",
                r.cap,
                r.ratio_vs_exact
            );
        }
        // Unlimited cap is exact; a generous cap should match it here.
        let unlimited = rows.iter().find(|r| r.cap == 0).unwrap();
        assert!((unlimited.ratio_vs_exact - 1.0).abs() < 1e-9);
        let generous = rows.iter().find(|r| r.cap == 64).unwrap();
        assert!(
            generous.ratio_vs_exact < 1.01,
            "cap 64 should be near-exact: {}",
            generous.ratio_vs_exact
        );
    }
}

/// A7 — cost of partialization: how much quality the segment-merge path
/// gives up relative to monolithic builds, per segment count.
#[derive(Debug, Clone)]
pub struct SegmentsSweepRow {
    /// Number of equi-width segments.
    pub segments: usize,
    /// Max |stitched − monolithic-on-stitched-bucketing| over all ranges
    /// (the histogram merge operator's exactness claim: must be 0.0).
    pub stitch_max_dev: f64,
    /// SSE of the stitched per-segment SAP0 histograms.
    pub sse_stitched: f64,
    /// SSE of the monolithic SAP0 DP at the same total bucket count.
    pub sse_monolithic: f64,
    /// `sse_stitched / sse_monolithic` — ≥ 1 up to float noise; the gap
    /// is the price of forbidding buckets across segment edges.
    pub sse_ratio: f64,
    /// Min over ranges of `bound − |merged(q) − union(q)|` for the Haar
    /// coefficient-union merge at the same segmentation (the documented
    /// re-truncation bound: must be ≥ 0 up to float noise).
    pub haar_bound_min_slack: f64,
}

impl ToJson for SegmentsSweepRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("segments", self.segments.to_json()),
            ("stitch_max_dev", self.stitch_max_dev.to_json()),
            ("sse_stitched", self.sse_stitched.to_json()),
            ("sse_monolithic", self.sse_monolithic.to_json()),
            ("sse_ratio", self.sse_ratio.to_json()),
            ("haar_bound_min_slack", self.haar_bound_min_slack.to_json()),
        ])
    }
}

/// Runs ablation A7 on a power-of-two Zipf dataset (`n` must be divisible
/// by every entry of `segment_counts` so the Haar merge sees equal
/// power-of-two segments; 128 with counts {1,2,4,8,16} is the default in
/// `sweep`). `buckets` is the total bucket count, split evenly.
pub fn segments_sweep(
    dataset: &ZipfConfig,
    buckets: usize,
    segment_counts: &[usize],
) -> Result<Vec<SegmentsSweepRow>> {
    use synoptic_core::{
        Bucketing, Budget, RangeEstimator, RangeQuery, Sap0Histogram, SegmentLayout,
    };
    use synoptic_hist::sap0::build_sap0;
    use synoptic_hist::{build_sap0_partials, merge_sap0};
    use synoptic_wavelet::{merge_point_wavelets, PointWaveletSynopsis};

    let data = paper_dataset(dataset);
    let values = data.values();
    let n = values.len();
    let ps = data.prefix_sums();
    let mono = build_sap0(&ps, buckets)?;
    let sse_monolithic = exact_sse(&mono, &ps);
    segment_counts
        .iter()
        .map(|&segments| {
            let layout = SegmentLayout::equi_width(n, segments)?;
            // Histogram half: partial builds + prefix-sum stitching.
            let per_seg = (buckets / segments).max(1);
            let parts = build_sap0_partials(
                values,
                &layout,
                &vec![per_seg; segments],
                &Budget::unlimited(),
            )?;
            let merged = merge_sap0(&parts)?;
            let mut starts = Vec::new();
            for ((l, _), part) in layout.iter().zip(&parts) {
                starts.extend(part.bucketing().starts().iter().map(|s| l + s));
            }
            let mono_stitched = Sap0Histogram::optimal_values(Bucketing::new(n, starts)?, &ps)?;
            let mut stitch_max_dev = 0.0_f64;
            for q in RangeQuery::all(n) {
                stitch_max_dev =
                    stitch_max_dev.max((merged.estimate(q) - mono_stitched.estimate(q)).abs());
            }
            let sse_stitched = exact_sse(&merged, &ps);
            // Haar half: per-segment point-wavelet synopses, coefficient
            // union + re-truncation, bound verified against the untruncated
            // union.
            let b_total = buckets; // coefficient budget, same accounting
            let waves: Vec<PointWaveletSynopsis> = layout
                .iter()
                .map(|(l, r)| PointWaveletSynopsis::build(&values[l..=r], b_total))
                .collect();
            let refs: Vec<&PointWaveletSynopsis> = waves.iter().collect();
            let (merged_w, outcome) = merge_point_wavelets(&refs, b_total)?;
            let (union_w, _) = merge_point_wavelets(&refs, usize::MAX)?;
            let mut haar_bound_min_slack = f64::INFINITY;
            for q in RangeQuery::all(n) {
                let err = (merged_w.estimate(q) - union_w.estimate(q)).abs();
                let slack = outcome.retruncation_bound(q) - err;
                haar_bound_min_slack = haar_bound_min_slack.min(slack);
            }
            Ok(SegmentsSweepRow {
                segments,
                stitch_max_dev,
                sse_stitched,
                sse_monolithic,
                sse_ratio: if sse_monolithic > 0.0 {
                    sse_stitched / sse_monolithic
                } else {
                    1.0
                },
                haar_bound_min_slack,
            })
        })
        .collect()
}

#[cfg(test)]
mod segments_tests {
    use super::*;

    #[test]
    fn partialization_is_exact_on_stitched_buckets_and_bounded_for_haar() {
        let rows = segments_sweep(
            &ZipfConfig {
                n: 64,
                ..ZipfConfig::default()
            },
            8,
            &[1, 2, 4, 8],
        )
        .unwrap();
        for r in &rows {
            assert_eq!(
                r.stitch_max_dev, 0.0,
                "stitching must be exact at S={}",
                r.segments
            );
            assert!(
                r.haar_bound_min_slack > -1e-6,
                "re-truncation bound violated at S={}: slack {}",
                r.segments,
                r.haar_bound_min_slack
            );
            assert!(
                r.sse_ratio >= 1.0 - 1e-9,
                "S={}: {}",
                r.segments,
                r.sse_ratio
            );
        }
        // One segment is the monolithic build itself.
        assert!((rows[0].sse_ratio - 1.0).abs() < 1e-9);
    }
}
