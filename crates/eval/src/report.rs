//! ASCII tables, CSV and JSON artifacts for the experiment binaries.

use std::fmt::Write as _;

use crate::claims::ClaimsReport;
use crate::figure1::Fig1Result;

/// Renders a Figure 1 run as an ASCII table: methods × budgets, SSE cells
/// in scientific notation (the figure's log-scale y-axis).
pub fn fig1_table(fig: &Fig1Result) -> String {
    let budgets = fig.budgets();
    let methods = fig.methods();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SSE over all {}·{}/2 = {} range queries (n = {}, total mass ≈ {})",
        fig.n,
        fig.n + 1,
        fig.n * (fig.n + 1) / 2,
        fig.n,
        fig.total_mass
    );
    let _ = write!(out, "{:<14}", "words:");
    for b in &budgets {
        let _ = write!(out, "{b:>11}");
    }
    out.push('\n');
    let _ = writeln!(out, "{}", "-".repeat(14 + 11 * budgets.len()));
    for m in &methods {
        let _ = write!(out, "{m:<14}");
        for &b in &budgets {
            match fig.sse_of(m, b) {
                Some(s) => {
                    let _ = write!(out, "{s:>11.3e}");
                }
                None => {
                    let _ = write!(out, "{:>11}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// CSV form of a Figure 1 run (`method,budget_words,actual_words,sse`).
pub fn fig1_csv(fig: &Fig1Result) -> String {
    let mut out = String::from("method,budget_words,actual_words,sse\n");
    for r in &fig.rows {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            r.method, r.budget_words, r.actual_words, r.sse
        );
    }
    out
}

/// Human-readable claims report.
pub fn claims_text(report: &ClaimsReport) -> String {
    let mut out = String::new();
    for c in &report.claims {
        let _ = writeln!(out, "[{}] paper:    {}", c.id, c.paper);
        let _ = writeln!(out, "     measured: {}", c.measured);
        let _ = writeln!(
            out,
            "     verdict:  {}",
            if c.holds { "HOLDS" } else { "DOES NOT HOLD" }
        );
        if !c.ratios.is_empty() {
            let series: Vec<String> = c
                .ratios
                .iter()
                .map(|(b, r)| format!("{b}w:{r:.2}"))
                .collect();
            let _ = writeln!(out, "     series:   {}", series.join("  "));
        }
        out.push('\n');
    }
    out
}

/// Writes an artifact under `dir`, creating it if needed. Returns the path.
pub fn write_artifact(dir: &str, name: &str, contents: &str) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/{name}");
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::{run_figure1, Fig1Config};
    use crate::methods::MethodSpec;
    use synoptic_data::zipf::ZipfConfig;

    fn tiny_fig() -> Fig1Result {
        run_figure1(&Fig1Config {
            dataset: ZipfConfig {
                n: 16,
                ..ZipfConfig::default()
            },
            budgets: vec![8, 12],
            methods: vec![MethodSpec::Naive, MethodSpec::OptA, MethodSpec::Sap0],
        })
        .unwrap()
    }

    #[test]
    fn table_contains_all_methods_and_budgets() {
        let t = fig1_table(&tiny_fig());
        for needle in ["NAIVE", "OPT-A", "SAP0", "8", "12"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let fig = tiny_fig();
        let csv = fig1_csv(&fig);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "method,budget_words,actual_words,sse");
        assert_eq!(lines.len(), fig.rows.len() + 1);
    }

    #[test]
    fn artifacts_are_written() {
        let dir = std::env::temp_dir().join("synoptic_report_test");
        let dir = dir.to_str().unwrap();
        let p = write_artifact(dir, "x.csv", "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
