//! Per-query error distributions beyond the paper's single SSE number.
//!
//! AQP deployments care about the *distribution* of errors — median and tail
//! relative error, worst absolute error — not only the aggregate SSE. This
//! module computes those over any workload, for any estimator, plus the
//! certified-interval statistics of the bounded histograms.

use synoptic_core::{BoundedHistogram, PrefixSums, RangeEstimator, RangeQuery};

use crate::json::{JsonValue, ToJson};

/// Summary of an estimator's per-query error distribution over a workload.
#[derive(Debug, Clone)]
pub struct ErrorProfile {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Sum-squared error (the paper's metric).
    pub sse: f64,
    /// Root-mean-squared absolute error.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Largest absolute error.
    pub max_abs: f64,
    /// Median relative error (|δ| / max(1, truth); zero-truth queries use
    /// the absolute error).
    pub median_rel: f64,
    /// 95th-percentile relative error.
    pub p95_rel: f64,
}

impl ToJson for ErrorProfile {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("queries", self.queries.to_json()),
            ("sse", self.sse.to_json()),
            ("rmse", self.rmse.to_json()),
            ("mae", self.mae.to_json()),
            ("max_abs", self.max_abs.to_json()),
            ("median_rel", self.median_rel.to_json()),
            ("p95_rel", self.p95_rel.to_json()),
        ])
    }
}

/// Computes an [`ErrorProfile`] over an explicit workload.
pub fn error_profile<E: RangeEstimator>(
    est: &E,
    ps: &PrefixSums,
    queries: &[RangeQuery],
) -> ErrorProfile {
    assert!(!queries.is_empty(), "workload must be non-empty");
    let mut sse = 0.0;
    let mut abs_sum = 0.0;
    let mut max_abs = 0.0f64;
    let mut rels: Vec<f64> = Vec::with_capacity(queries.len());
    for &q in queries {
        let truth = ps.answer(q) as f64;
        let err = est.estimate(q) - truth;
        sse += err * err;
        abs_sum += err.abs();
        max_abs = max_abs.max(err.abs());
        rels.push(err.abs() / truth.abs().max(1.0));
    }
    rels.sort_by(f64::total_cmp);
    let k = queries.len();
    let pct = |p: f64| -> f64 {
        let idx = ((p * (k - 1) as f64).round() as usize).min(k - 1);
        rels[idx]
    };
    ErrorProfile {
        queries: k,
        sse,
        rmse: (sse / k as f64).sqrt(),
        mae: abs_sum / k as f64,
        max_abs,
        median_rel: pct(0.5),
        p95_rel: pct(0.95),
    }
}

/// Convenience: the profile over all `n(n+1)/2` ranges.
pub fn error_profile_all_ranges<E: RangeEstimator>(est: &E, ps: &PrefixSums) -> ErrorProfile {
    let queries: Vec<RangeQuery> = RangeQuery::all(ps.n()).collect();
    error_profile(est, ps, &queries)
}

/// Summary of a bounded histogram's certified intervals over all ranges.
#[derive(Debug, Clone)]
pub struct IntervalProfile {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Mean certified interval width.
    pub mean_width: f64,
    /// Largest certified width.
    pub max_width: f64,
    /// Fraction of queries whose interval has zero width (answered exactly).
    pub exact_fraction: f64,
    /// Whether every interval contained the truth (must be `true`;
    /// recorded for the report).
    pub all_sound: bool,
}

impl ToJson for IntervalProfile {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("queries", self.queries.to_json()),
            ("mean_width", self.mean_width.to_json()),
            ("max_width", self.max_width.to_json()),
            ("exact_fraction", self.exact_fraction.to_json()),
            ("all_sound", self.all_sound.to_json()),
        ])
    }
}

/// Computes certified-interval statistics for a [`BoundedHistogram`].
pub fn interval_profile(h: &BoundedHistogram, ps: &PrefixSums) -> IntervalProfile {
    let mut widths = 0.0;
    let mut max_width = 0.0f64;
    let mut exact = 0usize;
    let mut sound = true;
    let mut count = 0usize;
    for q in RangeQuery::all(ps.n()) {
        let b = h.bounds(q);
        let w = b.width();
        widths += w;
        max_width = max_width.max(w);
        if w < 1e-9 {
            exact += 1;
        }
        sound &= b.contains(ps.answer(q) as f64);
        count += 1;
    }
    IntervalProfile {
        queries: count,
        mean_width: widths / count as f64,
        max_width,
        exact_fraction: exact as f64 / count as f64,
        all_sound: sound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::{Bucketing, NaiveEstimator, ValueHistogram};

    fn data() -> (Vec<i64>, PrefixSums) {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1];
        let ps = PrefixSums::from_values(&vals);
        (vals, ps)
    }

    #[test]
    fn exact_estimator_has_zero_profile() {
        let (_, ps) = data();
        let b = Bucketing::new(12, (0..12).collect()).unwrap();
        let h = ValueHistogram::with_averages(b, &ps, "exact").unwrap();
        let p = error_profile_all_ranges(&h, &ps);
        assert_eq!(p.queries, 78);
        assert!(p.sse < 1e-9 && p.rmse < 1e-9 && p.mae < 1e-9);
        assert!(p.max_abs < 1e-9 && p.median_rel < 1e-9 && p.p95_rel < 1e-9);
    }

    #[test]
    fn profile_orders_metrics_sanely() {
        let (_, ps) = data();
        let e = NaiveEstimator::new(&ps);
        let p = error_profile_all_ranges(&e, &ps);
        assert!(p.mae <= p.rmse + 1e-9, "MAE ≤ RMSE (Jensen)");
        assert!(p.rmse <= p.max_abs + 1e-9);
        assert!(p.median_rel <= p.p95_rel + 1e-12);
        assert!((p.rmse * p.rmse * p.queries as f64 - p.sse).abs() <= 1e-6 * (1.0 + p.sse));
    }

    #[test]
    fn interval_profile_is_sound_and_partially_exact() {
        let (vals, ps) = data();
        let b = Bucketing::new(12, vec![0, 4, 8]).unwrap();
        let h = BoundedHistogram::build(b, &vals, &ps).unwrap();
        let p = interval_profile(&h, &ps);
        assert!(p.all_sound);
        assert!(p.exact_fraction > 0.0, "whole-bucket queries are exact");
        assert!(p.mean_width <= p.max_width);
    }

    #[test]
    fn workload_restriction_changes_the_profile() {
        let (_, ps) = data();
        let e = NaiveEstimator::new(&ps);
        let all = error_profile_all_ranges(&e, &ps);
        let points: Vec<RangeQuery> = (0..12).map(RangeQuery::point).collect();
        let pts = error_profile(&e, &ps, &points);
        assert_eq!(pts.queries, 12);
        assert!(pts.sse <= all.sse);
    }
}
