//! Figure 1 of the paper: SSE (log y) vs storage budget for every summary
//! representation, on the 127-key Zipf(1.8) dataset.

use synoptic_core::Result;
use synoptic_data::zipf::{paper_dataset, ZipfConfig};

use crate::json::{JsonValue, ToJson};
use crate::methods::{exact_sse, MethodSpec};

/// Configuration of a Figure 1 run.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Dataset recipe (paper default: n = 127, α = 1.8, fair-coin rounding).
    pub dataset: ZipfConfig,
    /// Storage budgets (words) to sweep — the x-axis.
    pub budgets: Vec<usize>,
    /// Methods to plot.
    pub methods: Vec<MethodSpec>,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Self {
            dataset: ZipfConfig::default(),
            budgets: vec![8, 12, 16, 20, 24, 32, 40, 48, 56, 64],
            methods: MethodSpec::paper_figure1(),
        }
    }
}

/// One data point of the figure.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Method name.
    pub method: String,
    /// Requested storage budget (words).
    pub budget_words: usize,
    /// Words actually consumed (≤ budget; whole buckets/coefficients only).
    pub actual_words: usize,
    /// Exact SSE over all `n(n+1)/2` ranges.
    pub sse: f64,
}

/// A complete Figure 1 run.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Domain size of the dataset.
    pub n: usize,
    /// Total mass of the dataset.
    pub total_mass: i64,
    /// Dataset seed (for reproducibility records).
    pub seed: u64,
    /// All `(method × budget)` measurements.
    pub rows: Vec<Fig1Row>,
}

impl ToJson for Fig1Row {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("method", self.method.to_json()),
            ("budget_words", self.budget_words.to_json()),
            ("actual_words", self.actual_words.to_json()),
            ("sse", self.sse.to_json()),
        ])
    }
}

impl ToJson for Fig1Result {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("n", self.n.to_json()),
            ("total_mass", self.total_mass.to_json()),
            ("seed", self.seed.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl Fig1Result {
    /// The SSE of `method` at `budget`, if measured.
    pub fn sse_of(&self, method: &str, budget: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.method == method && r.budget_words == budget)
            .map(|r| r.sse)
    }

    /// All budgets present, sorted.
    pub fn budgets(&self) -> Vec<usize> {
        let mut b: Vec<usize> = self.rows.iter().map(|r| r.budget_words).collect();
        b.sort_unstable();
        b.dedup();
        b
    }

    /// All method names, in first-seen order.
    pub fn methods(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for r in &self.rows {
            if !seen.contains(&r.method) {
                seen.push(r.method.clone());
            }
        }
        seen
    }
}

/// Runs the figure: builds every method at every budget and measures the
/// exact SSE. Methods whose minimum footprint exceeds a budget are skipped
/// at that budget (e.g. SAP1 below 5 words), mirroring the figure's sparser
/// series.
pub fn run_figure1(cfg: &Fig1Config) -> Result<Fig1Result> {
    let data = paper_dataset(&cfg.dataset);
    let ps = data.prefix_sums();
    let mut rows = Vec::new();
    for m in &cfg.methods {
        for &budget in &cfg.budgets {
            match m.build_at_budget(data.values(), &ps, budget) {
                Ok(est) => rows.push(Fig1Row {
                    method: m.name().to_string(),
                    budget_words: budget,
                    actual_words: est.storage_words(),
                    sse: exact_sse(est.as_ref(), &ps),
                }),
                Err(synoptic_core::SynopticError::BudgetTooSmall { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
    }
    Ok(Fig1Result {
        n: data.n(),
        total_mass: data.total() as i64,
        seed: cfg.dataset.seed,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Fig1Config {
        Fig1Config {
            dataset: ZipfConfig {
                n: 32,
                ..ZipfConfig::default()
            },
            budgets: vec![8, 16, 24],
            methods: MethodSpec::paper_figure1(),
        }
    }

    #[test]
    fn produces_a_row_per_method_and_budget() {
        let r = run_figure1(&small_cfg()).unwrap();
        assert_eq!(r.n, 32);
        // 7 methods × 3 budgets, none skipped at ≥ 8 words.
        assert_eq!(r.rows.len(), 21);
        assert_eq!(r.budgets(), vec![8, 16, 24]);
        assert_eq!(r.methods().len(), 7);
    }

    #[test]
    fn sse_is_monotone_in_budget_for_optimal_methods() {
        let r = run_figure1(&small_cfg()).unwrap();
        for m in ["OPT-A", "SAP0", "SAP1"] {
            let mut prev = f64::INFINITY;
            for b in r.budgets() {
                if let Some(s) = r.sse_of(m, b) {
                    assert!(s <= prev + 1e-6, "{m} at {b}: {s} > {prev}");
                    prev = s;
                }
            }
        }
    }

    #[test]
    fn naive_upper_bounds_everything() {
        let r = run_figure1(&small_cfg()).unwrap();
        let naive = r.sse_of("NAIVE", 8).unwrap();
        for row in &r.rows {
            if row.method != "NAIVE" && row.method != "TOPBB" && row.budget_words >= 16 {
                assert!(
                    row.sse <= naive * 1.001,
                    "{} at {} words ({}) exceeds NAIVE ({naive})",
                    row.method,
                    row.budget_words,
                    row.sse
                );
            }
        }
    }

    #[test]
    fn opt_a_dominates_the_other_histograms_at_equal_budget() {
        // OPT-A is optimal among 2-words-per-bucket average histograms, so
        // at equal budget it must beat A0 and POINT-OPT (which share its
        // representation), up to tolerance.
        let r = run_figure1(&small_cfg()).unwrap();
        for b in r.budgets() {
            let opta = r.sse_of("OPT-A", b).unwrap();
            for other in ["A0", "POINT-OPT"] {
                let s = r.sse_of(other, b).unwrap();
                assert!(
                    opta <= s + 1e-6 + 1e-9 * s,
                    "budget {b}: OPT-A {opta} vs {other} {s}"
                );
            }
        }
    }

    #[test]
    fn json_artifact_is_complete() {
        let r = run_figure1(&small_cfg()).unwrap();
        let js = crate::json::to_string_pretty(&r);
        // Every row's method and the top-level metadata must appear.
        for key in ["\"n\"", "\"total_mass\"", "\"seed\"", "\"rows\""] {
            assert!(js.contains(key), "missing {key}");
        }
        let row_count = js.matches("\"budget_words\"").count();
        assert_eq!(row_count, r.rows.len());
    }
}
