//! Direct solvers for small dense systems.

use crate::matrix::Matrix;
use std::fmt;

/// Errors from the direct solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The system matrix is singular (pivot below tolerance).
    Singular {
        /// Index of the failed pivot.
        pivot: usize,
    },
    /// The matrix is not square or dimensions disagree with the RHS.
    Shape(String),
    /// Cholesky hit a non-positive diagonal (matrix not positive definite).
    NotPositiveDefinite {
        /// Index of the failed diagonal.
        index: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Singular { pivot } => write!(f, "singular matrix at pivot {pivot}"),
            Self::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            Self::NotPositiveDefinite { index } => {
                write!(f, "matrix not positive definite at index {index}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

fn check_square(a: &Matrix, b: &[f64]) -> Result<usize, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::Shape(format!(
            "matrix is {}×{}, expected square",
            a.rows(),
            a.cols()
        )));
    }
    if b.len() != n {
        return Err(LinalgError::Shape(format!(
            "rhs has length {}, expected {n}",
            b.len()
        )));
    }
    Ok(n)
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// O(n³); suitable for the `B × B` systems of the re-optimization step.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = check_square(a, b)?;
    let mut m = a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // Partial pivot: largest |entry| in this column at or below the diagonal.
        let (mut best, mut best_val) = (col, m[(col, col)].abs());
        for r in (col + 1)..n {
            let v = m[(r, col)].abs();
            if v > best_val {
                best = r;
                best_val = v;
            }
        }
        if best_val < f64::EPSILON * (1.0 + m.max_abs_diag()) {
            return Err(LinalgError::Singular { pivot: col });
        }
        m.swap_rows(col, best);
        x.swap(col, best);
        let pivot = m[(col, col)];
        for r in (col + 1)..n {
            let factor = m[(r, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            m[(r, col)] = 0.0;
            for c in (col + 1)..n {
                let above = m[(col, c)];
                m[(r, c)] -= factor * above;
            }
            x[r] -= factor * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for c in (col + 1)..n {
            acc -= m[(col, c)] * x[c];
        }
        x[col] = acc / m[(col, col)];
    }
    Ok(x)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
/// factorization `A = L Lᵀ`.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = check_square(a, b)?;
    // Factor.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { index: i });
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    // Forward solve L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l[(i, k)] * y[k];
        }
        y[i] = acc / l[(i, i)];
    }
    // Back solve Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for k in (i + 1)..n {
            acc -= l[(k, i)] * x[k];
        }
        x[i] = acc / l[(i, i)];
    }
    Ok(x)
}

/// Solves a symmetric positive *semi*-definite system, escalating through a
/// ridge fallback: try Cholesky as-is, then with diagonal regularization
/// `λ = scale·(1e-12, 1e-9, 1e-6)`, then LU as a last resort.
///
/// The re-optimization matrix `Q` is PSD by construction but can be singular
/// (e.g. structurally identical buckets), in which case any minimizer is
/// acceptable — the ridge picks the one with smallest norm, which is fine for
/// an estimator.
pub fn solve_spd_with_ridge(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if let Ok(x) = cholesky_solve(a, b) {
        return Ok(x);
    }
    let scale = a.max_abs_diag().max(1.0);
    for exp in [1e-12, 1e-9, 1e-6] {
        let mut m = a.clone();
        m.add_ridge(scale * exp);
        if let Ok(x) = cholesky_solve(&m, b) {
            return Ok(x);
        }
    }
    lu_solve(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn lu_solves_known_system() {
        let a = Matrix::from_rows(3, 3, vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0]);
        let b = vec![8.0, -11.0, -3.0];
        let x = lu_solve(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] - -1.0).abs() < 1e-10);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = lu_solve(&a, &[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            lu_solve(&a, &[1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn lu_shape_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            lu_solve(&a, &[1.0, 2.0]),
            Err(LinalgError::Shape(_))
        ));
        let a = Matrix::identity(2);
        assert!(matches!(lu_solve(&a, &[1.0]), Err(LinalgError::Shape(_))));
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 2.0, 0.6, 2.0, 2.0, 0.4, 0.6, 0.4, 1.0]);
        let b = vec![1.0, 2.0, 3.0];
        let x = cholesky_solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
        // Cross-check against LU.
        let y = lu_solve(&a, &b).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            assert!((xi - yi).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            cholesky_solve(&a, &[1.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn ridge_fallback_handles_singular_psd() {
        // Rank-1 PSD matrix vvᵀ with v = (1, 1); b in the column space.
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let b = vec![2.0, 2.0];
        let x = solve_spd_with_ridge(&a, &b).unwrap();
        // Any solution with x0 + x1 = 2 is a minimizer.
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3, "{x:?}");
    }

    #[test]
    fn random_spd_systems_solve_accurately() {
        // Deterministic pseudo-random SPD matrices: A = MᵀM + I.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for n in [1usize, 2, 5, 12] {
            let mut m = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    m[(i, j)] = next();
                }
            }
            let mut a = Matrix::identity(n);
            for i in 0..n {
                for j in 0..n {
                    let mut dot = 0.0;
                    for k in 0..n {
                        dot += m[(k, i)] * m[(k, j)];
                    }
                    a[(i, j)] += dot;
                }
            }
            let b: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
            let x = cholesky_solve(&a, &b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-8, "n={n}");
            let x = lu_solve(&a, &b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-8, "n={n}");
        }
    }
}
