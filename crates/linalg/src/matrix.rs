//! Dense row-major `f64` matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Swaps rows `a` and `b`.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (top, bottom) = self.data.split_at_mut(b * self.cols);
        top[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut bottom[..self.cols]);
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    /// If `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Adds `lambda` to every diagonal entry (ridge regularization).
    pub fn add_ridge(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Largest absolute diagonal entry (used to scale ridge fallbacks).
    pub fn max_abs_diag(&self) -> f64 {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)].abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[1] = 7.0;
        assert_eq!(m[(0, 1)], 7.0);
    }

    #[test]
    fn identity_and_matvec() {
        let id = Matrix::identity(3);
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(id.matvec(&v), v);
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&v), vec![14.0, 32.0]);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_rows_validates_length() {
        let _ = Matrix::from_rows(2, 2, vec![1.0]);
    }

    #[test]
    fn swap_rows_works_both_orders() {
        let mut m = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(2, 2); // no-op
        assert_eq!(m.row(2), &[1.0, 2.0]);
    }

    #[test]
    fn symmetry_check() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 3.0]);
        assert!(m.is_symmetric(1e-12));
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.5, 3.0]);
        assert!(!m.is_symmetric(1e-12));
        assert!(m.is_symmetric(1.0));
        let m = Matrix::zeros(2, 3);
        assert!(!m.is_symmetric(1.0));
    }

    #[test]
    fn ridge_and_diag() {
        let mut m = Matrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, -4.0]);
        assert_eq!(m.max_abs_diag(), 4.0);
        m.add_ridge(0.5);
        assert_eq!(m[(0, 0)], 1.5);
        assert_eq!(m[(1, 1)], -3.5);
    }

    #[test]
    fn display_formats_rows() {
        let m = Matrix::identity(2);
        let s = format!("{m}");
        assert_eq!(s.lines().count(), 2);
    }
}
