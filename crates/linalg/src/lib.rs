//! # synoptic-linalg
//!
//! A small, dependency-free dense linear-algebra substrate for the
//! `synoptic` workspace. Its sole customer is the histogram
//! *re-optimization* step of the paper (§5): solving the `B × B` normal
//! equations `Q x = −g/2` that minimize the quadratic
//! `SSE(x) = x Q xᵀ + g xᵀ + c`, where `B` is the bucket count (tens, not
//! thousands). The implementation therefore favours clarity and numerical
//! robustness over asymptotic tricks:
//!
//! * [`Matrix`] — a dense row-major `f64` matrix.
//! * [`lu_solve`] — Gaussian elimination with partial pivoting.
//! * [`cholesky_solve`] — for symmetric positive-definite systems (the
//!   re-optimization `Q` is PSD by construction).
//! * [`solve_spd_with_ridge`] — Cholesky with a tiny ridge fallback when `Q`
//!   is singular (e.g. duplicate bucket structures), which is how the `reopt`
//!   module consumes this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod solve;

pub use matrix::Matrix;
pub use solve::{cholesky_solve, lu_solve, solve_spd_with_ridge, LinalgError};
