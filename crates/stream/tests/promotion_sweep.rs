//! Kill-the-leader promotion sweep.
//!
//! The replicated extension of the recovery sweep's property: **a
//! follower promoted after the leader dies serves exactly the state the
//! leader acknowledged as replicated — no lost acks, no phantom
//! updates.** Each scenario drives a journaled leader
//! ([`MaintainedHistogram`]) over a [`FaultyStorage`] whose schedule
//! kills it at write operation `k`; after every acknowledged update the
//! leader seals and ships its journal to a live follower over a
//! [`MemTransport`]. When the fault fires, the leader process "dies"
//! mid-whatever-it-was-doing: the transport drops, the follower's serve
//! loop ends, and promotion runs — which is nothing more than the
//! *existing* crash-recovery path over the follower's own journal
//! ([`Follower::open`] calls [`synoptic_stream::recover`]), plus
//! serving.
//!
//! The shadow tracked here is the *replicated* shadow: an update counts
//! only when its append **and** its ship round (segment transfer + ack)
//! both completed. The sweep moves `k` across every write operation the
//! leader performs — WAL appends, rotation appends, persists, checkpoint
//! deletes — until a schedule longer than the whole run fires nothing.

use std::sync::Arc;
use std::time::Duration;

use synoptic_catalog::{
    Catalog, ColumnEntry, DurableCatalog, Fault, FaultyStorage, FsStorage, PersistentSynopsis,
};
use synoptic_core::{Budget, PrefixSums, RangeEstimator, RangeQuery, Result};
use synoptic_hist::sap0::build_sap0_with_budget;
use synoptic_repl::transport::{MemTransport, Transport};
use synoptic_repl::Shipper;
use synoptic_stream::{
    DurabilityConfig, FollowConfig, Follower, MaintainedHistogram, RebuildConfig, RebuildPolicy,
    SharedStorage,
};

const COLUMN: &str = "c";
const N: usize = 16;

fn tempdir(tag: &str, k: usize) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("synoptic-promote-{tag}-{k}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn initial_values() -> Vec<i64> {
    (0..N as i64).map(|i| 10 + (i * 7) % 23).collect()
}

fn stream(len: usize) -> Vec<(usize, i64)> {
    let mut s = 0x2001_u64;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let i = (s % N as u64) as usize;
        let d = ((s >> 32) % 9) as i64 - 4;
        out.push((i, if d == 0 { 5 } else { d }));
    }
    out
}

fn builder() -> impl FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>> {
    |_vals: &[i64], ps: &PrefixSums, budget: &Budget| {
        Ok(Box::new(build_sap0_with_budget(ps, 3, budget)?) as Box<dyn RangeEstimator>)
    }
}

fn commit_initial(cat_dir: &std::path::Path, values: &[i64]) -> u64 {
    let store = DurableCatalog::open(cat_dir, FsStorage::new()).unwrap();
    let mut cat = Catalog::new();
    cat.insert(
        COLUMN,
        ColumnEntry {
            n: values.len(),
            total_rows: values.iter().sum(),
            synopsis: PersistentSynopsis::from_frequencies(values),
        },
    );
    store.save(&cat).unwrap()
}

/// One scenario: the leader runs with `k` clean write ops before `fault`
/// fires, shipping to a live follower after every acknowledged update.
/// When the fault fires the leader dies and the follower is promoted.
/// Returns whether the fault was reached (`false` ends the sweep).
fn run_promotion_scenario(tag: &str, k: usize, fault: Fault, updates: usize) -> bool {
    let root = tempdir(tag, k);
    let leader_cat = root.join("leader-cat");
    let leader_wal = root.join("leader-wal");
    let follower_cat = root.join("follower-cat");
    let follower_wal = root.join("follower-wal");
    let values = initial_values();
    let generation = commit_initial(&leader_cat, &values);
    commit_initial(&follower_cat, &values);

    // The leader's storage carries the kill schedule; the follower's disk
    // is healthy — the disaster under test is losing the leader *node*.
    let mut schedule = vec![Fault::CleanWrite; k];
    schedule.push(fault);
    let faulty = Arc::new(FaultyStorage::new(FsStorage::new(), schedule));
    let shared: SharedStorage = faulty.clone();
    let durability = DurabilityConfig::journaled(&leader_wal)
        .with_segment_bytes(128) // rotate every ~3 records
        .with_fsync(synoptic_catalog::wal::FsyncCadence::OnRotate);
    // Manual policy: no persists/checkpoints, so the leader's journal
    // keeps every segment and the fault schedule indexes appends only.
    let config = RebuildConfig::new(RebuildPolicy::Manual);
    let mut leader = MaintainedHistogram::with_config(&values, builder(), config)
        .unwrap()
        .with_durability(shared, COLUMN, &durability, generation)
        .unwrap();

    let follower_storage: SharedStorage = Arc::new(FsStorage::new());
    let (follower, _) = Follower::open(
        Arc::clone(&follower_storage),
        &follower_cat,
        &follower_wal,
        FollowConfig::default(),
    )
    .unwrap();
    let (mut leader_end, mut follower_end) = MemTransport::pair();
    let serve = std::thread::spawn(move || {
        let mut follower = follower;
        let served = follower.serve(&mut follower_end);
        (follower, served)
    });
    let shipper = Shipper::new(FsStorage::new(), &leader_wal, COLUMN)
        .with_retry(2, Duration::from_millis(1))
        .with_drain_timeout(Duration::from_millis(500));

    // The replicated shadow: an update is *replicated-acknowledged* only
    // when append + seal + ship + ack all completed before the kill.
    let mut shadow = values.clone();
    let mut fired = false;
    for (i, d) in stream(updates) {
        let before = faulty.faults_fired();
        let appended = leader.update(i, d).is_ok();
        if faulty.faults_fired() > before {
            // The leader died inside this update's write op. Whether the
            // append itself survived on the leader's disk is irrelevant to
            // the *replicated* contract: it was never shipped.
            fired = true;
            break;
        }
        if !appended {
            continue;
        }
        // Ship everything sealed so far. Sealing is also a write op on
        // the faulty disk — the kill can land inside it.
        let sealed = {
            let wal = leader.journal().expect("durability enabled");
            let before = faulty.faults_fired();
            let res = wal.seal();
            if faulty.faults_fired() > before {
                fired = true;
                break;
            }
            res.is_ok()
        };
        if !sealed {
            continue;
        }
        let mark = leader.journal().unwrap().pending_mark();
        match shipper.ship(&mut leader_end, mark) {
            Ok(report) if report.acked_lsn >= mark => {
                shadow[i] += d; // replicated-acknowledged
            }
            _ => {}
        }
    }
    // The kill: leader process and its transport vanish.
    drop(leader);
    leader_end.close();
    drop(leader_end);

    let (old_follower, served) = serve.join().unwrap();
    served.unwrap_or_else(|e| panic!("{tag} k={k}: follower serve must end cleanly, got {e}"));
    drop(old_follower);

    // Promotion: a fresh process recovers the follower's local durable
    // state — the same code path as single-node crash recovery.
    let (promoted, report) = Follower::open(
        follower_storage,
        &follower_cat,
        &follower_wal,
        FollowConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{tag} k={k}: promotion must succeed, got {e}"));
    let col = report
        .column(COLUMN)
        .unwrap_or_else(|| panic!("{tag} k={k}: column must survive promotion"));
    assert_eq!(
        promoted.values(COLUMN).unwrap(),
        &shadow[..],
        "{tag} k={k}: promoted follower must equal the replicated-acknowledged \
         shadow exactly (replayed {}, max_lsn {})",
        col.replayed,
        col.max_lsn
    );
    // The promoted replica serves immediately, exactly.
    let q = RangeQuery::new(0, N - 1).unwrap();
    assert_eq!(
        promoted.estimate(COLUMN, q).unwrap(),
        shadow.iter().sum::<i64>() as f64
    );
    let _ = std::fs::remove_dir_all(&root);
    fired
}

/// ENOSPC on the leader's disk at every write operation: whatever the
/// leader lost, the promoted follower serves every replicated ack.
#[test]
fn promotion_after_enospc_kill_at_every_write_op() {
    let mut exhausted = false;
    for k in 0..120 {
        if !run_promotion_scenario("enospc", k, Fault::Enospc, 14) {
            exhausted = true;
            break;
        }
    }
    assert!(
        exhausted,
        "sweep must extend past the scenario's total write-op count"
    );
}

/// Power-loss-style kill (crash before rename/append) at every write
/// operation.
#[test]
fn promotion_after_crash_kill_at_every_write_op() {
    let mut exhausted = false;
    for k in 0..120 {
        if !run_promotion_scenario("crash", k, Fault::CrashBeforeRename, 14) {
            exhausted = true;
            break;
        }
    }
    assert!(exhausted, "sweep must cover the whole operation stream");
}

/// A torn append at every position: the leader's own journal tore, but
/// the follower only ever saw validated, sealed bytes — the promoted
/// state still equals the replicated shadow.
#[test]
fn promotion_after_torn_append_at_every_position() {
    let mut exhausted = false;
    for k in 0..120 {
        if !run_promotion_scenario("torn", k, Fault::TornWrite { keep: 7 }, 14) {
            exhausted = true;
            break;
        }
    }
    assert!(exhausted, "sweep must cover every append");
}
