//! Segmented-column integration suite: dirty-segment incremental rebuilds,
//! composed-answer correctness, per-segment provenance, durable
//! composition, and seeded cancellation sweeps where the cancel lands
//! mid-merge (some segments already rebuilt, the rest pending) — in every
//! case provenance must propagate and the dirty set must survive.

use std::sync::Arc;

use synoptic_catalog::FsStorage;
use synoptic_core::{CancelToken, RangeQuery, SynopticError};
use synoptic_hist::builder::HistogramMethod;
use synoptic_stream::{
    DurabilityConfig, MaintainedPool, RebuildConfig, RebuildPolicy, SharedStorage,
};

const N: usize = 64;

fn values() -> Vec<i64> {
    (0..N as i64)
        .map(|i| (i * i * 13 + 5 * i) % 89 - 30)
        .collect()
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("synoptic-segtest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn rebuild_touches_only_the_dirty_segment() {
    let pool = MaintainedPool::new(1);
    let vals = values();
    let col = pool
        .add_column_segmented(
            "c",
            &vals,
            HistogramMethod::Sap0,
            48,
            8,
            RebuildConfig::new(RebuildPolicy::EveryKUpdates(4)),
        )
        .unwrap();
    assert_eq!(col.segments(), Some(8));
    // All four updates land in segment 2 (positions 16..24 at 8 segments
    // of width 8).
    for t in 0..4 {
        col.update(17 + t, 5).unwrap();
    }
    col.quiesce();
    let stats = col.stats();
    assert_eq!(stats.rebuilds, 1);
    assert_eq!(stats.segments_rebuilt, 1, "stats: {stats:?}");
    assert_eq!(stats.segments_reused, 7);
    // The dirty set is clean again after the committed rebuild.
    assert_eq!(col.dirty_segments().unwrap(), vec![false; 8]);
    // The refreshed segment reflects the new mass.
    let q = RangeQuery { lo: 16, hi: 23 };
    let est = col.estimate(q);
    let exact = col.exact(q) as f64;
    assert!(
        (est - exact).abs() / exact.abs().max(1.0) < 0.5,
        "estimate {est} should track exact {exact}"
    );
}

#[test]
fn updates_across_segments_mark_each_touched_segment() {
    let pool = MaintainedPool::new(1);
    let col = pool
        .add_column_segmented(
            "c",
            &values(),
            HistogramMethod::Sap0,
            48,
            4,
            RebuildConfig::new(RebuildPolicy::Manual),
        )
        .unwrap();
    col.update(0, 1).unwrap(); // segment 0
    col.update(40, 1).unwrap(); // segment 2
    assert_eq!(
        col.dirty_segments().unwrap(),
        vec![true, false, true, false]
    );
    col.request_rebuild().unwrap();
    col.quiesce();
    let stats = col.stats();
    assert_eq!(stats.segments_rebuilt, 2);
    assert_eq!(stats.segments_reused, 2);
}

#[test]
fn manual_rebuild_with_clean_segments_refreshes_everything() {
    let pool = MaintainedPool::new(1);
    let col = pool
        .add_column_segmented(
            "c",
            &values(),
            HistogramMethod::Sap0,
            48,
            4,
            RebuildConfig::new(RebuildPolicy::Manual),
        )
        .unwrap();
    col.request_rebuild().unwrap();
    col.quiesce();
    let stats = col.stats();
    assert_eq!(stats.rebuilds, 1);
    assert_eq!(stats.segments_rebuilt, 4);
    assert_eq!(stats.segments_reused, 0);
}

#[test]
fn saturated_budget_makes_the_composition_exact() {
    // One bucket per position in every segment ⇒ each partial is exact,
    // and the composed estimator must answer every cross-segment range
    // exactly (the segment-layer analogue of the merge-equivalence
    // property: composing exact partials loses nothing).
    let pool = MaintainedPool::new(1);
    let vals = values();
    let wpb = HistogramMethod::Sap0.words_per_bucket();
    let col = pool
        .add_column_segmented(
            "c",
            &vals,
            HistogramMethod::Sap0,
            wpb * N,
            8,
            RebuildConfig::new(RebuildPolicy::Manual),
        )
        .unwrap();
    for q in RangeQuery::all(N) {
        let est = col.estimate(q);
        let exact = col.exact(q) as f64;
        assert!(
            (est - exact).abs() < 1e-6,
            "q={q:?}: est {est} vs exact {exact}"
        );
    }
    // Provenance: every segment committed a real (tier-0) build.
    let outcomes = col.segment_outcomes().unwrap();
    assert_eq!(outcomes.len(), 8);
    for o in &outcomes {
        assert_eq!(o.used, "SAP0");
        assert!(!o.is_degraded());
    }
    // The joint split granted every segment a positive budget.
    let budgets = col.segment_budgets().unwrap();
    assert!(budgets.iter().all(|&w| w >= wpb));
}

/// Seeded sweep: cancellation lands mid-merge. Each seed dirties a
/// different set of segments, then cancels the column's token before the
/// rebuild drains, so the worker fails partway through the
/// rebuild-and-compose cycle. Required invariants, per seed:
/// provenance propagates (`last_error` is `Cancelled`, counted in
/// `failed_rebuilds`, committed outcomes untouched), nothing swaps, and
/// the dirty marks are restored so the next rebuild still knows what
/// changed.
#[test]
fn seeded_cancellation_mid_merge_propagates_provenance_and_restores_dirty() {
    for seed in 1u64..=5 {
        let token = CancelToken::new();
        let pool = MaintainedPool::new(1);
        let col = pool
            .add_column_segmented(
                "c",
                &values(),
                HistogramMethod::Sap0,
                48,
                8,
                RebuildConfig::new(RebuildPolicy::Manual).with_cancel_token(token.clone()),
            )
            .unwrap();
        let outcomes_before = col.segment_outcomes().unwrap();
        let generation_before = col.serving_generation();
        // Deterministic xorshift dirty pattern: 1–4 distinct segments.
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut dirtied = Vec::new();
        for _ in 0..=(seed % 4) {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let seg = (s % 8) as usize;
            col.update(seg * 8, 3).unwrap();
            dirtied.push(seg);
        }
        token.cancel();
        col.request_rebuild().unwrap();
        col.quiesce();
        let stats = col.stats();
        assert_eq!(stats.rebuilds, 0, "seed {seed}: nothing may commit");
        assert_eq!(stats.failed_rebuilds, 1, "seed {seed}");
        assert_eq!(stats.segments_rebuilt, 0, "seed {seed}");
        assert!(
            matches!(col.last_error(), Some(SynopticError::Cancelled)),
            "seed {seed}: got {:?}",
            col.last_error()
        );
        // Nothing swapped; the committed per-segment provenance is the
        // registration-time provenance, bit for bit.
        assert_eq!(col.serving_generation(), generation_before, "seed {seed}");
        assert_eq!(col.segment_outcomes().unwrap(), outcomes_before);
        // Every dirtied segment is still marked for the next rebuild.
        let dirty = col.dirty_segments().unwrap();
        for &seg in &dirtied {
            assert!(dirty[seg], "seed {seed}: segment {seg} lost its mark");
        }
    }
}

#[test]
fn segmented_durable_column_journals_and_checkpoints_like_monolithic() {
    let dir = tempdir("durable");
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let durability = DurabilityConfig::journaled(dir.join("wal"));
    let pool = MaintainedPool::new(1);
    let col = pool
        .add_column_segmented_durable(
            "c",
            &values(),
            HistogramMethod::Sap0,
            48,
            4,
            RebuildConfig::new(RebuildPolicy::EveryKUpdates(3)),
            storage,
            &durability,
            0,
            None,
        )
        .unwrap();
    assert!(col.journaled());
    for t in 0..6 {
        col.update(t, 2).unwrap();
    }
    col.quiesce();
    // Every acknowledged update hit the journal before the Fenwick write.
    assert_eq!(col.wal_mark(), 6);
    let stats = col.stats();
    assert!(stats.rebuilds >= 1);
    assert!(stats.segments_rebuilt >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
