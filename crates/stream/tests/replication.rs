//! Integration tests for the replication path: leader-side segment
//! shipping ([`synoptic_repl::Shipper`]) feeding a follower
//! ([`synoptic_stream::Follower`]) across in-memory and fault-injecting
//! transports.
//!
//! The contract under test is the same one the recovery sweep enforces
//! on a single node, extended across a wire: **a follower either
//! converges to exactly the leader's acknowledged state, or refuses with
//! a recorded reason — it never silently diverges.** Every refusal path
//! the follower owns is driven here: non-anchoring segments, CRC-corrupt
//! records mid-stream, torn segment transfers, duplicate replay (which
//! must be idempotent, not refused), and lag-bounded reads.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use synoptic_catalog::wal::{
    list_journal_columns, scan_column_journal, ColumnWal, FsyncCadence, WalConfig,
};
use synoptic_catalog::{Catalog, ColumnEntry, DurableCatalog, FsStorage, PersistentSynopsis};
use synoptic_core::{RangeQuery, SynopticError};
use synoptic_repl::election::{ManualClock, Seeder, TermLedger};
use synoptic_repl::transport::{FaultyTransport, MemTransport, Transport, TransportFault};
use synoptic_repl::wire::{decode_frame, encode_frame, Frame};
use synoptic_repl::Shipper;
use synoptic_stream::{promote, rejoin, FollowConfig, Follower, ServeOutcome, SharedStorage};

const COLUMN: &str = "c";
const N: usize = 16;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "synoptic-repl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn initial_values() -> Vec<i64> {
    (0..N as i64).map(|i| 10 + (i * 7) % 23).collect()
}

/// Deterministic update stream, same shape as the recovery sweep's.
fn stream(len: usize) -> Vec<(usize, i64)> {
    let mut s = 0x2001_u64;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let i = (s % N as u64) as usize;
        let d = ((s >> 32) % 9) as i64 - 4;
        out.push((i, if d == 0 { 5 } else { d }));
    }
    out
}

fn commit_initial(cat_dir: &Path, values: &[i64]) -> u64 {
    let store = DurableCatalog::open(cat_dir, FsStorage::new()).unwrap();
    let mut cat = Catalog::new();
    cat.insert(
        COLUMN,
        ColumnEntry {
            n: values.len(),
            total_rows: values.iter().sum(),
            synopsis: PersistentSynopsis::from_frequencies(values),
        },
    );
    store.save(&cat).unwrap()
}

/// A leader: committed catalog + journal that appends `updates` and seals
/// everything. Returns `(wal_dir, shadow, pending_mark)`.
fn build_leader(root: &Path, updates: usize) -> (PathBuf, Vec<i64>, u64) {
    let cat_dir = root.join("leader-cat");
    let wal_dir = root.join("leader-wal");
    let values = initial_values();
    let generation = commit_initial(&cat_dir, &values);
    let wal = ColumnWal::open(
        FsStorage::new(),
        &wal_dir,
        COLUMN,
        generation,
        WalConfig {
            segment_bytes: 128, // ~3 records per segment
            fsync: FsyncCadence::OnRotate,
            ..WalConfig::default()
        },
    )
    .unwrap();
    let mut shadow = values;
    for (i, d) in stream(updates) {
        wal.append(i as u64, d).unwrap();
        shadow[i] += d;
    }
    wal.seal().unwrap();
    let mark = wal.pending_mark();
    (wal_dir, shadow, mark)
}

/// A follower bootstrapped from its own committed catalog and an empty
/// local journal.
fn build_follower(root: &Path, config: FollowConfig) -> Follower {
    let cat_dir = root.join("follower-cat");
    let wal_dir = root.join("follower-wal");
    commit_initial(&cat_dir, &initial_values());
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (follower, _report) = Follower::open(storage, &cat_dir, wal_dir, config).unwrap();
    follower
}

/// Runs the follower's serve loop on its own thread until the leader
/// closes the link, returning the follower for inspection.
fn serve_in_thread(
    mut follower: Follower,
    mut transport: MemTransport,
) -> std::thread::JoinHandle<(Follower, Result<(), SynopticError>)> {
    std::thread::spawn(move || {
        let served = follower.serve(&mut transport);
        (follower, served)
    })
}

/// Reads the leader's sealed segments in LSN order as raw file bytes.
fn leader_segments(wal_dir: &Path) -> Vec<(u64, Vec<u8>)> {
    let storage = FsStorage::new();
    synoptic_catalog::list_sealed_segments(&storage, wal_dir)
        .unwrap()
        .into_iter()
        .map(|s| (s.seq, std::fs::read(wal_dir.join(&s.file)).unwrap()))
        .collect()
}

fn total(q_values: &[i64]) -> f64 {
    q_values.iter().sum::<i64>() as f64
}

/// Clean transport: shipping converges, the replica's values and its
/// lag-free estimates equal the leader's acknowledged state exactly.
#[test]
fn shipped_segments_converge_to_leader_state() {
    let root = tempdir("clean");
    let (wal_dir, shadow, mark) = build_leader(&root, 20);
    let follower = build_follower(&root, FollowConfig::default());

    let (mut leader_end, follower_end) = MemTransport::pair();
    let handle = serve_in_thread(follower, follower_end);

    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN);
    let report = shipper.ship(&mut leader_end, mark).unwrap();
    assert_eq!(report.acked_lsn, mark, "every sealed record must be acked");
    assert!(report.shipped > 0);
    assert!(report.refusals.is_empty(), "{:?}", report.refusals);

    leader_end.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(follower.values(COLUMN).unwrap(), &shadow[..]);
    assert_eq!(follower.applied_lsn(COLUMN), Some(mark));
    assert_eq!(follower.lag(COLUMN), Some(0));
    let q = RangeQuery::new(0, N - 1).unwrap();
    assert_eq!(follower.estimate(COLUMN, q).unwrap(), total(&shadow));
    assert!(follower.refusals().is_empty(), "{:?}", follower.refusals());
    let _ = std::fs::remove_dir_all(&root);
}

/// Shipping twice is incremental and idempotent: the second ship finds
/// the follower already at the watermark and re-ships nothing.
#[test]
fn reshipping_an_up_to_date_follower_ships_nothing() {
    let root = tempdir("reship");
    let (wal_dir, shadow, mark) = build_leader(&root, 12);
    let follower = build_follower(&root, FollowConfig::default());

    let (mut leader_end, follower_end) = MemTransport::pair();
    let handle = serve_in_thread(follower, follower_end);

    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN);
    let first = shipper.ship(&mut leader_end, mark).unwrap();
    assert!(first.shipped > 0);
    let second = shipper.ship(&mut leader_end, mark).unwrap();
    assert_eq!(second.shipped, 0, "second ship must be incremental");
    assert_eq!(second.acked_lsn, mark);

    leader_end.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(follower.values(COLUMN).unwrap(), &shadow[..]);
    let _ = std::fs::remove_dir_all(&root);
}

/// The full fault menu on the wire — dropped frames, a torn mid-record
/// transfer, duplicated segments, reordering — and the follower still
/// converges to exactly the leader's state, refusing (loudly, with
/// recorded reasons) rather than applying anything invalid.
#[test]
fn faulty_transport_converges_to_exact_leader_state() {
    let root = tempdir("faulty");
    let (wal_dir, shadow, mark) = build_leader(&root, 24);
    let follower = build_follower(&root, FollowConfig::default());

    let (leader_end, follower_end) = MemTransport::pair();
    let schedule = vec![
        TransportFault::Drop,
        TransportFault::Clean,
        TransportFault::Torn { keep: 13 },
        TransportFault::Reorder,
        TransportFault::Clean,
        TransportFault::Duplicate,
        TransportFault::Drop,
    ];
    let fault_count = schedule
        .iter()
        .filter(|f| !matches!(f, TransportFault::Clean))
        .count();
    let mut faulty = FaultyTransport::new(leader_end, schedule);
    let handle = serve_in_thread(follower, follower_end);

    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN)
        .with_retry(8, Duration::from_millis(2))
        .with_drain_timeout(Duration::from_millis(100));
    let report = match shipper.ship(&mut faulty, mark) {
        Ok(r) => r,
        Err(e) => {
            let (f, served) = handle.join().unwrap();
            panic!(
                "ship failed: {e}; served={served:?}; refusals={:?}",
                f.refusals()
            );
        }
    };
    assert_eq!(report.acked_lsn, mark, "must converge despite faults");
    assert_eq!(
        faulty.faults_fired(),
        fault_count,
        "every scheduled fault must actually fire"
    );

    faulty.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(
        follower.values(COLUMN).unwrap(),
        &shadow[..],
        "converge-or-refuse: the converged state must be exact"
    );
    // The torn transfer must have been noticed, not swallowed.
    assert!(
        follower.refusals().iter().any(|r| r.contains("<frame>")),
        "torn frame must be recorded as a refusal: {:?}",
        follower.refusals()
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A segment that skips ahead of the applied mark parks in the reorder
/// window; with the window disabled it is refused immediately, with the
/// expected and actual LSNs in the reason.
#[test]
fn non_anchoring_segment_is_refused_when_window_disabled() {
    let root = tempdir("anchor");
    let (wal_dir, _shadow, mark) = build_leader(&root, 9);
    let mut follower = build_follower(
        &root,
        FollowConfig {
            max_lag: None,
            reorder_window: 0,
            checkpoint_segments: None,
        },
    );

    let segments = leader_segments(&wal_dir);
    assert!(segments.len() >= 2, "need at least two sealed segments");
    // Skip the first segment: the second cannot anchor at LSN 0.
    let (seq, bytes) = segments.last().unwrap().clone();
    let response = follower.handle(&encode_frame(&Frame::Segment {
        term: 0,
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes,
    }));
    match decode_frame(&response).unwrap() {
        Frame::Refuse {
            column,
            applied_lsn,
            reason,
            ..
        } => {
            assert_eq!(column, COLUMN);
            assert_eq!(applied_lsn, 0, "nothing may have been applied");
            assert!(reason.contains("does not anchor"), "{reason}");
            assert!(reason.contains("LSN"), "{reason}");
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    assert_eq!(follower.values(COLUMN).unwrap(), &initial_values()[..]);
    assert_eq!(follower.refusals().len(), 1);
    let _ = std::fs::remove_dir_all(&root);
}

/// A CRC-corrupt record mid-stream: the whole segment is refused before
/// anything is applied, and a pristine retry of the same segment then
/// applies cleanly — corruption costs a retry, never integrity.
#[test]
fn crc_corrupt_record_mid_stream_is_refused_then_retried() {
    let root = tempdir("crc");
    let (wal_dir, _shadow, mark) = build_leader(&root, 5);
    let mut follower = build_follower(&root, FollowConfig::default());

    let segments = leader_segments(&wal_dir);
    let (seq, pristine) = segments[0].clone();
    let mut corrupt = pristine.clone();
    // Flip one bit inside the final record's delta so the failure sits
    // mid-stream, after records that validate.
    let at = pristine.len() - 12;
    corrupt[at] ^= 0x40;
    let response = follower.handle(&encode_frame(&Frame::Segment {
        term: 0,
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes: corrupt,
    }));
    match decode_frame(&response).unwrap() {
        Frame::Refuse { reason, .. } => {
            assert!(reason.contains("corrupt shipped segment"), "{reason}")
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    assert_eq!(
        follower.values(COLUMN).unwrap(),
        &initial_values()[..],
        "a refused segment must not be partially applied"
    );

    // The leader's retry ladder re-ships the same bytes intact.
    let response = follower.handle(&encode_frame(&Frame::Segment {
        term: 0,
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes: pristine,
    }));
    match decode_frame(&response).unwrap() {
        Frame::Ack { applied_lsn, .. } => assert!(applied_lsn > 0),
        other => panic!("expected an ack, got {other:?}"),
    }
    let mut expect = initial_values();
    for (i, d) in stream(5)
        .into_iter()
        .take(follower.applied_lsn(COLUMN).unwrap() as usize)
    {
        expect[i] += d;
    }
    assert_eq!(follower.values(COLUMN).unwrap(), &expect[..]);
    let _ = std::fs::remove_dir_all(&root);
}

/// A segment truncated mid-record inside a valid frame (the transfer
/// tore, the frame CRC was recomputed by a hypothetical buggy relay) is
/// refused as torn — the follower never journals a prefix.
#[test]
fn torn_segment_transfer_is_refused() {
    let root = tempdir("torn-seg");
    let (wal_dir, _shadow, mark) = build_leader(&root, 5);
    let mut follower = build_follower(&root, FollowConfig::default());

    let (seq, pristine) = leader_segments(&wal_dir)[0].clone();
    let torn = pristine[..pristine.len() - 11].to_vec();
    let response = follower.handle(&encode_frame(&Frame::Segment {
        term: 0,
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes: torn,
    }));
    match decode_frame(&response).unwrap() {
        Frame::Refuse { reason, .. } => {
            assert!(reason.contains("torn segment transfer"), "{reason}")
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    assert_eq!(follower.applied_lsn(COLUMN), Some(0));
    let _ = std::fs::remove_dir_all(&root);
}

/// Replaying an already-applied segment is idempotent: same ack, same
/// values, no double-application of deltas.
#[test]
fn duplicate_segment_replay_is_idempotent() {
    let root = tempdir("dup");
    let (wal_dir, _shadow, mark) = build_leader(&root, 6);
    let mut follower = build_follower(&root, FollowConfig::default());

    let (seq, bytes) = leader_segments(&wal_dir)[0].clone();
    let frame = encode_frame(&Frame::Segment {
        term: 0,
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes,
    });
    let first = decode_frame(&follower.handle(&frame)).unwrap();
    let after_first = follower.values(COLUMN).unwrap().to_vec();
    let second = decode_frame(&follower.handle(&frame)).unwrap();
    assert_eq!(first, second, "duplicate replay must re-ack identically");
    assert_eq!(follower.values(COLUMN).unwrap(), &after_first[..]);
    assert!(follower.refusals().is_empty());
    let _ = std::fs::remove_dir_all(&root);
}

/// Reads past the configured lag bound are refused with full provenance
/// (column, observed lag, bound), and start serving again the moment the
/// replica catches up.
#[test]
fn reads_beyond_max_lag_are_refused_with_provenance() {
    let root = tempdir("lag");
    let (wal_dir, shadow, mark) = build_leader(&root, 10);
    let mut follower = build_follower(
        &root,
        FollowConfig {
            max_lag: Some(2),
            reorder_window: 8,
            checkpoint_segments: None,
        },
    );
    let q = RangeQuery::new(0, N - 1).unwrap();

    // Fresh replica, no leader contact yet: lag is 0, reads flow.
    assert!(follower.estimate(COLUMN, q).is_ok());

    // A heartbeat reveals the leader is `mark` ahead: reads refuse.
    follower.handle(&encode_frame(&Frame::Heartbeat {
        term: 0,
        column: COLUMN.into(),
        leader_mark: mark,
    }));
    match follower.estimate(COLUMN, q) {
        Err(SynopticError::ReplicationLagExceeded {
            column,
            lag,
            max_lag,
        }) => {
            assert_eq!(column, COLUMN);
            assert_eq!(lag, mark);
            assert_eq!(max_lag, 2);
        }
        other => panic!("expected a lag refusal, got {other:?}"),
    }

    // Catch up over the wire; reads flow again and are exact.
    for (seq, bytes) in leader_segments(&wal_dir) {
        follower.handle(&encode_frame(&Frame::Segment {
            term: 0,
            column: COLUMN.into(),
            seq,
            leader_mark: mark,
            bytes,
        }));
    }
    assert_eq!(follower.lag(COLUMN), Some(0));
    assert_eq!(follower.estimate(COLUMN, q).unwrap(), total(&shadow));
    let _ = std::fs::remove_dir_all(&root);
}

/// The follower's local journal is a real journal: restarting the
/// follower (fresh process, recovery from its own files) reproduces the
/// replicated state exactly — this is the promotion primitive.
#[test]
fn follower_restart_recovers_replicated_state_from_its_own_journal() {
    let root = tempdir("restart");
    let (wal_dir, shadow, mark) = build_leader(&root, 15);
    let follower = build_follower(&root, FollowConfig::default());

    let (mut leader_end, follower_end) = MemTransport::pair();
    let handle = serve_in_thread(follower, follower_end);
    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN);
    shipper.ship(&mut leader_end, mark).unwrap();
    leader_end.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(follower.values(COLUMN).unwrap(), &shadow[..]);
    drop(follower); // the follower process dies

    // A fresh follower bootstraps purely from local durable state.
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (reborn, report) = Follower::open(
        storage,
        root.join("follower-cat"),
        root.join("follower-wal"),
        FollowConfig::default(),
    )
    .unwrap();
    assert_eq!(reborn.values(COLUMN).unwrap(), &shadow[..]);
    assert_eq!(reborn.applied_lsn(COLUMN), Some(mark));
    assert!(report.column(COLUMN).unwrap().replayed > 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// A stream that ends with a parked (never-anchored) segment is a
/// divergence at end-of-stream, not a silent gap.
#[test]
fn stream_ending_with_parked_segment_is_divergence() {
    let root = tempdir("parked");
    let (wal_dir, _shadow, mark) = build_leader(&root, 9);
    let mut follower = build_follower(&root, FollowConfig::default());

    let (seq, bytes) = leader_segments(&wal_dir).last().unwrap().clone();
    follower.handle(&encode_frame(&Frame::Segment {
        term: 0,
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes,
    }));
    let err = follower.finish().unwrap_err();
    assert!(
        matches!(err, SynopticError::ReplicationDivergence { .. }),
        "{err:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Fencing: once the replica has adopted a term, every frame from an
/// older term — segments and heartbeats alike — is refused with both
/// terms in the verdict, and the adopted term survives a restart.
#[test]
fn stale_term_frames_are_fenced_with_provenance() {
    let root = tempdir("fence");
    let (wal_dir, _shadow, mark) = build_leader(&root, 6);
    let mut follower = build_follower(&root, FollowConfig::default());
    assert_eq!(follower.term(), 0, "no election has touched this node yet");

    // A term-3 heartbeat: the replica adopts and persists the term.
    let resp = follower.handle(&encode_frame(&Frame::Heartbeat {
        term: 3,
        column: COLUMN.into(),
        leader_mark: mark,
    }));
    assert!(
        matches!(decode_frame(&resp).unwrap(), Frame::Ack { term: 3, .. }),
        "the ack must carry the adopted term"
    );
    assert_eq!(follower.term(), 3);

    // A deposed leader still shipping on term 2 is refused — loudly, with
    // term provenance — and nothing is applied.
    let (seq, bytes) = leader_segments(&wal_dir)[0].clone();
    let resp = follower.handle(&encode_frame(&Frame::Segment {
        term: 2,
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes,
    }));
    match decode_frame(&resp).unwrap() {
        Frame::Refuse { term, reason, .. } => {
            assert_eq!(term, 3, "the refusal carries the replica's own term");
            assert!(reason.contains("fenced"), "{reason}");
            assert!(
                reason.contains("term 2") && reason.contains("term 3"),
                "{reason}"
            );
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    assert_eq!(follower.applied_lsn(COLUMN), Some(0));

    // Its heartbeats are fenced too: a stale leader gets no comfort.
    let resp = follower.handle(&encode_frame(&Frame::Heartbeat {
        term: 2,
        column: COLUMN.into(),
        leader_mark: mark,
    }));
    assert!(matches!(
        decode_frame(&resp).unwrap(),
        Frame::Refuse { term: 3, .. }
    ));

    // The adopted term was a manifest generation: a restarted replica is
    // still on term 3 and still fences.
    drop(follower);
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (reborn, _) = Follower::open(
        storage,
        root.join("follower-cat"),
        root.join("follower-wal"),
        FollowConfig::default(),
    )
    .unwrap();
    assert_eq!(reborn.term(), 3);
    let _ = std::fs::remove_dir_all(&root);
}

/// At most one grant per term: the first claim wins and is persisted
/// before the grant travels; a rival claim on the same term is refused
/// naming the holder; a newer term supersedes cleanly.
#[test]
fn a_term_is_granted_at_most_once() {
    let root = tempdir("claim");
    let mut follower = build_follower(&root, FollowConfig::default());

    let grant =
        decode_frame(&follower.handle(&encode_frame(&Frame::Claim { term: 4, node: 1 }))).unwrap();
    assert_eq!(grant, Frame::Grant { term: 4, node: 1 });
    assert_eq!(follower.term(), 4);

    // A rival claiming the already-granted term is fenced, with the
    // holder named in the verdict.
    match decode_frame(&follower.handle(&encode_frame(&Frame::Claim { term: 4, node: 2 }))).unwrap()
    {
        Frame::Refuse { term, reason, .. } => {
            assert_eq!(term, 4);
            assert!(reason.contains("granted to node 1"), "{reason}");
        }
        other => panic!("expected a refusal, got {other:?}"),
    }

    // Re-claiming by the holder is idempotent…
    let again =
        decode_frame(&follower.handle(&encode_frame(&Frame::Claim { term: 4, node: 1 }))).unwrap();
    assert_eq!(again, Frame::Grant { term: 4, node: 1 });

    // …and a newer term supersedes, whoever claims it.
    let newer =
        decode_frame(&follower.handle(&encode_frame(&Frame::Claim { term: 5, node: 2 }))).unwrap();
    assert_eq!(newer, Frame::Grant { term: 5, node: 2 });

    // The grant is durable: the persisted ledger names term 5, node 2.
    drop(follower);
    let ledger = TermLedger::open(root.join("follower-cat"), FsStorage::new()).unwrap();
    assert_eq!(ledger.current().unwrap(), (5, Some(2)));
    let _ = std::fs::remove_dir_all(&root);
}

/// An asymmetric partition — the follower hears the leader fine, but the
/// leader is deaf to the first acks — resolves through the retry ladder:
/// re-probes re-solicit the cumulative ack and shipping converges.
#[test]
fn asymmetric_partition_dropping_acks_still_converges() {
    let root = tempdir("asym");
    let (wal_dir, shadow, mark) = build_leader(&root, 20);
    let follower = build_follower(&root, FollowConfig::default());

    let (leader_end, follower_end) = MemTransport::pair();
    let mut faulty = FaultyTransport::with_recv_faults(
        leader_end,
        vec![],
        vec![TransportFault::Drop, TransportFault::Drop],
    );
    let handle = serve_in_thread(follower, follower_end);

    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN)
        .with_retry(8, Duration::from_millis(2))
        .with_drain_timeout(Duration::from_millis(100));
    let report = shipper.ship(&mut faulty, mark).unwrap();
    assert_eq!(
        report.acked_lsn, mark,
        "must converge once the partition heals"
    );
    assert_eq!(faulty.faults_fired(), 2, "both scheduled drops must fire");

    faulty.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(follower.values(COLUMN).unwrap(), &shadow[..]);
    let _ = std::fs::remove_dir_all(&root);
}

/// The failover trigger: a leader ships everything, then goes silent
/// (crash without closing the link). The lease — tracked on a manual
/// clock, no wall-time — expires, the serve loop reports it, and the
/// replica promotes: recovery over its own files plus a durable claim of
/// term + 1, serving exactly the replicated-acknowledged state.
#[test]
fn lease_expiry_after_leader_silence_promotes_the_replica() {
    let root = tempdir("lease");
    let (wal_dir, shadow, mark) = build_leader(&root, 10);
    let follower = build_follower(&root, FollowConfig::default());
    let clock = ManualClock::new();

    let (mut leader_end, follower_end) = MemTransport::pair();
    let serve_clock = clock.clone();
    let handle = std::thread::spawn(move || {
        let mut follower = follower;
        let mut transport = follower_end;
        let outcome =
            follower.serve_with_lease(&mut transport, &serve_clock, 10, Duration::from_millis(1));
        (follower, outcome)
    });

    // The leader ships everything…
    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN);
    let report = shipper.ship(&mut leader_end, mark).unwrap();
    assert_eq!(report.acked_lsn, mark);
    // …then dies mid-lease: no close, no more heartbeats. The clock
    // advancing past the TTL is the only signal the replica gets.
    clock.advance(11);
    let (follower, outcome) = handle.join().unwrap();
    assert_eq!(outcome.unwrap(), ServeOutcome::LeaseExpired);
    assert_eq!(follower.values(COLUMN).unwrap(), &shadow[..]);
    drop(follower);

    // Promotion: the proven recovery path over local files, then a
    // durable claim of term + 1.
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (term, report) = promote(
        storage,
        root.join("follower-cat"),
        root.join("follower-wal"),
        7,
    )
    .unwrap();
    assert_eq!(term, 1);
    assert_eq!(
        report.column(COLUMN).unwrap().values,
        shadow,
        "the promoted state is exactly the replicated-acknowledged state"
    );
    let ledger = TermLedger::open(root.join("follower-cat"), FsStorage::new()).unwrap();
    assert_eq!(ledger.current().unwrap(), (1, Some(7)));
    let _ = std::fs::remove_dir_all(&root);
}

/// A heartbeat stuck in flight is indistinguishable from a dead leader:
/// the lease expires on clock time even though the frame was sent.
#[test]
fn a_delayed_heartbeat_does_not_save_the_lease() {
    let root = tempdir("hb-delay");
    let (_wal_dir, _shadow, mark) = build_leader(&root, 5);
    let follower = build_follower(&root, FollowConfig::default());
    let clock = ManualClock::new();

    let (mut leader_end, follower_end) = MemTransport::pair();
    // Everything inbound to the follower is held back for 1000 polls —
    // far past any lease — modelling a heartbeat stuck in flight.
    let faulty = FaultyTransport::with_recv_faults(
        follower_end,
        vec![],
        vec![TransportFault::Delay { frames: 1000 }],
    );
    let serve_clock = clock.clone();
    let handle = std::thread::spawn(move || {
        let mut follower = follower;
        let mut transport = faulty;
        let outcome =
            follower.serve_with_lease(&mut transport, &serve_clock, 10, Duration::from_millis(1));
        (transport, outcome)
    });

    leader_end
        .send(&encode_frame(&Frame::Heartbeat {
            term: 0,
            column: COLUMN.into(),
            leader_mark: mark,
        }))
        .unwrap();
    // Tick until the serve loop notices the silence: however late the
    // lease was armed, no on-time heartbeat ever reaches it.
    while !handle.is_finished() {
        clock.advance(1);
        std::thread::sleep(Duration::from_millis(1));
    }
    let (faulty, outcome) = handle.join().unwrap();
    assert_eq!(outcome.unwrap(), ServeOutcome::LeaseExpired);
    assert_eq!(
        faulty.faults_fired(),
        1,
        "the delay must actually have fired"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Follower auto-checkpointing: with `checkpoint_segments` set, a
/// long-lived replica periodically commits its live frequencies and
/// truncates the captured journal prefix — the journal stays bounded
/// across a long ingest, and a restart still reproduces the exact state.
#[test]
fn auto_checkpoint_keeps_the_follower_journal_bounded() {
    let root = tempdir("ckpt");
    let (wal_dir, shadow, mark) = build_leader(&root, 60);
    let shipped = leader_segments(&wal_dir).len();
    assert!(shipped >= 10, "need a long stream, got {shipped} segments");
    let follower = build_follower(
        &root,
        FollowConfig {
            max_lag: None,
            reorder_window: 8,
            checkpoint_segments: Some(2),
        },
    );

    let (mut leader_end, follower_end) = MemTransport::pair();
    let handle = serve_in_thread(follower, follower_end);
    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN);
    let report = shipper.ship(&mut leader_end, mark).unwrap();
    assert_eq!(report.acked_lsn, mark);

    leader_end.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(follower.values(COLUMN).unwrap(), &shadow[..]);
    assert_eq!(follower.applied_lsn(COLUMN), Some(mark));
    assert!(follower.refusals().is_empty(), "{:?}", follower.refusals());
    drop(follower);

    // The journal was truncated along the way: only the post-checkpoint
    // tail remains of the `shipped` segments that travelled.
    let remaining =
        synoptic_catalog::list_sealed_segments(&FsStorage::new(), &root.join("follower-wal"))
            .unwrap()
            .len();
    assert!(
        remaining <= 3,
        "journal must stay bounded: {remaining} of {shipped} shipped segments remain"
    );

    // A truncated replica still restarts to the exact replicated state:
    // the committed snapshot plus the surviving tail is the whole truth.
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (reborn, _) = Follower::open(
        storage,
        root.join("follower-cat"),
        root.join("follower-wal"),
        FollowConfig::default(),
    )
    .unwrap();
    assert_eq!(reborn.values(COLUMN).unwrap(), &shadow[..]);
    assert_eq!(reborn.applied_lsn(COLUMN), Some(mark));
    let _ = std::fs::remove_dir_all(&root);
}

/// Multi-column fan-in: all of a pool's journaled columns replicate over
/// ONE link; the follower demultiplexes per column and each converges to
/// its own shadow exactly.
#[test]
fn multiple_columns_fan_in_over_one_link() {
    let root = tempdir("fanin");
    let cat_dir = root.join("leader-cat");
    let wal_dir = root.join("leader-wal");
    let a0 = initial_values();
    let b0: Vec<i64> = (0..N as i64).map(|i| 3 + (i * 5) % 17).collect();

    // One committed leader catalog holding both columns.
    let store = DurableCatalog::open(&cat_dir, FsStorage::new()).unwrap();
    let mut cat = Catalog::new();
    for (name, values) in [("a", &a0), ("b", &b0)] {
        cat.insert(
            name,
            ColumnEntry {
                n: values.len(),
                total_rows: values.iter().sum(),
                synopsis: PersistentSynopsis::from_frequencies(values),
            },
        );
    }
    let generation = store.save(&cat).unwrap();

    // Each column journals its own update stream into the same WAL dir.
    let mut shadow_a = a0.clone();
    let mut shadow_b = b0.clone();
    for (name, shadow) in [("a", &mut shadow_a), ("b", &mut shadow_b)] {
        let wal = ColumnWal::open(
            FsStorage::new(),
            &wal_dir,
            name,
            generation,
            WalConfig {
                segment_bytes: 128,
                fsync: FsyncCadence::OnRotate,
                ..WalConfig::default()
            },
        )
        .unwrap();
        for (i, d) in stream(14) {
            wal.append(i as u64, d).unwrap();
            shadow[i] += d;
        }
        wal.seal().unwrap();
    }

    // A follower whose committed catalog holds both columns.
    let f_cat = root.join("follower-cat");
    let f_store = DurableCatalog::open(&f_cat, FsStorage::new()).unwrap();
    let mut fcat = Catalog::new();
    for (name, values) in [("a", &a0), ("b", &b0)] {
        fcat.insert(
            name,
            ColumnEntry {
                n: values.len(),
                total_rows: values.iter().sum(),
                synopsis: PersistentSynopsis::from_frequencies(values),
            },
        );
    }
    f_store.save(&fcat).unwrap();
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (follower, _) = Follower::open(
        storage,
        &f_cat,
        root.join("follower-wal"),
        FollowConfig::default(),
    )
    .unwrap();
    assert_eq!(follower.columns(), vec!["a".to_string(), "b".to_string()]);

    // Every journal column ships over the SAME transport, sequentially —
    // exactly what `maintain --replicate-to` does per cycle.
    let (mut leader_end, follower_end) = MemTransport::pair();
    let handle = serve_in_thread(follower, follower_end);
    for column in list_journal_columns(&FsStorage::new(), &wal_dir).unwrap() {
        let scan = scan_column_journal(&FsStorage::new(), &wal_dir, &column).unwrap();
        let report = Shipper::new(FsStorage::new(), &wal_dir, &column)
            .ship(&mut leader_end, scan.max_lsn)
            .unwrap();
        assert_eq!(report.acked_lsn, scan.max_lsn, "column {column}");
    }
    leader_end.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(follower.values("a").unwrap(), &shadow_a[..]);
    assert_eq!(follower.values("b").unwrap(), &shadow_b[..]);
    let q = RangeQuery::new(0, N - 1).unwrap();
    assert_eq!(follower.estimate("a", q).unwrap(), total(&shadow_a));
    assert_eq!(follower.estimate("b", q).unwrap(), total(&shadow_b));
    let _ = std::fs::remove_dir_all(&root);
}

/// The re-seed path end-to-end: a stranded node (fenced ex-leader or
/// cap-evicted laggard) receives the leader's committed snapshot plus the
/// journal tail over one link, rejoins as a follower on the leader's
/// term, and converges exactly. A rejoin into directories that already
/// hold state is refused — diverged history is discarded, never merged.
#[test]
fn a_stranded_node_reseeds_and_rejoins_as_a_follower() {
    let root = tempdir("reseed");
    let (wal_dir, shadow, mark) = build_leader(&root, 18);
    let cat_dir = root.join("leader-cat");
    let fresh_cat = root.join("reseed-cat");
    let fresh_wal = root.join("reseed-wal");

    let (mut leader_end, follower_end) = MemTransport::pair();
    let (rx_cat, rx_wal) = (fresh_cat.clone(), fresh_wal.clone());
    let receiver = std::thread::spawn(move || {
        let storage: SharedStorage = Arc::new(FsStorage::new());
        let mut transport = follower_end;
        let (mut follower, report) = rejoin(
            storage,
            &rx_cat,
            &rx_wal,
            FollowConfig::default(),
            &mut transport,
        )
        .unwrap();
        let served = follower.serve(&mut transport);
        (follower, report, served)
    });

    let seeder = Seeder::new(FsStorage::new(), &cat_dir, &wal_dir, 2, 7)
        .with_timeout(Duration::from_millis(2000));
    let report = seeder.seed(&mut leader_end).unwrap();
    assert_eq!(report.snapshots, 1, "one frequency column to snapshot");
    assert!(report.segments > 0, "the journal tail ships as segments");
    assert_eq!(report.term, 2);

    leader_end.close();
    let (follower, _rejoin_report, served) = receiver.join().unwrap();
    served.unwrap();
    assert_eq!(follower.values(COLUMN).unwrap(), &shadow[..]);
    assert_eq!(follower.applied_lsn(COLUMN), Some(mark));
    assert_eq!(
        follower.term(),
        2,
        "the rejoined node is on the leader's term"
    );
    let q = RangeQuery::new(0, N - 1).unwrap();
    assert_eq!(follower.estimate(COLUMN, q).unwrap(), total(&shadow));
    drop(follower);

    // The grant was persisted: the re-seeded node's ledger names the
    // leader.
    let ledger = TermLedger::open(&fresh_cat, FsStorage::new()).unwrap();
    assert_eq!(ledger.current().unwrap(), (2, Some(7)));

    // Rejoining into non-fresh directories is refused loudly.
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (mut dead_end, _peer) = MemTransport::pair();
    let err = match rejoin(
        storage,
        &fresh_cat,
        &fresh_wal,
        FollowConfig::default(),
        &mut dead_end,
    ) {
        Err(e) => e,
        Ok(_) => panic!("rejoin into non-fresh directories must refuse"),
    };
    match err {
        SynopticError::ReplicationDivergence { detail, .. } => {
            assert!(detail.contains("fresh directories"), "{detail}")
        }
        other => panic!("expected a divergence refusal, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}
