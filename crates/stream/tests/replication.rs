//! Integration tests for the replication path: leader-side segment
//! shipping ([`synoptic_repl::Shipper`]) feeding a follower
//! ([`synoptic_stream::Follower`]) across in-memory and fault-injecting
//! transports.
//!
//! The contract under test is the same one the recovery sweep enforces
//! on a single node, extended across a wire: **a follower either
//! converges to exactly the leader's acknowledged state, or refuses with
//! a recorded reason — it never silently diverges.** Every refusal path
//! the follower owns is driven here: non-anchoring segments, CRC-corrupt
//! records mid-stream, torn segment transfers, duplicate replay (which
//! must be idempotent, not refused), and lag-bounded reads.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use synoptic_catalog::wal::{ColumnWal, FsyncCadence, WalConfig};
use synoptic_catalog::{Catalog, ColumnEntry, DurableCatalog, FsStorage, PersistentSynopsis};
use synoptic_core::{RangeQuery, SynopticError};
use synoptic_repl::transport::{FaultyTransport, MemTransport, Transport, TransportFault};
use synoptic_repl::wire::{decode_frame, encode_frame, Frame};
use synoptic_repl::Shipper;
use synoptic_stream::{FollowConfig, Follower, SharedStorage};

const COLUMN: &str = "c";
const N: usize = 16;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "synoptic-repl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn initial_values() -> Vec<i64> {
    (0..N as i64).map(|i| 10 + (i * 7) % 23).collect()
}

/// Deterministic update stream, same shape as the recovery sweep's.
fn stream(len: usize) -> Vec<(usize, i64)> {
    let mut s = 0x2001_u64;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let i = (s % N as u64) as usize;
        let d = ((s >> 32) % 9) as i64 - 4;
        out.push((i, if d == 0 { 5 } else { d }));
    }
    out
}

fn commit_initial(cat_dir: &Path, values: &[i64]) -> u64 {
    let store = DurableCatalog::open(cat_dir, FsStorage::new()).unwrap();
    let mut cat = Catalog::new();
    cat.insert(
        COLUMN,
        ColumnEntry {
            n: values.len(),
            total_rows: values.iter().sum(),
            synopsis: PersistentSynopsis::from_frequencies(values),
        },
    );
    store.save(&cat).unwrap()
}

/// A leader: committed catalog + journal that appends `updates` and seals
/// everything. Returns `(wal_dir, shadow, pending_mark)`.
fn build_leader(root: &Path, updates: usize) -> (PathBuf, Vec<i64>, u64) {
    let cat_dir = root.join("leader-cat");
    let wal_dir = root.join("leader-wal");
    let values = initial_values();
    let generation = commit_initial(&cat_dir, &values);
    let wal = ColumnWal::open(
        FsStorage::new(),
        &wal_dir,
        COLUMN,
        generation,
        WalConfig {
            segment_bytes: 128, // ~3 records per segment
            fsync: FsyncCadence::OnRotate,
            ..WalConfig::default()
        },
    )
    .unwrap();
    let mut shadow = values;
    for (i, d) in stream(updates) {
        wal.append(i as u64, d).unwrap();
        shadow[i] += d;
    }
    wal.seal().unwrap();
    let mark = wal.pending_mark();
    (wal_dir, shadow, mark)
}

/// A follower bootstrapped from its own committed catalog and an empty
/// local journal.
fn build_follower(root: &Path, config: FollowConfig) -> Follower {
    let cat_dir = root.join("follower-cat");
    let wal_dir = root.join("follower-wal");
    commit_initial(&cat_dir, &initial_values());
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (follower, _report) = Follower::open(storage, &cat_dir, wal_dir, config).unwrap();
    follower
}

/// Runs the follower's serve loop on its own thread until the leader
/// closes the link, returning the follower for inspection.
fn serve_in_thread(
    mut follower: Follower,
    mut transport: MemTransport,
) -> std::thread::JoinHandle<(Follower, Result<(), SynopticError>)> {
    std::thread::spawn(move || {
        let served = follower.serve(&mut transport);
        (follower, served)
    })
}

/// Reads the leader's sealed segments in LSN order as raw file bytes.
fn leader_segments(wal_dir: &Path) -> Vec<(u64, Vec<u8>)> {
    let storage = FsStorage::new();
    synoptic_catalog::list_sealed_segments(&storage, wal_dir)
        .unwrap()
        .into_iter()
        .map(|s| (s.seq, std::fs::read(wal_dir.join(&s.file)).unwrap()))
        .collect()
}

fn total(q_values: &[i64]) -> f64 {
    q_values.iter().sum::<i64>() as f64
}

/// Clean transport: shipping converges, the replica's values and its
/// lag-free estimates equal the leader's acknowledged state exactly.
#[test]
fn shipped_segments_converge_to_leader_state() {
    let root = tempdir("clean");
    let (wal_dir, shadow, mark) = build_leader(&root, 20);
    let follower = build_follower(&root, FollowConfig::default());

    let (mut leader_end, follower_end) = MemTransport::pair();
    let handle = serve_in_thread(follower, follower_end);

    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN);
    let report = shipper.ship(&mut leader_end, mark).unwrap();
    assert_eq!(report.acked_lsn, mark, "every sealed record must be acked");
    assert!(report.shipped > 0);
    assert!(report.refusals.is_empty(), "{:?}", report.refusals);

    leader_end.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(follower.values(COLUMN).unwrap(), &shadow[..]);
    assert_eq!(follower.applied_lsn(COLUMN), Some(mark));
    assert_eq!(follower.lag(COLUMN), Some(0));
    let q = RangeQuery::new(0, N - 1).unwrap();
    assert_eq!(follower.estimate(COLUMN, q).unwrap(), total(&shadow));
    assert!(follower.refusals().is_empty(), "{:?}", follower.refusals());
    let _ = std::fs::remove_dir_all(&root);
}

/// Shipping twice is incremental and idempotent: the second ship finds
/// the follower already at the watermark and re-ships nothing.
#[test]
fn reshipping_an_up_to_date_follower_ships_nothing() {
    let root = tempdir("reship");
    let (wal_dir, shadow, mark) = build_leader(&root, 12);
    let follower = build_follower(&root, FollowConfig::default());

    let (mut leader_end, follower_end) = MemTransport::pair();
    let handle = serve_in_thread(follower, follower_end);

    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN);
    let first = shipper.ship(&mut leader_end, mark).unwrap();
    assert!(first.shipped > 0);
    let second = shipper.ship(&mut leader_end, mark).unwrap();
    assert_eq!(second.shipped, 0, "second ship must be incremental");
    assert_eq!(second.acked_lsn, mark);

    leader_end.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(follower.values(COLUMN).unwrap(), &shadow[..]);
    let _ = std::fs::remove_dir_all(&root);
}

/// The full fault menu on the wire — dropped frames, a torn mid-record
/// transfer, duplicated segments, reordering — and the follower still
/// converges to exactly the leader's state, refusing (loudly, with
/// recorded reasons) rather than applying anything invalid.
#[test]
fn faulty_transport_converges_to_exact_leader_state() {
    let root = tempdir("faulty");
    let (wal_dir, shadow, mark) = build_leader(&root, 24);
    let follower = build_follower(&root, FollowConfig::default());

    let (leader_end, follower_end) = MemTransport::pair();
    let schedule = vec![
        TransportFault::Drop,
        TransportFault::Clean,
        TransportFault::Torn { keep: 13 },
        TransportFault::Reorder,
        TransportFault::Clean,
        TransportFault::Duplicate,
        TransportFault::Drop,
    ];
    let fault_count = schedule
        .iter()
        .filter(|f| !matches!(f, TransportFault::Clean))
        .count();
    let mut faulty = FaultyTransport::new(leader_end, schedule);
    let handle = serve_in_thread(follower, follower_end);

    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN)
        .with_retry(8, Duration::from_millis(2))
        .with_drain_timeout(Duration::from_millis(100));
    let report = match shipper.ship(&mut faulty, mark) {
        Ok(r) => r,
        Err(e) => {
            let (f, served) = handle.join().unwrap();
            panic!(
                "ship failed: {e}; served={served:?}; refusals={:?}",
                f.refusals()
            );
        }
    };
    assert_eq!(report.acked_lsn, mark, "must converge despite faults");
    assert_eq!(
        faulty.faults_fired(),
        fault_count,
        "every scheduled fault must actually fire"
    );

    faulty.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(
        follower.values(COLUMN).unwrap(),
        &shadow[..],
        "converge-or-refuse: the converged state must be exact"
    );
    // The torn transfer must have been noticed, not swallowed.
    assert!(
        follower.refusals().iter().any(|r| r.contains("<frame>")),
        "torn frame must be recorded as a refusal: {:?}",
        follower.refusals()
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A segment that skips ahead of the applied mark parks in the reorder
/// window; with the window disabled it is refused immediately, with the
/// expected and actual LSNs in the reason.
#[test]
fn non_anchoring_segment_is_refused_when_window_disabled() {
    let root = tempdir("anchor");
    let (wal_dir, _shadow, mark) = build_leader(&root, 9);
    let mut follower = build_follower(
        &root,
        FollowConfig {
            max_lag: None,
            reorder_window: 0,
        },
    );

    let segments = leader_segments(&wal_dir);
    assert!(segments.len() >= 2, "need at least two sealed segments");
    // Skip the first segment: the second cannot anchor at LSN 0.
    let (seq, bytes) = segments.last().unwrap().clone();
    let response = follower.handle(&encode_frame(&Frame::Segment {
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes,
    }));
    match decode_frame(&response).unwrap() {
        Frame::Refuse {
            column,
            applied_lsn,
            reason,
        } => {
            assert_eq!(column, COLUMN);
            assert_eq!(applied_lsn, 0, "nothing may have been applied");
            assert!(reason.contains("does not anchor"), "{reason}");
            assert!(reason.contains("LSN"), "{reason}");
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    assert_eq!(follower.values(COLUMN).unwrap(), &initial_values()[..]);
    assert_eq!(follower.refusals().len(), 1);
    let _ = std::fs::remove_dir_all(&root);
}

/// A CRC-corrupt record mid-stream: the whole segment is refused before
/// anything is applied, and a pristine retry of the same segment then
/// applies cleanly — corruption costs a retry, never integrity.
#[test]
fn crc_corrupt_record_mid_stream_is_refused_then_retried() {
    let root = tempdir("crc");
    let (wal_dir, _shadow, mark) = build_leader(&root, 5);
    let mut follower = build_follower(&root, FollowConfig::default());

    let segments = leader_segments(&wal_dir);
    let (seq, pristine) = segments[0].clone();
    let mut corrupt = pristine.clone();
    // Flip one bit inside the final record's delta so the failure sits
    // mid-stream, after records that validate.
    let at = pristine.len() - 12;
    corrupt[at] ^= 0x40;
    let response = follower.handle(&encode_frame(&Frame::Segment {
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes: corrupt,
    }));
    match decode_frame(&response).unwrap() {
        Frame::Refuse { reason, .. } => {
            assert!(reason.contains("corrupt shipped segment"), "{reason}")
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    assert_eq!(
        follower.values(COLUMN).unwrap(),
        &initial_values()[..],
        "a refused segment must not be partially applied"
    );

    // The leader's retry ladder re-ships the same bytes intact.
    let response = follower.handle(&encode_frame(&Frame::Segment {
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes: pristine,
    }));
    match decode_frame(&response).unwrap() {
        Frame::Ack { applied_lsn, .. } => assert!(applied_lsn > 0),
        other => panic!("expected an ack, got {other:?}"),
    }
    let mut expect = initial_values();
    for (i, d) in stream(5)
        .into_iter()
        .take(follower.applied_lsn(COLUMN).unwrap() as usize)
    {
        expect[i] += d;
    }
    assert_eq!(follower.values(COLUMN).unwrap(), &expect[..]);
    let _ = std::fs::remove_dir_all(&root);
}

/// A segment truncated mid-record inside a valid frame (the transfer
/// tore, the frame CRC was recomputed by a hypothetical buggy relay) is
/// refused as torn — the follower never journals a prefix.
#[test]
fn torn_segment_transfer_is_refused() {
    let root = tempdir("torn-seg");
    let (wal_dir, _shadow, mark) = build_leader(&root, 5);
    let mut follower = build_follower(&root, FollowConfig::default());

    let (seq, pristine) = leader_segments(&wal_dir)[0].clone();
    let torn = pristine[..pristine.len() - 11].to_vec();
    let response = follower.handle(&encode_frame(&Frame::Segment {
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes: torn,
    }));
    match decode_frame(&response).unwrap() {
        Frame::Refuse { reason, .. } => {
            assert!(reason.contains("torn segment transfer"), "{reason}")
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    assert_eq!(follower.applied_lsn(COLUMN), Some(0));
    let _ = std::fs::remove_dir_all(&root);
}

/// Replaying an already-applied segment is idempotent: same ack, same
/// values, no double-application of deltas.
#[test]
fn duplicate_segment_replay_is_idempotent() {
    let root = tempdir("dup");
    let (wal_dir, _shadow, mark) = build_leader(&root, 6);
    let mut follower = build_follower(&root, FollowConfig::default());

    let (seq, bytes) = leader_segments(&wal_dir)[0].clone();
    let frame = encode_frame(&Frame::Segment {
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes,
    });
    let first = decode_frame(&follower.handle(&frame)).unwrap();
    let after_first = follower.values(COLUMN).unwrap().to_vec();
    let second = decode_frame(&follower.handle(&frame)).unwrap();
    assert_eq!(first, second, "duplicate replay must re-ack identically");
    assert_eq!(follower.values(COLUMN).unwrap(), &after_first[..]);
    assert!(follower.refusals().is_empty());
    let _ = std::fs::remove_dir_all(&root);
}

/// Reads past the configured lag bound are refused with full provenance
/// (column, observed lag, bound), and start serving again the moment the
/// replica catches up.
#[test]
fn reads_beyond_max_lag_are_refused_with_provenance() {
    let root = tempdir("lag");
    let (wal_dir, shadow, mark) = build_leader(&root, 10);
    let mut follower = build_follower(
        &root,
        FollowConfig {
            max_lag: Some(2),
            reorder_window: 8,
        },
    );
    let q = RangeQuery::new(0, N - 1).unwrap();

    // Fresh replica, no leader contact yet: lag is 0, reads flow.
    assert!(follower.estimate(COLUMN, q).is_ok());

    // A heartbeat reveals the leader is `mark` ahead: reads refuse.
    follower.handle(&encode_frame(&Frame::Heartbeat {
        column: COLUMN.into(),
        leader_mark: mark,
    }));
    match follower.estimate(COLUMN, q) {
        Err(SynopticError::ReplicationLagExceeded {
            column,
            lag,
            max_lag,
        }) => {
            assert_eq!(column, COLUMN);
            assert_eq!(lag, mark);
            assert_eq!(max_lag, 2);
        }
        other => panic!("expected a lag refusal, got {other:?}"),
    }

    // Catch up over the wire; reads flow again and are exact.
    for (seq, bytes) in leader_segments(&wal_dir) {
        follower.handle(&encode_frame(&Frame::Segment {
            column: COLUMN.into(),
            seq,
            leader_mark: mark,
            bytes,
        }));
    }
    assert_eq!(follower.lag(COLUMN), Some(0));
    assert_eq!(follower.estimate(COLUMN, q).unwrap(), total(&shadow));
    let _ = std::fs::remove_dir_all(&root);
}

/// The follower's local journal is a real journal: restarting the
/// follower (fresh process, recovery from its own files) reproduces the
/// replicated state exactly — this is the promotion primitive.
#[test]
fn follower_restart_recovers_replicated_state_from_its_own_journal() {
    let root = tempdir("restart");
    let (wal_dir, shadow, mark) = build_leader(&root, 15);
    let follower = build_follower(&root, FollowConfig::default());

    let (mut leader_end, follower_end) = MemTransport::pair();
    let handle = serve_in_thread(follower, follower_end);
    let shipper = Shipper::new(FsStorage::new(), &wal_dir, COLUMN);
    shipper.ship(&mut leader_end, mark).unwrap();
    leader_end.close();
    let (follower, served) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(follower.values(COLUMN).unwrap(), &shadow[..]);
    drop(follower); // the follower process dies

    // A fresh follower bootstraps purely from local durable state.
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (reborn, report) = Follower::open(
        storage,
        root.join("follower-cat"),
        root.join("follower-wal"),
        FollowConfig::default(),
    )
    .unwrap();
    assert_eq!(reborn.values(COLUMN).unwrap(), &shadow[..]);
    assert_eq!(reborn.applied_lsn(COLUMN), Some(mark));
    assert!(report.column(COLUMN).unwrap().replayed > 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// A stream that ends with a parked (never-anchored) segment is a
/// divergence at end-of-stream, not a silent gap.
#[test]
fn stream_ending_with_parked_segment_is_divergence() {
    let root = tempdir("parked");
    let (wal_dir, _shadow, mark) = build_leader(&root, 9);
    let mut follower = build_follower(&root, FollowConfig::default());

    let (seq, bytes) = leader_segments(&wal_dir).last().unwrap().clone();
    follower.handle(&encode_frame(&Frame::Segment {
        column: COLUMN.into(),
        seq,
        leader_mark: mark,
        bytes,
    }));
    let err = follower.finish().unwrap_err();
    assert!(
        matches!(err, SynopticError::ReplicationDivergence { .. }),
        "{err:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
