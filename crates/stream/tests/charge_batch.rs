//! The `charge`-batching knob trades cancellation latency for lower
//! checkpoint overhead — and must trade *nothing else*. This sweep pins
//! the contract: on unconstrained builds (no deadline, no cell cap, no
//! cancellation), every batch setting produces bit-identical synopses,
//! because batching only changes how often constraints are *evaluated*,
//! never what work is metered or built.

use synoptic_core::{Budget, PrefixSums, RangeEstimator, RangeQuery, Result};
use synoptic_hist::sap0::build_sap0_with_budget;
use synoptic_stream::{MaintainedHistogram, RebuildConfig, RebuildPolicy};

const N: usize = 64;

fn initial_values() -> Vec<i64> {
    (0..N as i64).map(|i| 3 + (i * 11) % 37).collect()
}

fn stream(len: usize) -> Vec<(usize, i64)> {
    let mut s = 0x0601_u64;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let i = (s % N as u64) as usize;
        let d = ((s >> 32) % 11) as i64 - 5;
        out.push((i, if d == 0 { 3 } else { d }));
    }
    out
}

fn builder() -> impl FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>> {
    |_vals: &[i64], ps: &PrefixSums, budget: &Budget| {
        Ok(Box::new(build_sap0_with_budget(ps, 8, budget)?) as Box<dyn RangeEstimator>)
    }
}

/// Runs the same maintenance scenario at one batch setting and returns
/// every queryable bit: per-query estimate bit patterns plus rebuild
/// counts.
fn run_at_batch(batch: u64) -> (Vec<u64>, u64) {
    let values = initial_values();
    let config = RebuildConfig::new(RebuildPolicy::EveryKUpdates(7)).with_charge_batch(batch);
    let mut mh = MaintainedHistogram::with_config(&values, builder(), config).unwrap();
    for (i, d) in stream(96) {
        mh.update(i, d).unwrap();
    }
    let mut bits = Vec::new();
    for lo in (0..N).step_by(5) {
        for hi in (lo..N).step_by(7) {
            let q = RangeQuery::new(lo, hi).unwrap();
            bits.push(mh.estimator().estimate(q).to_bits());
        }
    }
    (bits, mh.stats().rebuilds)
}

/// Unconstrained builds are bit-identical at every batch setting,
/// including the degenerate 0 (normalized to 1) and a batch far larger
/// than the total checkpoint count.
#[test]
fn charge_batch_sweep_is_bit_identical_on_unconstrained_builds() {
    let (baseline_bits, baseline_rebuilds) = run_at_batch(1);
    assert!(baseline_rebuilds >= 10, "scenario must actually rebuild");
    for batch in [0, 2, 4, 64, 1024, u64::MAX] {
        let (bits, rebuilds) = run_at_batch(batch);
        assert_eq!(
            bits, baseline_bits,
            "batch {batch} must not change a single output bit"
        );
        assert_eq!(rebuilds, baseline_rebuilds, "batch {batch}");
    }
}
