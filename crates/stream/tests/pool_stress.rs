//! Threaded stress over the sharded maintenance pool: concurrent writers
//! and readers hammer `MaintainedPool` columns while rebuilds and persists
//! are forced to fail, plus the update-latency regression proving the
//! ingest path is decoupled from the persist retry ladder.
//!
//! The contracts under test:
//!
//! * **No reader ever observes a missing estimator.** Every `estimate()`
//!   during the storm returns a finite answer from *some* committed
//!   synopsis (last-good serving through the hot-swap cell).
//! * **No update is ever lost.** After quiescing, the exact Fenwick totals
//!   reconcile with the per-writer delta sums, and the update meter equals
//!   the number of ingests issued.
//! * **`update()` never pays for a persist.** With every persist failing
//!   and the retry ladder sleeping tens of milliseconds per rebuild on the
//!   worker, ingest latency stays in the microsecond regime.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use synoptic_catalog::{
    Catalog, ColumnEntry, DurableCatalog, Fault, FaultyStorage, FsStorage, PersistentSynopsis,
};
use synoptic_core::{RangeEstimator, RangeQuery, Result, Sap0Histogram, SynopticError};
use synoptic_hist::sap0::build_sap0_with_budget;
use synoptic_stream::{
    ColumnBuild, MaintainedPool, PersistFn, PoolBuildFn, RebuildConfig, RebuildPolicy,
};

type SharedStore = Arc<DurableCatalog<FaultyStorage<FsStorage>>>;

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("synoptic_pstress_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A SAP0 builder that parks the freshest concrete histogram for the
/// persist hook and fails every third rebuild (injected flakiness).
fn flaky_sap0_builder(
    latest: Arc<Mutex<Option<Sap0Histogram>>>,
    calls: Arc<AtomicU32>,
) -> PoolBuildFn {
    Box::new(move |_v, ps, budget| {
        let c = calls.fetch_add(1, Ordering::Relaxed);
        if c > 0 && c.is_multiple_of(3) {
            return Err(SynopticError::DeadlineExceeded { elapsed_ms: 1 });
        }
        let h = build_sap0_with_budget(ps, 4, budget)?;
        *latest.lock().unwrap() = Some(h.clone());
        Ok(Box::new(h) as Box<dyn RangeEstimator>)
    })
}

fn store_persist(latest: Arc<Mutex<Option<Sap0Histogram>>>, store: SharedStore) -> PersistFn {
    Box::new(move |_est: &dyn RangeEstimator| -> Result<()> {
        let guard = latest.lock().unwrap();
        let h = guard.as_ref().expect("persist runs after a build");
        let mut cat = Catalog::new();
        cat.insert(
            "col",
            ColumnEntry {
                n: h.n(),
                total_rows: 0,
                synopsis: PersistentSynopsis::from_sap0(h),
            },
        );
        store.save(&cat).map(|_| ())
    })
}

#[test]
fn writers_and_readers_survive_failing_rebuilds_and_persists() {
    const N_WRITERS: usize = 4;
    const M_READERS: usize = 3;
    const K_UPDATES: u64 = 400;
    const DOMAIN: usize = 64;

    let root = tmp_root("storm");
    let store: SharedStore = Arc::new(
        DurableCatalog::open(&root, FaultyStorage::new(FsStorage::new(), vec![])).unwrap(),
    );
    // A burst of device-full faults: early persists fail (and retry), the
    // storage "recovers" once the scripted queue drains.
    for _ in 0..24 {
        store.storage().push_fault(Fault::Enospc);
    }

    let values = vec![10i64; DOMAIN];
    let initial_total: i128 = values.iter().map(|&v| v as i128).sum();
    let latest = Arc::new(Mutex::new(None));
    let calls = Arc::new(AtomicU32::new(0));
    let pool = MaintainedPool::new(2);
    let col = pool
        .add_column_with_persist(
            "storm",
            &values,
            ColumnBuild::Custom(flaky_sap0_builder(Arc::clone(&latest), Arc::clone(&calls))),
            RebuildConfig::new(RebuildPolicy::EveryKUpdates(32))
                .with_persist_retries(2, Duration::from_micros(50)),
            Some(store_persist(Arc::clone(&latest), Arc::clone(&store))),
        )
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for r in 0..M_READERS {
        let col = col.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            // One reader per style: cached reader handle vs. fresh loads.
            let mut cached = col.reader();
            let q = RangeQuery {
                lo: r % DOMAIN,
                hi: DOMAIN - 1,
            };
            let mut observations = 0u64;
            // `loop`/break-after-check rather than `while`: every reader
            // takes at least one observation even if the writers finish
            // before this thread is first scheduled.
            loop {
                let est = if r % 2 == 0 {
                    cached.get().estimate(q)
                } else {
                    col.estimate(q)
                };
                assert!(est.is_finite(), "reader observed a non-answer: {est}");
                observations += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            observations
        }));
    }

    let mut writers = Vec::new();
    for w in 0..N_WRITERS {
        let col = col.clone();
        writers.push(std::thread::spawn(move || {
            let delta = (w + 1) as i64;
            for t in 0..K_UPDATES {
                let i = (w * 7 + t as usize) % DOMAIN;
                // The pool is alive for the whole run, so scheduling can
                // never fail; the bool only reports whether a rebuild was
                // queued.
                let _ = col.update(i, delta).unwrap();
            }
            delta as i128 * K_UPDATES as i128
        }));
    }

    let mut written: i128 = 0;
    for h in writers {
        written += h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        let obs = h.join().unwrap();
        assert!(obs > 0, "every reader made progress");
    }

    // Drain in-flight maintenance, then reconcile.
    col.quiesce();
    let full = RangeQuery {
        lo: 0,
        hi: DOMAIN - 1,
    };
    assert_eq!(
        col.exact(full),
        initial_total + written,
        "no update may be lost under concurrency"
    );
    let stats = col.stats();
    assert_eq!(stats.updates, (N_WRITERS as u64) * K_UPDATES);
    assert!(
        stats.rebuilds >= 1,
        "the storm must have rebuilt at least once"
    );
    assert!(
        store.storage().faults_fired() > 0,
        "the scripted persist faults must actually have fired"
    );
    // Serving survived everything — and after the fault queue drained, at
    // least one persist committed a generation.
    assert!(col.estimate(full).is_finite());
    drop(col);
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn update_latency_is_unaffected_by_failing_persists() {
    const DOMAIN: usize = 32;
    const UPDATES: usize = 400;

    // Every persist fails with a transient error; the retry ladder sleeps
    // 25 ms + 50 ms per rebuild *on the worker thread*.
    let persist: PersistFn = Box::new(|_e: &dyn RangeEstimator| {
        Err(SynopticError::Io {
            path: "/dev/full".into(),
            detail: "enospc (injected)".into(),
        })
    });
    let latest = Arc::new(Mutex::new(None));
    let calls = Arc::new(AtomicU32::new(0));
    let always = Box::new({
        let latest = Arc::clone(&latest);
        move |_v: &[i64], ps: &synoptic_core::PrefixSums, budget: &synoptic_core::Budget| {
            let _ = &calls;
            let h = build_sap0_with_budget(ps, 4, budget)?;
            *latest.lock().unwrap() = Some(h.clone());
            Ok(Box::new(h) as Box<dyn RangeEstimator>)
        }
    }) as PoolBuildFn;

    let values = vec![5i64; DOMAIN];
    let pool = MaintainedPool::new(1);
    let col = pool
        .add_column_with_persist(
            "latency",
            &values,
            ColumnBuild::Custom(always),
            RebuildConfig::new(RebuildPolicy::EveryKUpdates(16))
                .with_persist_retries(2, Duration::from_millis(25))
                .with_persist_total_backoff(Duration::from_millis(200)),
            Some(persist),
        )
        .unwrap();

    let mut latencies = Vec::with_capacity(UPDATES);
    for t in 0..UPDATES {
        let start = Instant::now();
        let _ = col.update(t % DOMAIN, 1).unwrap();
        latencies.push(start.elapsed());
        // A sliver of pacing so rebuild + failing persist demonstrably
        // overlap the ingest stream (still ≪ one 25 ms persist nap).
        if t % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    col.quiesce();

    let stats = col.stats();
    assert!(
        stats.persist_failures >= 1,
        "the persist ladder must have run (and failed) during ingest"
    );
    assert!(stats.persist_retries >= 1, "with sleeps on the worker");

    latencies.sort();
    let median = latencies[latencies.len() / 2];
    let p99 = latencies[latencies.len() * 99 / 100];
    // Ingest is a Fenwick update + policy check under a short mutex. If
    // update() ever waited on the persist ladder, the affected calls would
    // take ≥ 25 ms (one nap). Sub-millisecond median and a p99 below a
    // single nap prove the decoupling.
    assert!(
        median < Duration::from_millis(1),
        "median update latency {median:?} must stay sub-millisecond while persists fail"
    );
    assert!(
        p99 < Duration::from_millis(20),
        "p99 update latency {p99:?} must stay below one persist nap (25 ms)"
    );
    pool.shutdown();
}
