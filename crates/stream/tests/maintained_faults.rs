//! Fault-injected persistence under live maintenance: the PR-1 storage
//! fault harness (`synoptic_catalog::FaultyStorage`) wired into the
//! rebuild loop of `synoptic_stream::MaintainedHistogram`.
//!
//! The contract under test: an injected ENOSPC or torn write during the
//! post-rebuild persist hook must (a) leave the freshly built **in-memory**
//! synopsis serving, and (b) leave the on-disk `CURRENT` pointer at the
//! previous committed generation — durability lags, serving does not, and
//! the store never advances to a generation that cannot be loaded.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use synoptic_catalog::{
    Catalog, ColumnEntry, DurableCatalog, Fault, FaultyStorage, FsStorage, PersistentSynopsis,
};
use synoptic_core::{Budget, PrefixSums, RangeEstimator, RangeQuery, Result, Sap0Histogram};
use synoptic_hist::sap0::build_sap0_with_budget;
use synoptic_stream::{MaintainedHistogram, RebuildConfig, RebuildPolicy};

type SharedStore = Arc<DurableCatalog<FaultyStorage<FsStorage>>>;

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("synoptic_mfault_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A maintained histogram whose persist hook commits the freshest SAP0
/// synopsis to a durable store through the fault-injecting storage layer.
#[allow(clippy::type_complexity)]
fn maintained_with_store(
    values: &[i64],
    store: SharedStore,
    retries: u32,
) -> MaintainedHistogram<impl FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>>>
{
    // The builder parks a clone of the concrete histogram for the persist
    // hook (the hook only sees `&dyn RangeEstimator`). `PersistFn` is `Send`
    // (it may run on a background worker), so the shared slot is Arc/Mutex.
    let latest: Arc<Mutex<Option<Sap0Histogram>>> = Arc::new(Mutex::new(None));
    let latest_build = Arc::clone(&latest);
    let build = move |_v: &[i64], ps: &PrefixSums, budget: &Budget| {
        let h = build_sap0_with_budget(ps, 4, budget)?;
        *latest_build.lock().unwrap() = Some(h.clone());
        Ok(Box::new(h) as Box<dyn RangeEstimator>)
    };
    let persist = Box::new(move |_est: &dyn RangeEstimator| -> Result<()> {
        let guard = latest.lock().unwrap();
        let h = guard.as_ref().expect("persist runs after a build");
        let mut cat = Catalog::new();
        cat.insert(
            "col",
            ColumnEntry {
                n: h.n(),
                total_rows: 0,
                synopsis: PersistentSynopsis::from_sap0(h),
            },
        );
        store.save(&cat).map(|_| ())
    });
    MaintainedHistogram::with_config(
        values,
        build,
        RebuildConfig::new(RebuildPolicy::EveryKUpdates(4))
            .with_persist_retries(retries, Duration::from_micros(10)),
    )
    .unwrap()
    .with_persist(persist)
}

fn drive_one_rebuild(
    m: &mut MaintainedHistogram<
        impl FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>>,
    >,
) {
    let before = m.stats().rebuilds;
    for t in 0.. {
        m.update(t % 10, 1).unwrap();
        if m.stats().rebuilds > before {
            break;
        }
    }
}

#[test]
fn enospc_during_persist_keeps_serving_and_current_generation() {
    let root = tmp_root("enospc");
    let store: SharedStore = Arc::new(
        DurableCatalog::open(&root, FaultyStorage::new(FsStorage::new(), vec![])).unwrap(),
    );
    let values = vec![7i64; 10];
    // 1 retry → 2 attempts per persist.
    let mut m = maintained_with_store(&values, Arc::clone(&store), 1);

    // First rebuild persists cleanly → generation 1 committed.
    drive_one_rebuild(&mut m);
    assert_eq!(m.stats().persist_failures, 0);
    assert_eq!(store.effective_manifest().unwrap().generation, 1);

    // Next rebuild: the device is "full" for both persist attempts.
    store.storage().push_fault(Fault::Enospc);
    store.storage().push_fault(Fault::Enospc);
    drive_one_rebuild(&mut m);
    assert_eq!(store.storage().faults_fired(), 2);
    assert_eq!(m.stats().persist_failures, 1);
    assert_eq!(m.stats().persist_retries, 1);
    assert!(m.last_error().is_some());

    // (a) The in-memory synopsis is the *fresh* one and keeps serving.
    assert_eq!(m.stats().rebuilds, 2);
    let q = RangeQuery { lo: 0, hi: 9 };
    let est = m.estimator().estimate(q);
    assert!(est.is_finite());
    assert!((est - m.exact(q) as f64).abs() / m.exact(q) as f64 <= 0.5);

    // (b) On-disk CURRENT still names generation 1, and it loads strictly.
    assert_eq!(store.effective_manifest().unwrap().generation, 1);
    assert!(store.load().is_ok());

    // Storage recovers → the next rebuild persists and the store catches up.
    drive_one_rebuild(&mut m);
    assert_eq!(m.stats().persist_failures, 1);
    assert!(store.effective_manifest().unwrap().generation > 1);
    assert!(store.load().is_ok());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_write_during_persist_is_caught_and_retried() {
    let root = tmp_root("torn");
    let store: SharedStore = Arc::new(
        DurableCatalog::open(&root, FaultyStorage::new(FsStorage::new(), vec![])).unwrap(),
    );
    let values = vec![3i64; 10];
    let mut m = maintained_with_store(&values, Arc::clone(&store), 2);

    drive_one_rebuild(&mut m);
    assert_eq!(store.effective_manifest().unwrap().generation, 1);

    // A torn synopsis write: silent at write time, caught by the store's
    // pre-commit read-back as CorruptSynopsis — a transient error the
    // persist hook retries. The committed pointer never touches the bad
    // generation.
    store.storage().push_fault(Fault::TornWrite { keep: 10 });
    drive_one_rebuild(&mut m);
    assert_eq!(store.storage().faults_fired(), 1);
    assert_eq!(m.stats().persist_retries, 1);
    assert_eq!(m.stats().persist_failures, 0); // retry succeeded
    let gen = store.effective_manifest().unwrap().generation;
    assert!(gen > 1);
    // Strict load proves CURRENT points at fully valid bytes.
    assert!(store.load().is_ok());
    // And the fsck report is healthy apart from the abandoned generation's
    // stray files (which repair would quarantine, never delete).
    let est = m.estimator().estimate(RangeQuery { lo: 2, hi: 7 });
    assert!(est.is_finite());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_write_with_no_retries_leaves_previous_generation_committed() {
    let root = tmp_root("tornfinal");
    let store: SharedStore = Arc::new(
        DurableCatalog::open(&root, FaultyStorage::new(FsStorage::new(), vec![])).unwrap(),
    );
    let values = vec![5i64; 10];
    let mut m = maintained_with_store(&values, Arc::clone(&store), 0);

    drive_one_rebuild(&mut m);
    assert_eq!(store.effective_manifest().unwrap().generation, 1);

    store.storage().push_fault(Fault::TornWrite { keep: 10 });
    drive_one_rebuild(&mut m);
    assert_eq!(m.stats().persist_failures, 1);
    // CURRENT still at generation 1; the torn generation was never
    // committed, so a strict load succeeds from the old bytes.
    assert_eq!(store.effective_manifest().unwrap().generation, 1);
    assert!(store.load().is_ok());
    // Serving continues from the fresh in-memory synopsis regardless.
    assert_eq!(m.stats().rebuilds, 2);
    assert!(m
        .estimator()
        .estimate(RangeQuery { lo: 0, hi: 9 })
        .is_finite());
    let _ = std::fs::remove_dir_all(&root);
}
