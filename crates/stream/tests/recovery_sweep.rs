//! Crash-point sweep for the write-ahead journal + recovery path.
//!
//! The kill-and-recover property under test: **every update acknowledged
//! before a crash survives recovery, and nothing else appears**. Each
//! sweep drives a deterministic update stream through a journaled
//! [`MaintainedHistogram`] over a [`FaultyStorage`], moving a single
//! terminal fault across *every* write-operation index — WAL appends,
//! segment-rotation appends, durable persists, and checkpoint-truncation
//! deletes all sit in the same operation stream, so the sweep hits every
//! boundary. After the simulated kill, [`recover`] must reconstruct
//! exactly the shadow array of acknowledged updates.
//!
//! Fault semantics per schedule:
//! * `Enospc` / `CrashBeforeRename` — the faulted operation fails
//!   *visibly*: a faulted append rejects the update (never acknowledged),
//!   a faulted persist/truncate is absorbed non-fatally. Sound at every
//!   operation index.
//! * `TornWrite` — the faulted append *lies*: the caller sees success but
//!   only a prefix hit the platter. That models power loss mid-append, so
//!   the torn operation must be the final one before the kill and its
//!   update does not count as acknowledged (the "client" died with the
//!   server). Recovery tolerates exactly this torn tail.

use std::sync::Arc;

use synoptic_catalog::{
    Catalog, ColumnEntry, DurableCatalog, Fault, FaultyStorage, FsStorage, PersistentSynopsis,
};
use synoptic_core::{Budget, PrefixSums, RangeEstimator, Result};
use synoptic_hist::sap0::build_sap0_with_budget;
use synoptic_stream::{
    recover, ColumnBuild, DurabilityConfig, DurablePersistFn, MaintainedHistogram, MaintainedPool,
    RebuildConfig, RebuildPolicy, SharedStorage,
};

const COLUMN: &str = "c";
const N: usize = 16;

fn tempdir(tag: &str, k: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("synoptic-sweep-{tag}-{k}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn initial_values() -> Vec<i64> {
    (0..N as i64).map(|i| 10 + (i * 7) % 23).collect()
}

/// A deterministic update stream (position, delta).
fn stream(len: usize) -> Vec<(usize, i64)> {
    let mut s = 0x2001_u64;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let i = (s % N as u64) as usize;
        let d = ((s >> 32) % 9) as i64 - 4;
        out.push((i, if d == 0 { 5 } else { d }));
    }
    out
}

fn builder() -> impl FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>> {
    |_vals: &[i64], ps: &PrefixSums, budget: &Budget| {
        Ok(Box::new(build_sap0_with_budget(ps, 3, budget)?) as Box<dyn RangeEstimator>)
    }
}

/// Commits the initial frequencies through a clean (non-faulty) handle so
/// the fault schedule indexes only the maintenance phase's operations.
fn commit_initial(cat_dir: &std::path::Path, values: &[i64]) -> u64 {
    let store = DurableCatalog::open(cat_dir, FsStorage::new()).unwrap();
    let mut cat = Catalog::new();
    cat.insert(
        COLUMN,
        ColumnEntry {
            n: values.len(),
            total_rows: values.iter().sum(),
            synopsis: PersistentSynopsis::from_frequencies(values),
        },
    );
    store.save(&cat).unwrap()
}

/// Runs one crash scenario: `k` clean write operations, then `fault`
/// fires on write op `k`, then the process "dies" at the next update
/// boundary. Returns `(shadow, fired)` where `shadow` is the array of
/// acknowledged state and `fired` says whether the fault was reached.
///
/// `torn` flags the torn-write ack rule: an update whose own append tore
/// returned `Ok` to a caller that never lived to see it, so it is *not*
/// acknowledged.
fn run_crash_scenario(
    tag: &str,
    k: usize,
    fault: Fault,
    torn: bool,
    policy: RebuildPolicy,
    updates: usize,
) -> (Vec<i64>, bool) {
    let root = tempdir(tag, k);
    let cat_dir = root.join("cat");
    let wal_dir = root.join("wal");
    let values = initial_values();
    let generation = commit_initial(&cat_dir, &values);

    let mut schedule = vec![Fault::CleanWrite; k];
    schedule.push(fault);
    let faulty = Arc::new(FaultyStorage::new(FsStorage::new(), schedule));
    let shared: SharedStorage = faulty.clone();
    // The torn sweep's ack rule needs every write op to be a record
    // append; `OnRotate` adds empty fsync-only appends at seal time, so
    // that sweep syncs per record instead.
    let cadence = if torn {
        synoptic_catalog::wal::FsyncCadence::EveryRecord
    } else {
        synoptic_catalog::wal::FsyncCadence::OnRotate
    };
    let durability = DurabilityConfig::journaled(&wal_dir)
        .with_segment_bytes(128) // rotate every ~3 records
        .with_fsync(cadence);
    let hook_store = DurableCatalog::open(&cat_dir, Arc::clone(&faulty)).unwrap();
    let hook: DurablePersistFn = Box::new(move |snap| {
        let mut cat = hook_store.load()?;
        cat.insert(
            COLUMN,
            ColumnEntry {
                n: snap.values.len(),
                total_rows: snap.values.iter().sum(),
                synopsis: PersistentSynopsis::from_frequencies(snap.values),
            },
        );
        cat.set_wal_mark(COLUMN, snap.wal_mark);
        hook_store.save(&cat)
    });
    // No persist retries: a failed persist is a failed persist — the crash
    // arrives before any retry would.
    let config =
        RebuildConfig::new(policy).with_persist_retries(0, std::time::Duration::from_micros(1));
    let mut mh = MaintainedHistogram::with_config(&values, builder(), config)
        .unwrap()
        .with_durability(shared, COLUMN, &durability, generation)
        .unwrap()
        .with_durable_persist(hook);

    let mut shadow = values;
    let mut fired = false;
    for (i, d) in stream(updates) {
        let before = faulty.faults_fired();
        let res = mh.update(i, d);
        let fired_now = faulty.faults_fired() > before;
        match res {
            // A visible failure (Enospc / crash on the append) rejected
            // the update; a torn append "succeeded" for a caller that the
            // power loss took with it. Everything else is acknowledged —
            // even when the fault landed in the persist/checkpoint that
            // this update triggered.
            Ok(_) if !(torn && fired_now) => {
                shadow[i] += d;
            }
            _ => {}
        }
        if fired_now {
            fired = true;
            break; // the simulated kill
        }
    }
    drop(mh); // the crash: in-memory state is gone

    // A fresh process recovers from the durable state alone.
    let store = DurableCatalog::open(&cat_dir, FsStorage::new()).unwrap();
    let report = recover(&store, &wal_dir)
        .unwrap_or_else(|e| panic!("{tag} k={k}: recovery must succeed, got {e}"));
    let col = report
        .column(COLUMN)
        .unwrap_or_else(|| panic!("{tag} k={k}: column must be recovered"));
    assert_eq!(
        col.values, shadow,
        "{tag} k={k}: recovered state must equal acknowledged state \
         (replayed {} of max_lsn {})",
        col.replayed, col.max_lsn
    );
    let recovered = col.values.clone();
    let _ = std::fs::remove_dir_all(&root);
    (recovered, fired)
}

/// ENOSPC swept across every write operation: appends, rotations, persist
/// writes, and checkpoint deletes all fail visibly at some `k`.
#[test]
fn enospc_at_every_write_op_preserves_acknowledged_updates() {
    let mut exhausted = false;
    for k in 0..200 {
        let (_, fired) = run_crash_scenario(
            "enospc",
            k,
            Fault::Enospc,
            false,
            RebuildPolicy::EveryKUpdates(6),
            24,
        );
        if !fired {
            // The whole run fits in fewer than k operations: every later
            // schedule is identical to the clean run.
            exhausted = true;
            break;
        }
    }
    assert!(
        exhausted,
        "sweep must extend past the scenario's total write-op count"
    );
}

/// Crash-before-rename/append swept across every write operation.
#[test]
fn crash_at_every_write_op_preserves_acknowledged_updates() {
    let mut exhausted = false;
    for k in 0..200 {
        let (_, fired) = run_crash_scenario(
            "crash",
            k,
            Fault::CrashBeforeRename,
            false,
            RebuildPolicy::EveryKUpdates(6),
            24,
        );
        if !fired {
            exhausted = true;
            break;
        }
    }
    assert!(exhausted, "sweep must cover the whole operation stream");
}

/// A torn write at every journal append (including segment-creation
/// appends at rotation boundaries, whose headers get torn): the torn
/// record — and only the torn record — is lost.
#[test]
fn torn_append_at_every_position_loses_only_the_torn_record() {
    let mut exhausted = false;
    for k in 0..64 {
        // Manual policy: no rebuilds, so every write op is an append and
        // the torn fault always models power loss mid-append.
        let (_, fired) = run_crash_scenario(
            "torn",
            k,
            Fault::TornWrite { keep: 7 },
            true,
            RebuildPolicy::Manual,
            20,
        );
        if !fired {
            exhausted = true;
            break;
        }
    }
    assert!(exhausted, "sweep must cover every append");
}

/// The clean path (no fault ever fires) recovers the full stream, and a
/// second recovery is idempotent.
#[test]
fn clean_run_recovers_everything_and_is_idempotent() {
    let root = tempdir("clean", 0);
    let cat_dir = root.join("cat");
    let wal_dir = root.join("wal");
    let values = initial_values();
    let generation = commit_initial(&cat_dir, &values);
    let shared: SharedStorage = Arc::new(FsStorage::new());
    let durability = DurabilityConfig::journaled(&wal_dir)
        .with_segment_bytes(128)
        .with_fsync(synoptic_catalog::wal::FsyncCadence::OnRotate);
    let hook_store = DurableCatalog::open(&cat_dir, FsStorage::new()).unwrap();
    let hook: DurablePersistFn = Box::new(move |snap| {
        let mut cat = hook_store.load()?;
        cat.insert(
            COLUMN,
            ColumnEntry {
                n: snap.values.len(),
                total_rows: snap.values.iter().sum(),
                synopsis: PersistentSynopsis::from_frequencies(snap.values),
            },
        );
        cat.set_wal_mark(COLUMN, snap.wal_mark);
        hook_store.save(&cat)
    });
    let config = RebuildConfig::new(RebuildPolicy::EveryKUpdates(5));
    let mut mh = MaintainedHistogram::with_config(&values, builder(), config)
        .unwrap()
        .with_durability(shared, COLUMN, &durability, generation)
        .unwrap()
        .with_durable_persist(hook);
    let mut shadow = values;
    for (i, d) in stream(32) {
        mh.update(i, d).unwrap();
        shadow[i] += d;
    }
    assert!(mh.stats().rebuilds >= 5);
    assert_eq!(mh.stats().persist_failures, 0);
    drop(mh);

    let store = DurableCatalog::open(&cat_dir, FsStorage::new()).unwrap();
    let first = recover(&store, &wal_dir).unwrap();
    assert_eq!(first.column(COLUMN).unwrap().values, shadow);
    // Checkpoints truncated everything the committed snapshot covers, so
    // only the post-checkpoint tail replays.
    assert!(first.total_replayed() <= 5);
    let second = recover(&store, &wal_dir).unwrap();
    assert_eq!(second.column(COLUMN).unwrap().values, shadow);
    let _ = std::fs::remove_dir_all(&root);
}

/// The pool's background workers hit faulted persists and checkpoint
/// deletes, yet every acknowledged update survives recovery: failed
/// persists leave the journal intact, failed deletes leave stale (and
/// skippable) segments.
#[test]
fn pool_survives_background_persist_faults() {
    let root = tempdir("pool", 0);
    let cat_dir = root.join("cat");
    let wal_dir = root.join("wal");
    let values = initial_values();
    let generation = commit_initial(&cat_dir, &values);

    // Appends run on the caller thread *before* updates are acknowledged;
    // persists run on workers. Sprinkling visible failures through the
    // shared write queue therefore hits both — and neither may lose an
    // acknowledged update.
    let mut schedule = Vec::new();
    for burst in 0..12 {
        schedule.extend(std::iter::repeat_n(Fault::CleanWrite, 5));
        schedule.push(if burst % 2 == 0 {
            Fault::Enospc
        } else {
            Fault::CrashBeforeRename
        });
    }
    let faulty = Arc::new(FaultyStorage::new(FsStorage::new(), schedule));
    let shared: SharedStorage = faulty.clone();
    let durability = DurabilityConfig::journaled(&wal_dir)
        .with_segment_bytes(128)
        .with_fsync(synoptic_catalog::wal::FsyncCadence::OnRotate);
    let hook_store = DurableCatalog::open(&cat_dir, Arc::clone(&faulty)).unwrap();
    let hook: DurablePersistFn = Box::new(move |snap| {
        let mut cat = hook_store.load()?;
        cat.insert(
            COLUMN,
            ColumnEntry {
                n: snap.values.len(),
                total_rows: snap.values.iter().sum(),
                synopsis: PersistentSynopsis::from_frequencies(snap.values),
            },
        );
        cat.set_wal_mark(COLUMN, snap.wal_mark);
        hook_store.save(&cat)
    });
    let pool = MaintainedPool::new(1);
    let col = pool
        .add_column_durable(
            COLUMN,
            &values,
            ColumnBuild::Anytime {
                method: synoptic_hist::HistogramMethod::Sap0,
                budget_words: 12,
            },
            RebuildConfig::new(RebuildPolicy::EveryKUpdates(4))
                .with_persist_retries(0, std::time::Duration::from_micros(1)),
            shared,
            &durability,
            generation,
            Some(hook),
        )
        .unwrap();

    let mut shadow = values;
    for (i, d) in stream(64) {
        if col.update(i, d).is_ok() {
            shadow[i] += d;
        }
    }
    col.quiesce();
    assert!(faulty.faults_fired() >= 4, "schedule barely exercised");
    pool.shutdown();

    let store = DurableCatalog::open(&cat_dir, FsStorage::new()).unwrap();
    let report = recover(&store, &wal_dir).unwrap();
    assert_eq!(report.column(COLUMN).unwrap().values, shadow);
    let _ = std::fs::remove_dir_all(&root);
}
