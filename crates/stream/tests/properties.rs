//! Property-based tests for the streaming-maintenance subsystem: after any
//! update sequence, maintained state must match a from-scratch rebuild.

use proptest::prelude::*;
use synoptic_core::{PrefixSums, RangeEstimator, RangeQuery};
use synoptic_stream::{Fenwick, StreamingHaar, StreamingRangeOptimal};
use synoptic_wavelet::RangeOptimalWavelet;

/// A starting array plus a bounded update script.
fn arb_scenario() -> impl Strategy<Value = (Vec<i64>, Vec<(usize, i64)>)> {
    prop::collection::vec(0i64..60, 2..20).prop_flat_map(|vals| {
        let n = vals.len();
        let updates = prop::collection::vec((0..n, -15i64..30), 0..60);
        (Just(vals), updates)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fenwick_matches_reference_after_any_script((vals, ups) in arb_scenario()) {
        let mut f = Fenwick::from_values(&vals);
        let mut reference = vals.clone();
        for &(i, d) in &ups {
            f.update(i, d);
            reference[i] += d;
        }
        prop_assert_eq!(f.to_values(), reference.clone());
        let ps = PrefixSums::from_values(&reference);
        for i in 0..=reference.len() {
            prop_assert_eq!(f.prefix(i), ps.p(i));
        }
    }

    #[test]
    fn streaming_haar_equals_rebuild((vals, ups) in arb_scenario()) {
        let mut sh = StreamingHaar::new(&vals).unwrap();
        let mut reference = vals.clone();
        for &(i, d) in &ups {
            sh.update(i, d).unwrap();
            reference[i] += d;
        }
        let fresh = StreamingHaar::new(&reference).unwrap();
        for (a, b) in sh.dense().iter().zip(fresh.dense()) {
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()), "{} vs {}", a, b);
        }
    }

    #[test]
    fn streaming_range_optimal_snapshot_equals_rebuild((vals, ups) in arb_scenario()) {
        let mut sr = StreamingRangeOptimal::new(&vals).unwrap();
        let mut reference = vals.clone();
        for &(i, d) in &ups {
            sr.update(i, d).unwrap();
            reference[i] += d;
        }
        let ps = PrefixSums::from_values(&reference);
        let b = 6;
        let live = sr.snapshot(b);
        let scratch = RangeOptimalWavelet::build(&ps, b);
        for q in RangeQuery::all(reference.len()) {
            let (x, y) = (live.estimate(q), scratch.estimate(q));
            prop_assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()),
                "{:?}: {} vs {}", q, x, y);
        }
    }
}

mod progressive_props {
    use proptest::prelude::*;
    use synoptic_core::{PrefixSums, RangeQuery};
    use synoptic_stream::progressive::{bounded_synopsis, ProgressiveQuery};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// For any data, query, and chunk schedule: every certified interval
        /// contains the truth and the final snapshot is exact.
        #[test]
        fn progressive_intervals_are_always_sound(
            (vals, lo_frac, hi_frac, chunk) in (
                prop::collection::vec(0i64..80, 3..24),
                0.0f64..1.0,
                0.0f64..1.0,
                1usize..5,
            )
        ) {
            let n = vals.len();
            let a = ((lo_frac * n as f64) as usize).min(n - 1);
            let b = ((hi_frac * n as f64) as usize).min(n - 1);
            let q = RangeQuery { lo: a.min(b), hi: a.max(b) };
            let ps = PrefixSums::from_values(&vals);
            let h = bounded_synopsis(&vals, &ps, 3.min(n)).unwrap();
            let truth = ps.answer(q) as f64;
            let snaps = ProgressiveQuery::new(&vals, &h, q)
                .unwrap()
                .run_to_completion(chunk);
            for s in &snaps {
                prop_assert!(s.lo - 1e-9 <= truth && truth <= s.hi + 1e-9, "{:?}", s);
                prop_assert!(s.lo <= s.estimate + 1e-9 && s.estimate <= s.hi + 1e-9);
            }
            let last = snaps.last().unwrap();
            prop_assert!(last.is_final());
            prop_assert!((last.estimate - truth).abs() < 1e-9);
            // Widths never grow.
            for w in snaps.windows(2) {
                prop_assert!(
                    w[1].hi - w[1].lo <= w[0].hi - w[0].lo + 1e-9,
                    "width grew: {:?} -> {:?}", w[0], w[1]
                );
            }
        }
    }
}
