//! Randomized tests for the streaming-maintenance subsystem: after any
//! update sequence, maintained state must match a from-scratch rebuild.
//! Driven by the in-repo seeded [`Rng`] so they run fully offline.

use synoptic_core::rng::Rng;
use synoptic_core::sse::sse_brute;
use synoptic_core::{PrefixSums, RangeEstimator, RangeQuery};
use synoptic_stream::{Fenwick, StreamingHaar, StreamingRangeOptimal};
use synoptic_wavelet::RangeOptimalWavelet;

const CASES: u64 = 48;

/// A starting array plus a bounded update script.
fn rand_scenario(rng: &mut Rng) -> (Vec<i64>, Vec<(usize, i64)>) {
    let n = rng.usize_in(2, 20);
    let vals: Vec<i64> = (0..n).map(|_| rng.i64_in(0, 59)).collect();
    let m = rng.usize_in(0, 60);
    let ups: Vec<(usize, i64)> = (0..m)
        .map(|_| (rng.usize_in(0, n), rng.i64_in(-15, 29)))
        .collect();
    (vals, ups)
}

#[test]
fn fenwick_matches_reference_after_any_script() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x31_000 + case);
        let (vals, ups) = rand_scenario(&mut rng);
        let mut f = Fenwick::from_values(&vals);
        let mut reference = vals.clone();
        for &(i, d) in &ups {
            f.update(i, d);
            reference[i] += d;
        }
        assert_eq!(f.to_values(), reference, "case {case}");
        let ps = PrefixSums::from_values(&reference);
        for i in 0..=reference.len() {
            assert_eq!(f.prefix(i), ps.p(i), "case {case}: prefix {i}");
        }
    }
}

#[test]
fn streaming_haar_equals_rebuild() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x32_000 + case);
        let (vals, ups) = rand_scenario(&mut rng);
        let mut sh = StreamingHaar::new(&vals).unwrap();
        let mut reference = vals.clone();
        for &(i, d) in &ups {
            sh.update(i, d).unwrap();
            reference[i] += d;
        }
        let fresh = StreamingHaar::new(&reference).unwrap();
        for (a, b) in sh.dense().iter().zip(fresh.dense()) {
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                "case {case}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn streaming_range_optimal_snapshot_equals_rebuild() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x33_000 + case);
        let (vals, ups) = rand_scenario(&mut rng);
        let mut sr = StreamingRangeOptimal::new(&vals).unwrap();
        let mut reference = vals.clone();
        for &(i, d) in &ups {
            sr.update(i, d).unwrap();
            reference[i] += d;
        }
        let ps = PrefixSums::from_values(&reference);
        let b = 6;
        let live = sr.snapshot(b);
        let scratch = RangeOptimalWavelet::build(&ps, b);
        // Top-b selection can tie between coefficient sets of equal priority,
        // so the snapshots need not agree pointwise — but both must reach the
        // same optimal value of the objective they minimize (the virtual
        // matrix error), and the live snapshot must answer sanely.
        let (ve_l, ve_s) = (live.virtual_matrix_error(), scratch.virtual_matrix_error());
        assert!(
            (ve_l - ve_s).abs() <= 1e-6 * (1.0 + ve_s.abs()),
            "case {case}: objective {ve_l} vs {ve_s}"
        );
        assert!(sse_brute(&live, &ps).is_finite(), "case {case}");
        for q in RangeQuery::all(reference.len()) {
            assert!(live.estimate(q).is_finite(), "case {case}: {q:?}");
        }
    }
}

mod progressive_props {
    use synoptic_core::rng::Rng;
    use synoptic_core::{PrefixSums, RangeQuery};
    use synoptic_stream::progressive::{bounded_synopsis, ProgressiveQuery};

    const CASES: u64 = 48;

    /// For any data, query, and chunk schedule: every certified interval
    /// contains the truth and the final snapshot is exact.
    #[test]
    fn progressive_intervals_are_always_sound() {
        for case in 0..CASES {
            let mut rng = Rng::new(0x34_000 + case);
            let n = rng.usize_in(3, 24);
            let vals: Vec<i64> = (0..n).map(|_| rng.i64_in(0, 79)).collect();
            let a = ((rng.f64() * n as f64) as usize).min(n - 1);
            let b = ((rng.f64() * n as f64) as usize).min(n - 1);
            let chunk = rng.usize_in(1, 5);
            let q = RangeQuery {
                lo: a.min(b),
                hi: a.max(b),
            };
            let ps = PrefixSums::from_values(&vals);
            let h = bounded_synopsis(&vals, &ps, 3.min(n)).unwrap();
            let truth = ps.answer(q) as f64;
            let snaps = ProgressiveQuery::new(&vals, &h, q)
                .unwrap()
                .run_to_completion(chunk);
            for s in &snaps {
                assert!(
                    s.lo - 1e-9 <= truth && truth <= s.hi + 1e-9,
                    "case {case}: {s:?}"
                );
                assert!(
                    s.lo <= s.estimate + 1e-9 && s.estimate <= s.hi + 1e-9,
                    "case {case}"
                );
            }
            let last = snaps.last().unwrap();
            assert!(last.is_final(), "case {case}");
            assert!((last.estimate - truth).abs() < 1e-9, "case {case}");
            // Widths never grow.
            for w in snaps.windows(2) {
                assert!(
                    w[1].hi - w[1].lo <= w[0].hi - w[0].lo + 1e-9,
                    "case {case}: width grew: {:?} -> {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}
