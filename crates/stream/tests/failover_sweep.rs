//! Crash-tested automated failover: the election-layer extension of the
//! promotion sweep.
//!
//! Each scenario runs a term-stamped leader (claim handshake, then
//! term-1 frames) against a follower serving under
//! [`Follower::serve_with_lease`] on a shared [`ManualClock`] — all
//! lease arithmetic is clock ticks, never wall time. The leader is then
//! killed at index `k`, swept across every index the scenario has:
//!
//! * **storage kills** — a [`FaultyStorage`] schedule fires ENOSPC /
//!   crash-before-rename / torn-write inside the leader's `k`-th write
//!   operation (append, rotation, seal), exactly like the promotion
//!   sweep;
//! * **partitions** — the link goes permanently dark after round `k`
//!   (one round = one heartbeat probe + that update's segments), the
//!   leader still alive but unreachable.
//!
//! After every kill the same end-to-end contract is asserted:
//!
//! 1. the follower's lease expires on the clock and the serve loop
//!    reports [`ServeOutcome::LeaseExpired`] — never a hang, never a
//!    silent exit;
//! 2. promotion ([`promote`]) recovers the follower's local files and
//!    claims term 2; the promoted state equals the
//!    *replicated-acknowledged* shadow exactly and serves immediately;
//! 3. the ex-leader, still on term 1, is fenced: its probe comes back
//!    [`SynopticError::StaleLeaderTerm`] with both terms, and the
//!    refusal is recorded on the replica with provenance;
//! 4. at most one node holds any term: rival claims on the granted term
//!    are refused by every durable ledger;
//! 5. (partition scenarios) the fenced ex-leader is re-seeded from the
//!    new leader ([`Seeder`] → [`rejoin`]) into fresh directories and
//!    converges to exactly the promoted state.

use std::sync::Arc;
use std::time::Duration;

use synoptic_catalog::{
    Catalog, ColumnEntry, DurableCatalog, Fault, FaultyStorage, FsStorage, PersistentSynopsis,
};
use synoptic_core::{Budget, PrefixSums, RangeEstimator, RangeQuery, Result, SynopticError};
use synoptic_hist::sap0::build_sap0_with_budget;
use synoptic_repl::election::{ManualClock, Seeder, TermLedger};
use synoptic_repl::transport::{MemTransport, Received, Transport};
use synoptic_repl::wire::{decode_frame, encode_frame, Frame};
use synoptic_repl::Shipper;
use synoptic_stream::{
    promote, rejoin, DurabilityConfig, FollowConfig, Follower, MaintainedHistogram, RebuildConfig,
    RebuildPolicy, ServeOutcome, SharedStorage,
};

const COLUMN: &str = "c";
const N: usize = 16;
const LEADER_NODE: u64 = 10;
const PROMOTED_NODE: u64 = 20;
const TTL: u64 = 10;

fn tempdir(tag: &str, k: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "synoptic-failover-{tag}-{k}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn initial_values() -> Vec<i64> {
    (0..N as i64).map(|i| 10 + (i * 7) % 23).collect()
}

fn stream(len: usize) -> Vec<(usize, i64)> {
    let mut s = 0x2001_u64;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let i = (s % N as u64) as usize;
        let d = ((s >> 32) % 9) as i64 - 4;
        out.push((i, if d == 0 { 5 } else { d }));
    }
    out
}

fn builder() -> impl FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>> {
    |_vals: &[i64], ps: &PrefixSums, budget: &Budget| {
        Ok(Box::new(build_sap0_with_budget(ps, 3, budget)?) as Box<dyn RangeEstimator>)
    }
}

fn commit_initial(cat_dir: &std::path::Path, values: &[i64]) -> u64 {
    let store = DurableCatalog::open(cat_dir, FsStorage::new()).unwrap();
    let mut cat = Catalog::new();
    cat.insert(
        COLUMN,
        ColumnEntry {
            n: values.len(),
            total_rows: values.iter().sum(),
            synopsis: PersistentSynopsis::from_frequencies(values),
        },
    );
    store.save(&cat).unwrap()
}

/// How the leader dies at index `k`.
enum Kill {
    /// The leader's disk fails inside its `k`-th write operation.
    Storage(Fault),
    /// The link goes permanently dark after round `k`; the leader node
    /// survives, unreachable.
    Partition,
}

/// One scenario. Returns whether the kill was actually reached (`false`
/// ends the sweep: `k` walked past everything the scenario does).
fn run_failover_scenario(tag: &str, k: usize, kill: Kill, updates: usize) -> bool {
    let root = tempdir(tag, k);
    let leader_cat = root.join("leader-cat");
    let leader_wal = root.join("leader-wal");
    let follower_cat = root.join("follower-cat");
    let follower_wal = root.join("follower-wal");
    let values = initial_values();
    let generation = commit_initial(&leader_cat, &values);
    commit_initial(&follower_cat, &values);

    // The leader claims term 1 on its own durable ledger before serving.
    let ledger = TermLedger::open(&leader_cat, FsStorage::new()).unwrap();
    ledger.claim(1, LEADER_NODE).unwrap();
    drop(ledger);

    // Only a Storage kill poisons the leader's disk; the follower's disk
    // is always healthy — the disaster under test is losing the leader.
    let schedule = match &kill {
        Kill::Storage(fault) => {
            let mut s = vec![Fault::CleanWrite; k];
            s.push(fault.clone());
            s
        }
        Kill::Partition => Vec::new(),
    };
    let faulty = Arc::new(FaultyStorage::new(FsStorage::new(), schedule));
    let shared: SharedStorage = faulty.clone();
    let durability = DurabilityConfig::journaled(&leader_wal)
        .with_segment_bytes(128) // rotate every ~3 records
        .with_fsync(synoptic_catalog::wal::FsyncCadence::OnRotate);
    let config = RebuildConfig::new(RebuildPolicy::Manual);
    let mut leader = MaintainedHistogram::with_config(&values, builder(), config)
        .unwrap()
        .with_durability(shared, COLUMN, &durability, generation)
        .unwrap();

    let clock = ManualClock::new();
    let follower_storage: SharedStorage = Arc::new(FsStorage::new());
    let (follower, _) = Follower::open(
        Arc::clone(&follower_storage),
        &follower_cat,
        &follower_wal,
        FollowConfig::default(),
    )
    .unwrap();
    let (mut leader_end, mut follower_end) = MemTransport::pair();
    let serve_clock = clock.clone();
    let serve = std::thread::spawn(move || {
        let mut follower = follower;
        let outcome = follower.serve_with_lease(
            &mut follower_end,
            &serve_clock,
            TTL,
            Duration::from_millis(1),
        );
        (follower, outcome)
    });

    // The claim handshake: the follower persists its grant of term 1
    // before the grant travels.
    leader_end
        .send(&encode_frame(&Frame::Claim {
            term: 1,
            node: LEADER_NODE,
        }))
        .unwrap();
    match leader_end.recv(Some(Duration::from_millis(2000))).unwrap() {
        Received::Frame(bytes) => assert_eq!(
            decode_frame(&bytes).unwrap(),
            Frame::Grant {
                term: 1,
                node: LEADER_NODE
            },
            "{tag} k={k}"
        ),
        other => panic!("{tag} k={k}: expected the grant, got {other:?}"),
    }

    let shipper = Shipper::new(FsStorage::new(), &leader_wal, COLUMN)
        .with_term(1)
        .with_retry(2, Duration::from_millis(1))
        .with_drain_timeout(Duration::from_millis(500));

    // The replicated shadow: an update counts only when its append, seal,
    // ship and cumulative ack all completed before the kill. One round =
    // one update = one clock tick; the lease renews on every round's
    // frames, so it never expires while the leader lives.
    let mut shadow = values.clone();
    let mut fired = false;
    for (round, (i, d)) in stream(updates).into_iter().enumerate() {
        if matches!(kill, Kill::Partition) && round == k {
            fired = true;
            break; // the link goes dark mid-lease; the leader lives on
        }
        clock.tick();
        let before = faulty.faults_fired();
        let appended = leader.update(i, d).is_ok();
        if faulty.faults_fired() > before {
            fired = true;
            break; // the leader died inside this write op
        }
        if !appended {
            continue;
        }
        let sealed = {
            let wal = leader.journal().expect("durability enabled");
            let before = faulty.faults_fired();
            let res = wal.seal();
            if faulty.faults_fired() > before {
                fired = true;
                break;
            }
            res.is_ok()
        };
        if !sealed {
            continue;
        }
        let mark = leader.journal().unwrap().pending_mark();
        match shipper.ship(&mut leader_end, mark) {
            Ok(report) if report.acked_lsn >= mark => {
                shadow[i] += d; // replicated-acknowledged
            }
            _ => {}
        }
    }

    if !fired {
        // The sweep walked past everything this scenario does: the
        // leader survived, close down cleanly and report exhaustion.
        leader_end.close();
        let (_follower, outcome) = serve.join().unwrap();
        assert_eq!(outcome.unwrap(), ServeOutcome::LeaderClosed, "{tag} k={k}");
        let _ = std::fs::remove_dir_all(&root);
        return false;
    }

    // 1. Detection: the leader is gone (or unreachable) but the link was
    // never closed — only the clock passing TTL without a renewal ends
    // the session. Tick until the serve loop notices; however late its
    // lease was armed, no further frame ever renews it.
    while !serve.is_finished() {
        clock.advance(1);
        std::thread::sleep(Duration::from_millis(1));
    }
    let (dead_session, outcome) = serve.join().unwrap();
    assert_eq!(
        outcome.unwrap_or_else(|e| panic!("{tag} k={k}: serve errored: {e}")),
        ServeOutcome::LeaseExpired,
        "{tag} k={k}: a silent leader must expire the lease, not close the session"
    );
    drop(dead_session);

    // 2. Promotion: recovery over the follower's own files plus a
    // durable claim of term 2, serving exactly the replicated-
    // acknowledged shadow.
    let (term, report) = promote(
        Arc::clone(&follower_storage),
        &follower_cat,
        &follower_wal,
        PROMOTED_NODE,
    )
    .unwrap_or_else(|e| panic!("{tag} k={k}: promotion must succeed, got {e}"));
    assert_eq!(term, 2, "{tag} k={k}: the grant made term 1 durable");
    assert_eq!(
        report.column(COLUMN).unwrap().values,
        shadow,
        "{tag} k={k}: promoted state must equal the replicated-acknowledged shadow"
    );
    let (promoted, _) = Follower::open(
        Arc::clone(&follower_storage),
        &follower_cat,
        &follower_wal,
        FollowConfig::default(),
    )
    .unwrap();
    assert_eq!(promoted.term(), 2, "{tag} k={k}");
    let q = RangeQuery::new(0, N - 1).unwrap();
    assert_eq!(
        promoted.estimate(COLUMN, q).unwrap(),
        shadow.iter().sum::<i64>() as f64,
        "{tag} k={k}: the promoted replica serves the first read exactly"
    );

    // 3. Fencing: every post-promotion write from the deposed term-1
    // leader is refused with term provenance. The probe path turns the
    // refusal into the typed fencing error.
    let mut promoted = promoted;
    let hb = encode_frame(&Frame::Heartbeat {
        term: 1,
        column: COLUMN.into(),
        leader_mark: 0,
    });
    match decode_frame(&promoted.handle(&hb)).unwrap() {
        Frame::Refuse { term, reason, .. } => {
            assert_eq!(term, 2, "{tag} k={k}: the refusal names the current term");
            assert!(reason.contains("fenced"), "{tag} k={k}: {reason}");
            assert!(
                reason.contains("term 1") && reason.contains("term 2"),
                "{tag} k={k}: {reason}"
            );
        }
        other => panic!("{tag} k={k}: stale leader must be refused, got {other:?}"),
    }
    assert!(
        promoted.refusals().iter().any(|r| r.contains("fenced")),
        "{tag} k={k}: the fencing verdict must be recorded: {:?}",
        promoted.refusals()
    );

    // 4. At most one claimant per term, durably: rival claims on the
    // granted terms are refused by the promoted node's ledger.
    let promoted_ledger = TermLedger::open(&follower_cat, FsStorage::new()).unwrap();
    assert_eq!(
        promoted_ledger.current().unwrap(),
        (2, Some(PROMOTED_NODE)),
        "{tag} k={k}"
    );
    assert_eq!(
        promoted_ledger.claim(2, 99).unwrap_err(),
        SynopticError::StaleLeaderTerm {
            stale_term: 2,
            current_term: 2
        },
        "{tag} k={k}: term 2 is granted exactly once"
    );
    assert!(promoted_ledger.claim(1, 99).is_err(), "{tag} k={k}");

    // 5. Re-seed (partition kills: the ex-leader node survives and must
    // come back): the new leader streams its committed snapshot plus the
    // journal tail; the fenced ex-leader rejoins as a follower in fresh
    // directories and converges to exactly the promoted state.
    if matches!(kill, Kill::Partition) {
        // End-to-end fencing first: the surviving ex-leader's own
        // shipper learns it was deposed.
        drop(leader);
        let (fenced_end, promoted_end) = MemTransport::pair();
        let fence_serve = std::thread::spawn(move || {
            let mut promoted = promoted;
            let mut transport = promoted_end;
            let served = promoted.serve(&mut transport);
            (promoted, served)
        });
        let stale = Shipper::new(FsStorage::new(), &leader_wal, COLUMN)
            .with_term(1)
            .with_retry(2, Duration::from_millis(1))
            .with_drain_timeout(Duration::from_millis(500));
        let mut fenced_end: Box<dyn Transport> = Box::new(fenced_end);
        let err = stale.ship(fenced_end.as_mut(), 1).unwrap_err();
        assert_eq!(
            err,
            SynopticError::StaleLeaderTerm {
                stale_term: 1,
                current_term: 2
            },
            "{tag} k={k}: the deposed leader's own shipping path is fenced"
        );
        fenced_end.close();
        let (_promoted, served) = fence_serve.join().unwrap();
        served.unwrap_or_else(|e| panic!("{tag} k={k}: {e}"));

        // The ex-leader discards its diverged directories and rejoins.
        let rejoin_cat = root.join("rejoin-cat");
        let rejoin_wal = root.join("rejoin-wal");
        let (mut seed_end, rejoin_end) = MemTransport::pair();
        let (rx_cat, rx_wal) = (rejoin_cat.clone(), rejoin_wal.clone());
        let receiver = std::thread::spawn(move || {
            let storage: SharedStorage = Arc::new(FsStorage::new());
            let mut transport = rejoin_end;
            let (mut follower, _) = rejoin(
                storage,
                &rx_cat,
                &rx_wal,
                FollowConfig::default(),
                &mut transport,
            )
            .unwrap();
            let served = follower.serve(&mut transport);
            (follower, served)
        });
        let seeder = Seeder::new(
            FsStorage::new(),
            &follower_cat,
            &follower_wal,
            2,
            PROMOTED_NODE,
        )
        .with_timeout(Duration::from_millis(2000));
        let seed_report = seeder
            .seed(&mut seed_end)
            .unwrap_or_else(|e| panic!("{tag} k={k}: seed failed: {e}"));
        assert_eq!(seed_report.snapshots, 1, "{tag} k={k}");
        seed_end.close();
        let (rejoined, served) = receiver.join().unwrap();
        served.unwrap_or_else(|e| panic!("{tag} k={k}: rejoin serve failed: {e}"));
        assert_eq!(
            rejoined.values(COLUMN).unwrap(),
            &shadow[..],
            "{tag} k={k}: the re-seeded node converges to the promoted state"
        );
        assert_eq!(rejoined.term(), 2, "{tag} k={k}");
        let rejoined_ledger = TermLedger::open(&rejoin_cat, FsStorage::new()).unwrap();
        assert_eq!(
            rejoined_ledger.current().unwrap(),
            (2, Some(PROMOTED_NODE)),
            "{tag} k={k}"
        );
        assert!(
            rejoined_ledger.claim(2, 99).is_err(),
            "{tag} k={k}: the rejoined node also refuses rival claims on term 2"
        );
    }

    let _ = std::fs::remove_dir_all(&root);
    true
}

/// ENOSPC inside every write operation of the leader: detection,
/// promotion, fencing, and single-claimant all hold at every index.
#[test]
fn failover_after_enospc_kill_at_every_write_op() {
    let mut exhausted = false;
    for k in 0..120 {
        if !run_failover_scenario("enospc", k, Kill::Storage(Fault::Enospc), 14) {
            exhausted = true;
            break;
        }
    }
    assert!(
        exhausted,
        "sweep must extend past the scenario's total write-op count"
    );
}

/// Power-loss-style kill (crash before rename/append) at every write
/// operation.
#[test]
fn failover_after_crash_kill_at_every_write_op() {
    let mut exhausted = false;
    for k in 0..120 {
        if !run_failover_scenario("crash", k, Kill::Storage(Fault::CrashBeforeRename), 14) {
            exhausted = true;
            break;
        }
    }
    assert!(exhausted, "sweep must cover the whole operation stream");
}

/// The link goes permanently dark after every round (one heartbeat
/// probe plus that round's segments): the surviving-but-unreachable
/// leader is deposed, fenced end-to-end through its own shipper, and
/// re-seeded back in as a follower.
#[test]
fn failover_after_partition_at_every_round() {
    let mut exhausted = false;
    for k in 0..40 {
        if !run_failover_scenario("partition", k, Kill::Partition, 14) {
            exhausted = true;
            break;
        }
    }
    assert!(exhausted, "sweep must cover every replication round");
}
