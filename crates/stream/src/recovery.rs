//! Startup recovery for journaled maintained columns: **fsck → prune →
//! replay → serve**.
//!
//! A crash can leave the durable state of a maintained column in three
//! layers: the last *committed* catalog generation (manifest + synopses +
//! per-column WAL marks), *abandoned* generation files from persists that
//! died before the `CURRENT` swap, and the write-ahead journal holding
//! every acknowledged update since the committed snapshot. [`recover`]
//! walks them in order:
//!
//! 1. **fsck** — [`DurableCatalog::fsck`] validates the `CURRENT` chain;
//!    when unhealthy, [`DurableCatalog::repair`] quarantines corrupt
//!    files and re-points `CURRENT` at the newest valid generation.
//! 2. **prune** — [`DurableCatalog::prune_abandoned`] reclaims generation
//!    files that were written but never committed (idempotent; never runs
//!    without a valid committed pointer).
//! 3. **replay** — for every column whose committed snapshot is an exact
//!    frequency vector ([`PersistentSynopsis::Frequencies`]), the journal
//!    is scanned ([`scan_column_journal`]) and records with `lsn >` the
//!    column's committed WAL mark are applied in order. A torn final
//!    record is tolerated (truncate-and-continue: it was never
//!    acknowledged as durable under `FsyncCadence::EveryRecord`); any
//!    deeper damage surfaces as [`SynopticError::CorruptJournal`], and a
//!    segment written against a *newer* base generation than the
//!    recovered snapshot is refused with
//!    [`SynopticError::WalGenerationMismatch`] — replaying it would apply
//!    deltas the snapshot never saw from a history that superseded it.
//! 4. **serve** — the caller re-registers each [`RecoveredColumn`] with a
//!    [`crate::MaintainedPool`] (or [`crate::MaintainedHistogram`]) using
//!    its exact `values`; reopening the journal via
//!    [`crate::DurabilityConfig::open_journal`] continues the LSN chain
//!    without touching the replayed segments, which the next successful
//!    checkpoint truncates.
//!
//! Columns whose snapshot is *not* an exact frequency vector are skipped
//! when their journal is clean, and refused (corrupt journal) when it has
//! unreplayed records — deltas cannot be applied exactly to a lossy
//! synopsis, so acknowledging them would be a silent durability lie. Two
//! more refusals close silent-loss holes: the replayable chain must
//! *anchor* at the committed mark (first pending record at `mark + 1` —
//! a gap means a lost newer generation's checkpoint truncated
//! acknowledged deltas), and a journal whose column is absent from the
//! committed catalog must hold no acknowledged records (they would have
//! nothing to replay onto); record-free orphan journals are reported in
//! [`RecoveryReport::orphaned`].

use std::path::Path;
use std::sync::Arc;

use synoptic_catalog::wal::{list_journal_columns, scan_column_journal};
use synoptic_catalog::{
    Catalog, ColumnEntry, DurableCatalog, FsckReport, PersistentSynopsis, PruneReport,
    RepairReport, Storage,
};
use synoptic_core::{Result, SynopticError};
use synoptic_repl::transport::{Received, Transport};
use synoptic_repl::wire::{decode_frame, encode_frame, Frame};

use crate::follow::{FollowConfig, Follower};
use crate::maintained::SharedStorage;

/// One column's state reconstructed by [`recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredColumn {
    /// Column name.
    pub name: String,
    /// Exact frequencies: the committed snapshot plus every replayed
    /// journal delta. Re-register the column with these.
    pub values: Vec<i64>,
    /// The WAL mark the committed manifest recorded (records at or below
    /// it were already captured by the snapshot and are skipped).
    pub committed_mark: u64,
    /// Journal records applied on top of the snapshot.
    pub replayed: u64,
    /// Highest LSN observed in the journal (0 when empty).
    pub max_lsn: u64,
    /// Whether the final segment ended in a torn (truncated) record that
    /// was tolerated and dropped.
    pub torn_tail: bool,
    /// Segment files skipped because a crash interrupted their creation
    /// before any record in them was acknowledged.
    pub skipped_segments: Vec<String>,
}

/// What [`recover`] did, layer by layer.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The committed generation everything was recovered on top of.
    pub generation: u64,
    /// The fsck findings prior to any repair.
    pub fsck: FsckReport,
    /// The repair pass, when fsck found issues.
    pub repaired: Option<RepairReport>,
    /// Abandoned-generation reclamation (always run, idempotent).
    pub pruned: PruneReport,
    /// Every journaled column reconstructed, in catalog order.
    pub columns: Vec<RecoveredColumn>,
    /// Columns that own journal segments under the WAL directory but are
    /// absent from the committed catalog, and whose journals hold no
    /// acknowledged records (only wrecked segments from torn creations).
    /// An absent column whose journal *does* hold acknowledged records is
    /// refused with [`SynopticError::CorruptJournal`] instead — those
    /// records have nothing to replay onto and must not vanish silently.
    pub orphaned: Vec<String>,
    /// The recovered catalog (committed snapshots + WAL marks), for
    /// callers that want to re-serve non-journaled columns too.
    pub catalog: Catalog,
}

impl RecoveryReport {
    /// The recovered column named `name`, if it was journal-replayed.
    pub fn column(&self, name: &str) -> Option<&RecoveredColumn> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Total journal records applied across all columns.
    pub fn total_replayed(&self) -> u64 {
        self.columns.iter().map(|c| c.replayed).sum()
    }

    /// Human-readable summary for logs and the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "recovered generation {} ({} column(s), {} journal record(s) replayed)\n",
            self.generation,
            self.columns.len(),
            self.total_replayed()
        ));
        if let Some(rep) = &self.repaired {
            out.push_str(&rep.render());
            out.push('\n');
        }
        if !self.pruned.abandoned_generations.is_empty() {
            out.push_str(&self.pruned.render());
            out.push('\n');
        }
        for name in &self.orphaned {
            out.push_str(&format!(
                "  {name}: journal present but column absent from the catalog \
                 (no acknowledged records; wrecked segments only)\n"
            ));
        }
        for c in &self.columns {
            out.push_str(&format!(
                "  {}: {} replayed (mark {} -> lsn {}){}{}\n",
                c.name,
                c.replayed,
                c.committed_mark,
                c.max_lsn.max(c.committed_mark),
                if c.torn_tail {
                    ", torn final record dropped"
                } else {
                    ""
                },
                if c.skipped_segments.is_empty() {
                    String::new()
                } else {
                    format!(", {} empty wreck(s) skipped", c.skipped_segments.len())
                },
            ));
        }
        out
    }
}

/// Recovers the maintained serving state from `store` and the write-ahead
/// journals under `wal_dir`. See the module docs for the state machine.
///
/// Errors: anything fsck/repair/prune/load surface, plus
/// [`SynopticError::CorruptJournal`] (journal damage beyond the tolerated
/// torn tail, an out-of-range replay index, or unreplayable records
/// against a lossy snapshot) and [`SynopticError::WalGenerationMismatch`]
/// (journal written against a newer generation than the one recovered).
/// Both of the latter mean the journal cannot be trusted; the CLI maps
/// them to a dedicated exit code.
pub fn recover<S: Storage>(
    store: &DurableCatalog<S>,
    wal_dir: impl AsRef<Path>,
) -> Result<RecoveryReport> {
    let wal_dir = wal_dir.as_ref();
    let fsck = store.fsck()?;
    let repaired = if fsck.healthy() {
        None
    } else {
        Some(store.repair()?)
    };
    let pruned = store.prune_abandoned(false)?;
    let catalog = store.load()?;
    let generation = store.effective_manifest()?.generation;

    let mut columns = Vec::new();
    for (name, entry) in catalog.iter() {
        let mark = catalog.wal_mark(name);
        let scan = scan_column_journal(store.storage(), wal_dir, name)?;
        let pending: Vec<_> = scan.records.iter().filter(|r| r.lsn > mark).collect();
        let base = match &entry.synopsis {
            PersistentSynopsis::Frequencies { values } => values,
            _ if pending.is_empty() => continue, // lossy synopsis, clean journal
            _ => {
                return Err(SynopticError::CorruptJournal {
                    context: name.to_string(),
                    detail: format!(
                        "{} journal record(s) past mark {mark}, but the committed \
                         snapshot is not an exact frequency vector: deltas cannot \
                         be replayed",
                        pending.len()
                    ),
                });
            }
        };
        // The replayable chain must anchor exactly at the committed mark.
        // A gap can only mean records were truncated by a *newer*
        // generation's checkpoint than the one recovered (e.g. repair fell
        // back after the newer CURRENT was damaged): the deltas in
        // (mark, first_lsn) were acknowledged, captured only by the lost
        // snapshot, and are gone — replaying around the hole would serve
        // silently wrong counts.
        if let Some(first) = pending.first() {
            if first.lsn != mark + 1 {
                return Err(SynopticError::CorruptJournal {
                    context: name.to_string(),
                    detail: format!(
                        "journal does not anchor at the committed mark: first \
                         replayable record is lsn {} but mark {mark} requires \
                         {}; acknowledged records in between were truncated \
                         by a checkpoint of a lost newer generation",
                        first.lsn,
                        mark + 1
                    ),
                });
            }
        }
        // Every segment contributing replayed records must have been
        // written against the recovered generation or an older one.
        for seg in &scan.segments {
            if seg.last_lsn >= seg.first_lsn
                && seg.last_lsn > mark
                && seg.base_generation > generation
            {
                return Err(SynopticError::WalGenerationMismatch {
                    wal_generation: seg.base_generation,
                    snapshot_generation: generation,
                });
            }
        }
        let mut values = base.clone();
        let mut replayed = 0u64;
        for rec in pending {
            let idx = usize::try_from(rec.index)
                .ok()
                .filter(|&i| i < values.len());
            let Some(idx) = idx else {
                return Err(SynopticError::CorruptJournal {
                    context: name.to_string(),
                    detail: format!(
                        "record lsn {} targets index {} outside domain 0..{}",
                        rec.lsn,
                        rec.index,
                        values.len()
                    ),
                });
            };
            values[idx] = values[idx].wrapping_add(rec.delta);
            replayed += 1;
        }
        columns.push(RecoveredColumn {
            name: name.to_string(),
            values,
            committed_mark: mark,
            replayed,
            max_lsn: scan.max_lsn,
            torn_tail: scan.segments.iter().any(|s| s.torn_tail),
            skipped_segments: scan.skipped.clone(),
        });
    }
    // Journals for columns the committed catalog does not know. The one
    // legitimate way these arise is a crash after a durable column's
    // journal was created but before its first persist ever committed a
    // catalog entry — if such a journal holds acknowledged records, they
    // have no snapshot to replay onto and must be refused, not dropped.
    let mut orphaned = Vec::new();
    for column in list_journal_columns(store.storage(), wal_dir)? {
        if catalog.get(&column).is_some() {
            continue;
        }
        let scan = scan_column_journal(store.storage(), wal_dir, &column)?;
        if !scan.records.is_empty() {
            return Err(SynopticError::CorruptJournal {
                context: column.clone(),
                detail: format!(
                    "{} acknowledged journal record(s) (lsn up to {}) for a \
                     column absent from the committed catalog: the snapshot \
                     that owned them never committed, so they cannot be \
                     replayed — and must not be silently dropped",
                    scan.records.len(),
                    scan.max_lsn
                ),
            });
        }
        orphaned.push(column);
    }
    Ok(RecoveryReport {
        generation,
        fsck,
        repaired,
        pruned,
        columns,
        orphaned,
        catalog,
    })
}

fn reseed_diverged(detail: impl Into<String>) -> SynopticError {
    SynopticError::ReplicationDivergence {
        context: "reseed".to_string(),
        detail: detail.into(),
    }
}

/// The receiving half of the re-seed path: rebuilds a stranded node — a
/// fenced ex-leader or a follower whose retention hold was cap-evicted —
/// from the current leader's snapshot transfer, and rejoins it as a
/// follower.
///
/// Protocol (the sending half is `synoptic_repl::election::Seeder`):
///
/// 1. The leader's [`Frame::Claim`] arrives first; the grant (term +
///    vote) is persisted as a catalog generation *before* the
///    [`Frame::Grant`] travels, so a crash cannot double-grant the term.
/// 2. Each [`Frame::Snapshot`] stages one column's committed frequencies
///    and WAL mark; each is acknowledged at its mark.
/// 3. The first non-snapshot frame (the shipper's probe, or a clean
///    close) commits the staged catalog and runs the proven recovery
///    path — a rejoin *is* [`Follower::open`] over the seeded state. The
///    journal tail then ships as ordinary segments into the returned
///    follower's serve loop.
///
/// The target directories must hold no committed catalog: a fenced
/// node's own history diverged at its unacknowledged tail and must be
/// discarded (point the rejoin at fresh directories), never merged.
pub fn rejoin(
    storage: SharedStorage,
    catalog_dir: impl AsRef<Path>,
    wal_dir: impl AsRef<Path>,
    config: FollowConfig,
    transport: &mut dyn Transport,
) -> Result<(Follower, RecoveryReport)> {
    let store = DurableCatalog::open(catalog_dir.as_ref(), Arc::clone(&storage))?;
    if store.load().is_ok() {
        return Err(reseed_diverged(
            "target already holds a committed catalog: a re-seeded node discards \
             its diverged state and rejoins from fresh directories",
        ));
    }
    if !list_journal_columns(&storage, wal_dir.as_ref())?.is_empty() {
        return Err(reseed_diverged(
            "target journal directory already holds segments: a re-seeded node \
             discards its diverged journal and rejoins from fresh directories",
        ));
    }

    // 1. The claim handshake, persisted before the grant travels.
    let (term, node) = match transport.recv(None)? {
        Received::Frame(bytes) => match decode_frame(&bytes)? {
            Frame::Claim { term, node } => (term, node),
            other => {
                return Err(reseed_diverged(format!(
                    "expected the leader's claim, got {other:?}"
                )))
            }
        },
        other => {
            return Err(reseed_diverged(format!(
                "link ended before the leader's claim: {other:?}"
            )))
        }
    };
    let mut staged = Catalog::new();
    staged.set_election_term(term);
    staged.set_election_vote(node);
    store.save(&staged)?;
    transport.send(&encode_frame(&Frame::Grant { term, node }))?;

    // 2. Snapshots, staged and acknowledged one by one.
    let mut deferred = None;
    loop {
        match transport.recv(None)? {
            Received::Frame(bytes) => match decode_frame(&bytes)? {
                Frame::Snapshot {
                    term: t,
                    column,
                    mark,
                    values,
                } => {
                    if t != term {
                        let reason = format!(
                            "snapshot of column {column} carries term {t}, but this \
                             rejoin granted term {term}"
                        );
                        transport.send(&encode_frame(&Frame::Refuse {
                            term,
                            column,
                            applied_lsn: 0,
                            reason: reason.clone(),
                        }))?;
                        return Err(reseed_diverged(reason));
                    }
                    if values.is_empty() {
                        let reason = format!("snapshot of column {column} carries an empty domain");
                        transport.send(&encode_frame(&Frame::Refuse {
                            term,
                            column,
                            applied_lsn: 0,
                            reason: reason.clone(),
                        }))?;
                        return Err(reseed_diverged(reason));
                    }
                    staged.insert(
                        column.clone(),
                        ColumnEntry {
                            n: values.len(),
                            total_rows: values.iter().sum(),
                            synopsis: PersistentSynopsis::from_frequencies(&values),
                        },
                    );
                    staged.set_wal_mark(&column, mark);
                    transport.send(&encode_frame(&Frame::Ack {
                        term,
                        column,
                        applied_lsn: mark,
                    }))?;
                }
                // The shipper's probe (or first segment): the snapshot
                // phase is over. Handled by the opened follower below.
                _ => {
                    deferred = Some(bytes);
                    break;
                }
            },
            Received::Closed => break,
            Received::TimedOut => continue,
        }
    }

    // 3. Commit the seeded catalog and rejoin through the proven
    // recovery path.
    store.save(&staged)?;
    let (mut follower, report) =
        Follower::open(storage, catalog_dir.as_ref(), wal_dir.as_ref(), config)?;
    if let Some(bytes) = deferred {
        let response = follower.handle(&bytes);
        // An undeliverable response means the leader vanished mid-seed;
        // its retry ladder (or the next leader) re-solicits.
        let _ = transport.send(&response);
    }
    Ok((follower, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_catalog::wal::{ColumnWal, WalConfig};
    use synoptic_catalog::FsStorage;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("synoptic-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn commit_frequencies(
        store: &DurableCatalog<FsStorage>,
        name: &str,
        values: &[i64],
        mark: u64,
    ) -> u64 {
        let mut cat = Catalog::new();
        cat.insert(
            name,
            ColumnEntry {
                n: values.len(),
                total_rows: values.len() as i64,
                synopsis: PersistentSynopsis::from_frequencies(values),
            },
        );
        cat.set_wal_mark(name, mark);
        store.save(&cat).unwrap()
    }

    #[test]
    fn replay_applies_only_records_past_the_committed_mark() {
        let root = tempdir("mark");
        let store = DurableCatalog::open(root.join("cat"), FsStorage).unwrap();
        let wal_dir = root.join("wal");
        let storage: Arc<dyn Storage + Send + Sync> = Arc::new(FsStorage);
        let wal =
            ColumnWal::open(Arc::clone(&storage), &wal_dir, "c", 0, WalConfig::default()).unwrap();
        // Records 1..=3 are captured by the snapshot (mark 3); 4..=5 not.
        for (i, d) in [(0u64, 5i64), (1, -2), (2, 7), (3, 11), (0, 1)] {
            wal.append(i, d).unwrap();
        }
        let gen = commit_frequencies(&store, "c", &[5, -2, 7, 0], 3);
        let report = recover(&store, &wal_dir).unwrap();
        assert_eq!(report.generation, gen);
        let col = report.column("c").unwrap();
        assert_eq!(col.values, vec![6, -2, 7, 11]);
        assert_eq!(col.replayed, 2);
        assert_eq!(col.committed_mark, 3);
        assert_eq!(col.max_lsn, 5);
        assert!(!col.torn_tail);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn replay_refuses_a_journal_that_does_not_anchor_at_the_mark() {
        let root = tempdir("anchor");
        let store = DurableCatalog::open(root.join("cat"), FsStorage).unwrap();
        let wal_dir = root.join("wal");
        let storage: Arc<dyn Storage + Send + Sync> = Arc::new(FsStorage);
        let cfg = WalConfig {
            segment_bytes: 1, // one record per segment
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(Arc::clone(&storage), &wal_dir, "c", 0, cfg).unwrap();
        for i in 1..=4u64 {
            wal.append(i % 2, 1).unwrap();
        }
        // A newer generation's checkpoint truncated segments 1..=3, then
        // that generation was lost and repair fell back to a manifest whose
        // mark is only 1: lsn 2..=3 are gone for good.
        wal.checkpoint(3, 2).unwrap();
        commit_frequencies(&store, "c", &[0, 0], 1);
        match recover(&store, &wal_dir) {
            Err(SynopticError::CorruptJournal { detail, .. }) => {
                assert!(detail.contains("anchor"), "{detail}");
                assert!(detail.contains("lsn 4"), "{detail}");
            }
            other => panic!("expected CorruptJournal, got {other:?}"),
        }
        // With the mark at 3 the same journal anchors (4 = 3 + 1) and
        // replays cleanly.
        commit_frequencies(&store, "c", &[0, 0], 3);
        let report = recover(&store, &wal_dir).unwrap();
        assert_eq!(report.column("c").unwrap().replayed, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn journal_for_a_column_absent_from_the_catalog_is_refused() {
        let root = tempdir("orphan");
        let store = DurableCatalog::open(root.join("cat"), FsStorage).unwrap();
        let wal_dir = root.join("wal");
        let storage: Arc<dyn Storage + Send + Sync> = Arc::new(FsStorage);
        // "ghost" acknowledged two updates, but its first durable persist
        // never committed a catalog entry; only "c" is in the catalog.
        let wal = ColumnWal::open(
            Arc::clone(&storage),
            &wal_dir,
            "ghost",
            0,
            WalConfig::default(),
        )
        .unwrap();
        wal.append(0, 1).unwrap();
        wal.append(1, 2).unwrap();
        commit_frequencies(&store, "c", &[0, 0], 0);
        match recover(&store, &wal_dir) {
            Err(SynopticError::CorruptJournal { context, detail }) => {
                assert_eq!(context, "ghost");
                assert!(
                    detail.contains("absent from the committed catalog"),
                    "{detail}"
                );
            }
            other => panic!("expected CorruptJournal, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn record_free_orphan_journal_is_reported_not_refused() {
        let root = tempdir("orphan-clean");
        let store = DurableCatalog::open(root.join("cat"), FsStorage).unwrap();
        let wal_dir = root.join("wal");
        std::fs::create_dir_all(&wal_dir).unwrap();
        // The crash hit the ghost journal's very first append: an
        // unreadable header means nothing was ever acknowledged.
        std::fs::write(wal_dir.join("ghost-1.wal"), b"SYN").unwrap();
        commit_frequencies(&store, "c", &[0, 0], 0);
        let report = recover(&store, &wal_dir).unwrap();
        assert!(
            report.orphaned.is_empty(),
            "unreadable headers name no column"
        );
        // A readable header with zero whole records (torn first record,
        // never acknowledged) IS nameable: reported as orphaned, not fatal.
        let storage: Arc<dyn Storage + Send + Sync> = Arc::new(FsStorage);
        let wal = ColumnWal::open(
            Arc::clone(&storage),
            &wal_dir,
            "wisp",
            0,
            WalConfig::default(),
        )
        .unwrap();
        wal.append(0, 1).unwrap();
        let seg = wal_dir.join("wisp-1.wal");
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();
        let report = recover(&store, &wal_dir).unwrap();
        assert_eq!(report.orphaned, vec!["wisp".to_string()]);
        assert!(report.render().contains("wisp"), "{}", report.render());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_journal_recovers_the_snapshot_verbatim() {
        let root = tempdir("nowal");
        let store = DurableCatalog::open(root.join("cat"), FsStorage).unwrap();
        commit_frequencies(&store, "c", &[1, 2, 3], 0);
        let report = recover(&store, root.join("wal")).unwrap();
        let col = report.column("c").unwrap();
        assert_eq!(col.values, vec![1, 2, 3]);
        assert_eq!(col.replayed, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn newer_base_generation_is_refused_with_a_typed_error() {
        let root = tempdir("gen");
        let store = DurableCatalog::open(root.join("cat"), FsStorage).unwrap();
        let wal_dir = root.join("wal");
        let storage: Arc<dyn Storage + Send + Sync> = Arc::new(FsStorage);
        // Journal claims base generation 9; the committed snapshot is 1.
        let wal =
            ColumnWal::open(Arc::clone(&storage), &wal_dir, "c", 9, WalConfig::default()).unwrap();
        wal.append(0, 1).unwrap();
        let gen = commit_frequencies(&store, "c", &[0, 0], 0);
        assert_eq!(gen, 1);
        match recover(&store, &wal_dir) {
            Err(SynopticError::WalGenerationMismatch {
                wal_generation,
                snapshot_generation,
            }) => {
                assert_eq!(wal_generation, 9);
                assert_eq!(snapshot_generation, 1);
            }
            other => panic!("expected WalGenerationMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn out_of_range_replay_index_is_a_corrupt_journal() {
        let root = tempdir("oob");
        let store = DurableCatalog::open(root.join("cat"), FsStorage).unwrap();
        let wal_dir = root.join("wal");
        let storage: Arc<dyn Storage + Send + Sync> = Arc::new(FsStorage);
        let wal =
            ColumnWal::open(Arc::clone(&storage), &wal_dir, "c", 0, WalConfig::default()).unwrap();
        wal.append(99, 1).unwrap(); // domain is only 2 wide
        commit_frequencies(&store, "c", &[0, 0], 0);
        match recover(&store, &wal_dir) {
            Err(SynopticError::CorruptJournal { detail, .. }) => {
                assert!(detail.contains("index 99"), "{detail}");
            }
            other => panic!("expected CorruptJournal, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lossy_snapshot_with_pending_records_is_refused() {
        let root = tempdir("lossy");
        let store = DurableCatalog::open(root.join("cat"), FsStorage).unwrap();
        let wal_dir = root.join("wal");
        let storage: Arc<dyn Storage + Send + Sync> = Arc::new(FsStorage);
        let wal =
            ColumnWal::open(Arc::clone(&storage), &wal_dir, "c", 0, WalConfig::default()).unwrap();
        wal.append(0, 1).unwrap();
        let mut cat = Catalog::new();
        cat.insert(
            "c",
            ColumnEntry {
                n: 4,
                total_rows: 4,
                synopsis: PersistentSynopsis::Sap0 {
                    n: 4,
                    starts: vec![0],
                    suff: vec![4.0],
                    pref: vec![4.0],
                },
            },
        );
        store.save(&cat).unwrap();
        match recover(&store, &wal_dir) {
            Err(SynopticError::CorruptJournal { detail, .. }) => {
                assert!(detail.contains("exact frequency"), "{detail}");
            }
            other => panic!("expected CorruptJournal, got {other:?}"),
        }
        // A lossy snapshot with a *clean* journal is simply skipped.
        let report = recover(&store, root.join("no-such-wal")).unwrap();
        assert!(report.columns.is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }
}
