//! Rebuild-policy maintenance for histogram synopses.
//!
//! Histograms have no cheap incremental form (their boundaries are the
//! optimized object), so production systems ingest updates into the base
//! table and *rebuild* statistics when they have drifted enough. This module
//! packages that loop: a [`crate::Fenwick`] tree as the live source of
//! truth, a pluggable construction function, and a [`RebuildPolicy`]
//! deciding when to refresh.

use synoptic_core::{PrefixSums, RangeEstimator, RangeQuery, Result, SynopticError};

use crate::fenwick::Fenwick;

/// When to rebuild the synopsis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebuildPolicy {
    /// Rebuild after every `k` updates.
    EveryKUpdates(u64),
    /// Rebuild when the accumulated absolute update mass `Σ|δ|` exceeds the
    /// given fraction of the total mass at last build.
    DriftFraction(f64),
    /// Only rebuild when [`MaintainedHistogram::rebuild_now`] is called.
    Manual,
}

/// Counters describing the maintenance history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Total updates ingested.
    pub updates: u64,
    /// Updates since the last rebuild.
    pub updates_since_rebuild: u64,
    /// Number of rebuilds performed (excluding the initial build).
    pub rebuilds: u64,
}

/// A histogram synopsis kept (approximately) fresh under point updates.
pub struct MaintainedHistogram<F>
where
    F: FnMut(&[i64], &PrefixSums) -> Result<Box<dyn RangeEstimator>>,
{
    fenwick: Fenwick,
    build: F,
    policy: RebuildPolicy,
    current: Box<dyn RangeEstimator>,
    drift_abs: i128,
    mass_at_build: i128,
    stats: RebuildStats,
}

impl<F> MaintainedHistogram<F>
where
    F: FnMut(&[i64], &PrefixSums) -> Result<Box<dyn RangeEstimator>>,
{
    /// Builds the initial synopsis over `values` with the given policy.
    pub fn new(values: &[i64], mut build: F, policy: RebuildPolicy) -> Result<Self> {
        if let RebuildPolicy::DriftFraction(f) = policy {
            if f.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(SynopticError::InvalidParameter(
                    "drift fraction must be positive".into(),
                ));
            }
        }
        if let RebuildPolicy::EveryKUpdates(0) = policy {
            return Err(SynopticError::InvalidParameter(
                "update period must be positive".into(),
            ));
        }
        let ps = PrefixSums::from_values(values);
        let current = build(values, &ps)?;
        Ok(Self {
            fenwick: Fenwick::from_values(values),
            build,
            policy,
            current,
            drift_abs: 0,
            mass_at_build: ps.total().abs(),
            stats: RebuildStats::default(),
        })
    }

    /// Ingests `A[i] += delta`, rebuilding if the policy fires. Returns
    /// whether a rebuild happened.
    pub fn update(&mut self, i: usize, delta: i64) -> Result<bool> {
        self.fenwick.update(i, delta);
        self.drift_abs += (delta as i128).abs();
        self.stats.updates += 1;
        self.stats.updates_since_rebuild += 1;
        let fire = match self.policy {
            RebuildPolicy::EveryKUpdates(k) => self.stats.updates_since_rebuild >= k,
            RebuildPolicy::DriftFraction(f) => {
                self.drift_abs as f64 > f * self.mass_at_build.max(1) as f64
            }
            RebuildPolicy::Manual => false,
        };
        if fire {
            self.rebuild_now()?;
        }
        Ok(fire)
    }

    /// Forces a rebuild from the live frequencies.
    pub fn rebuild_now(&mut self) -> Result<()> {
        let values = self.fenwick.to_values();
        let ps = PrefixSums::from_values(&values);
        self.current = (self.build)(&values, &ps)?;
        self.drift_abs = 0;
        self.mass_at_build = ps.total().abs();
        self.stats.updates_since_rebuild = 0;
        self.stats.rebuilds += 1;
        Ok(())
    }

    /// The synopsis as of the last (re)build.
    pub fn estimator(&self) -> &dyn RangeEstimator {
        self.current.as_ref()
    }

    /// Exact current answer from the live Fenwick tree (maintenance-side).
    pub fn exact(&self, q: RangeQuery) -> i128 {
        self.fenwick.range_sum(q.lo, q.hi)
    }

    /// Maintenance counters.
    pub fn stats(&self) -> RebuildStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_hist::sap0::build_sap0;

    fn builder() -> impl FnMut(&[i64], &PrefixSums) -> Result<Box<dyn RangeEstimator>> {
        |_vals: &[i64], ps: &PrefixSums| Ok(Box::new(build_sap0(ps, 3)?) as Box<dyn RangeEstimator>)
    }

    #[test]
    fn every_k_policy_rebuilds_on_schedule() {
        let vals = vec![10i64; 12];
        let mut m =
            MaintainedHistogram::new(&vals, builder(), RebuildPolicy::EveryKUpdates(5)).unwrap();
        let mut rebuilds = 0;
        for t in 0..12 {
            if m.update(t % 12, 1).unwrap() {
                rebuilds += 1;
            }
        }
        assert_eq!(rebuilds, 2);
        assert_eq!(m.stats().rebuilds, 2);
        assert_eq!(m.stats().updates, 12);
        assert_eq!(m.stats().updates_since_rebuild, 2);
    }

    #[test]
    fn drift_policy_fires_on_mass_change() {
        let vals = vec![100i64; 10]; // mass 1000
        let mut m =
            MaintainedHistogram::new(&vals, builder(), RebuildPolicy::DriftFraction(0.1)).unwrap();
        // 100 units of |δ| = 10% of mass ⇒ the 101st unit fires.
        let mut fired = false;
        for _ in 0..101 {
            fired = m.update(3, 1).unwrap();
        }
        assert!(fired);
        assert_eq!(m.stats().rebuilds, 1);
    }

    #[test]
    fn manual_policy_never_auto_rebuilds_but_tracks_exact_answers() {
        let vals = vec![5i64, 5, 5, 5, 5, 5];
        let mut m = MaintainedHistogram::new(&vals, builder(), RebuildPolicy::Manual).unwrap();
        for _ in 0..50 {
            assert!(!m.update(0, 2).unwrap());
        }
        // Estimator is stale…
        let q = RangeQuery { lo: 0, hi: 0 };
        let stale = m.estimator().estimate(q);
        // …but the maintenance side is exact.
        assert_eq!(m.exact(q), 105);
        m.rebuild_now().unwrap();
        let fresh = m.estimator().estimate(q);
        assert!(
            (fresh - 105.0).abs() < (stale - 105.0).abs(),
            "rebuild should tighten the estimate: stale {stale}, fresh {fresh}"
        );
    }

    #[test]
    fn rebuild_refreshes_toward_current_data() {
        let vals = vec![0i64; 8];
        let mut m =
            MaintainedHistogram::new(&vals, builder(), RebuildPolicy::EveryKUpdates(4)).unwrap();
        for _ in 0..4 {
            m.update(7, 25).unwrap(); // spike appears at the end
        }
        // After the rebuild the estimator must see the spike.
        let est = m.estimator().estimate(RangeQuery { lo: 7, hi: 7 });
        assert!(est > 10.0, "estimate {est} should reflect the new spike");
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let vals = vec![1i64, 2];
        assert!(
            MaintainedHistogram::new(&vals, builder(), RebuildPolicy::EveryKUpdates(0)).is_err()
        );
        assert!(
            MaintainedHistogram::new(&vals, builder(), RebuildPolicy::DriftFraction(0.0)).is_err()
        );
    }
}
