//! Rebuild-policy maintenance for histogram synopses, hardened for
//! production serving.
//!
//! Histograms have no cheap incremental form (their boundaries are the
//! optimized object), so production systems ingest updates into the base
//! table and *rebuild* statistics when they have drifted enough. This module
//! packages that loop: a [`crate::Fenwick`] tree as the live source of
//! truth, a pluggable construction function, and a [`RebuildPolicy`]
//! deciding when to refresh.
//!
//! ## Robustness contract
//!
//! The serving invariant is **the estimator never disappears**: once the
//! initial build succeeds, a [`MaintainedHistogram`] always has a synopsis
//! to answer from, no matter what rebuilds do. Concretely:
//!
//! * Every rebuild runs under a [`Budget`] (deadline / cell cap /
//!   cancellation from [`RebuildConfig`]). A rebuild that exhausts its
//!   budget or is cancelled leaves the **last-good** synopsis serving.
//! * Builder panics are contained at this subsystem boundary with
//!   [`std::panic::catch_unwind`] and surface as
//!   [`SynopticError::BuildPanicked`]; the last-good synopsis keeps
//!   serving.
//! * After a failed policy-fired rebuild the policy enters a doubling
//!   *cooldown* (in updates) so a persistently failing builder cannot turn
//!   the ingest path into a rebuild storm.
//! * An optional persist hook runs after each successful rebuild, with
//!   bounded retry + doubling backoff on transient
//!   [`SynopticError::Io`] / [`SynopticError::CorruptSynopsis`] errors,
//!   and a **hard cap on total retry wall-clock**
//!   ([`RebuildConfig::persist_total_backoff`], default 2 s) so a dead disk
//!   cannot wedge the maintenance loop. A persist failure **never** unseats
//!   the freshly built in-memory synopsis — durability lags, serving does
//!   not.
//!
//! ## Single-threaded facade vs. the worker pool
//!
//! `MaintainedHistogram` is the *embedded*, single-threaded driver: ingest,
//! rebuild, and persist all run on the caller's thread, in order. That is
//! the right shape for batch jobs and tests, but it means a rebuild (or a
//! persist retry ladder) stalls the caller. Production serving uses
//! [`crate::pool::MaintainedPool`] instead, which splits each column into a
//! lock-light serving/ingest handle and a sharded background worker that
//! owns the rebuild + persist + upgrade loop; the policy logic, the exact
//! drift test ([`drift_exceeds`]), and the bounded persist retry ladder
//! ([`persist_with_retry`]) here are shared by both drivers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Duration;

use synoptic_catalog::wal::{ColumnWal, FsyncCadence, WalConfig};
use synoptic_catalog::Storage;
use synoptic_core::{
    Budget, CancelToken, PrefixSums, RangeEstimator, RangeQuery, Result, SynopticError,
};

use crate::fenwick::Fenwick;

/// The storage handle journaled columns append through: shared because
/// appends run on ingest threads while checkpoints run on rebuild workers.
pub type SharedStorage = std::sync::Arc<dyn Storage + Send + Sync>;

/// A column's write-ahead journal over the shared storage handle.
pub type ColumnJournal = ColumnWal<SharedStorage>;

/// When to rebuild the synopsis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebuildPolicy {
    /// Rebuild after every `k` updates.
    EveryKUpdates(u64),
    /// Rebuild when the accumulated absolute update mass `Σ|δ|` exceeds the
    /// given fraction of the total mass at last build.
    DriftFraction(f64),
    /// Only rebuild when [`MaintainedHistogram::rebuild_now`] is called.
    Manual,
}

/// Maintenance configuration: the rebuild policy plus the execution-control
/// and durability knobs applied to every rebuild.
#[derive(Debug, Clone)]
pub struct RebuildConfig {
    /// When to rebuild.
    pub policy: RebuildPolicy,
    /// Wall-clock allowance per rebuild. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// DP-cell allowance per rebuild. `None` = no cap.
    pub max_cells: Option<u64>,
    /// Cooperative cancellation observed by in-flight rebuilds.
    pub cancel: Option<CancelToken>,
    /// Extra attempts for the persist hook on transient storage errors
    /// (0 = no retry).
    pub persist_retries: u32,
    /// Initial backoff between persist attempts; doubles per retry.
    pub persist_backoff: Duration,
    /// Hard cap on the *total* wall-clock spent sleeping between persist
    /// attempts, across the whole doubling ladder. Once the cap is spent,
    /// the next failure is final regardless of `persist_retries` — a dead
    /// disk must not wedge a maintenance thread. Default 2 s.
    pub persist_total_backoff: Duration,
    /// Updates to suppress policy-fired rebuilds after a failure; doubles
    /// per consecutive failure (capped at 1024×), resets on success.
    pub failure_cooldown_updates: u64,
    /// Pool-only: after a *degraded* anytime build commits, re-run the
    /// originally requested rung in the background with a
    /// [`RebuildConfig::upgrade_budget_factor`]× budget and hot-swap the
    /// better synopsis on success (the inverse of the fallback ladder).
    /// Ignored by the single-threaded [`MaintainedHistogram`] facade.
    pub upgrade_in_background: bool,
    /// Budget multiplier (deadline and cell cap) for background upgrade
    /// attempts. Default 4.
    pub upgrade_budget_factor: u32,
    /// Evaluate budget constraints only at every `charge_batch`-th
    /// checkpoint ([`Budget::with_charge_batch`]): on small `n`, where a
    /// checkpoint guards a handful of DP cells, this trades up to
    /// `charge_batch - 1` checkpoints of cancellation/deadline latency for
    /// lower per-checkpoint overhead. Default 1 (check every checkpoint);
    /// never changes what an unconstrained build produces.
    pub charge_batch: u64,
}

impl RebuildConfig {
    /// Defaults: no execution constraints, 2 persist retries with 1 ms
    /// initial backoff capped at 2 s total, 8-update failure cooldown, no
    /// background upgrades.
    pub fn new(policy: RebuildPolicy) -> Self {
        Self {
            policy,
            deadline: None,
            max_cells: None,
            cancel: None,
            persist_retries: 2,
            persist_backoff: Duration::from_millis(1),
            persist_total_backoff: Duration::from_secs(2),
            failure_cooldown_updates: 8,
            upgrade_in_background: false,
            upgrade_budget_factor: 4,
            charge_batch: 1,
        }
    }

    /// Sets the per-rebuild wall-clock allowance.
    #[must_use]
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Sets the per-rebuild DP-cell allowance.
    #[must_use]
    pub fn with_max_cells(mut self, max_cells: u64) -> Self {
        self.max_cells = Some(max_cells);
        self
    }

    /// Attaches a cancellation token observed by every rebuild.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Configures persist retry behaviour.
    #[must_use]
    pub fn with_persist_retries(mut self, retries: u32, backoff: Duration) -> Self {
        self.persist_retries = retries;
        self.persist_backoff = backoff;
        self
    }

    /// Caps the total wall-clock spent sleeping between persist retries.
    #[must_use]
    pub fn with_persist_total_backoff(mut self, cap: Duration) -> Self {
        self.persist_total_backoff = cap;
        self
    }

    /// Enables background upgrades after degraded anytime builds (pool
    /// columns only), with the given budget multiplier.
    #[must_use]
    pub fn with_background_upgrade(mut self, budget_factor: u32) -> Self {
        self.upgrade_in_background = true;
        self.upgrade_budget_factor = budget_factor.max(1);
        self
    }

    /// Sets the checkpoint batching factor (see
    /// [`RebuildConfig::charge_batch`]).
    #[must_use]
    pub fn with_charge_batch(mut self, batch: u64) -> Self {
        self.charge_batch = batch;
        self
    }

    pub(crate) fn budget(&self) -> Budget {
        let mut b = Budget::unlimited().with_charge_batch(self.charge_batch);
        if let Some(d) = self.deadline {
            b = b.with_deadline(d);
        }
        if let Some(c) = self.max_cells {
            b = b.with_max_cells(c);
        }
        if let Some(t) = &self.cancel {
            b = b.with_cancel_token(t.clone());
        }
        b
    }
}

/// Opt-in crash durability for the ingest path of a pool column.
///
/// When enabled, every acknowledged `update()` is appended to a
/// checksummed per-column write-ahead journal
/// ([`synoptic_catalog::wal::ColumnWal`]) *before* the in-memory Fenwick
/// state changes, and startup recovery ([`crate::recovery`]) replays the
/// journal on top of the last committed catalog generation. Disabled by
/// default: with `wal_dir` unset, the ingest path is bit-identical to the
/// journal-free behaviour — no extra branches taken, no I/O, no locks.
#[derive(Debug, Clone, Default)]
pub struct DurabilityConfig {
    /// Directory holding the column's journal segments. `None` (the
    /// default) disables write-ahead logging entirely.
    pub wal_dir: Option<PathBuf>,
    /// Segment-rotation and fsync tuning, consulted only when `wal_dir`
    /// is set.
    pub wal: WalConfig,
}

impl DurabilityConfig {
    /// Durability off (the default): no journal, no recovery obligations.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Journals ingest under `dir` with default tuning (64 KiB segments,
    /// fsync on every record).
    pub fn journaled(dir: impl Into<PathBuf>) -> Self {
        Self {
            wal_dir: Some(dir.into()),
            wal: WalConfig::default(),
        }
    }

    /// Sets the segment-rotation size in bytes.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: usize) -> Self {
        self.wal.segment_bytes = bytes;
        self
    }

    /// Sets the fsync cadence ([`FsyncCadence`]).
    #[must_use]
    pub fn with_fsync(mut self, cadence: FsyncCadence) -> Self {
        self.wal.fsync = cadence;
        self
    }

    /// Whether write-ahead logging is enabled.
    pub fn enabled(&self) -> bool {
        self.wal_dir.is_some()
    }

    /// Opens `column`'s journal per this configuration: `Ok(None)` when
    /// durability is disabled. `committed_generation` is stamped into new
    /// segment headers until the first checkpoint (see
    /// [`ColumnWal::open`]).
    pub fn open_journal(
        &self,
        storage: SharedStorage,
        column: &str,
        committed_generation: u64,
    ) -> Result<Option<ColumnJournal>> {
        match &self.wal_dir {
            None => Ok(None),
            Some(dir) => Ok(Some(ColumnWal::open(
                storage,
                dir.clone(),
                column,
                committed_generation,
                self.wal,
            )?)),
        }
    }
}

/// Counters describing the maintenance history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Total updates ingested.
    pub updates: u64,
    /// Updates since the last successful rebuild.
    pub updates_since_rebuild: u64,
    /// Number of successful rebuilds performed (excluding the initial
    /// build).
    pub rebuilds: u64,
    /// Rebuild attempts that failed (budget exhausted, cancelled, panicked,
    /// or builder error); the previous synopsis kept serving each time.
    pub failed_rebuilds: u64,
    /// Persist-hook invocations that failed even after retries; the
    /// in-memory synopsis stayed fresh each time.
    pub persist_failures: u64,
    /// Individual persist attempts that errored and were retried.
    pub persist_retries: u64,
    /// Background upgrades that completed and hot-swapped a better synopsis
    /// over a degraded rung's result (pool columns only).
    pub upgrades: u64,
    /// Background upgrade attempts that failed; the degraded synopsis kept
    /// serving (pool columns only).
    pub failed_upgrades: u64,
    /// Duplicate rebuild/upgrade jobs collapsed by worker-queue coalescing
    /// before they ran (pool columns only; always 0 for the single-threaded
    /// facade, which never queues).
    pub coalesced: u64,
    /// Segments rebuilt across all successful rebuilds (segmented pool
    /// columns only; always 0 for monolithic columns and the facade).
    pub segments_rebuilt: u64,
    /// Segments whose partial was reused unchanged because they were
    /// clean at the rebuild cut (segmented pool columns only).
    pub segments_reused: u64,
}

/// Exact integer test for the [`RebuildPolicy::DriftFraction`] trigger:
/// fires iff `drift_abs > f · mass` **in exact rational arithmetic**.
///
/// The naive `drift_abs as f64 > f * mass as f64` comparison silently loses
/// precision once either side exceeds 2⁵³ (an `i128` mass does not fit in
/// an `f64` mantissa), producing spurious or missed fires near the
/// threshold. Instead we use the fact that every finite `f64` is exactly
/// `m · 2^e` for integers `m ≤ 2⁵³` and `e`, and cross-multiply:
///
/// ```text
/// drift > (m · 2^e) · mass   ⟺   drift · 2^-e > m · mass      (e < 0)
///                            ⟺   drift > (m · mass) · 2^e     (e ≥ 0)
/// ```
///
/// both sides evaluated in 256-bit integers (`m · mass` needs ≤ 181 bits;
/// the shifts saturate, which is exact for comparison purposes because the
/// unshifted side always fits in 128 bits). `mass` is clamped to ≥ 1,
/// matching the policy's treatment of empty distributions.
pub fn drift_exceeds(drift_abs: i128, f: f64, mass: i128) -> bool {
    debug_assert!(f > 0.0 && f.is_finite(), "policy validation enforces f > 0");
    let drift = drift_abs.unsigned_abs();
    let mass = mass.unsigned_abs().max(1);
    // Exact decomposition f = m · 2^e.
    let bits = f.to_bits();
    let exp_field = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    let (m, e) = if exp_field == 0 {
        (frac, -1074i32) // subnormal
    } else {
        (frac | (1u64 << 52), exp_field - 1075)
    };
    if m == 0 {
        return drift > 0; // f == +0.0: defensive, excluded by validation
    }
    let rhs = mul_u128_by_u64(mass, m);
    let lhs = (0u128, drift);
    if e >= 0 {
        cmp_u256(lhs, shl_u256_saturating(rhs, e as u32)) == std::cmp::Ordering::Greater
    } else {
        cmp_u256(shl_u256_saturating(lhs, e.unsigned_abs()), rhs) == std::cmp::Ordering::Greater
    }
}

/// `a · b` as a 256-bit `(hi, lo)` pair.
fn mul_u128_by_u64(a: u128, b: u64) -> (u128, u128) {
    const LOW64: u128 = (1u128 << 64) - 1;
    let b = b as u128;
    let p0 = (a & LOW64) * b;
    let p1 = (a >> 64) * b;
    let mid = (p0 >> 64) + p1; // ≤ 2^64 + 2^117: no overflow
    ((mid >> 64), (mid << 64) | (p0 & LOW64))
}

/// `v << s` on a 256-bit `(hi, lo)` pair, saturating to the 256-bit max on
/// overflow. Saturation is exact for our comparisons: the opposite side of
/// every comparison fits in far fewer than 256 bits.
fn shl_u256_saturating(v: (u128, u128), s: u32) -> (u128, u128) {
    const SAT: (u128, u128) = (u128::MAX, u128::MAX);
    let (hi, lo) = v;
    if s == 0 || (hi == 0 && lo == 0) {
        return v;
    }
    if s >= 256 {
        return SAT;
    }
    if s < 128 {
        if hi >> (128 - s) != 0 {
            return SAT;
        }
        ((hi << s) | (lo >> (128 - s)), lo << s)
    } else {
        let s2 = s - 128;
        if hi != 0 || (s2 > 0 && lo >> (128 - s2) != 0) {
            return SAT;
        }
        (lo << s2, 0)
    }
}

/// Lexicographic comparison of 256-bit `(hi, lo)` pairs.
fn cmp_u256(a: (u128, u128), b: (u128, u128)) -> std::cmp::Ordering {
    a.0.cmp(&b.0).then(a.1.cmp(&b.1))
}

/// Renders a caught panic payload as text.
pub(crate) fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Classifies persist errors worth retrying: transient storage conditions,
/// not logic errors.
pub(crate) fn persist_error_is_transient(err: &SynopticError) -> bool {
    matches!(
        err,
        SynopticError::Io { .. } | SynopticError::CorruptSynopsis { .. }
    )
}

/// The post-rebuild durability hook. `Send` because the hook crosses a
/// thread boundary in the pool design: the serving thread installs it, the
/// background rebuild worker runs it (with retries and backoff) off the
/// ingest path.
pub type PersistFn = Box<dyn FnMut(&dyn RangeEstimator) -> Result<()> + Send>;

/// What a durable persist hook is handed after a successful rebuild of a
/// journaled column: the fresh estimator, the **exact frequencies** the
/// build snapshotted (recovery replays journal deltas on top of these, so
/// the hook must persist them — typically via
/// [`synoptic_catalog::PersistentSynopsis::from_frequencies`]), and the
/// journal LSN the snapshot covers (to record as the column's WAL mark via
/// [`synoptic_catalog::Catalog::set_wal_mark`]).
pub struct DurableSnapshot<'a> {
    /// The freshly built (now serving) estimator.
    pub estimator: &'a dyn RangeEstimator,
    /// The exact frequency vector the build ran over.
    pub values: &'a [i64],
    /// LSN of the last journal record captured by `values`.
    pub wal_mark: u64,
}

/// The persist hook for journaled columns. Returns the committed catalog
/// generation on success; the maintenance loop then checkpoints the
/// journal at the snapshot's WAL mark, truncating segments whose deltas
/// the committed generation now covers.
pub type DurablePersistFn = Box<dyn FnMut(&DurableSnapshot<'_>) -> Result<u64> + Send>;

/// What one run of the persist retry ladder did.
#[derive(Debug, Default)]
pub(crate) struct PersistReport {
    /// Attempts that errored and were retried.
    pub retries: u64,
    /// Whether the ladder gave up (the synopsis is fresh in memory but not
    /// durable).
    pub failed: bool,
    /// The most recent error observed, if any attempt errored (present
    /// even when a later retry succeeded).
    pub last_error: Option<SynopticError>,
}

/// Runs the persist hook with bounded retry + doubling backoff, and a hard
/// cap on the total wall-clock slept ([`RebuildConfig::persist_total_backoff`]).
///
/// This function may sleep; callers decide *whose* thread pays for that.
/// The single-threaded [`MaintainedHistogram`] runs it inline (bounded by
/// the cap); the worker pool runs it on the rebuild worker, where the
/// sleeps overlap serving and ingest instead of stalling them.
pub(crate) fn persist_with_retry(
    persist: &mut (dyn FnMut(&dyn RangeEstimator) -> Result<()> + Send),
    estimator: &dyn RangeEstimator,
    config: &RebuildConfig,
) -> PersistReport {
    let mut report = PersistReport::default();
    let mut backoff = config.persist_backoff;
    let mut slept = Duration::ZERO;
    let attempts = 1 + config.persist_retries;
    for attempt in 0..attempts {
        match persist(estimator) {
            Ok(()) => return report,
            Err(err) => {
                let transient = persist_error_is_transient(&err);
                report.last_error = Some(err);
                let remaining = config.persist_total_backoff.saturating_sub(slept);
                if !transient || attempt + 1 >= attempts || remaining.is_zero() {
                    report.failed = true;
                    return report;
                }
                report.retries += 1;
                let nap = backoff.min(remaining);
                std::thread::sleep(nap);
                slept += nap;
                backoff = backoff.saturating_mul(2);
            }
        }
    }
    report.failed = true;
    report
}

/// Runs a durable persist hook through the same bounded retry ladder as
/// [`persist_with_retry`], returning the committed generation alongside
/// the report when any attempt succeeded.
pub(crate) fn persist_durable_with_retry(
    persist: &mut (dyn FnMut(&DurableSnapshot<'_>) -> Result<u64> + Send),
    snapshot: &DurableSnapshot<'_>,
    config: &RebuildConfig,
) -> (PersistReport, Option<u64>) {
    let mut generation = None;
    let mut adaptor = |_: &dyn RangeEstimator| -> Result<()> {
        generation = Some(persist(snapshot)?);
        Ok(())
    };
    let report = persist_with_retry(&mut adaptor, snapshot.estimator, config);
    (report, generation)
}

/// A histogram synopsis kept (approximately) fresh under point updates,
/// with budgeted, panic-isolated rebuilds and last-good serving.
pub struct MaintainedHistogram<F>
where
    F: FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>>,
{
    fenwick: Fenwick,
    build: F,
    config: RebuildConfig,
    current: Box<dyn RangeEstimator>,
    persist: Option<PersistFn>,
    wal: Option<ColumnJournal>,
    durable_persist: Option<DurablePersistFn>,
    drift_abs: i128,
    mass_at_build: i128,
    stats: RebuildStats,
    last_error: Option<SynopticError>,
    cooldown_remaining: u64,
    cooldown_factor: u64,
}

impl<F> MaintainedHistogram<F>
where
    F: FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>>,
{
    /// Builds the initial synopsis over `values` with the given policy and
    /// default robustness settings ([`RebuildConfig::new`]).
    pub fn new(values: &[i64], build: F, policy: RebuildPolicy) -> Result<Self> {
        Self::with_config(values, build, RebuildConfig::new(policy))
    }

    /// Builds the initial synopsis with full maintenance configuration.
    /// The initial build runs under the configured budget; if it fails
    /// there is no last-good synopsis to fall back to, so the error
    /// propagates.
    pub fn with_config(values: &[i64], mut build: F, config: RebuildConfig) -> Result<Self> {
        if let RebuildPolicy::DriftFraction(f) = config.policy {
            if f.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(SynopticError::InvalidParameter(
                    "drift fraction must be positive".into(),
                ));
            }
        }
        if let RebuildPolicy::EveryKUpdates(0) = config.policy {
            return Err(SynopticError::InvalidParameter(
                "update period must be positive".into(),
            ));
        }
        let ps = PrefixSums::from_values(values);
        let budget = config.budget();
        let current = run_builder(&mut build, values, &ps, &budget)?;
        Ok(Self {
            fenwick: Fenwick::from_values(values),
            build,
            config,
            current,
            persist: None,
            wal: None,
            durable_persist: None,
            drift_abs: 0,
            mass_at_build: ps.total().abs(),
            stats: RebuildStats::default(),
            last_error: None,
            cooldown_remaining: 0,
            cooldown_factor: 1,
        })
    }

    /// Attaches a persist hook invoked after every successful rebuild with
    /// the fresh synopsis. Transient failures are retried per
    /// [`RebuildConfig::persist_retries`]; a final failure is counted in
    /// [`RebuildStats::persist_failures`] and never unseats the in-memory
    /// synopsis.
    #[must_use]
    pub fn with_persist(mut self, persist: PersistFn) -> Self {
        self.persist = Some(persist);
        self
    }

    /// Enables write-ahead durability per `durability`: every subsequent
    /// `update()` is journaled *before* the Fenwick state changes, so a
    /// crash loses at most the record being appended (per the configured
    /// [`FsyncCadence`]). With durability disabled in the config this is a
    /// no-op and the ingest path stays journal-free.
    pub fn with_durability(
        mut self,
        storage: SharedStorage,
        column: &str,
        durability: &DurabilityConfig,
        committed_generation: u64,
    ) -> Result<Self> {
        self.wal = durability.open_journal(storage, column, committed_generation)?;
        Ok(self)
    }

    /// Attaches the durable persist hook used instead of
    /// [`MaintainedHistogram::with_persist`] when the column is journaled:
    /// it receives the snapshot (estimator + exact frequencies + WAL mark)
    /// and returns the committed generation, after which the journal is
    /// checkpointed and covered segments are truncated.
    #[must_use]
    pub fn with_durable_persist(mut self, persist: DurablePersistFn) -> Self {
        self.durable_persist = Some(persist);
        self
    }

    /// Whether this instance journals its updates.
    pub fn journaled(&self) -> bool {
        self.wal.is_some()
    }

    /// Direct access to the column's journal when durability is enabled.
    /// Replication hangs off this: sealing the active segment before a
    /// ship, registering per-follower retention holds, and reading the
    /// pending mark that bounds follower lag.
    pub fn journal(&self) -> Option<&ColumnJournal> {
        self.wal.as_ref()
    }

    /// Ingests `A[i] += delta`, rebuilding if the policy fires (and the
    /// failure cooldown has elapsed). Returns whether a rebuild *happened
    /// successfully*. A policy-fired rebuild that fails is absorbed: the
    /// error is recorded in [`MaintainedHistogram::last_error`] and
    /// counted, the last-good synopsis keeps serving, and ingest continues.
    pub fn update(&mut self, i: usize, delta: i64) -> Result<bool> {
        if let Some(wal) = &self.wal {
            // Write-ahead: journal before mutating, so an acknowledged
            // update is never lost to a crash. A failed append rejects the
            // update without touching in-memory state.
            assert!(
                i < self.fenwick.n(),
                "index {i} out of bounds for n={}",
                self.fenwick.n()
            );
            wal.append(i as u64, delta)?;
        }
        self.fenwick.update(i, delta);
        self.drift_abs += (delta as i128).abs();
        self.stats.updates += 1;
        self.stats.updates_since_rebuild += 1;
        if self.cooldown_remaining > 0 {
            self.cooldown_remaining -= 1;
            return Ok(false);
        }
        let fire = match self.config.policy {
            RebuildPolicy::EveryKUpdates(k) => self.stats.updates_since_rebuild >= k,
            RebuildPolicy::DriftFraction(f) => drift_exceeds(self.drift_abs, f, self.mass_at_build),
            RebuildPolicy::Manual => false,
        };
        if !fire {
            return Ok(false);
        }
        match self.try_rebuild() {
            Ok(()) => Ok(true),
            Err(_) => Ok(false), // recorded by try_rebuild; keep serving
        }
    }

    /// Forces a rebuild from the live frequencies, under the configured
    /// budget. On failure the last-good synopsis keeps serving and the
    /// error is returned (and retained in
    /// [`MaintainedHistogram::last_error`]).
    pub fn rebuild_now(&mut self) -> Result<()> {
        self.try_rebuild()
    }

    fn try_rebuild(&mut self) -> Result<()> {
        // Single-threaded: no update can land between capturing the mark
        // and materializing the values, so the pair is a consistent
        // snapshot for checkpointing.
        let wal_mark = self.wal.as_ref().map(|w| w.pending_mark());
        let values = self.fenwick.to_values();
        let ps = PrefixSums::from_values(&values);
        let budget = self.config.budget();
        match run_builder(&mut self.build, &values, &ps, &budget) {
            Ok(fresh) => {
                self.current = fresh;
                self.drift_abs = 0;
                self.mass_at_build = ps.total().abs();
                self.stats.updates_since_rebuild = 0;
                self.stats.rebuilds += 1;
                self.last_error = None;
                self.cooldown_remaining = 0;
                self.cooldown_factor = 1;
                self.persist_current(&values, wal_mark);
                Ok(())
            }
            Err(err) => {
                self.stats.failed_rebuilds += 1;
                self.last_error = Some(err.clone());
                self.cooldown_remaining =
                    self.config.failure_cooldown_updates * self.cooldown_factor;
                self.cooldown_factor = (self.cooldown_factor * 2).min(1024);
                Err(err)
            }
        }
    }

    /// Runs the persist hook through the shared bounded retry ladder
    /// ([`persist_with_retry`]). This single-threaded facade pays for the
    /// backoff sleeps inline, but the total is capped by
    /// [`RebuildConfig::persist_total_backoff`]; the pool runs the same
    /// ladder on a background worker instead.
    fn persist_current(&mut self, values: &[i64], wal_mark: Option<u64>) {
        if let Some(wal) = &self.wal {
            let Some(hook) = self.durable_persist.as_mut() else {
                return;
            };
            let mark = wal_mark.unwrap_or(0);
            let (report, generation) = {
                let snapshot = DurableSnapshot {
                    estimator: self.current.as_ref(),
                    values,
                    wal_mark: mark,
                };
                persist_durable_with_retry(hook.as_mut(), &snapshot, &self.config)
            };
            self.stats.persist_retries += report.retries;
            if report.failed {
                self.stats.persist_failures += 1;
            }
            if let Some(err) = report.last_error {
                self.last_error = Some(err);
            }
            if !report.failed {
                if let Some(generation) = generation {
                    // A failed truncation is non-fatal: stale segments are
                    // skipped at replay (their LSNs are ≤ the committed
                    // mark) and the next checkpoint retries the delete.
                    if let Err(err) = wal.checkpoint(mark, generation) {
                        self.last_error = Some(err);
                    }
                }
            }
            return;
        }
        let Some(persist) = self.persist.as_mut() else {
            return;
        };
        let report = persist_with_retry(persist.as_mut(), self.current.as_ref(), &self.config);
        self.stats.persist_retries += report.retries;
        if report.failed {
            self.stats.persist_failures += 1;
        }
        if let Some(err) = report.last_error {
            self.last_error = Some(err);
        }
    }

    /// The synopsis as of the last *successful* (re)build — never absent.
    pub fn estimator(&self) -> &dyn RangeEstimator {
        self.current.as_ref()
    }

    /// Exact current answer from the live Fenwick tree (maintenance-side).
    pub fn exact(&self, q: RangeQuery) -> i128 {
        self.fenwick.range_sum(q.lo, q.hi)
    }

    /// Maintenance counters.
    pub fn stats(&self) -> RebuildStats {
        self.stats
    }

    /// The most recent rebuild/persist error, if the last attempt failed.
    /// Cleared by the next successful rebuild.
    pub fn last_error(&self) -> Option<&SynopticError> {
        self.last_error.as_ref()
    }

    /// Updates remaining before a policy-fired rebuild may run again
    /// (non-zero only while in post-failure cooldown).
    pub fn cooldown_remaining(&self) -> u64 {
        self.cooldown_remaining
    }
}

/// Invokes the builder with panics contained at this subsystem boundary.
pub(crate) fn run_builder<F>(
    build: &mut F,
    values: &[i64],
    ps: &PrefixSums,
    budget: &Budget,
) -> Result<Box<dyn RangeEstimator>>
where
    F: FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>>,
{
    match catch_unwind(AssertUnwindSafe(|| build(values, ps, budget))) {
        Ok(result) => result,
        Err(payload) => Err(SynopticError::BuildPanicked {
            detail: panic_detail(payload),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_hist::sap0::{build_sap0, build_sap0_with_budget};

    fn builder() -> impl FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>> {
        |_vals: &[i64], ps: &PrefixSums, budget: &Budget| {
            Ok(Box::new(build_sap0_with_budget(ps, 3, budget)?) as Box<dyn RangeEstimator>)
        }
    }

    #[test]
    fn every_k_policy_rebuilds_on_schedule() {
        let vals = vec![10i64; 12];
        let mut m =
            MaintainedHistogram::new(&vals, builder(), RebuildPolicy::EveryKUpdates(5)).unwrap();
        let mut rebuilds = 0;
        for t in 0..12 {
            if m.update(t % 12, 1).unwrap() {
                rebuilds += 1;
            }
        }
        assert_eq!(rebuilds, 2);
        assert_eq!(m.stats().rebuilds, 2);
        assert_eq!(m.stats().updates, 12);
        assert_eq!(m.stats().updates_since_rebuild, 2);
        assert_eq!(m.stats().failed_rebuilds, 0);
    }

    #[test]
    fn drift_policy_fires_on_mass_change() {
        let vals = vec![100i64; 10]; // mass 1000
        let mut m =
            MaintainedHistogram::new(&vals, builder(), RebuildPolicy::DriftFraction(0.1)).unwrap();
        // 100 units of |δ| = 10% of mass ⇒ the 101st unit fires.
        let mut fired = false;
        for _ in 0..101 {
            fired = m.update(3, 1).unwrap();
        }
        assert!(fired);
        assert_eq!(m.stats().rebuilds, 1);
    }

    #[test]
    fn manual_policy_never_auto_rebuilds_but_tracks_exact_answers() {
        let vals = vec![5i64, 5, 5, 5, 5, 5];
        let mut m = MaintainedHistogram::new(&vals, builder(), RebuildPolicy::Manual).unwrap();
        for _ in 0..50 {
            assert!(!m.update(0, 2).unwrap());
        }
        // Estimator is stale…
        let q = RangeQuery { lo: 0, hi: 0 };
        let stale = m.estimator().estimate(q);
        // …but the maintenance side is exact.
        assert_eq!(m.exact(q), 105);
        m.rebuild_now().unwrap();
        let fresh = m.estimator().estimate(q);
        assert!(
            (fresh - 105.0).abs() < (stale - 105.0).abs(),
            "rebuild should tighten the estimate: stale {stale}, fresh {fresh}"
        );
    }

    #[test]
    fn rebuild_refreshes_toward_current_data() {
        let vals = vec![0i64; 8];
        let mut m =
            MaintainedHistogram::new(&vals, builder(), RebuildPolicy::EveryKUpdates(4)).unwrap();
        for _ in 0..4 {
            m.update(7, 25).unwrap(); // spike appears at the end
        }
        // After the rebuild the estimator must see the spike.
        let est = m.estimator().estimate(RangeQuery { lo: 7, hi: 7 });
        assert!(est > 10.0, "estimate {est} should reflect the new spike");
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let vals = vec![1i64, 2];
        assert!(
            MaintainedHistogram::new(&vals, builder(), RebuildPolicy::EveryKUpdates(0)).is_err()
        );
        assert!(
            MaintainedHistogram::new(&vals, builder(), RebuildPolicy::DriftFraction(0.0)).is_err()
        );
    }

    #[test]
    fn exhausted_rebuild_budget_keeps_last_good_serving() {
        let vals = vec![10i64; 16];
        // Generous enough for the initial build, then tightened.
        let metered = Budget::unlimited();
        build_sap0_with_budget(&PrefixSums::from_values(&vals), 3, &metered).unwrap();
        let config = RebuildConfig::new(RebuildPolicy::EveryKUpdates(4))
            .with_max_cells(metered.cells_used()); // exactly the initial cost
        let mut m = MaintainedHistogram::with_config(&vals, builder(), config).unwrap();
        let before = m.estimator().estimate(RangeQuery { lo: 0, hi: 15 });
        // The rebuild runs over the same-sized domain and the initial budget
        // is exactly sufficient, so a rebuild succeeds; tighten via a fresh
        // maintained instance with half the cells instead.
        let config = RebuildConfig::new(RebuildPolicy::EveryKUpdates(4))
            .with_max_cells(metered.cells_used() / 2);
        let mut m2 = match MaintainedHistogram::with_config(&vals, builder(), config) {
            Ok(m2) => m2,
            Err(SynopticError::CellBudgetExceeded { .. }) => {
                // Initial build already over budget: acceptable, nothing to
                // serve — the invariant only applies after a first success.
                let _ = m.update(0, 1).unwrap();
                assert!(before.is_finite());
                return;
            }
            Err(other) => panic!("unexpected: {other:?}"),
        };
        for t in 0..16 {
            let _ = m2.update(t, 1).unwrap();
        }
        // Whatever happened, an estimator is still there and answers.
        let after = m2.estimator().estimate(RangeQuery { lo: 0, hi: 15 });
        assert!(after.is_finite());
    }

    #[test]
    fn builder_panic_is_contained_and_last_good_serves() {
        let vals = vec![7i64; 12];
        let mut calls = 0u32;
        let build = move |_v: &[i64], ps: &PrefixSums, _b: &Budget| {
            calls += 1;
            if calls > 1 {
                panic!("injected builder panic");
            }
            Ok(Box::new(build_sap0(ps, 3)?) as Box<dyn RangeEstimator>)
        };
        let mut m =
            MaintainedHistogram::new(&vals, build, RebuildPolicy::EveryKUpdates(3)).unwrap();
        let q = RangeQuery { lo: 0, hi: 11 };
        let before = m.estimator().estimate(q);
        for t in 0..6 {
            // Policy fires at t=2 → rebuild panics → absorbed.
            let fired = m.update(t, 1).unwrap();
            assert!(!fired, "panicked rebuild must not report success");
        }
        assert_eq!(m.stats().rebuilds, 0);
        assert_eq!(m.stats().failed_rebuilds, 1);
        assert!(matches!(
            m.last_error(),
            Some(SynopticError::BuildPanicked { detail }) if detail.contains("injected")
        ));
        // Serving never stopped.
        let after = m.estimator().estimate(q);
        assert_eq!(before.to_bits(), after.to_bits());
        // Cooldown suppresses immediate refire.
        assert!(m.cooldown_remaining() > 0);
    }

    #[test]
    fn cancelled_rebuild_keeps_serving_and_is_recorded() {
        let vals = vec![3i64; 10];
        let token = CancelToken::new();
        let config = RebuildConfig::new(RebuildPolicy::Manual).with_cancel_token(token.clone());
        let mut m = MaintainedHistogram::with_config(&vals, builder(), config).unwrap();
        token.cancel();
        let err = m.rebuild_now().unwrap_err();
        assert_eq!(err, SynopticError::Cancelled);
        assert_eq!(m.stats().failed_rebuilds, 1);
        // Still serving.
        assert!(m
            .estimator()
            .estimate(RangeQuery { lo: 0, hi: 9 })
            .is_finite());
        // Un-cancel: the next manual rebuild succeeds and clears the error.
        token.reset();
        m.rebuild_now().unwrap();
        assert!(m.last_error().is_none());
        assert_eq!(m.stats().rebuilds, 1);
    }

    #[test]
    fn failure_cooldown_doubles_and_resets_on_success() {
        let vals = vec![5i64; 8];
        let mut fail = true;
        let mut build = move |_v: &[i64], ps: &PrefixSums, _b: &Budget| {
            if fail {
                fail = false; // fail only on the first rebuild
                return Err(SynopticError::DeadlineExceeded { elapsed_ms: 1 });
            }
            Ok(Box::new(build_sap0(ps, 2)?) as Box<dyn RangeEstimator>)
        };
        // Initial build must succeed: flip the flag so the first (initial)
        // call succeeds and the first *rebuild* fails.
        let mut first = true;
        let mut fail_second = move |v: &[i64], ps: &PrefixSums, b: &Budget| {
            if first {
                first = false;
                return Ok(Box::new(build_sap0(ps, 2)?) as Box<dyn RangeEstimator>);
            }
            build(v, ps, b)
        };
        let config = RebuildConfig::new(RebuildPolicy::EveryKUpdates(2));
        let cooldown = config.failure_cooldown_updates;
        let mut m = MaintainedHistogram::with_config(
            &vals,
            move |v: &[i64], ps: &PrefixSums, b: &Budget| fail_second(v, ps, b),
            config,
        )
        .unwrap();
        // Updates 1,2 → policy fires → rebuild fails → cooldown set.
        m.update(0, 1).unwrap();
        assert!(!m.update(1, 1).unwrap());
        assert_eq!(m.stats().failed_rebuilds, 1);
        assert_eq!(m.cooldown_remaining(), cooldown);
        // Cooldown updates are absorbed without firing.
        for t in 0..cooldown {
            assert!(!m.update((t % 8) as usize, 1).unwrap());
        }
        assert_eq!(m.cooldown_remaining(), 0);
        // Next update fires (counter is well past k) and now succeeds.
        assert!(m.update(3, 1).unwrap());
        assert_eq!(m.stats().rebuilds, 1);
        assert!(m.last_error().is_none());
    }

    #[test]
    fn persist_retries_transient_errors_then_succeeds() {
        let vals = vec![9i64; 6];
        let mut failures_left = 2u32;
        let persist: PersistFn = Box::new(move |_e: &dyn RangeEstimator| {
            if failures_left > 0 {
                failures_left -= 1;
                return Err(SynopticError::Io {
                    path: "/dev/faulty".into(),
                    detail: "transient".into(),
                });
            }
            Ok(())
        });
        let config = RebuildConfig::new(RebuildPolicy::Manual)
            .with_persist_retries(3, Duration::from_micros(10));
        let mut m = MaintainedHistogram::with_config(&vals, builder(), config)
            .unwrap()
            .with_persist(persist);
        m.rebuild_now().unwrap();
        assert_eq!(m.stats().persist_retries, 2);
        assert_eq!(m.stats().persist_failures, 0);
    }

    #[test]
    fn persist_permanent_failure_counts_but_serving_stays_fresh() {
        let vals = vec![1i64; 6];
        let persist: PersistFn = Box::new(|_e: &dyn RangeEstimator| {
            Err(SynopticError::Io {
                path: "/dev/full".into(),
                detail: "enospc".into(),
            })
        });
        let config = RebuildConfig::new(RebuildPolicy::Manual)
            .with_persist_retries(1, Duration::from_micros(10));
        let mut m = MaintainedHistogram::with_config(&vals, builder(), config)
            .unwrap()
            .with_persist(persist);
        for i in 0..6 {
            m.update(i, 10).unwrap();
        }
        m.rebuild_now().unwrap();
        // Rebuild succeeded (counted) even though persistence failed.
        assert_eq!(m.stats().rebuilds, 1);
        assert_eq!(m.stats().persist_failures, 1);
        assert_eq!(m.stats().persist_retries, 1);
        // The in-memory synopsis reflects the fresh data.
        let est = m.estimator().estimate(RangeQuery { lo: 0, hi: 5 });
        assert!((est - 66.0).abs() < 10.0, "fresh estimate, got {est}");
        assert!(matches!(m.last_error(), Some(SynopticError::Io { .. })));
    }

    #[test]
    fn drift_exceeds_is_exact_at_the_2p53_boundary() {
        // mass = 2⁵³ + 1 is not representable in f64: `mass as f64` rounds
        // down to 2⁵³, so the naive float comparison
        // `drift as f64 > f * mass as f64` would fire at drift == mass.
        // The exact test must NOT fire there (strict inequality) and MUST
        // fire at drift == mass + 1.
        let mass: i128 = (1i128 << 53) + 1;
        assert!(!drift_exceeds(mass, 1.0, mass), "drift == f·mass: no fire");
        assert!(drift_exceeds(mass + 1, 1.0, mass), "drift == f·mass + 1");

        // Demonstrate the naive float comparison genuinely misses a fire:
        // drift = 2⁵³ + 1 exceeds mass = 2⁵³, but `drift as f64` rounds
        // down to exactly 2⁵³ and the strict float inequality fails.
        let mass: i128 = 1i128 << 53;
        let drift = mass + 1;
        let naive = (drift as f64) > 1.0 * (mass as f64);
        assert!(!naive, "float rounding hides the exceedance");
        assert!(drift_exceeds(drift, 1.0, mass), "exact math catches it");

        // f = 0.5 with an odd huge mass: f·mass = (2⁵⁴ + 2)/2 = 2⁵³ + 1,
        // again straddling the mantissa limit.
        let mass: i128 = (1i128 << 54) + 2;
        let thresh: i128 = (1i128 << 53) + 1;
        assert!(!drift_exceeds(thresh, 0.5, mass));
        assert!(drift_exceeds(thresh + 1, 0.5, mass));

        // Subnormal f: f = 2^-1074 (minimum positive f64). Exact threshold
        // is mass·2^-1074; for any mass < 2^1074 and drift ≥ 1 this fires.
        let tiny = f64::from_bits(1);
        assert!(drift_exceeds(1, tiny, i128::MAX));
        assert!(!drift_exceeds(0, tiny, 10));

        // Very large f saturates the shifted side; drift (≤ 2^127) can
        // never exceed it.
        assert!(!drift_exceeds(i128::MAX, f64::MAX, i128::MAX));

        // Small sanity values agree with plain arithmetic.
        assert!(drift_exceeds(11, 0.1, 100));
        assert!(!drift_exceeds(10, 0.1, 100));
    }

    #[test]
    fn persist_total_backoff_caps_wall_clock() {
        // 20 retries with 100 ms starting backoff would sleep > 2 s doubling;
        // a 5 ms cap must bound the whole ladder to ~5 ms.
        let mut persist: PersistFn = Box::new(|_e: &dyn RangeEstimator| {
            Err(SynopticError::Io {
                path: "/dev/full".into(),
                detail: "enospc".into(),
            })
        });
        let config = RebuildConfig::new(RebuildPolicy::Manual)
            .with_persist_retries(20, Duration::from_millis(100))
            .with_persist_total_backoff(Duration::from_millis(5));
        let vals = vec![2i64; 4];
        let est = build_sap0(&PrefixSums::from_values(&vals), 2).unwrap();
        let start = std::time::Instant::now();
        let report = persist_with_retry(&mut *persist, &est, &config);
        let elapsed = start.elapsed();
        assert!(report.failed);
        // One 5 ms nap, then `remaining` hits zero and the ladder gives up:
        // far below the 2+ seconds the uncapped ladder would burn.
        assert!(
            elapsed < Duration::from_millis(500),
            "retry ladder must respect the wall-clock cap, took {elapsed:?}"
        );
        assert!(report.retries >= 1, "at least one retry before the cap");
        assert!(report.last_error.is_some());
    }
}
