//! Progressive (online) range-query answering — the paper's third
//! motivating scenario (§1): "online query processing wherein fast
//! estimates are provided and they get refined over time at rates
//! controlled by the user".
//!
//! A [`ProgressiveQuery`] starts from a synopsis answer and refines it by
//! scanning the queried range in user-controlled chunks: the scanned part
//! becomes exact, the unscanned remainder stays estimated. With a
//! [`BoundedHistogram`] the remainder also carries a certified interval, so
//! the user watches a guaranteed bracket collapse onto the true answer.

use synoptic_core::{
    BoundedHistogram, Bucketing, PrefixSums, RangeEstimator, RangeQuery, Result, SynopticError,
};

/// A snapshot of a progressive answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressiveAnswer {
    /// Current best estimate (exact part + estimated remainder).
    pub estimate: f64,
    /// Certified lower bound.
    pub lo: f64,
    /// Certified upper bound.
    pub hi: f64,
    /// Cells scanned so far.
    pub scanned: usize,
    /// Cells remaining.
    pub remaining: usize,
}

impl ProgressiveAnswer {
    /// Whether the answer is final (remainder empty; bounds collapsed).
    pub fn is_final(&self) -> bool {
        self.remaining == 0
    }
}

/// A running progressive computation over one range query.
pub struct ProgressiveQuery<'a> {
    values: &'a [i64],
    synopsis: &'a BoundedHistogram,
    query: RangeQuery,
    /// Next unscanned index (scans left → right).
    cursor: usize,
    /// Exact sum of the scanned prefix of the range.
    exact: i128,
}

impl<'a> ProgressiveQuery<'a> {
    /// Starts a progressive computation. The synopsis provides the initial
    /// estimate and the certified remainder bounds.
    pub fn new(
        values: &'a [i64],
        synopsis: &'a BoundedHistogram,
        query: RangeQuery,
    ) -> Result<Self> {
        query.check_bounds(values.len())?;
        if synopsis.n() != values.len() {
            return Err(SynopticError::InvalidParameter(format!(
                "synopsis covers n={}, data has n={}",
                synopsis.n(),
                values.len()
            )));
        }
        Ok(Self {
            values,
            synopsis,
            query,
            cursor: query.lo,
            exact: 0,
        })
    }

    /// The current snapshot without scanning further.
    ///
    /// The remainder's first bucket is bounded with *scan-aware* complement
    /// information: the cells of that bucket already scanned are known
    /// exactly, so only the cells outside the query (before `q.lo` / after
    /// `q.hi`) contribute uncertainty. This keeps the certified interval
    /// (empirically) non-increasing as the scan proceeds — in particular,
    /// once the scan covers a whole-bucket prefix the remainder piece of
    /// that bucket is exact, matching the pre-scan whole-bucket exactness.
    pub fn answer(&self) -> ProgressiveAnswer {
        let scanned = self.cursor - self.query.lo;
        let remaining = self.query.hi + 1 - self.cursor;
        if remaining == 0 {
            let e = self.exact as f64;
            return ProgressiveAnswer {
                estimate: e,
                lo: e,
                hi: e,
                scanned,
                remaining,
            };
        }
        let bk = self.synopsis.bucketing();
        let p = bk.bucket_of(self.cursor);
        let (left_p, right_p) = (bk.left(p), bk.right(p));
        // Exactly-known part of bucket p: the scanned cells inside it.
        let scan_start = self.query.lo.max(left_p);
        let known: i128 = self.values[scan_start..self.cursor]
            .iter()
            .map(|&v| v as i128)
            .sum();
        // Unknown bucket-p cells outside the query.
        let u = self.query.lo.saturating_sub(left_p); // before q.lo
        let piece_end = self.query.hi.min(right_p);
        let w = right_p - piece_end; // after q.hi (intra-bucket end)
        let t = piece_end + 1 - self.cursor; // remainder cells in bucket p
        let (min_p, max_p) = self.synopsis.extrema(p);
        let (min_p, max_p) = (min_p as f64, max_p as f64);
        let sp = self.synopsis.bucket_sum(p) as f64 - known as f64;
        let uw = (u + w) as f64;
        let tf = t as f64;
        let first_lo = (tf * min_p).max(sp - uw * max_p);
        let first_hi = (tf * max_p).min(sp - uw * min_p);
        // Tail beyond bucket p (starts at a bucket boundary, so its own
        // leading piece is a whole-bucket prefix — handled exactly by the
        // synopsis bounds).
        let (tail_lo, tail_hi, tail_mid) = if self.query.hi > right_p {
            let tail = RangeQuery {
                lo: right_p + 1,
                hi: self.query.hi,
            };
            let b = self.synopsis.bounds(tail);
            (b.lo, b.hi, self.synopsis.estimate(tail))
        } else {
            (0.0, 0.0, 0.0)
        };
        let base = self.exact as f64;
        ProgressiveAnswer {
            estimate: base + (first_lo + first_hi) / 2.0 + tail_mid,
            lo: base + first_lo + tail_lo,
            hi: base + first_hi + tail_hi,
            scanned,
            remaining,
        }
    }

    /// Scans up to `chunk` more cells and returns the refined snapshot.
    pub fn refine(&mut self, chunk: usize) -> ProgressiveAnswer {
        let end = (self.cursor + chunk.max(1)).min(self.query.hi + 1);
        while self.cursor < end {
            self.exact += self.values[self.cursor] as i128;
            self.cursor += 1;
        }
        self.answer()
    }

    /// Runs to completion, collecting one snapshot per chunk (diagnostics /
    /// UI simulation).
    pub fn run_to_completion(mut self, chunk: usize) -> Vec<ProgressiveAnswer> {
        let mut out = vec![self.answer()];
        while !out.last().expect("non-empty").is_final() {
            out.push(self.refine(chunk));
        }
        out
    }
}

/// Convenience: build a bounded synopsis over OPT-A-style equi-width
/// boundaries for progressive use (callers with an optimized bucketing
/// should build [`BoundedHistogram`] directly).
pub fn bounded_synopsis(
    values: &[i64],
    ps: &PrefixSums,
    buckets: usize,
) -> Result<BoundedHistogram> {
    let b = Bucketing::equi_width(values.len(), buckets)?;
    BoundedHistogram::build(b, values, ps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(vals: &[i64]) -> (PrefixSums, BoundedHistogram) {
        let ps = PrefixSums::from_values(vals);
        let h = bounded_synopsis(vals, &ps, 3).unwrap();
        (ps, h)
    }

    #[test]
    fn refinement_converges_to_the_exact_answer() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1];
        let (ps, h) = setup(&vals);
        let q = RangeQuery { lo: 2, hi: 10 };
        let truth = ps.answer(q) as f64;
        let snaps = ProgressiveQuery::new(&vals, &h, q)
            .unwrap()
            .run_to_completion(2);
        // Every snapshot's certified interval contains the truth.
        for s in &snaps {
            assert!(s.lo - 1e-9 <= truth && truth <= s.hi + 1e-9, "{s:?}");
            assert!(s.lo <= s.estimate + 1e-9 && s.estimate <= s.hi + 1e-9);
        }
        // Bounds shrink monotonically to zero width.
        for w in snaps.windows(2) {
            assert!(w[1].hi - w[1].lo <= w[0].hi - w[0].lo + 1e-9);
        }
        let last = snaps.last().unwrap();
        assert!(last.is_final());
        assert_eq!(last.estimate, truth);
        assert_eq!(last.scanned, q.len());
    }

    #[test]
    fn initial_answer_matches_the_synopsis() {
        let vals = vec![5i64, 1, 8, 8, 2, 9, 0, 3, 7];
        let (_, h) = setup(&vals);
        let q = RangeQuery { lo: 1, hi: 7 };
        let p = ProgressiveQuery::new(&vals, &h, q).unwrap();
        let first = p.answer();
        assert_eq!(first.scanned, 0);
        assert_eq!(first.remaining, 7);
        assert!((first.estimate - h.estimate(q)).abs() < 1e-9);
        let b = h.bounds(q);
        assert!((first.lo - b.lo).abs() < 1e-9 && (first.hi - b.hi).abs() < 1e-9);
    }

    #[test]
    fn single_refine_with_huge_chunk_finishes_immediately() {
        let vals = vec![4i64, 7, 7, 2];
        let (ps, h) = setup(&vals);
        let q = RangeQuery { lo: 0, hi: 3 };
        let mut p = ProgressiveQuery::new(&vals, &h, q).unwrap();
        let s = p.refine(1000);
        assert!(s.is_final());
        assert_eq!(s.estimate, ps.answer(q) as f64);
    }

    #[test]
    fn zero_chunk_is_clamped_to_progress() {
        let vals = vec![1i64, 2, 3];
        let (_, h) = setup(&vals);
        let mut p = ProgressiveQuery::new(&vals, &h, RangeQuery { lo: 0, hi: 2 }).unwrap();
        let s = p.refine(0); // max(1) ⇒ still advances
        assert_eq!(s.scanned, 1);
    }

    #[test]
    fn validation() {
        let vals = vec![1i64, 2, 3];
        let ps = PrefixSums::from_values(&vals);
        let h = bounded_synopsis(&vals, &ps, 2).unwrap();
        assert!(ProgressiveQuery::new(&vals, &h, RangeQuery { lo: 0, hi: 5 }).is_err());
        let other = vec![1i64, 2, 3, 4];
        assert!(ProgressiveQuery::new(&other, &h, RangeQuery { lo: 0, hi: 2 }).is_err());
    }
}
